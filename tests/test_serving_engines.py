"""Tests for the pluggable serving engines (analytic vs event-driven)."""

import math

import numpy as np
import pytest

from repro.dlrm.operators import SLSRequest
from repro.serving import (
    AnalyticEngine,
    BatchingFrontend,
    EventEngine,
    PoissonArrivalProcess,
    ServingEngine,
    ServingQuery,
    ShardedServingCluster,
    available_engines,
    erlang_c,
    mg1_mean_wait_us,
    mgc_mean_wait_us,
    mgc_utilization,
    qps_sweep,
    queries_from_traces,
    resolve_engine,
    simulate_fifo_queue,
    summarize_serving,
    wait_quantile_us,
)
from repro.serving.batcher import QueryBatch
from repro.traces import make_production_table_traces

NUM_ROWS = 512
VECTOR_BYTES = 64


def address_of(table_id, row):
    return (table_id * NUM_ROWS + row) * VECTOR_BYTES


def make_query(query_id, arrival_us, lookups=8):
    rng = np.random.default_rng(query_id)
    request = SLSRequest(table_id=0,
                         indices=rng.integers(0, NUM_ROWS, size=lookups),
                         lengths=np.asarray([lookups]))
    return ServingQuery(query_id=query_id, arrival_us=arrival_us,
                        requests=[request])


def poisson_batches(num_batches, rate_per_us, seed=1):
    """Single-query batches with Poisson formation times, zero delay.

    The engines only read arrival/formation times and service times, so
    the queries carry no SLS requests -- keeps 40k-batch queue tests fast.
    """
    rng = np.random.default_rng(seed)
    ready = np.cumsum(rng.exponential(1.0 / rate_per_us, size=num_batches))
    return [QueryBatch(queries=[ServingQuery(query_id=i,
                                             arrival_us=float(t))],
                       open_us=float(t), formed_us=float(t))
            for i, t in enumerate(ready)]


class TestErlangC:
    def test_single_server_is_utilization(self):
        for load in (0.1, 0.5, 0.9):
            assert erlang_c(1, load) == pytest.approx(load)

    def test_two_servers_at_one_erlang(self):
        # Classic textbook value: C(2, 1) = 1/3.
        assert erlang_c(2, 1.0) == pytest.approx(1.0 / 3.0)

    def test_bounds_and_validation(self):
        assert erlang_c(4, 0.0) == 0.0
        assert erlang_c(2, 2.0) == 1.0       # saturated
        assert 0.0 < erlang_c(8, 6.0) < 1.0
        with pytest.raises(ValueError):
            erlang_c(0, 1.0)
        with pytest.raises(ValueError):
            erlang_c(2, -1.0)


class TestMGcFormulas:
    def test_single_server_reduces_to_pk(self):
        rng = np.random.default_rng(0)
        services = rng.exponential(10.0, size=200)
        rate = 0.04
        assert mgc_mean_wait_us(rate, services, 1) == \
            pytest.approx(mg1_mean_wait_us(rate, services))
        assert mgc_utilization(rate, services, 1) == \
            pytest.approx(rate * services.mean())

    def test_more_servers_wait_less(self):
        services = [10.0] * 50
        rate = 0.15                            # rho = 0.75 on 2 servers
        one = mgc_mean_wait_us(rate * 0.5, services, 1)
        two = mgc_mean_wait_us(rate, services, 2)
        # Pooling two servers beats two separate M/G/1 queues at the same
        # per-server load.
        assert two < one
        assert mgc_utilization(rate, services, 2) == pytest.approx(0.75)

    def test_wait_quantile_multiserver_reduces_tail(self):
        services = [10.0] * 50
        single = wait_quantile_us(0.08, services, 99)
        pooled = wait_quantile_us(0.16, services, 99, num_servers=2)
        assert 0.0 < pooled < single
        assert math.isinf(wait_quantile_us(0.3, services, 99,
                                           num_servers=2))

    def test_summarize_sustainable_qps_scales_with_servers(self):
        """Regression: sustainable_qps assumed a single dispatch server."""
        queries = [make_query(i, arrival_us=100.0 * i) for i in range(4)]
        batches = [QueryBatch(queries=[q], open_us=q.arrival_us,
                              formed_us=q.arrival_us + 5.0,
                              trigger="deadline")
                   for q in queries]
        services = [10.0] * 4
        one = summarize_serving("unit", batches, services)
        four = summarize_serving("unit", batches, services, num_servers=4)
        assert one.num_servers == 1
        assert four.num_servers == 4
        assert four.sustainable_qps == pytest.approx(4 * one.sustainable_qps)
        assert four.utilization == pytest.approx(one.utilization / 4)
        assert four.as_dict()["num_servers"] == 4


class TestFifoSimulation:
    def test_two_servers_serve_concurrently(self):
        starts, completes, depth = simulate_fifo_queue(
            [0.0, 0.0, 0.0], [10.0, 10.0, 10.0], num_servers=2)
        assert starts.tolist() == [0.0, 0.0, 10.0]
        assert completes.tolist() == [10.0, 10.0, 20.0]
        assert depth == 1

    def test_fifo_order_respects_ready_times(self):
        starts, completes, depth = simulate_fifo_queue(
            [0.0, 1.0, 2.0], [5.0, 5.0, 5.0], num_servers=1)
        assert starts.tolist() == [0.0, 5.0, 10.0]
        assert completes.tolist() == [5.0, 10.0, 15.0]
        assert depth == 2

    def test_idle_server_starts_immediately(self):
        starts, _, depth = simulate_fifo_queue(
            [0.0, 100.0], [10.0, 10.0], num_servers=1)
        assert starts.tolist() == [0.0, 100.0]
        assert depth == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            simulate_fifo_queue([], [], 1)
        with pytest.raises(ValueError):
            simulate_fifo_queue([0.0], [1.0, 2.0], 1)
        with pytest.raises(ValueError):
            simulate_fifo_queue([0.0], [1.0], 0)


def fifo_recurrence(ready, services):
    """The sequential single-server FIFO recurrence (reference)."""
    order = np.argsort(ready, kind="stable")
    starts = np.empty_like(ready)
    completes = np.empty_like(ready)
    free_at = float(ready[order[0]])
    for index in order:
        start = max(float(ready[index]), free_at)
        free_at = start + float(services[index])
        starts[index] = start
        completes[index] = free_at
    return starts, completes


def replay_queue_depth(ready, starts):
    """The pre-optimisation event-replay waiting-queue depth (reference).

    One +1 event per arrival, one -1 event per service start, sorted by
    time with departures preceding arrivals at ties.
    """
    events = sorted([(float(t), 1) for t in ready]
                    + [(float(t), 0) for t in starts])
    depth = max_depth = 0
    for _, kind in events:
        depth += 1 if kind else -1
        max_depth = max(max_depth, depth)
    return max_depth


class TestVectorisedFifo:
    """The closed-form single-server FIFO path vs the heap recurrence."""

    def test_matches_recurrence_on_integer_times(self):
        # Integer-valued times: the prefix-sum closed form is exact, so
        # the vectorised path must agree bit-for-bit.
        rng = np.random.default_rng(0)
        for trial in range(20):
            n = int(rng.integers(1, 200))
            ready = rng.integers(0, 500, size=n).astype(np.float64)
            services = rng.integers(1, 50, size=n).astype(np.float64)
            starts, completes, _ = simulate_fifo_queue(ready, services,
                                                       num_servers=1)
            ref_starts, ref_completes = fifo_recurrence(ready, services)
            assert starts.tolist() == ref_starts.tolist(), trial
            assert completes.tolist() == ref_completes.tolist(), trial

    def test_matches_recurrence_on_float_times(self):
        rng = np.random.default_rng(1)
        for trial in range(20):
            n = int(rng.integers(1, 200))
            ready = np.sort(rng.exponential(10.0, size=n))
            rng.shuffle(ready)                # exercise unsorted input
            services = rng.exponential(5.0, size=n) + 1e-9
            starts, completes, _ = simulate_fifo_queue(ready, services,
                                                       num_servers=1)
            ref_starts, ref_completes = fifo_recurrence(ready, services)
            np.testing.assert_allclose(starts, ref_starts, rtol=1e-12)
            np.testing.assert_allclose(completes, ref_completes,
                                       rtol=1e-12)

    def test_queue_depth_matches_event_replay(self):
        from repro.serving.events import simulate_batch_queue

        rng = np.random.default_rng(2)
        for trial in range(20):
            n = int(rng.integers(1, 120))
            ready = rng.integers(0, 300, size=n).astype(np.float64)
            services = rng.integers(1, 40, size=n).astype(np.float64)
            servers = int(rng.integers(1, 4))
            for order, priorities in (("fifo", None),
                                      ("edf", rng.integers(
                                          0, 1000, size=n).astype(
                                              np.float64))):
                starts, _, depth = simulate_batch_queue(
                    ready, services, num_servers=servers, order=order,
                    priorities=priorities)
                assert depth == replay_queue_depth(ready, starts), \
                    (trial, order, servers)

    def test_queue_depth_fixtures(self):
        # The documented fixture values must survive the accounting
        # rewrite (computed from start times, not an event list).
        _, _, depth = simulate_fifo_queue([0.0, 1.0, 2.0],
                                          [5.0, 5.0, 5.0], num_servers=1)
        assert depth == 2
        _, _, depth = simulate_fifo_queue([0.0, 0.0, 0.0],
                                          [10.0, 10.0, 10.0],
                                          num_servers=2)
        assert depth == 1
        _, _, depth = simulate_fifo_queue([0.0, 100.0], [10.0, 10.0],
                                          num_servers=1)
        assert depth == 0


class TestEngineResolution:
    def test_names_and_instances(self):
        assert isinstance(resolve_engine(None), AnalyticEngine)
        assert isinstance(resolve_engine("analytic"), AnalyticEngine)
        assert isinstance(resolve_engine("event"), EventEngine)
        engine = EventEngine()
        assert resolve_engine(engine) is engine
        assert isinstance(resolve_engine(AnalyticEngine), AnalyticEngine)
        assert available_engines() == ["analytic", "event", "event-edf"]
        edf = resolve_engine("event-edf")
        assert isinstance(edf, EventEngine)
        assert edf.order == "edf"
        assert edf.name == "event-edf"

    def test_unknown_engine(self):
        with pytest.raises(ValueError):
            resolve_engine("closed-form")

    def test_engines_are_serving_engines(self):
        assert issubclass(AnalyticEngine, ServingEngine)
        assert issubclass(EventEngine, ServingEngine)


class TestEngineAgreement:
    def test_mean_latency_agrees_at_low_utilization(self):
        """Engines must agree within 5% on mean latency at rho < 0.3."""
        rate_per_us = 0.02                       # rho = 0.2 at E[S] = 10us
        batches = poisson_batches(5000, rate_per_us, seed=1)
        rng = np.random.default_rng(7)
        services = rng.exponential(10.0, size=len(batches))
        analytic = AnalyticEngine().summarize("unit", batches, services)
        event = EventEngine().summarize("unit", batches, services)
        assert analytic.utilization < 0.3
        assert event.mean_latency_us == \
            pytest.approx(analytic.mean_latency_us, rel=0.05)
        assert event.mean_wait_us == \
            pytest.approx(analytic.mean_wait_us, rel=0.25)

    def test_event_engine_reproduces_mm1_closed_form(self):
        """M/M/1: measured waits and tails must match the exact theory."""
        mean_service = 10.0
        for rho in (0.5, 0.7):
            rate_per_us = rho / mean_service
            batches = poisson_batches(40_000, rate_per_us, seed=1)
            # Independent seed: correlated gap/service draws would hide
            # the queueing the closed form predicts.
            rng = np.random.default_rng(2)
            services = rng.exponential(mean_service, size=len(batches))
            report = EventEngine().summarize("unit", batches, services)
            expected_wait = rho * mean_service / (1.0 - rho)
            assert report.mean_wait_us == \
                pytest.approx(expected_wait, rel=0.10)
            # Sojourn time in M/M/1 is exponential with rate mu(1 - rho):
            # p99 = -ln(0.01) / (mu (1 - rho)).  Batches carry zero
            # batching delay here, so per-query latency is the sojourn.
            expected_p99 = -math.log(0.01) * mean_service / (1.0 - rho)
            assert report.p99_us == pytest.approx(expected_p99, rel=0.10)

    def test_event_engine_reports_measured_extras(self):
        batches = poisson_batches(200, 0.05, seed=3)
        services = [15.0] * len(batches)
        report = EventEngine().summarize("unit", batches, services,
                                         num_servers=2)
        assert report.extras["engine"] == "event"
        assert report.extras["num_frontends"] == 2
        assert 0.0 < report.extras["measured_utilization"] <= 1.0
        assert report.extras["max_queue_depth"] >= 0
        assert report.num_servers == 2


class TestClusterEngineParameter:
    def build_queries(self, qps=40_000.0, num_queries=12):
        traces = make_production_table_traces(
            num_lookups_per_table=400, num_rows=NUM_ROWS, num_tables=4,
            seed=0)
        return queries_from_traces(
            traces, num_queries,
            PoissonArrivalProcess(rate_qps=qps, seed=3),
            batch_size=2, pooling_factor=4)

    def build_cluster(self, **overrides):
        return ShardedServingCluster(
            num_nodes=2, node_system="recnmp-base",
            address_of=address_of, vector_size_bytes=VECTOR_BYTES,
            **overrides)

    def test_default_engine_is_analytic(self):
        report = self.build_cluster().simulate(self.build_queries())
        assert report.extras["engine"] == "analytic"
        assert report.extras["service_model"] == "exact"
        assert report.num_servers == 1

    def test_event_engine_through_cluster(self):
        queries = self.build_queries()
        frontend = BatchingFrontend(max_queries=4, max_delay_us=100.0)
        cluster = self.build_cluster(num_frontends=2)
        analytic = cluster.simulate(queries, frontend=frontend)
        event = cluster.simulate(queries, frontend=frontend,
                                 engine="event")
        assert event.extras["engine"] == "event"
        assert event.num_servers == 2
        # Identical batches and service times (memoised) underneath.
        assert event.num_batches == analytic.num_batches
        assert event.mean_service_us == \
            pytest.approx(analytic.mean_service_us)
        # Low utilisation: engines agree closely on the mean.
        assert event.mean_latency_us == \
            pytest.approx(analytic.mean_latency_us, rel=0.05)

    def test_qps_sweep_forwards_engine(self):
        cluster = self.build_cluster()
        reports = qps_sweep(cluster,
                            lambda qps: self.build_queries(qps=qps),
                            [20_000.0, 40_000.0], engine="event")
        assert [r.extras["engine"] for r in reports] == ["event", "event"]

    def test_cluster_validates_frontends(self):
        with pytest.raises(ValueError):
            self.build_cluster(num_frontends=0)
