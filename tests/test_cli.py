"""Smoke tests for the ``python -m repro`` command-line interface.

Drives ``list-systems`` / ``run`` / ``serve`` through :func:`main` with
tiny workloads (small tables, few queries, the analytic host model where
possible) and asserts both the happy paths and the parse/validation
errors -- the CLI previously had no coverage at all.
"""

import json

import pytest

from repro.__main__ import build_parser, main

#: Tiny shared workload: small tables, few queries, cheap systems.
RUN_ARGS = ["run", "--system", "host", "--tables", "2", "--batch", "2",
            "--pooling", "4", "--num-rows", "2000", "--seed", "0"]
SERVE_ARGS = ["serve", "--system", "recnmp-base", "--tables", "2",
              "--batch", "2", "--pooling", "4", "--num-rows", "2000",
              "--nodes", "2", "--queries", "12", "--qps", "100000",
              "--seed", "0"]


def run_json(argv, capsys):
    """Run the CLI and parse its JSON payload."""
    assert main(argv + ["--json"]) == 0
    return json.loads(capsys.readouterr().out)


class TestListSystems:
    def test_lists_known_registry_names(self, capsys):
        assert main(["list-systems"]) == 0
        out = capsys.readouterr().out
        for name in ("host", "recnmp-base", "recnmp-opt",
                     "recnmp-opt-4ch"):
            assert name in out


class TestRun:
    def test_run_host_json(self, capsys):
        payload = run_json(RUN_ARGS, capsys)
        assert payload["system"] == "host"
        assert payload["num_requests"] == 2
        assert payload["total_cycles"] > 0
        assert "baseline_cache" in payload

    def test_run_human_readable(self, capsys):
        assert main(RUN_ARGS) == 0
        out = capsys.readouterr().out
        assert "workload" in out and "latency" in out

    def test_run_unknown_system_exits(self):
        with pytest.raises(SystemExit):
            main(["run", "--system", "definitely-not-registered"])


class TestServe:
    def test_serve_analytic_json(self, capsys):
        payload = run_json(SERVE_ARGS, capsys)
        assert payload["num_queries"] == 12
        assert payload["p50_us"] <= payload["p95_us"] <= payload["p99_us"]
        assert payload["extras"]["engine"] == "analytic"
        assert "slo" not in payload["extras"]

    def test_serve_slo_admission_mmpp(self, capsys):
        payload = run_json(
            SERVE_ARGS + ["--engine", "event", "--arrival", "mmpp",
                          "--slo-us", "5000", "--admission", "deadline"],
            capsys)
        slo = payload["extras"]["slo"]
        assert slo["slo_policy"] == "fixed 5000 us"
        assert slo["admission"] == "deadline"
        assert slo["num_offered"] == 12
        assert 0.0 <= slo["shed_rate"] <= 1.0
        assert slo["attainment"] is None or 0.0 <= slo["attainment"] <= 1.0

    def test_serve_trace_arrival_edf(self, capsys):
        payload = run_json(
            SERVE_ARGS + ["--engine", "event-edf", "--arrival", "trace",
                          "--slo-us", "5000"], capsys)
        assert payload["extras"]["engine"] == "event-edf"
        assert payload["extras"]["queue_order"] == "edf"
        assert payload["extras"]["slo"]["num_shed"] == 0

    def test_serve_human_readable_slo_section(self, capsys):
        assert main(SERVE_ARGS + ["--slo-us", "5000",
                                  "--admission", "none"]) == 0
        out = capsys.readouterr().out
        assert "attainment" in out
        assert "goodput" in out
        assert "admission" in out

    def test_serve_replication_with_overhead_override(self, capsys):
        payload = run_json(
            SERVE_ARGS + ["--shard-policy", "load-aware", "--replicas",
                          "2", "--request-overhead", "40"], capsys)
        assert "load-aware" in payload["extras"]["sharder"]

    def test_serve_stream_chunk_identical_to_oneshot(self, capsys):
        args = SERVE_ARGS + ["--engine", "event", "--queries", "200"]
        oneshot = run_json(args, capsys)
        streamed = run_json(args + ["--stream-chunk", "64"], capsys)
        oneshot.pop("service_stats")
        streamed.pop("service_stats")
        assert streamed == oneshot

    def test_serve_stream_chunk_below_max_batch_exits(self):
        with pytest.raises(SystemExit, match="--max-batch"):
            main(SERVE_ARGS + ["--stream-chunk", "2"])

    def test_serve_stream_chunk_rejects_load_aware(self):
        with pytest.raises(SystemExit, match="load-aware"):
            main(SERVE_ARGS + ["--stream-chunk", "64", "--shard-policy",
                               "load-aware", "--request-overhead", "40"])

    def test_serve_unknown_system_exits(self):
        with pytest.raises(SystemExit):
            main(["serve", "--system", "definitely-not-registered",
                  "--queries", "4"])

    def test_serve_workload_trace_flag(self, capsys):
        # serve spells the workload locality flag --workload-trace
        # (so --trace can name the Perfetto output file).
        payload = run_json(
            SERVE_ARGS + ["--workload-trace", "production"], capsys)
        assert payload["num_queries"] == 12

    def test_serve_writes_trace_and_metrics(self, tmp_path, capsys):
        trace_path = tmp_path / "trace.json"
        metrics_path = tmp_path / "metrics.json"
        payload = run_json(
            SERVE_ARGS + ["--engine", "event",
                          "--trace", str(trace_path),
                          "--metrics-json", str(metrics_path)], capsys)
        assert payload["trace_path"] == str(trace_path)
        assert payload["metrics_path"] == str(metrics_path)
        from repro.obs import validate_chrome_trace

        trace = json.loads(trace_path.read_text())
        validate_chrome_trace(trace)
        assert trace["otherData"]["num_queries"] == 12
        snapshot = json.loads(metrics_path.read_text())
        assert snapshot["counters"]["serving.queries_total"] == 12

    def test_serve_trace_without_metrics_unchanged_report(self, tmp_path,
                                                          capsys):
        args = SERVE_ARGS + ["--engine", "event"]
        plain = run_json(args, capsys)
        traced = run_json(
            args + ["--trace", str(tmp_path / "t.json")], capsys)
        traced.pop("trace_path")
        # Tracing must not perturb the report (caches warm across runs,
        # so drop the host-side stat block before comparing).
        plain.pop("service_stats")
        traced.pop("service_stats")
        assert traced == plain

    def test_serve_human_readable_mentions_outputs(self, tmp_path,
                                                   capsys):
        assert main(SERVE_ARGS
                    + ["--trace", str(tmp_path / "t.json"),
                       "--metrics-json", str(tmp_path / "m.json")]) == 0
        out = capsys.readouterr().out
        assert "perfetto" in out.lower()
        assert "repro report" in out


class TestReport:
    def test_report_renders_metrics_snapshot(self, tmp_path, capsys):
        metrics_path = tmp_path / "metrics.json"
        run_json(SERVE_ARGS + ["--metrics-json", str(metrics_path)],
                 capsys)
        assert main(["report", str(metrics_path)]) == 0
        out = capsys.readouterr().out
        assert "serving.queries_total" in out
        assert "serving.query_latency_us" in out

    def test_report_missing_file_exits(self, tmp_path):
        with pytest.raises(SystemExit, match="cannot read"):
            main(["report", str(tmp_path / "absent.json")])

    def test_report_invalid_json_exits(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(SystemExit, match="not valid JSON"):
            main(["report", str(bad)])

    def test_report_non_object_exits(self, tmp_path):
        bad = tmp_path / "list.json"
        bad.write_text("[1, 2]")
        with pytest.raises(SystemExit, match="not a metrics snapshot"):
            main(["report", str(bad)])


class TestParseErrors:
    def test_deadline_admission_requires_slo(self):
        with pytest.raises(SystemExit, match="--slo-us"):
            main(SERVE_ARGS + ["--admission", "deadline"])

    def test_non_positive_slo_rejected(self):
        with pytest.raises(SystemExit, match="positive"):
            main(SERVE_ARGS + ["--slo-us", "-10"])
        with pytest.raises(SystemExit, match="positive"):
            main(SERVE_ARGS + ["--slo-us", "0"])

    def test_negative_request_overhead_rejected(self):
        with pytest.raises(SystemExit, match="non-negative"):
            main(SERVE_ARGS + ["--request-overhead", "-1"])

    def test_bad_choices_exit_with_usage_error(self, capsys):
        for flags in (["--arrival", "bursty"],
                      ["--engine", "closed-form"],
                      ["--admission", "drop-everything"],
                      ["--shard-policy", "best-fit"],
                      ["--service-model", "oracle"]):
            with pytest.raises(SystemExit) as excinfo:
                main(SERVE_ARGS + flags)
            assert excinfo.value.code == 2     # argparse usage error
            capsys.readouterr()                # drain usage output

    def test_missing_subcommand_is_usage_error(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main([])
        assert excinfo.value.code == 2
        capsys.readouterr()

    def test_parser_declares_new_serve_flags(self):
        parser = build_parser()
        text = parser.format_help()
        assert "serve" in text
        # The new flags are registered on the serve subparser.
        serve_args = [action.option_strings
                      for action in parser._subparsers._group_actions[0]
                      .choices["serve"]._actions]
        flat = {flag for flags in serve_args for flag in flags}
        for flag in ("--slo-us", "--admission", "--arrival",
                     "--request-overhead", "--stream-chunk",
                     "--workload-trace", "--trace", "--metrics-json"):
            assert flag in flat


class TestLint:
    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        clean = tmp_path / "clean.py"
        clean.write_text('"""A module with no violations."""\n'
                         "import random\n\n"
                         "rng = random.Random(7)\n")
        assert main(["lint", str(clean)]) == 0
        assert "0 findings" in capsys.readouterr().out

    def test_violation_exits_one_and_names_the_rule(self, tmp_path,
                                                    capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("import random\n\nrng = random.Random()\n")
        assert main(["lint", str(bad)]) == 1
        out = capsys.readouterr().out
        assert "[determinism]" in out
        assert "%s:3" % bad in out

    def test_unknown_rule_exits_two(self, tmp_path, capsys):
        (tmp_path / "mod.py").write_text("x = 1\n")
        assert main(["lint", "--rule", "no-such-rule",
                     str(tmp_path)]) == 2
        assert "unknown rule" in capsys.readouterr().err

    def test_missing_path_exits_two(self, tmp_path, capsys):
        assert main(["lint", str(tmp_path / "absent")]) == 2
        assert "no such file" in capsys.readouterr().err

    def test_json_output_shape(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("import random\n\nrng = random.Random()\n")
        assert main(["lint", "--json", str(bad)]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["num_findings"] == 1
        finding = payload["findings"][0]
        assert finding["rule"] == "determinism"
        assert finding["path"] == str(bad)
        assert finding["line"] == 3
        assert payload["rules"] == sorted(payload["rules"])

    def test_rule_subset_runs_only_selected(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("import random\nrng = random.Random()\n"
                       "try:\n    rng\nexcept Exception:\n    pass\n")
        assert main(["lint", "--rule", "broad-except-audit",
                     str(bad)]) == 1
        out = capsys.readouterr().out
        assert "[broad-except-audit]" in out
        assert "[determinism]" not in out
