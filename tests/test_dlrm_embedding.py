"""Tests for repro.dlrm.embedding."""

import numpy as np
import pytest

from repro.dlrm.config import RM1_SMALL, scaled_config
from repro.dlrm.embedding import EmbeddingBag, EmbeddingTable
from repro.dlrm.operators import SLSRequest, sparse_lengths_sum


class TestEmbeddingTable:
    def test_row_addresses_contiguous(self):
        table = EmbeddingTable(num_rows=100, embedding_dim=16,
                               base_address=1 << 20, lazy=True)
        assert table.row_address(0) == 1 << 20
        assert table.row_address(1) == (1 << 20) + 64
        np.testing.assert_array_equal(
            table.row_addresses([0, 2]),
            np.array([1 << 20, (1 << 20) + 128]))

    def test_row_address_bounds(self):
        table = EmbeddingTable(num_rows=10, embedding_dim=4, lazy=True)
        with pytest.raises(IndexError):
            table.row_address(10)
        with pytest.raises(IndexError):
            table.row_addresses([0, 10])

    def test_bytes_per_row(self):
        assert EmbeddingTable(10, 16, lazy=True).bytes_per_row == 64
        assert EmbeddingTable(10, 64, lazy=True).bytes_per_row == 256
        assert EmbeddingTable(10, 16, quantized=True,
                              lazy=True).bytes_per_row == 24

    def test_lazy_table_cannot_lookup(self):
        table = EmbeddingTable(10, 4, lazy=True)
        with pytest.raises(RuntimeError):
            table.lookup([0], [1])

    def test_lookup_matches_reference(self):
        table = EmbeddingTable(num_rows=50, embedding_dim=8, seed=1)
        indices = [1, 2, 3, 4]
        lengths = [2, 2]
        expected = sparse_lengths_sum(table.weights, indices, lengths)
        np.testing.assert_allclose(table.lookup(indices, lengths), expected,
                                   rtol=1e-6)

    def test_lookup_mean_mode(self):
        table = EmbeddingTable(num_rows=50, embedding_dim=8, seed=1)
        output = table.lookup([0, 1], [2], mode="mean")
        expected = (table.weights[0] + table.weights[1]) / 2
        np.testing.assert_allclose(output[0], expected, rtol=1e-5)

    def test_quantized_lookup_close_to_dense(self):
        dense = EmbeddingTable(num_rows=30, embedding_dim=8, seed=3)
        quantised = EmbeddingTable(num_rows=30, embedding_dim=8, seed=3,
                                   quantized=True)
        indices, lengths = [5, 6, 7], [3]
        exact = dense.lookup(indices, lengths)
        approx = quantised.lookup(indices, lengths)
        np.testing.assert_allclose(approx, exact, atol=0.2)

    def test_invalid_mode(self):
        table = EmbeddingTable(10, 4, seed=0)
        with pytest.raises(ValueError):
            table.lookup([0], [1], mode="max")

    def test_validation(self):
        with pytest.raises(ValueError):
            EmbeddingTable(0, 4)
        with pytest.raises(ValueError):
            EmbeddingTable(4, 0)


class TestEmbeddingBag:
    def test_tables_page_aligned_and_disjoint(self):
        bag = EmbeddingBag(num_tables=4, num_rows=33, embedding_dim=16,
                           lazy=True)
        previous_end = 0
        for table in bag:
            assert table.base_address % 4096 == 0
            assert table.base_address >= previous_end
            previous_end = table.base_address + table.table_bytes

    def test_from_config(self):
        bag = EmbeddingBag.from_config(RM1_SMALL, lazy=True)
        assert len(bag) == RM1_SMALL.num_embedding_tables
        assert bag[0].num_rows == RM1_SMALL.rows_per_table

    def test_from_config_with_row_override(self):
        bag = EmbeddingBag.from_config(scaled_config(RM1_SMALL),
                                       rows_override=128, lazy=True)
        assert bag[0].num_rows == 128

    def test_forward_runs_requests(self):
        bag = EmbeddingBag(num_tables=2, num_rows=20, embedding_dim=4, seed=0)
        requests = [
            SLSRequest(table_id=0, indices=[0, 1], lengths=[2]),
            SLSRequest(table_id=1, indices=[2, 3, 4], lengths=[3]),
        ]
        outputs = bag.forward(requests)
        assert len(outputs) == 2
        assert outputs[0].shape == (1, 4)
        assert outputs[1].shape == (1, 4)

    def test_rejects_zero_tables(self):
        with pytest.raises(ValueError):
            EmbeddingBag(num_tables=0, num_rows=10, embedding_dim=4)
