"""Tests for the request-level serving subsystem."""

import math

import numpy as np
import pytest

from repro.dlrm.operators import SLSRequest
from repro.serving import (
    BatchingFrontend,
    PoissonArrivalProcess,
    ServingQuery,
    ShardedServingCluster,
    TableSharder,
    TraceReplayArrivalProcess,
    latency_percentiles,
    mg1_mean_wait_us,
    mg1_utilization,
    percentile,
    qps_sweep,
    queries_from_traces,
    summarize_serving,
    wait_quantile_us,
)
from repro.serving.batcher import QueryBatch
from repro.traces import make_production_table_traces

NUM_ROWS = 512
VECTOR_BYTES = 64


def address_of(table_id, row):
    return (table_id * NUM_ROWS + row) * VECTOR_BYTES


def make_query(query_id, arrival_us, num_tables=1, lookups=8):
    rng = np.random.default_rng(query_id)
    requests = [SLSRequest(table_id=t,
                           indices=rng.integers(0, NUM_ROWS, size=lookups),
                           lengths=np.asarray([lookups]))
                for t in range(num_tables)]
    return ServingQuery(query_id=query_id, arrival_us=arrival_us,
                        requests=requests)


class TestArrivals:
    def test_poisson_is_deterministic_and_monotone(self):
        process = PoissonArrivalProcess(rate_qps=10_000, seed=7)
        times_a = process.arrival_times_us(100)
        times_b = PoissonArrivalProcess(rate_qps=10_000,
                                        seed=7).arrival_times_us(100)
        assert np.array_equal(times_a, times_b)
        assert (np.diff(times_a) >= 0).all()
        # Mean gap approximates 1e6 / rate.
        gaps = np.diff(times_a)
        assert 10 < gaps.mean() < 1000

    def test_poisson_validates_rate(self):
        with pytest.raises(ValueError):
            PoissonArrivalProcess(rate_qps=0)

    def test_trace_replay_cycles_and_scales(self):
        process = TraceReplayArrivalProcess([10.0, 20.0, 30.0])
        times = process.arrival_times_us(5)
        assert times.tolist() == [10.0, 30.0, 60.0, 70.0, 90.0]
        double_rate = TraceReplayArrivalProcess([10.0, 20.0, 30.0],
                                                rate_scale=2.0)
        assert double_rate.arrival_times_us(3).tolist() == [5.0, 15.0, 30.0]
        assert double_rate.mean_rate_qps == pytest.approx(1e5)

    def test_queries_from_traces_preserve_tables(self):
        traces = make_production_table_traces(
            num_lookups_per_table=400, num_rows=NUM_ROWS, num_tables=3,
            seed=0)
        queries = queries_from_traces(traces, 6, [float(i) for i in
                                                  range(6)],
                                      batch_size=2, pooling_factor=4)
        assert len(queries) == 6
        for query in queries:
            assert query.num_tables == 3
            assert sorted(r.table_id for r in query.requests) == [0, 1, 2]
            assert query.total_lookups == 3 * 2 * 4


class TestBatcher:
    def test_size_trigger(self):
        queries = [make_query(i, arrival_us=float(i)) for i in range(8)]
        frontend = BatchingFrontend(max_queries=4, max_delay_us=1000.0)
        batches = frontend.form_batches(queries)
        assert [b.size for b in batches] == [4, 4]
        assert all(b.trigger == "size" for b in batches)
        # Size-triggered batches dispatch at the last query's arrival.
        assert batches[0].formed_us == 3.0
        assert batches[1].formed_us == 7.0

    def test_deadline_trigger(self):
        queries = [make_query(i, arrival_us=1000.0 * i) for i in range(3)]
        frontend = BatchingFrontend(max_queries=8, max_delay_us=100.0)
        batches = frontend.form_batches(queries)
        assert [b.size for b in batches] == [1, 1, 1]
        assert all(b.trigger == "deadline" for b in batches)
        assert batches[0].formed_us == pytest.approx(100.0)
        assert batches[1].formed_us == pytest.approx(1100.0)

    def test_mixed_triggers_and_delay_accounting(self):
        arrivals = [0.0, 1.0, 2.0, 3.0, 500.0]
        queries = [make_query(i, arrival_us=t)
                   for i, t in enumerate(arrivals)]
        frontend = BatchingFrontend(max_queries=4, max_delay_us=50.0)
        batches = frontend.form_batches(queries)
        assert [b.trigger for b in batches] == ["size", "deadline"]
        first = batches[0]
        assert first.batching_delay_us(first.queries[0]) == pytest.approx(3.0)
        assert first.batching_delay_us(first.queries[-1]) == 0.0
        counts = frontend.trigger_counts(batches)
        assert counts == {"size": 1, "deadline": 1}

    def test_deadline_boundary_starts_a_new_batch(self):
        """Regression: a query arriving exactly at ``open + max_delay``
        joined the already-expired batch, landing in a batch whose
        ``formed_us`` equalled its own arrival yet was tagged deadline."""
        queries = [make_query(0, arrival_us=0.0),
                   make_query(1, arrival_us=100.0)]
        frontend = BatchingFrontend(max_queries=8, max_delay_us=100.0)
        batches = frontend.form_batches(queries)
        assert [b.size for b in batches] == [1, 1]
        assert batches[0].formed_us == pytest.approx(100.0)
        assert batches[0].queries[0].query_id == 0
        # The boundary query opens the next batch instead of riding a
        # batch that dispatched the instant it arrived.
        assert batches[1].open_us == pytest.approx(100.0)
        assert batches[1].formed_us == pytest.approx(200.0)
        assert batches[1].batching_delay_us(queries[1]) == \
            pytest.approx(100.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            BatchingFrontend(max_queries=0)
        with pytest.raises(ValueError):
            BatchingFrontend(max_delay_us=-1.0)


class TestSharding:
    def test_round_robin_placement(self):
        sharder = TableSharder(num_nodes=3)
        assert [sharder.node_of_table(t) for t in range(6)] == \
            [0, 1, 2, 0, 1, 2]

    def test_placement_is_deterministic_across_instances(self):
        tables = [1, 5, 17, 100, 2**20 + 3]
        for policy in TableSharder.POLICIES:
            first = TableSharder(4, policy=policy).placement(tables)
            second = TableSharder(4, policy=policy).placement(tables)
            assert first == second
            assert all(0 <= node < 4 for node in first.values())

    def test_partition_preserves_requests(self):
        rng = np.random.default_rng(0)
        requests = [SLSRequest(table_id=t,
                               indices=rng.integers(0, NUM_ROWS, size=4),
                               lengths=np.asarray([4]))
                    for t in range(10)]
        sharder = TableSharder(num_nodes=4, policy="hash")
        partitions = sharder.partition_requests(requests)
        assert len(partitions) == 4
        flattened = [r for part in partitions for r in part]
        assert sorted(r.table_id for r in flattened) == list(range(10))
        load = sharder.shard_load(requests)
        assert sum(load) == sum(r.total_lookups for r in requests)

    def test_validation(self):
        with pytest.raises(ValueError):
            TableSharder(0)
        with pytest.raises(ValueError):
            TableSharder(2, policy="nope")
        with pytest.raises(ValueError):
            TableSharder(2).node_of_table(-1)


class TestQueueingMath:
    def test_percentile_known_distribution(self):
        samples = list(range(1, 101))      # 1..100
        assert percentile(samples, 0) == 1.0
        assert percentile(samples, 100) == 100.0
        assert percentile(samples, 50) == pytest.approx(50.5)
        # Linear interpolation between order statistics.
        assert percentile(samples, 95) == pytest.approx(95.05)
        assert percentile(samples, 99) == pytest.approx(99.01)
        summary = latency_percentiles(samples)
        assert summary["p50"] < summary["p95"] < summary["p99"]

    def test_percentile_validation(self):
        with pytest.raises(ValueError):
            percentile([], 50)
        with pytest.raises(ValueError):
            percentile([1.0], 101)
        assert percentile([42.0], 99) == 42.0

    def test_mg1_formulas_on_deterministic_service(self):
        # M/D/1: lambda = 0.05/us, S = 10us -> rho = 0.5,
        # W = lambda * E[S^2] / (2 (1 - rho)) = 0.05*100/(2*0.5) = 5us.
        services = [10.0] * 50
        assert mg1_utilization(0.05, services) == pytest.approx(0.5)
        assert mg1_mean_wait_us(0.05, services) == pytest.approx(5.0)
        # Unstable queue.
        assert math.isinf(mg1_mean_wait_us(0.2, services))

    def test_wait_quantile_tail(self):
        services = [10.0] * 50
        # Below the no-wait mass the quantile is 0.
        assert wait_quantile_us(0.05, services, 40) == 0.0
        # P(W > t) = rho * exp(-(1-rho) t / E[S]); p99 tail = 0.01:
        # t = -ln(0.01/0.5) * 10 / 0.5.
        expected = -math.log(0.01 / 0.5) * 10.0 / 0.5
        assert wait_quantile_us(0.05, services, 99) == \
            pytest.approx(expected)
        assert math.isinf(wait_quantile_us(0.2, services, 99))

    def test_summarize_serving_counts(self):
        queries = [make_query(i, arrival_us=100.0 * i) for i in range(4)]
        batches = [QueryBatch(queries=[q], open_us=q.arrival_us,
                              formed_us=q.arrival_us + 5.0,
                              trigger="deadline")
                   for q in queries]
        report = summarize_serving("unit", batches, [10.0, 10.0, 10.0, 10.0])
        assert report.num_queries == 4
        assert report.num_batches == 4
        assert report.mean_service_us == pytest.approx(10.0)
        assert report.mean_batch_delay_us == pytest.approx(5.0)
        # Batch rate from the 3 inter-dispatch intervals over 300us.
        assert report.utilization == pytest.approx(0.1)
        assert report.mean_wait_us == pytest.approx(0.01 * 100 / (2 * 0.9))
        # p50 carries no queueing mass (tail 0.5 >= rho); tails add the
        # M/G/1 wait quantile on top of delay + service.
        assert report.p50_us == pytest.approx(15.0)
        expected_p99 = 15.0 + -math.log(0.01 / 0.1) * 10.0 / 0.9
        assert report.p99_us == pytest.approx(expected_p99)
        assert report.p50_us <= report.p95_us <= report.p99_us
        # 1 query per batch, 10us service -> 100k QPS sustainable.
        assert report.sustainable_qps == pytest.approx(1e5)
        assert report.stable
        payload = report.as_dict()
        assert payload["system"] == "unit"
        assert payload["stable"] is True

    def test_degenerate_spans_report_zero_rates(self):
        """Regression: the 1e-9 span floor exploded ``offered_qps`` to
        ~1e15 for a single query or identical arrival times."""
        # One query: no interval to estimate a rate from.
        lone = QueryBatch(queries=[make_query(0, 5.0)], open_us=5.0,
                          formed_us=10.0)
        report = summarize_serving("unit", [lone], [10.0])
        assert report.offered_qps == 0.0
        assert math.isfinite(report.p99_us)
        # Many queries at one instant: still no arrival span.
        burst = QueryBatch(queries=[make_query(i, 5.0) for i in range(4)],
                           open_us=5.0, formed_us=10.0)
        report = summarize_serving("unit", [burst], [10.0])
        assert report.offered_qps == 0.0
        # Batches all formed at one instant: no dispatch span either.
        twins = [QueryBatch(queries=[make_query(i, 5.0)], open_us=5.0,
                            formed_us=10.0) for i in range(2)]
        report = summarize_serving("unit", twins, [10.0, 10.0])
        assert report.utilization == 0.0
        assert math.isfinite(report.p99_us)

    def test_offered_rate_uses_interval_form(self):
        """``offered_qps`` matches the batch-rate estimator: (N-1)/span."""
        queries = [make_query(i, arrival_us=100.0 * i) for i in range(4)]
        batches = [QueryBatch(queries=[q], open_us=q.arrival_us,
                              formed_us=q.arrival_us + 5.0)
                   for q in queries]
        report = summarize_serving("unit", batches, [10.0] * 4)
        # 3 inter-arrival gaps over 300us -> 0.01 queries/us.
        assert report.offered_qps == pytest.approx(0.01 * 1e6)

    def test_single_batch_never_queues(self):
        """One batch has nothing to queue behind: finite latencies."""
        queries = [make_query(i, arrival_us=0.1 * i) for i in range(3)]
        batch = QueryBatch(queries=queries, open_us=0.0, formed_us=1.0,
                           trigger="size")
        report = summarize_serving("unit", [batch], [10.0])
        assert report.utilization == 0.0
        assert report.mean_wait_us == 0.0
        assert math.isfinite(report.p99_us)
        # Largest delay (1.0) + service, via percentile interpolation.
        assert report.p99_us == pytest.approx(10.998)

    def test_summarize_validates_lengths(self):
        queries = [make_query(0, 0.0)]
        batch = QueryBatch(queries=queries, open_us=0.0, formed_us=1.0)
        with pytest.raises(ValueError):
            summarize_serving("unit", [batch], [1.0, 2.0])
        with pytest.raises(ValueError):
            summarize_serving("unit", [], [])


class TestCluster:
    def build_queries(self, qps=50_000.0, num_queries=12):
        traces = make_production_table_traces(
            num_lookups_per_table=400, num_rows=NUM_ROWS, num_tables=4,
            seed=0)
        return queries_from_traces(
            traces, num_queries,
            PoissonArrivalProcess(rate_qps=qps, seed=3),
            batch_size=2, pooling_factor=4)

    def test_cluster_simulation_reports(self):
        cluster = ShardedServingCluster(
            num_nodes=2, node_system="recnmp-opt",
            address_of=address_of, vector_size_bytes=VECTOR_BYTES)
        report = cluster.simulate(
            self.build_queries(),
            frontend=BatchingFrontend(max_queries=4, max_delay_us=100.0))
        assert report.num_queries == 12
        assert report.num_batches >= 3
        assert report.p50_us <= report.p95_us <= report.p99_us
        assert report.sustainable_qps > 0
        assert report.extras["num_nodes"] == 2

    def test_cluster_is_deterministic(self):
        def run_once():
            cluster = ShardedServingCluster(
                num_nodes=2, node_system="recnmp-base",
                address_of=address_of, vector_size_bytes=VECTOR_BYTES)
            return cluster.simulate(self.build_queries()).as_dict()

        assert run_once() == run_once()

    def test_service_cache_reused_across_sweep_points(self):
        cluster = ShardedServingCluster(
            num_nodes=2, node_system="recnmp-base",
            address_of=address_of, vector_size_bytes=VECTOR_BYTES)
        reports = qps_sweep(cluster,
                            lambda qps: self.build_queries(qps=qps),
                            [20_000.0, 20_000.0])
        assert len(reports) == 2
        # Identical offered load -> identical batches -> cached services.
        assert reports[0].p99_us == reports[1].p99_us

    def test_service_cache_is_content_keyed(self):
        """Different workloads on one cluster must not share cached times.

        Regression: the cache was keyed by query id, and independent query
        streams both number from 0.
        """
        cluster = ShardedServingCluster(
            num_nodes=2, node_system="recnmp-base",
            address_of=address_of, vector_size_bytes=VECTOR_BYTES)
        light = self.build_queries(num_queries=4)
        rng = np.random.default_rng(42)
        heavy = [ServingQuery(
            query_id=q.query_id, arrival_us=q.arrival_us,
            requests=[SLSRequest(
                table_id=t, indices=rng.integers(0, NUM_ROWS, size=64),
                lengths=np.full(8, 8)) for t in range(4)])
            for q in light]
        report_light = cluster.simulate(light)
        report_heavy = cluster.simulate(heavy)
        # 8x the lookups per query must not replay the light service times.
        assert report_heavy.mean_service_us > report_light.mean_service_us

    def test_cluster_validation(self):
        with pytest.raises(ValueError):
            ShardedServingCluster(num_nodes=0)
        with pytest.raises(ValueError):
            ShardedServingCluster(num_nodes=2,
                                  sharder=TableSharder(num_nodes=3))
