"""Tests for repro.utils.stats."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils.stats import (
    RunningStats,
    geometric_mean,
    percentile,
    weighted_harmonic_speedup,
)


class TestRunningStats:
    def test_empty(self):
        stats = RunningStats()
        assert stats.count == 0
        assert stats.mean == 0.0
        assert stats.stddev == 0.0

    def test_single_value(self):
        stats = RunningStats()
        stats.add(5.0)
        assert stats.mean == 5.0
        assert stats.variance == 0.0
        assert stats.minimum == 5.0
        assert stats.maximum == 5.0

    def test_known_values(self):
        stats = RunningStats()
        stats.extend([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0])
        assert stats.mean == pytest.approx(5.0)
        assert stats.stddev == pytest.approx(2.138, abs=1e-3)
        assert stats.minimum == 2.0
        assert stats.maximum == 9.0

    def test_as_dict(self):
        stats = RunningStats()
        stats.extend([1.0, 2.0, 3.0])
        payload = stats.as_dict()
        assert payload["count"] == 3
        assert payload["mean"] == pytest.approx(2.0)

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6,
                              allow_nan=False), min_size=2, max_size=100))
    @settings(max_examples=50, deadline=None)
    def test_matches_batch_formulas(self, values):
        stats = RunningStats()
        stats.extend(values)
        mean = sum(values) / len(values)
        assert stats.mean == pytest.approx(mean, rel=1e-6, abs=1e-6)
        assert stats.minimum == min(values)
        assert stats.maximum == max(values)


class TestPercentile:
    def test_median(self):
        assert percentile([1, 2, 3, 4, 5], 50) == 3

    def test_interpolation(self):
        assert percentile([0, 10], 25) == pytest.approx(2.5)

    def test_extremes(self):
        data = [3, 1, 4, 1, 5]
        assert percentile(data, 0) == 1
        assert percentile(data, 100) == 5

    def test_single_element(self):
        assert percentile([42], 73) == 42

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_out_of_range_q(self):
        with pytest.raises(ValueError):
            percentile([1], 101)


class TestGeometricMean:
    def test_known(self):
        assert geometric_mean([1, 4, 16]) == pytest.approx(4.0)

    def test_identity(self):
        assert geometric_mean([7.0]) == pytest.approx(7.0)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])
        with pytest.raises(ValueError):
            geometric_mean([])


class TestWeightedHarmonicSpeedup:
    def test_amdahl(self):
        # Half the time sped up 2x -> overall 1.333x.
        assert weighted_harmonic_speedup([0.5, 0.5], [2.0, 1.0]) == \
            pytest.approx(4.0 / 3.0)

    def test_infinite_like_speedup_limited_by_serial_fraction(self):
        speedup = weighted_harmonic_speedup([0.8, 0.2], [1000.0, 1.0])
        assert speedup < 5.0
        assert speedup == pytest.approx(1.0 / (0.8 / 1000 + 0.2), rel=1e-6)

    def test_all_fraction_on_one_component(self):
        assert weighted_harmonic_speedup([1.0, 0.0], [3.0, 1.0]) == \
            pytest.approx(3.0)

    def test_rejects_bad_fractions(self):
        with pytest.raises(ValueError):
            weighted_harmonic_speedup([0.6, 0.6], [1.0, 1.0])
        with pytest.raises(ValueError):
            weighted_harmonic_speedup([0.5], [1.0, 1.0])
        with pytest.raises(ValueError):
            weighted_harmonic_speedup([0.5, 0.5], [1.0, 0.0])

    @given(fraction=st.floats(min_value=0.01, max_value=0.99),
           speedup=st.floats(min_value=1.0, max_value=100.0))
    @settings(max_examples=50, deadline=None)
    def test_bounded_by_component_speedups(self, fraction, speedup):
        overall = weighted_harmonic_speedup(
            [fraction, 1.0 - fraction], [speedup, 1.0])
        assert 1.0 <= overall <= speedup + 1e-9
        # Amdahl bound: 1 / (1 - fraction).
        assert overall <= 1.0 / (1.0 - fraction) + 1e-9
