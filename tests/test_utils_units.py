"""Tests for repro.utils.units."""

import pytest

from repro.utils.units import (
    GB,
    KB,
    MB,
    bytes_to_mb,
    cycles_to_ns,
    ns_to_cycles,
)


class TestUnitConstants:
    def test_binary_prefixes(self):
        assert KB == 1024
        assert MB == 1024 * KB
        assert GB == 1024 * MB

    def test_bytes_to_mb(self):
        assert bytes_to_mb(MB) == pytest.approx(1.0)
        assert bytes_to_mb(16 * MB) == pytest.approx(16.0)
        assert bytes_to_mb(0) == 0.0


class TestCycleConversions:
    def test_ns_to_cycles_exact(self):
        # 1200 MHz -> 1.2 cycles per ns; 10 ns -> 12 cycles.
        assert ns_to_cycles(10, 1200) == 12

    def test_ns_to_cycles_rounds_up(self):
        # 1 ns at 1200 MHz is 1.2 cycles -> must round up to 2.
        assert ns_to_cycles(1, 1200) == 2

    def test_zero_time(self):
        assert ns_to_cycles(0, 1200) == 0

    def test_cycles_to_ns_roundtrip(self):
        ns = cycles_to_ns(ns_to_cycles(100, 1200), 1200)
        assert ns >= 100

    def test_cycles_to_ns_value(self):
        assert cycles_to_ns(1200, 1200) == pytest.approx(1000.0)

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            ns_to_cycles(-1, 1200)

    def test_nonpositive_clock_rejected(self):
        with pytest.raises(ValueError):
            ns_to_cycles(1, 0)
        with pytest.raises(ValueError):
            cycles_to_ns(1, -5)
