"""Chunked streaming simulation must be byte-identical to one-shot runs.

``ShardedServingCluster.simulate(stream_chunk=N)`` carries the batcher
carry, admission state and routing across chunk boundaries; the contract
is that the resulting ``ServingReport`` is *identical* -- as a dict, so
every percentile, extra and SLO counter -- to materialising all the
queries up front, for any chunk size, engine, SLO/admission combination
and sharder statefulness.  ``QueryStream`` feeds the same path straight
from an arrival process without ever materialising the full run.
"""

import dataclasses

import numpy as np
import pytest

from repro.serving import (
    BatchingFrontend,
    FixedSLOPolicy,
    MMPPArrivalProcess,
    PoissonArrivalProcess,
    QueryStream,
    ShardedServingCluster,
    TokenBucketAdmission,
    query_columns_from_traces,
)
from repro.serving.sharding import ReplicatedTableSharder
from repro.traces import make_production_table_traces

NUM_QUERIES = 700
RATE_QPS = 120_000.0


@pytest.fixture(scope="module")
def traces():
    return make_production_table_traces(num_lookups_per_table=640,
                                        num_rows=4000, num_tables=4,
                                        seed=0)


def _arrivals(seed=1):
    return PoissonArrivalProcess(rate_qps=RATE_QPS, seed=seed)


def _report_dict(report):
    return dataclasses.asdict(report)


class TestChunkedVsOneshot:
    @pytest.mark.parametrize("stream_chunk", [64, 97, 256, 10_000])
    def test_chunk_size_invariant(self, traces, stream_chunk):
        columns = query_columns_from_traces(traces, NUM_QUERIES,
                                            _arrivals())
        with ShardedServingCluster(num_nodes=2,
                                   node_system="recnmp-opt") as cluster:
            oneshot = cluster.simulate(columns, engine="event")
            chunked = cluster.simulate(columns, engine="event",
                                       stream_chunk=stream_chunk)
        assert _report_dict(chunked) == _report_dict(oneshot)

    @pytest.mark.parametrize("engine", ["analytic", "event", "event-edf"])
    def test_engines_with_slo_and_admission(self, traces, engine):
        columns = query_columns_from_traces(traces, NUM_QUERIES,
                                            _arrivals())
        slo = FixedSLOPolicy(600.0)
        with ShardedServingCluster(num_nodes=2,
                                   node_system="recnmp-opt") as cluster:
            oneshot = cluster.simulate(columns, engine=engine,
                                       slo_policy=slo,
                                       admission="token-bucket")
            chunked = cluster.simulate(columns, engine=engine,
                                       slo_policy=slo,
                                       admission="token-bucket",
                                       stream_chunk=128)
        assert _report_dict(chunked) == _report_dict(oneshot)

    def test_stateful_sharder_reset_per_run(self, traces):
        # Load-aware replicated routing is stateful: the chunked run
        # must reset and re-route exactly like the one-shot run.
        sharder = ReplicatedTableSharder.from_traces(
            2, traces, policy="load-aware")
        columns = query_columns_from_traces(traces, NUM_QUERIES,
                                            _arrivals())
        with ShardedServingCluster(num_nodes=2, node_system="recnmp-opt",
                                   sharder=sharder) as cluster:
            oneshot = cluster.simulate(columns, engine="event")
            chunked = cluster.simulate(columns, engine="event",
                                       stream_chunk=100)
        assert _report_dict(chunked) == _report_dict(oneshot)

    def test_custom_admission_subclass_object_fallback(self, traces):
        class Tighter(TokenBucketAdmission):
            pass

        columns = query_columns_from_traces(traces, NUM_QUERIES,
                                            _arrivals())
        with ShardedServingCluster(num_nodes=2,
                                   node_system="recnmp-opt") as cluster:
            oneshot = cluster.simulate(columns, engine="event",
                                       admission=Tighter(burst=16))
            chunked = cluster.simulate(columns, engine="event",
                                       admission=Tighter(burst=16),
                                       stream_chunk=128)
        assert _report_dict(chunked) == _report_dict(oneshot)


class TestQueryStream:
    def test_stream_matches_materialized_columns(self, traces):
        columns = query_columns_from_traces(traces, NUM_QUERIES,
                                            _arrivals())
        stream = QueryStream(traces, _arrivals(),
                             num_queries=NUM_QUERIES)
        with ShardedServingCluster(num_nodes=2,
                                   node_system="recnmp-opt") as cluster:
            from_columns = cluster.simulate(columns, engine="event",
                                            stream_chunk=128)
            from_stream = cluster.simulate(stream, engine="event",
                                           stream_chunk=128)
        assert _report_dict(from_stream) == _report_dict(from_columns)

    def test_mmpp_stream_matches_materialized(self, traces):
        def mmpp():
            return MMPPArrivalProcess(rate_high_qps=400_000.0,
                                      rate_low_qps=40_000.0,
                                      mean_high_us=2_000.0,
                                      mean_low_us=8_000.0, seed=3)

        columns = query_columns_from_traces(traces, NUM_QUERIES, mmpp())
        stream = QueryStream(traces, mmpp(), num_queries=NUM_QUERIES)
        with ShardedServingCluster(num_nodes=2,
                                   node_system="recnmp-opt") as cluster:
            from_columns = cluster.simulate(columns, engine="event")
            from_stream = cluster.simulate(stream, engine="event",
                                           stream_chunk=200)
        assert _report_dict(from_stream) == _report_dict(from_columns)

    def test_take_accounting(self, traces):
        stream = QueryStream(traces, _arrivals(), num_queries=100)
        assert stream.remaining == 100
        first = stream.take(64)
        assert len(first) == 64 and stream.remaining == 36
        rest = stream.take(64)
        assert len(rest) == 36 and stream.remaining == 0
        assert len(stream.take(10)) == 0
        ids = [v.query_id for v in first.views()] \
            + [v.query_id for v in rest.views()]
        assert ids == list(range(100))

    def test_default_chunk_applies_to_streams(self, traces):
        # A QueryStream input without stream_chunk must still stream
        # (and agree with the explicit-chunk run).
        with ShardedServingCluster(num_nodes=2,
                                   node_system="recnmp-opt") as cluster:
            implicit = cluster.simulate(
                QueryStream(traces, _arrivals(), num_queries=300),
                engine="event")
            explicit = cluster.simulate(
                QueryStream(traces, _arrivals(), num_queries=300),
                engine="event", stream_chunk=300)
        assert _report_dict(implicit) == _report_dict(explicit)


class TestValidation:
    def test_chunk_below_max_queries_rejected(self, traces):
        columns = query_columns_from_traces(traces, 64, _arrivals())
        frontend = BatchingFrontend(max_queries=8)
        with ShardedServingCluster(num_nodes=2,
                                   node_system="recnmp-opt") as cluster:
            with pytest.raises(ValueError, match="max_queries"):
                cluster.simulate(columns, frontend=frontend,
                                 stream_chunk=4)

    def test_unbounded_stream_rejected(self, traces):
        stream = QueryStream(traces, _arrivals())
        with ShardedServingCluster(num_nodes=2,
                                   node_system="recnmp-opt") as cluster:
            with pytest.raises(ValueError, match="bounded"):
                cluster.simulate(stream, stream_chunk=64)

    def test_decreasing_arrivals_rejected(self, traces):
        class Backwards:
            def __init__(self):
                self._next = 1000.0

            def take(self, count):
                times = self._next - np.arange(count, dtype=np.float64)
                self._next = float(times[-1]) - 1.0
                return times

        stream = QueryStream(traces, Backwards(), num_queries=128)
        with ShardedServingCluster(num_nodes=2,
                                   node_system="recnmp-opt") as cluster:
            with pytest.raises(ValueError, match="non-decreasing"):
                cluster.simulate(stream, stream_chunk=64)

    def test_all_shed_raises(self, traces):
        class ShedAll(TokenBucketAdmission):
            def admit(self, query, now_us, wait_us):
                return False

        columns = query_columns_from_traces(traces, 64, _arrivals())
        with ShardedServingCluster(num_nodes=2,
                                   node_system="recnmp-opt") as cluster:
            with pytest.raises(ValueError, match="shed every query"):
                cluster.simulate(columns, admission=ShedAll(),
                                 stream_chunk=64)
