"""Tests for repro.cache.fully_associative."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.fully_associative import FullyAssociativeCache
from repro.cache.set_associative import SetAssociativeCache


class TestBehaviour:
    def test_miss_then_hit(self):
        cache = FullyAssociativeCache(1024)
        assert cache.access(0) is False
        assert cache.access(0) is True

    def test_lru_order(self):
        cache = FullyAssociativeCache(128, line_size_bytes=64)   # 2 lines
        cache.access(0)
        cache.access(64)
        cache.access(0)
        cache.access(128)       # evicts 64
        assert cache.contains(0)
        assert not cache.contains(64)

    def test_no_conflict_misses(self):
        # Addresses that conflict in a direct-mapped/set-assoc cache all fit
        # in a fully-associative cache of the same capacity.
        capacity = 4 * 1024
        stride = capacity          # maximally conflicting stride
        addresses = [i * stride for i in range(capacity // 64)]
        fa = FullyAssociativeCache(capacity)
        sa = SetAssociativeCache(capacity, associativity=4)
        fa.access_many(addresses)
        sa.access_many(addresses)
        fa_second = fa.access_many(addresses)
        sa_second = sa.access_many(addresses)
        assert fa_second == len(addresses)
        assert fa_second >= sa_second

    def test_rejects_bad_line_size(self):
        with pytest.raises(ValueError):
            FullyAssociativeCache(1024, line_size_bytes=100)

    def test_rejects_negative_address(self):
        with pytest.raises(ValueError):
            FullyAssociativeCache(1024).access(-4)

    def test_reset_stats(self):
        cache = FullyAssociativeCache(1024)
        cache.access(0)
        cache.reset_stats()
        assert cache.stats.accesses == 0

    @given(st.lists(st.integers(min_value=0, max_value=1 << 20),
                    min_size=1, max_size=200))
    @settings(max_examples=30, deadline=None)
    def test_fa_hit_rate_at_least_sa(self, addresses):
        fa = FullyAssociativeCache(4 * 1024)
        sa = SetAssociativeCache(4 * 1024, associativity=4)
        fa_hits = fa.access_many(addresses)
        sa_hits = sa.access_many(addresses)
        assert fa_hits >= sa_hits
