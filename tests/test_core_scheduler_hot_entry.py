"""Tests for repro.core.scheduler and repro.core.hot_entry."""

import numpy as np
import pytest

from repro.cache.rank_cache import RankCache
from repro.core.hot_entry import HotEntryProfiler
from repro.core.instruction import NMPInstruction, NMPPacket
from repro.core.scheduler import (
    PacketScheduler,
    fcfs_interleaved_order,
    table_aware_order,
)
from repro.dlrm.operators import SLSRequest


def _packet(table_id, batch_index, packet_id, model_id=0):
    return NMPPacket(instructions=[NMPInstruction(daddr=packet_id)],
                     table_id=table_id, model_id=model_id,
                     batch_index=batch_index, packet_id=packet_id)


class TestOrderings:
    def test_fcfs_interleaves_sources(self):
        a = [_packet(0, 0, i) for i in range(3)]
        b = [_packet(1, 0, 10 + i) for i in range(3)]
        order = fcfs_interleaved_order([a, b])
        assert [p.table_id for p in order] == [0, 1, 0, 1, 0, 1]

    def test_fcfs_handles_uneven_sources(self):
        a = [_packet(0, 0, 0)]
        b = [_packet(1, 0, 1), _packet(1, 0, 2)]
        order = fcfs_interleaved_order([a, b])
        assert len(order) == 3

    def test_table_aware_groups_same_table(self):
        a = [_packet(0, 0, i) for i in range(3)]
        b = [_packet(1, 0, 10 + i) for i in range(3)]
        order = table_aware_order([a, b])
        assert [p.table_id for p in order] == [0, 0, 0, 1, 1, 1]

    def test_table_aware_separates_batches(self):
        packets = [_packet(0, 0, 0), _packet(0, 1, 1), _packet(0, 0, 2)]
        order = table_aware_order([packets])
        assert [p.packet_id for p in order] == [0, 2, 1]


class TestPacketScheduler:
    def test_policy_validation(self):
        with pytest.raises(ValueError):
            PacketScheduler(policy="random")

    def test_schedule_preserves_packet_count(self):
        scheduler = PacketScheduler(policy="table-aware")
        scheduler.add_source([_packet(0, 0, i) for i in range(4)])
        scheduler.add_source([_packet(1, 0, 10 + i) for i in range(4)])
        assert scheduler.num_packets == 8
        assert len(scheduler.schedule()) == 8

    def test_empty_schedule(self):
        assert PacketScheduler().schedule() == []

    def test_locality_span_smaller_for_table_aware(self):
        sources = [[_packet(t, 0, t * 10 + i) for i in range(5)]
                   for t in range(4)]
        fcfs = PacketScheduler(policy="fcfs")
        aware = PacketScheduler(policy="table-aware")
        for source in sources:
            fcfs.add_source(source)
            aware.add_source(source)
        assert PacketScheduler.locality_span(aware.schedule()) < \
            PacketScheduler.locality_span(fcfs.schedule())

    def test_clear(self):
        scheduler = PacketScheduler()
        scheduler.add_source([_packet(0, 0, 0)])
        scheduler.clear()
        assert scheduler.num_sources == 0


class TestHotEntryProfiler:
    def test_threshold_marks_repeated_rows(self):
        profiler = HotEntryProfiler(threshold=2)
        profile = profiler.profile([1, 2, 1, 3, 1, 2])
        assert profile.is_hot(1)
        assert profile.is_hot(2)
        assert not profile.is_hot(3)

    def test_threshold_one_marks_everything(self):
        profile = HotEntryProfiler(threshold=1).profile([4, 5, 6])
        assert profile.num_hot_rows == 3

    def test_hot_access_fraction(self):
        profile = HotEntryProfiler(threshold=2).profile([1, 1, 1, 2])
        assert profile.hot_access_fraction == pytest.approx(0.75)

    def test_profile_requests_groups_by_table(self):
        profiler = HotEntryProfiler(threshold=2)
        requests = [
            SLSRequest(table_id=0, indices=[1, 1], lengths=[2]),
            SLSRequest(table_id=1, indices=[2, 3], lengths=[2]),
            SLSRequest(table_id=1, indices=[2, 4], lengths=[2]),
        ]
        results = profiler.profile_requests(requests)
        assert results[0].is_hot(1)
        # Row 2 appears twice for table 1 across the two requests.
        assert results[1].is_hot(2)
        assert not results[1].is_hot(3)

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            HotEntryProfiler(threshold=0)

    def test_sweep_threshold_picks_best_hit_rate(self):
        rng = np.random.default_rng(0)
        hot = rng.integers(0, 20, size=600)          # heavy reuse of 20 rows
        cold = rng.integers(20, 100_000, size=400)   # single-use rows
        indices = np.concatenate([hot, cold])
        rng.shuffle(indices)
        cache = RankCache(capacity_bytes=64 * 64, vector_size_bytes=64)
        best, results = HotEntryProfiler.sweep_threshold(
            indices, cache, address_of=lambda row: row * 64,
            thresholds=(1, 2, 4))
        assert best in results
        assert results[best] == max(results.values())
        # Filtering single-use rows must beat caching everything.
        assert results[best] >= results[1]

    def test_profiling_overhead_below_two_percent(self):
        profiler = HotEntryProfiler()
        overhead = profiler.profiling_overhead_fraction(batch_lookups=80_000)
        assert overhead < 0.02

    def test_overhead_validation(self):
        with pytest.raises(ValueError):
            HotEntryProfiler().profiling_overhead_fraction(-1)
