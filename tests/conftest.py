"""Shared test fixtures.

The only global one keeps the persistent service-time store hermetic:
any test that opens a default-path store (CLI runs, ``"default"``
resolution) would otherwise write under the user's real cache directory
and leak warm entries between unrelated test runs.  Pointing
``REPRO_SERVICE_STORE_DIR`` at a per-test tmp directory makes every
default store private and disposable.
"""

import pytest

from repro.perf.service_store import STORE_DIR_ENV


@pytest.fixture(autouse=True)
def _hermetic_service_store(tmp_path, monkeypatch):
    monkeypatch.setenv(STORE_DIR_ENV, str(tmp_path / "service-store"))
