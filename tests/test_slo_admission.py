"""Tests for SLO policies, admission control, MMPP arrivals and EDF."""

import numpy as np
import pytest

from repro.dlrm.operators import SLSRequest
from repro.serving import (
    AnalyticEngine,
    BatchingFrontend,
    DeadlineAwareAdmission,
    EventEngine,
    FixedSLOPolicy,
    MMPPArrivalProcess,
    NoAdmission,
    PerTableSLOPolicy,
    PoissonArrivalProcess,
    QueueDepthAdmission,
    ServicePercentileSLOPolicy,
    ServingQuery,
    ShardedServingCluster,
    TokenBucketAdmission,
    TraceReplayArrivalProcess,
    apply_admission,
    available_admission_controllers,
    available_slo_policies,
    qps_sweep,
    queries_from_traces,
    resolve_admission,
    resolve_slo_policy,
    simulate_batch_queue,
    simulate_fifo_queue,
    summarize_slo,
)
from repro.serving.batcher import QueryBatch
from repro.traces import make_production_table_traces

NUM_ROWS = 512
VECTOR_BYTES = 64


def address_of(table_id, row):
    return (table_id * NUM_ROWS + row) * VECTOR_BYTES


def make_query(query_id, arrival_us, num_tables=1, lookups=8,
               deadline_us=None):
    rng = np.random.default_rng(query_id)
    requests = [SLSRequest(table_id=t,
                           indices=rng.integers(0, NUM_ROWS, size=lookups),
                           lengths=np.asarray([lookups]))
                for t in range(num_tables)]
    return ServingQuery(query_id=query_id, arrival_us=arrival_us,
                        requests=requests, deadline_us=deadline_us)


class TestSLOPolicies:
    def test_fixed_policy_assigns_absolute_deadlines(self):
        queries = [make_query(i, arrival_us=10.0 * i) for i in range(3)]
        FixedSLOPolicy(500.0).assign_deadlines(queries)
        for query in queries:
            assert query.deadline_us == query.arrival_us + 500.0
            assert query.slack_us == 500.0

    def test_per_table_policy_scales_with_fanout(self):
        policy = PerTableSLOPolicy(base_us=100.0, per_table_us=50.0)
        narrow = make_query(0, 0.0, num_tables=1)
        wide = make_query(1, 0.0, num_tables=4)
        assert policy.slack_us(narrow) == 150.0
        assert policy.slack_us(wide) == 300.0

    def test_service_percentile_policy(self):
        services = [10.0] * 99 + [100.0]
        policy = ServicePercentileSLOPolicy(services, p=50.0,
                                            multiplier=3.0)
        assert policy.slack_us(make_query(0, 0.0)) == pytest.approx(30.0)
        assert "p50" in policy.describe()

    def test_validation(self):
        with pytest.raises(ValueError):
            FixedSLOPolicy(0.0)
        with pytest.raises(ValueError):
            PerTableSLOPolicy(-1.0, 10.0)
        with pytest.raises(ValueError):
            PerTableSLOPolicy(0.0, 0.0)
        with pytest.raises(ValueError):
            ServicePercentileSLOPolicy([10.0], multiplier=0.0)

    def test_resolution(self):
        assert resolve_slo_policy(None) is None
        policy = FixedSLOPolicy(100.0)
        assert resolve_slo_policy(policy) is policy
        from_number = resolve_slo_policy(250.0)
        assert isinstance(from_number, FixedSLOPolicy)
        assert from_number.slo_us == 250.0
        with pytest.raises(ValueError):
            resolve_slo_policy("fixed")      # names need parameters
        with pytest.raises(ValueError):
            resolve_slo_policy(True)
        assert available_slo_policies() == ["fixed", "per-table",
                                            "service-percentile"]

    def test_deadline_never_changes_fingerprint(self):
        query = make_query(0, 0.0)
        before = query.fingerprint()
        FixedSLOPolicy(100.0).assign_deadlines([query])
        assert query.fingerprint() == before


class TestSummarizeSLO:
    def test_attainment_and_goodput(self):
        queries = [make_query(i, arrival_us=100.0 * i, deadline_us=None)
                   for i in range(4)]
        for query in queries:
            query.deadline_us = query.arrival_us + 50.0
        latencies = [10.0, 60.0, 50.0, 10.0]     # one miss, one exact hit
        record = summarize_slo(queries, latencies,
                               {"num_offered": 6, "num_shed": 2,
                                "offered_span_us": 500.0,
                                "admission": "deadline"})
        assert record["num_with_deadline"] == 4
        assert record["deadlines_met"] == 3
        assert record["attainment"] == pytest.approx(0.75)
        assert record["shed_rate"] == pytest.approx(2 / 6)
        # Interval rate form, consistent with traffic_stats: (N-1)/span.
        assert record["goodput_qps"] == pytest.approx(2 / 500.0 * 1e6)

    def test_no_deadlines_means_null_attainment(self):
        queries = [make_query(i, arrival_us=float(i)) for i in range(3)]
        record = summarize_slo(queries, [1.0, 1.0, 1.0],
                               {"offered_span_us": 2.0})
        assert record["attainment"] is None
        # Goodput degrades to net throughput: all admitted count,
        # interval rate form (N-1)/span.
        assert record["goodput_qps"] == pytest.approx(2 / 2.0 * 1e6)

    def test_goodput_never_exceeds_offered_rate(self):
        """Both rates use the interval form, so zero shed at 100%
        attainment reports goodput == offered, never above it."""
        queries = [make_query(i, arrival_us=10.0 * i) for i in range(10)]
        for query in queries:
            query.deadline_us = query.arrival_us + 1e6
        span = 90.0
        record = summarize_slo(queries, [1.0] * 10,
                               {"offered_span_us": span})
        offered_qps = (10 - 1) / span * 1e6
        assert record["goodput_qps"] == pytest.approx(offered_qps)

    def test_single_completion_carries_no_rate(self):
        record = summarize_slo([make_query(0, 0.0)], [1.0],
                               {"offered_span_us": 10.0})
        assert record["goodput_qps"] == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            summarize_slo([make_query(0, 0.0)], [])
        with pytest.raises(ValueError):
            summarize_slo([make_query(0, 0.0)], [1.0],
                          {"num_offered": 0, "num_shed": 5})


class TestAdmissionControllers:
    def test_registry_and_resolution(self):
        assert available_admission_controllers() == [
            "deadline", "none", "queue-depth", "token-bucket"]
        assert resolve_admission(None) is None
        assert isinstance(resolve_admission("none"), NoAdmission)
        controller = TokenBucketAdmission(rate_qps=100.0)
        assert resolve_admission(controller) is controller
        assert isinstance(resolve_admission(DeadlineAwareAdmission),
                          DeadlineAwareAdmission)
        with pytest.raises(ValueError):
            resolve_admission("drop-everything")

    def test_none_admits_everything(self):
        queries = [make_query(i, arrival_us=0.0) for i in range(8)]
        admitted, shed = apply_admission(queries, NoAdmission(),
                                         num_servers=1, est_query_us=10.0)
        assert len(admitted) == 8 and not shed

    def test_token_bucket_clips_sustained_overload(self):
        # 1000 queries arriving at 1 us gaps = 1M QPS against a 100k QPS
        # bucket with burst 10: ~burst + rate * span admitted.
        queries = [make_query(i, arrival_us=float(i)) for i in range(1000)]
        controller = TokenBucketAdmission(rate_qps=100_000.0, burst=10)
        admitted, shed = apply_admission(queries, controller,
                                         num_servers=1, est_query_us=1.0)
        expected = 10 + 999 * 100_000.0 / 1e6
        assert len(admitted) == pytest.approx(expected, abs=2)
        assert len(admitted) + len(shed) == 1000

    def test_token_bucket_passes_bursts_within_burst_budget(self):
        queries = [make_query(i, arrival_us=0.0) for i in range(8)]
        controller = TokenBucketAdmission(rate_qps=1.0, burst=32)
        admitted, shed = apply_admission(queries, controller,
                                         num_servers=1, est_query_us=1.0)
        assert len(admitted) == 8 and not shed

    def test_queue_depth_bounds_backlog(self):
        # Simultaneous arrivals: the fluid queue grows one query per
        # admission, so exactly max_depth are admitted.
        queries = [make_query(i, arrival_us=0.0) for i in range(50)]
        admitted, shed = apply_admission(
            queries, QueueDepthAdmission(max_depth=16),
            num_servers=2, est_query_us=10.0)
        assert len(admitted) == 16
        assert len(shed) == 34

    def test_deadline_sheds_doomed_queries_only(self):
        # est 10 us, 1 server, margin 1, batch estimate 10 us: a query
        # with slack s admits while predicted wait + 10 <= s.
        queries = [make_query(i, arrival_us=0.0,
                              deadline_us=45.0) for i in range(10)]
        admitted, shed = apply_admission(
            queries, DeadlineAwareAdmission(margin=1.0),
            num_servers=1, est_query_us=10.0, est_batch_us=10.0)
        # Waits at admission: 0, 10, 20, 30 -> +10 <= 45 ok; 40 -> 50 no.
        assert len(admitted) == 4
        assert len(shed) == 6

    def test_deadline_admits_queries_without_deadline(self):
        queries = [make_query(i, arrival_us=0.0) for i in range(20)]
        admitted, shed = apply_admission(
            queries, DeadlineAwareAdmission(), num_servers=1,
            est_query_us=10.0)
        assert len(admitted) == 20 and not shed

    def test_backlog_drains_between_arrivals(self):
        # Two bursts far apart: the second burst sees an empty queue.
        first = [make_query(i, arrival_us=0.0) for i in range(16)]
        second = [make_query(100 + i, arrival_us=10_000.0)
                  for i in range(16)]
        admitted, _ = apply_admission(
            first + second, QueueDepthAdmission(max_depth=8),
            num_servers=1, est_query_us=10.0)
        assert len(admitted) == 16                  # 8 per burst

    def test_validation(self):
        with pytest.raises(ValueError):
            TokenBucketAdmission(rate_qps=-1.0)
        with pytest.raises(ValueError):
            TokenBucketAdmission(burst=0)
        with pytest.raises(ValueError):
            QueueDepthAdmission(max_depth=0)
        with pytest.raises(ValueError):
            DeadlineAwareAdmission(margin=0.0)
        with pytest.raises(ValueError):
            apply_admission([], NoAdmission(), num_servers=0,
                            est_query_us=1.0)
        with pytest.raises(ValueError):
            apply_admission([], NoAdmission(), num_servers=1,
                            est_query_us=0.0)


class TestMMPPArrivals:
    def test_deterministic_and_monotone(self):
        process = MMPPArrivalProcess.from_mean(50_000.0, seed=5)
        times_a = process.arrival_times_us(500)
        times_b = MMPPArrivalProcess.from_mean(
            50_000.0, seed=5).arrival_times_us(500)
        assert np.array_equal(times_a, times_b)
        assert (np.diff(times_a) >= 0).all()
        assert times_a.size == 500

    def test_mean_rate_matches_target(self):
        process = MMPPArrivalProcess.from_mean(50_000.0, seed=1)
        assert process.mean_rate_qps == pytest.approx(50_000.0)
        times = process.arrival_times_us(20_000)
        measured = (times.size - 1) / (times[-1] - times[0]) * 1e6
        assert measured == pytest.approx(50_000.0, rel=0.10)

    def test_burstier_than_poisson(self):
        mmpp = MMPPArrivalProcess.from_mean(50_000.0, burstiness=8.0,
                                            seed=2)
        poisson = PoissonArrivalProcess(50_000.0, seed=2)
        gaps_m = np.diff(mmpp.arrival_times_us(20_000))
        gaps_p = np.diff(poisson.arrival_times_us(20_000))
        cv_m = gaps_m.std() / gaps_m.mean()
        cv_p = gaps_p.std() / gaps_p.mean()
        assert cv_p == pytest.approx(1.0, abs=0.1)   # exponential gaps
        assert cv_m > 1.2 * cv_p

    def test_trace_replay_from_mmpp_scales_burst_shape(self):
        """The recorded gap trace rate-scales without reshaping bursts."""
        base = TraceReplayArrivalProcess.from_mmpp(1_000.0, 500, seed=4)
        fast = TraceReplayArrivalProcess.from_mmpp(2_000.0, 500, seed=4)
        assert base.gaps_us.size == 500
        assert np.allclose(base.gaps_us, 2.0 * fast.gaps_us)
        assert fast.mean_rate_qps == pytest.approx(2 * base.mean_rate_qps)

    def test_validation(self):
        with pytest.raises(ValueError):
            MMPPArrivalProcess(0.0, 1.0, 10.0, 10.0)
        with pytest.raises(ValueError):
            MMPPArrivalProcess(1.0, 2.0, 10.0, 10.0)   # high < low
        with pytest.raises(ValueError):
            MMPPArrivalProcess(2.0, 1.0, 0.0, 10.0)
        with pytest.raises(ValueError):
            MMPPArrivalProcess.from_mean(0.0)
        with pytest.raises(ValueError):
            MMPPArrivalProcess.from_mean(1.0, burstiness=0.5)
        with pytest.raises(ValueError):
            MMPPArrivalProcess.from_mean(1.0, high_fraction=1.0)
        with pytest.raises(ValueError):
            MMPPArrivalProcess.from_mean(1.0).arrival_times_us(-1)


class TestEDFQueue:
    def test_edf_reorders_by_priority(self):
        # Both batches waiting when the server frees: EDF picks the
        # tighter deadline even though it arrived later.
        ready = [0.0, 1.0, 2.0]
        services = [10.0, 5.0, 5.0]
        priorities = [0.0, 100.0, 50.0]
        starts, completes, _ = simulate_batch_queue(
            ready, services, num_servers=1, order="edf",
            priorities=priorities)
        assert starts.tolist() == [0.0, 15.0, 10.0]
        assert completes.tolist() == [10.0, 20.0, 15.0]

    def test_edf_matches_fifo_on_equal_priorities(self):
        rng = np.random.default_rng(0)
        ready = np.cumsum(rng.exponential(5.0, size=200))
        services = rng.exponential(8.0, size=200)
        fifo = simulate_batch_queue(ready, services, 2, order="fifo")
        edf = simulate_batch_queue(ready, services, 2, order="edf",
                                   priorities=np.zeros(200))
        # Equal priorities tie-break on ready time = FIFO order.
        assert np.allclose(fifo[0], edf[0])
        assert np.allclose(fifo[1], edf[1])
        assert fifo[2] == edf[2]

    def test_edf_idles_until_next_arrival(self):
        starts, _, depth = simulate_batch_queue(
            [0.0, 100.0], [10.0, 10.0], 1, order="edf",
            priorities=[1.0, 0.0])
        assert starts.tolist() == [0.0, 100.0]
        assert depth == 0

    def test_fifo_wrapper_unchanged(self):
        starts, completes, depth = simulate_fifo_queue(
            [0.0, 1.0, 2.0], [5.0, 5.0, 5.0], num_servers=1)
        assert starts.tolist() == [0.0, 5.0, 10.0]
        assert depth == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            simulate_batch_queue([0.0], [1.0], 1, order="lifo")
        with pytest.raises(ValueError):
            simulate_batch_queue([0.0], [1.0], 1, order="edf")
        with pytest.raises(ValueError):
            simulate_batch_queue([0.0], [1.0], 1, order="edf",
                                 priorities=[1.0, 2.0])

    def test_batch_earliest_deadline(self):
        queries = [make_query(0, 0.0, deadline_us=500.0),
                   make_query(1, 1.0, deadline_us=300.0),
                   make_query(2, 2.0)]
        batch = QueryBatch(queries=queries)
        assert batch.earliest_deadline_us == 300.0
        assert QueryBatch(queries=[make_query(3, 0.0)]) \
            .earliest_deadline_us is None

    def test_edf_engine_prioritises_urgent_batches(self):
        # Two batches ready at once behind a busy server; the urgent one
        # (tight deadline) must start first under EDF.
        blocker = QueryBatch(queries=[make_query(0, 0.0)],
                             open_us=0.0, formed_us=0.0)
        loose = QueryBatch(queries=[make_query(1, 1.0,
                                               deadline_us=1_000.0)],
                           open_us=1.0, formed_us=1.0)
        urgent = QueryBatch(queries=[make_query(2, 2.0,
                                                deadline_us=30.0)],
                            open_us=2.0, formed_us=2.0)
        batches = [blocker, loose, urgent]
        services = [20.0, 10.0, 10.0]
        fifo = EventEngine().summarize("unit", batches, services)
        edf = EventEngine(order="edf").summarize("unit", batches,
                                                 services)
        assert edf.extras["queue_order"] == "edf"
        assert edf.extras["engine"] == "event-edf"
        # FIFO finishes the urgent query at 40 (misses), EDF at 28.
        fifo_slo = fifo.extras["slo"]
        edf_slo = edf.extras["slo"]
        assert edf_slo["deadlines_met"] > fifo_slo["deadlines_met"]


class TestClusterSLOIntegration:
    def build_queries(self, qps=200_000.0, num_queries=48):
        traces = make_production_table_traces(
            num_lookups_per_table=400, num_rows=NUM_ROWS, num_tables=4,
            seed=0)
        return queries_from_traces(
            traces, num_queries,
            PoissonArrivalProcess(rate_qps=qps, seed=3),
            batch_size=2, pooling_factor=4)

    def build_cluster(self, **overrides):
        return ShardedServingCluster(
            num_nodes=2, node_system="recnmp-base",
            address_of=address_of, vector_size_bytes=VECTOR_BYTES,
            **overrides)

    def test_no_slo_no_extras(self):
        report = self.build_cluster().simulate(self.build_queries())
        assert "slo" not in report.extras

    def test_passive_accounting_keeps_percentiles(self):
        cluster = self.build_cluster()
        queries = self.build_queries()
        frontend = BatchingFrontend(max_queries=4, max_delay_us=100.0)
        plain = cluster.simulate(queries, frontend=frontend,
                                 engine="event")
        accounted = cluster.simulate(queries, frontend=frontend,
                                     engine="event", slo_policy=10_000.0,
                                     admission="none")
        assert accounted.p50_us == plain.p50_us
        assert accounted.p95_us == plain.p95_us
        assert accounted.p99_us == plain.p99_us
        slo = accounted.extras["slo"]
        assert slo["num_shed"] == 0
        assert slo["admission"] == "none"
        assert slo["attainment"] == 1.0

    def test_analytic_engine_reports_slo(self):
        report = self.build_cluster().simulate(
            self.build_queries(), slo_policy=10_000.0)
        slo = report.extras["slo"]
        assert report.extras["engine"] == "analytic"
        assert slo["attainment"] == 1.0
        assert slo["goodput_qps"] > 0.0

    def test_deadline_admission_sheds_at_overload(self):
        cluster = self.build_cluster()
        frontend = BatchingFrontend(max_queries=4, max_delay_us=50.0)
        # Heavy queries arriving far faster than they serve: the FIFO
        # backlog quickly dwarfs the 60 us SLO.
        traces = make_production_table_traces(
            num_lookups_per_table=400, num_rows=NUM_ROWS, num_tables=4,
            seed=0)
        queries = queries_from_traces(
            traces, 400,
            PoissonArrivalProcess(rate_qps=20_000_000.0, seed=3),
            batch_size=8, pooling_factor=10)
        open_loop = cluster.simulate(queries, frontend=frontend,
                                     engine="event", slo_policy=60.0,
                                     admission="none")
        shedding = cluster.simulate(queries, frontend=frontend,
                                    engine="event", slo_policy=60.0,
                                    admission="deadline")
        open_slo = open_loop.extras["slo"]
        shed_slo = shedding.extras["slo"]
        assert open_slo["num_shed"] == 0
        assert shed_slo["num_shed"] > 0
        assert shed_slo["attainment"] > open_slo["attainment"]
        assert shed_slo["goodput_qps"] > open_slo["goodput_qps"]
        # Tail latency is conditioned on admitted queries only.
        assert shedding.num_queries == 400 - shed_slo["num_shed"]
        assert shedding.p99_us < open_loop.p99_us

    def test_estimate_query_service_us(self):
        cluster = self.build_cluster()
        queries = self.build_queries(num_queries=12)
        estimate = cluster.estimate_query_service_us(queries)
        assert estimate > 0.0
        with pytest.raises(ValueError):
            cluster.estimate_query_service_us([])

    def test_stateful_sharder_estimate_is_order_independent(self):
        """Regression: the admission probe routed from leftover replica
        counters, so repeated simulate() calls could shed differently."""
        from repro.serving import ReplicatedTableSharder

        queries = self.build_queries(num_queries=24)
        sharder = ReplicatedTableSharder.from_queries(
            2, queries, policy="load-aware", max_replicas=2,
            hot_fraction=0.1)
        cluster = self.build_cluster(sharder=sharder)
        fresh = cluster.estimate_query_service_us(queries)
        # Dirty the routing counters with an unrelated run, then
        # re-estimate: the probe must start from fresh routing state.
        cluster.simulate(self.build_queries(num_queries=16))
        assert cluster.estimate_query_service_us(queries) == fresh
        # And two back-to-back admission runs agree completely.
        first = cluster.simulate(queries, slo_policy=10_000.0,
                                 admission="queue-depth", engine="event")
        second = cluster.simulate(queries, slo_policy=10_000.0,
                                  admission="queue-depth", engine="event")
        assert first.extras["slo"] == second.extras["slo"]
        assert first.p99_us == second.p99_us

    def test_all_shed_raises(self):
        cluster = self.build_cluster()
        queries = self.build_queries(num_queries=16)
        for query in queries:
            query.arrival_us = 0.0
        with pytest.raises(ValueError, match="shed every query"):
            cluster.simulate(queries, slo_policy=0.001,
                             admission="deadline")

    def test_qps_sweep_forwards_slo_and_admission(self):
        cluster = self.build_cluster()
        reports = qps_sweep(cluster,
                            lambda qps: self.build_queries(qps=qps),
                            [100_000.0, 200_000.0], engine="event",
                            slo_policy=10_000.0, admission="queue-depth")
        for report in reports:
            slo = report.extras["slo"]
            assert slo["admission"] == "queue-depth"
            assert slo["attainment"] is not None

    def test_engine_summarize_signature_accepts_slo_info(self):
        batches = [QueryBatch(queries=[make_query(0, 0.0)],
                              open_us=0.0, formed_us=0.0)]
        info = {"num_offered": 2, "num_shed": 1, "offered_span_us": 10.0,
                "admission": "unit"}
        for engine in (AnalyticEngine(), EventEngine()):
            report = engine.summarize("unit", batches, [5.0],
                                      slo_info=info)
            assert report.extras["slo"]["shed_rate"] == pytest.approx(0.5)
