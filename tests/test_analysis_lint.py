"""Tests for the invariant linter (:mod:`repro.analysis`).

Each rule gets golden bad-snippet fixtures asserting the exact rule,
file and line of every finding, plus a clean fixture proving zero
false positives; pragma suppression is round-tripped; the kernel-twin
rule is driven against a mutated copy of the *real* kernels module;
and the shipped tree itself must lint clean (the self-lint test is the
tier-1 guarantee that the repo never regresses its own invariants).
"""

import textwrap
from pathlib import Path

import pytest

from repro.analysis import (
    LintUsageError,
    RULES,
    available_rules,
    lint_paths,
)
from repro.analysis.kernel_twin import compare_twin_regions

REPO_ROOT = Path(__file__).resolve().parents[1]


def lint_snippet(tmp_path, relpath, source, rules=None):
    """Write ``source`` under ``tmp_path/relpath`` and lint it."""
    path = tmp_path / relpath
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source))
    return path, lint_paths([str(path)], rules=rules)


def only(findings, rule):
    return [f for f in findings if f.rule == rule]


# --------------------------------------------------------------------- #
class TestDeterminismRule:
    def test_unseeded_random_exact_line(self, tmp_path):
        path, findings = lint_snippet(tmp_path, "mod.py", """\
            import random

            rng = random.Random()
            """, rules=["determinism"])
        assert len(findings) == 1
        finding = findings[0]
        assert (finding.rule, finding.path, finding.line) == \
            ("determinism", str(path), 3)
        assert "unseeded random.Random()" in finding.message

    def test_unseeded_default_rng_and_randomstate(self, tmp_path):
        _, findings = lint_snippet(tmp_path, "mod.py", """\
            import numpy as np

            a = np.random.default_rng()
            b = np.random.RandomState()
            """, rules=["determinism"])
        assert [f.line for f in findings] == [3, 4]

    def test_seeded_rngs_clean(self, tmp_path):
        _, findings = lint_snippet(tmp_path, "mod.py", """\
            import random

            import numpy as np

            a = random.Random(7)
            b = np.random.default_rng(seed=0)
            c = np.random.default_rng(user_seed)
            """, rules=["determinism"])
        assert findings == []

    def test_seed_none_counts_as_unseeded(self, tmp_path):
        _, findings = lint_snippet(tmp_path, "mod.py", """\
            import random

            rng = random.Random(None)
            """, rules=["determinism"])
        assert [f.line for f in findings] == [3]

    def test_wallclock_flagged_only_in_sim_packages(self, tmp_path):
        sim_src = """\
            import time

            def step():
                return time.perf_counter()
            """
        _, sim = lint_snippet(tmp_path, "repro/core/mod.py", sim_src,
                              rules=["determinism"])
        assert [f.line for f in sim] == [4]
        assert "wall-clock read time.perf_counter()" in sim[0].message
        _, bench = lint_snippet(tmp_path, "benchmarks/mod.py", sim_src,
                                rules=["determinism"])
        assert bench == []

    def test_datetime_now_in_serving(self, tmp_path):
        _, findings = lint_snippet(
            tmp_path, "repro/serving/mod.py", """\
            import datetime

            stamp = datetime.datetime.now()
            """, rules=["determinism"])
        assert [f.line for f in findings] == [3]

    def test_wallclock_flagged_in_obs_package(self, tmp_path):
        _, findings = lint_snippet(
            tmp_path, "repro/obs/tracing.py", """\
            import time

            def stamp():
                return time.monotonic()
            """, rules=["determinism"])
        assert [f.line for f in findings] == [4]

    def test_wallclock_allowed_in_obs_profiling_only(self, tmp_path):
        src = """\
            import time

            def tick():
                return time.perf_counter()
            """
        _, exempt = lint_snippet(tmp_path, "repro/obs/profiling.py",
                                 src, rules=["determinism"])
        assert exempt == []
        # The carve-out is the file, not the name: a profiling.py in a
        # sim package is still flagged.
        _, sim = lint_snippet(tmp_path, "repro/serving/profiling.py",
                              src, rules=["determinism"])
        assert [f.line for f in sim] == [4]

    def test_bare_set_iteration(self, tmp_path):
        _, findings = lint_snippet(tmp_path, "mod.py", """\
            for item in {3, 1, 2}:
                print(item)

            listed = [x for x in set(values)]
            """, rules=["determinism"])
        assert [f.line for f in findings] == [1, 4]
        assert all("process-salted order" in f.message for f in findings)

    def test_sorted_set_iteration_clean(self, tmp_path):
        _, findings = lint_snippet(tmp_path, "mod.py", """\
            for item in sorted({3, 1, 2}):
                print(item)
            """, rules=["determinism"])
        assert findings == []


# --------------------------------------------------------------------- #
class TestObsHygieneRule:
    def test_bare_print_in_library_flagged(self, tmp_path):
        path, findings = lint_snippet(
            tmp_path, "repro/serving/mod.py", """\
            def publish(report):
                print(report.p99_us)
            """, rules=["obs-hygiene"])
        assert len(findings) == 1
        assert (findings[0].rule, findings[0].path, findings[0].line) \
            == ("obs-hygiene", str(path), 2)
        assert "bare print()" in findings[0].message

    def test_stream_write_in_library_flagged(self, tmp_path):
        _, findings = lint_snippet(
            tmp_path, "repro/obs/mod.py", """\
            import sys

            def publish(line):
                sys.stderr.write(line)
            """, rules=["obs-hygiene"])
        assert [f.line for f in findings] == [4]
        assert "sys.stderr.write" in findings[0].message

    def test_cli_main_module_exempt(self, tmp_path):
        _, findings = lint_snippet(
            tmp_path, "repro/__main__.py", """\
            def cmd(args):
                print("the CLI owns the terminal")
                return 0
            """, rules=["obs-hygiene"])
        assert findings == []

    def test_code_outside_repro_exempt(self, tmp_path):
        _, findings = lint_snippet(
            tmp_path, "benchmarks/mod.py", """\
            print("benchmark tables go to stdout")
            """, rules=["obs-hygiene"])
        assert findings == []

    def test_pragma_suppresses(self, tmp_path):
        _, findings = lint_snippet(
            tmp_path, "repro/serving/mod.py", """\
            def debug(line, verbose):
                if verbose:
                    print(line)  # repro-lint: allow-obs-hygiene (opt-in debug aid)
            """, rules=["obs-hygiene"])
        assert findings == []

    def test_non_print_calls_clean(self, tmp_path):
        _, findings = lint_snippet(
            tmp_path, "repro/serving/mod.py", """\
            import sys

            def publish(registry, handle):
                registry.counter("runs").inc()
                handle.write("not a terminal stream\\n")
                return sys.maxsize
            """, rules=["obs-hygiene"])
        assert findings == []


# --------------------------------------------------------------------- #
class TestFingerprintHygieneRule:
    def test_id_in_cache_key_function(self, tmp_path):
        path, findings = lint_snippet(tmp_path, "mod.py", """\
            def cache_key(obj):
                return id(obj)
            """, rules=["fingerprint-hygiene"])
        assert len(findings) == 1
        assert (findings[0].path, findings[0].line) == (str(path), 2)
        assert "memory address" in findings[0].message

    def test_repr_call_in_fingerprint_function(self, tmp_path):
        _, findings = lint_snippet(tmp_path, "mod.py", """\
            def stable_fingerprint(value):
                return hash(repr(value))
            """, rules=["fingerprint-hygiene"])
        assert [f.line for f in findings] == [2]

    def test_bare_repr_as_sort_key(self, tmp_path):
        _, findings = lint_snippet(tmp_path, "mod.py", """\
            def batch_key(mapping):
                return tuple(sorted(mapping, key=repr))
            """, rules=["fingerprint-hygiene"])
        assert [f.line for f in findings] == [2]
        assert "sort key" in findings[0].message

    def test_unsorted_dict_iteration(self, tmp_path):
        _, findings = lint_snippet(tmp_path, "mod.py", """\
            def key_digest(mapping):
                parts = []
                for name, value in mapping.items():
                    parts.append((name, value))
                return tuple(parts)
            """, rules=["fingerprint-hygiene"])
        assert [f.line for f in findings] == [3]
        assert "construction order" in findings[0].message

    def test_keyish_assignment_from_id(self, tmp_path):
        _, findings = lint_snippet(tmp_path, "mod.py", """\
            def lookup(obj, memo):
                key = id(obj)
                return memo[key]
            """, rules=["fingerprint-hygiene"])
        assert [f.line for f in findings] == [2]

    def test_clean_fingerprint_function(self, tmp_path):
        _, findings = lint_snippet(tmp_path, "mod.py", """\
            def cache_key(mapping):
                return tuple(
                    (name, mapping[name]) for name in sorted(mapping))
            """, rules=["fingerprint-hygiene"])
        assert findings == []

    def test_unmarked_function_not_audited(self, tmp_path):
        _, findings = lint_snippet(tmp_path, "mod.py", """\
            def describe(obj):
                return repr(obj)
            """, rules=["fingerprint-hygiene"])
        assert findings == []


# --------------------------------------------------------------------- #
class TestPickleSafetyRule:
    PAYLOAD = """\
        import threading

        class Frontend:
            def __init__(self):
                self._lock = threading.Lock()
        """

    def test_lock_in_payload_module(self, tmp_path):
        path, findings = lint_snippet(
            tmp_path, "repro/serving/cluster.py", self.PAYLOAD,
            rules=["pickle-safety"])
        assert len(findings) == 1
        assert (findings[0].path, findings[0].line) == (str(path), 5)
        assert "self._lock" in findings[0].message

    def test_getstate_escape_hatch(self, tmp_path):
        _, findings = lint_snippet(
            tmp_path, "repro/serving/cluster.py", """\
            import threading

            class Frontend:
                def __init__(self):
                    self._lock = threading.Lock()

                def __getstate__(self):
                    return {}
            """, rules=["pickle-safety"])
        assert findings == []

    def test_non_payload_module_exempt(self, tmp_path):
        _, findings = lint_snippet(tmp_path, "repro/core/helper.py",
                                   self.PAYLOAD, rules=["pickle-safety"])
        assert findings == []

    def test_lambda_and_connection_fields(self, tmp_path):
        _, findings = lint_snippet(
            tmp_path, "repro/perf/service_store.py", """\
            import sqlite3

            class Store:
                def __init__(self, path):
                    self._render = lambda row: str(row)
                    self._connection = sqlite3.connect(path)
            """, rules=["pickle-safety"])
        assert [f.line for f in findings] == [5, 6]


# --------------------------------------------------------------------- #
TWIN_TEMPLATE = """\
    def _execute_window_flat(hit, use_cache, part_map, key):
        if hit:
            served = 1
        else:
            if use_cache != 0:
                row = part_map[key]
                cost = 2 if row == _PART_UNSET else 3
            total = cost {op} 1
        return total


    def _execute_window_python(hit, use_cache, part_map, key):
        if hit:
            served = 1
        else:
            if use_cache:
                row = part_map.get(key)
                if row is None:
                    cost = 2
                else:
                    cost = 3
            total = cost + 1
        return total
    """


class TestKernelTwinSyncRule:
    def test_allowed_substitutions_compare_equal(self, tmp_path):
        _, findings = lint_snippet(
            tmp_path, "kernels.py", TWIN_TEMPLATE.format(op="+"),
            rules=["kernel-twin-sync"])
        assert findings == []

    def test_flipped_operator_fires(self, tmp_path):
        path, findings = lint_snippet(
            tmp_path, "kernels.py", TWIN_TEMPLATE.format(op="-"),
            rules=["kernel-twin-sync"])
        assert len(findings) == 1
        assert findings[0].path == str(path)
        assert "drifted apart" in findings[0].message

    def test_lost_anchor_fires(self, tmp_path):
        _, findings = lint_snippet(tmp_path, "kernels.py", """\
            def _execute_window_flat(x):
                return x

            def _execute_window_python(hit):
                if hit:
                    return 1
                else:
                    return 2
            """, rules=["kernel-twin-sync"])
        assert len(findings) == 1
        assert "anchor" in findings[0].message

    def test_modules_without_twins_exempt(self, tmp_path):
        _, findings = lint_snippet(tmp_path, "mod.py", """\
            def _execute_window_flat(hit):
                return 0
            """, rules=["kernel-twin-sync"])
        assert findings == []

    def test_real_kernels_module_in_sync(self):
        kernels = REPO_ROOT / "src" / "repro" / "core" / "kernels.py"
        findings = lint_paths([str(kernels)],
                              rules=["kernel-twin-sync"])
        assert findings == []

    def test_real_kernels_mutation_detected(self, tmp_path):
        """A one-operator flip in the real flat kernel must fire."""
        source = (REPO_ROOT / "src" / "repro" / "core"
                  / "kernels.py").read_text()
        mutated = source.replace("value = cycle + tRP",
                                 "value = cycle - tRP", 1)
        assert mutated != source, "mutation target vanished from kernels"
        path = tmp_path / "kernels.py"
        path.write_text(mutated)
        findings = lint_paths([str(path)], rules=["kernel-twin-sync"])
        assert len(findings) == 1
        assert "drifted apart" in findings[0].message

    def test_anchorless_pair_compares_whole_body(self, tmp_path):
        """Event-kernel pairs have no anchor: whole bodies must match,
        docstrings exempt."""
        _, findings = lint_snippet(tmp_path, "event_kernels.py", """\
            def _fifo_events_flat(ready, starts):
                for index in range(len(ready)):
                    starts[index] = ready[index] + 1.0

            def _fifo_events_python(ready, starts):
                '''CPython twin (docstrings may differ).'''
                for index in range(len(ready)):
                    starts[index] = ready[index] + 1.0
            """, rules=["kernel-twin-sync"])
        assert findings == []

    def test_anchorless_pair_drift_fires(self, tmp_path):
        _, findings = lint_snippet(tmp_path, "event_kernels.py", """\
            def _fifo_events_flat(ready, starts):
                for index in range(len(ready)):
                    starts[index] = ready[index] + 1.0

            def _fifo_events_python(ready, starts):
                for index in range(len(ready)):
                    starts[index] = ready[index] - 1.0
            """, rules=["kernel-twin-sync"])
        assert len(findings) == 1
        assert "drifted apart" in findings[0].message

    def test_real_event_kernels_module_in_sync(self):
        kernels = (REPO_ROOT / "src" / "repro" / "serving"
                   / "event_kernels.py")
        findings = lint_paths([str(kernels)],
                              rules=["kernel-twin-sync"])
        assert findings == []

    def test_real_event_kernels_mutation_detected(self, tmp_path):
        """A one-operator flip in one event-loop twin must fire."""
        source = (REPO_ROOT / "src" / "repro" / "serving"
                  / "event_kernels.py").read_text()
        mutated = source.replace("complete = start + services[index]",
                                 "complete = start - services[index]", 1)
        assert mutated != source, \
            "mutation target vanished from event kernels"
        path = tmp_path / "event_kernels.py"
        path.write_text(mutated)
        findings = lint_paths([str(path)], rules=["kernel-twin-sync"])
        assert len(findings) >= 1
        assert all("drifted apart" in f.message for f in findings)

    def test_compare_twin_regions_reports_both_lines(self):
        import ast
        tree = ast.parse(textwrap.dedent(TWIN_TEMPLATE.format(op="-")))
        flat, python = [node for node in tree.body
                        if isinstance(node, ast.FunctionDef)]
        divergence = compare_twin_regions(flat, python)
        assert divergence is not None
        message, flat_line, python_line = divergence
        assert flat_line > 0 and python_line > flat_line


# --------------------------------------------------------------------- #
class TestBroadExceptAuditRule:
    def test_except_exception_fires_on_handler_line(self, tmp_path):
        path, findings = lint_snippet(tmp_path, "mod.py", """\
            try:
                risky()
            except Exception:
                pass
            """, rules=["broad-except-audit"])
        assert len(findings) == 1
        assert (findings[0].path, findings[0].line) == (str(path), 3)

    def test_bare_except_and_tuple_fire(self, tmp_path):
        _, findings = lint_snippet(tmp_path, "mod.py", """\
            try:
                risky()
            except:
                pass
            try:
                risky()
            except (ValueError, Exception):
                pass
            """, rules=["broad-except-audit"])
        assert [f.line for f in findings] == [3, 7]

    def test_specific_exception_clean(self, tmp_path):
        _, findings = lint_snippet(tmp_path, "mod.py", """\
            try:
                risky()
            except (ValueError, KeyError):
                pass
            """, rules=["broad-except-audit"])
        assert findings == []


# --------------------------------------------------------------------- #
class TestPragmaSuppression:
    def test_inline_pragma_round_trip(self, tmp_path):
        bad = """\
            try:
                risky()
            except Exception:
                pass
            """
        _, before = lint_snippet(tmp_path, "before.py", bad,
                                 rules=["broad-except-audit"])
        assert len(before) == 1
        _, after = lint_snippet(tmp_path, "after.py", bad.replace(
            "except Exception:",
            "except Exception:  # repro-lint: "
            "allow-broad-except-audit (degrades to a noop by design)"),
            rules=["broad-except-audit", "pragma-audit"])
        assert after == []

    def test_comment_line_pragma_covers_next_statement(self, tmp_path):
        _, findings = lint_snippet(tmp_path, "mod.py", """\
            import random

            # repro-lint: allow-determinism (entropy wanted here)
            rng = random.Random()
            """, rules=["determinism", "pragma-audit"])
        assert findings == []

    def test_pragma_without_reason_is_audited(self, tmp_path):
        _, findings = lint_snippet(tmp_path, "mod.py", """\
            import random

            rng = random.Random()  # repro-lint: allow-determinism
            """)
        audited = only(findings, "pragma-audit")
        assert [f.line for f in audited] == [3]
        assert "no reason" in audited[0].message
        # The reasonless pragma still suppresses; only the audit remains.
        assert only(findings, "determinism") == []

    def test_pragma_for_unknown_rule_is_audited(self, tmp_path):
        _, findings = lint_snippet(tmp_path, "mod.py", """\
            x = 1  # repro-lint: allow-made-up-rule (because)
            """)
        audited = only(findings, "pragma-audit")
        assert len(audited) == 1
        assert "unknown rule 'made-up-rule'" in audited[0].message

    def test_pragma_inside_string_is_ignored(self, tmp_path):
        _, findings = lint_snippet(tmp_path, "mod.py", """\
            DOC = "# repro-lint: allow-determinism (not a comment)"
            import random

            rng = random.Random()
            """)
        assert [f.rule for f in findings] == ["determinism"]

    def test_pragma_does_not_cover_other_lines(self, tmp_path):
        _, findings = lint_snippet(tmp_path, "mod.py", """\
            import random

            a = random.Random()  # repro-lint: allow-determinism (ok)
            b = random.Random()
            """, rules=["determinism"])
        assert [f.line for f in findings] == [4]


# --------------------------------------------------------------------- #
class TestRegistryConsistencyRule:
    REGISTRY_FILE = str(REPO_ROOT / "src" / "repro" / "systems"
                        / "registry.py")

    def test_fixture_trees_never_trigger(self, tmp_path):
        _, findings = lint_snippet(tmp_path, "registry.py", """\
            x = 1
            """, rules=["registry-consistency"])
        assert findings == []

    def test_real_registries_clean(self):
        findings = lint_paths([self.REGISTRY_FILE],
                              rules=["registry-consistency"])
        assert findings == []

    def test_undocumented_unexposed_entry_fires(self, monkeypatch):
        from repro.serving import sharding

        def _place_bogus(table_loads, num_nodes):
            return {table: 0 for table in table_loads}

        monkeypatch.setitem(sharding.PLACEMENT_POLICIES, "bogus",
                            _place_bogus)
        findings = lint_paths([self.REGISTRY_FILE],
                              rules=["registry-consistency"])
        messages = [f.message for f in findings]
        assert any("no docstring" in m for m in messages)
        assert any("missing from the CLI --shard-policy choices" in m
                   for m in messages)


# --------------------------------------------------------------------- #
class TestLintPathsAPI:
    def test_unknown_rule_raises_usage_error(self, tmp_path):
        (tmp_path / "mod.py").write_text("x = 1\n")
        with pytest.raises(LintUsageError, match="unknown rule"):
            lint_paths([str(tmp_path)], rules=["no-such-rule"])

    def test_missing_path_raises_usage_error(self, tmp_path):
        with pytest.raises(LintUsageError, match="no such file"):
            lint_paths([str(tmp_path / "absent")])

    def test_syntax_error_reported_as_parse_error(self, tmp_path):
        path = tmp_path / "broken.py"
        path.write_text("def f(:\n")
        findings = lint_paths([str(path)])
        assert [f.rule for f in findings] == ["parse-error"]

    def test_rule_selection_is_exclusive(self, tmp_path):
        path = tmp_path / "mod.py"
        path.write_text("import random\nrng = random.Random()\n"
                        "try:\n    rng\nexcept Exception:\n    pass\n")
        findings = lint_paths([str(path)], rules=["broad-except-audit"])
        assert {f.rule for f in findings} == {"broad-except-audit"}

    def test_every_registered_rule_has_description(self):
        for name in available_rules():
            rule = RULES[name]
            assert rule.name == name
            assert rule.description

    def test_findings_sorted_and_deduplicated(self, tmp_path):
        path = tmp_path / "mod.py"
        path.write_text("import random\n"
                        "b = random.Random()\n"
                        "a = random.Random()\n")
        findings = lint_paths([str(path), str(path)],
                              rules=["determinism"])
        assert [f.line for f in findings] == [2, 3]


# --------------------------------------------------------------------- #
class TestSelfLint:
    """The shipped tree must satisfy its own invariants (tier-1)."""

    def test_src_and_benchmarks_lint_clean(self):
        findings = lint_paths([str(REPO_ROOT / "src" / "repro"),
                               str(REPO_ROOT / "benchmarks")])
        assert findings == [], "\n".join(f.format() for f in findings)
