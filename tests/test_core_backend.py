"""Tests for repro.core.backend (parallel execution backends)."""

import pickle

import numpy as np
import pytest

from repro.core.backend import (
    BACKENDS,
    ParallelBackend,
    ProcessBackend,
    SerialBackend,
    SharedMemoryBackend,
    ThreadBackend,
    resolve_backend,
)
from repro.core.multi_channel import MultiChannelRecNMP
from repro.core.simulator import RecNMPConfig
from repro.dlrm.operators import SLSRequest
from repro.perf.baseline_cache import (
    baseline_cache_stats,
    clear_baseline_cache,
    export_baseline_entries,
    merge_baseline_entries,
)
from repro.systems.base import TableLayout

NUM_ROWS = 8_000
VECTOR_BYTES = 128
LAYOUT = TableLayout(num_rows=NUM_ROWS, vector_bytes=VECTOR_BYTES)


def _requests(num_tables=4, batch=4, pooling=12, seed=0):
    rng = np.random.default_rng(seed)
    return [SLSRequest(table_id=t,
                       indices=rng.integers(0, NUM_ROWS,
                                            size=batch * pooling),
                       lengths=np.full(batch, pooling))
            for t in range(num_tables)]


def _coordinator(backend, num_channels=3, **config_overrides):
    defaults = dict(num_dimms=1, ranks_per_dimm=2,
                    vector_size_bytes=VECTOR_BYTES)
    defaults.update(config_overrides)
    return MultiChannelRecNMP(num_channels=num_channels,
                              channel_config=RecNMPConfig(**defaults),
                              address_of=LAYOUT.address_of,
                              backend=backend)


class TestResolveBackend:
    def test_default_is_serial(self):
        assert isinstance(resolve_backend(None), SerialBackend)

    @pytest.mark.parametrize("name", sorted(BACKENDS))
    def test_names_resolve(self, name):
        backend = resolve_backend(name, max_workers=2)
        assert backend.name == name
        assert backend.max_workers == 2

    def test_class_resolves(self):
        assert isinstance(resolve_backend(SerialBackend), SerialBackend)

    def test_instance_passthrough(self):
        instance = SerialBackend()
        assert resolve_backend(instance) is instance

    def test_instance_with_max_workers_rejected(self):
        with pytest.raises(ValueError):
            resolve_backend(SerialBackend(), max_workers=2)

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            resolve_backend("gpu")

    def test_invalid_max_workers_rejected(self):
        with pytest.raises(ValueError):
            ThreadBackend(max_workers=0)

    def test_describe(self):
        assert ProcessBackend(max_workers=3).describe() == \
            "process(max_workers=3)"
        assert SerialBackend().describe() == "serial"


class TestPickleRoundtrip:
    """The process backend's work units must survive pickling unchanged."""

    def test_config_roundtrip(self):
        config = RecNMPConfig(num_dimms=2, ranks_per_dimm=2,
                              vector_size_bytes=128,
                              scheduling_policy="fcfs",
                              rank_assignment="page-coloring")
        assert pickle.loads(pickle.dumps(config)) == config

    def test_request_roundtrip(self):
        request = _requests(num_tables=1)[0]
        clone = pickle.loads(pickle.dumps(request))
        assert clone.table_id == request.table_id
        np.testing.assert_array_equal(clone.indices, request.indices)
        np.testing.assert_array_equal(clone.lengths, request.lengths)

    def test_address_of_roundtrip(self):
        address_of = pickle.loads(pickle.dumps(LAYOUT.address_of))
        assert address_of(3, 17) == LAYOUT.address_of(3, 17)

    @pytest.mark.parametrize("backend", ["process", "shared-memory"])
    def test_unpicklable_address_of_rejected(self, backend):
        # The lambda address-map regression: both process-family
        # transports must fail fast in the parent and *name* the
        # offending input, not die inside a pool worker.
        with MultiChannelRecNMP(
                num_channels=2,
                channel_config=RecNMPConfig(num_dimms=1, ranks_per_dimm=2),
                address_of=lambda table_id, row: row * 64,
                backend=backend) as coordinator:
            with pytest.raises(ValueError,
                               match="address_of callable"):
                coordinator.run_requests(_requests(num_tables=2, batch=1,
                                                   pooling=4),
                                         compare_baseline=False)

    @pytest.mark.parametrize("backend", ["process", "shared-memory"])
    def test_unpicklable_config_field_named(self, backend):
        with MultiChannelRecNMP(
                num_channels=2,
                channel_config=RecNMPConfig(num_dimms=1, ranks_per_dimm=2),
                address_of=LAYOUT.address_of,
                backend=backend) as coordinator:
            # Poison one config field after construction: the preflight
            # must name it instead of blaming the whole work unit.
            coordinator.channel_config.opcode = lambda: None
            with pytest.raises(ValueError,
                               match="config field 'opcode'"):
                coordinator.run_requests(_requests(num_tables=2, batch=1,
                                                   pooling=4),
                                         compare_baseline=False)


class TestBackendEquivalence:
    """serial / thread / process must be byte-identical per dispatch."""

    @classmethod
    def setup_class(cls):
        cls.requests = _requests(num_tables=6, batch=4, pooling=16, seed=3)
        coordinator = _coordinator("serial")
        cls.reference = coordinator.run_requests(cls.requests,
                                                 compare_baseline=True)

    @pytest.mark.parametrize("backend", ["thread", "process",
                                         "shared-memory"])
    def test_identical_results(self, backend):
        coordinator = _coordinator(backend)
        result = coordinator.run_requests(self.requests,
                                          compare_baseline=True)
        reference = self.reference
        assert result.total_cycles == reference.total_cycles
        assert result.per_channel_cycles == reference.per_channel_cycles
        assert result.per_channel_instructions == \
            reference.per_channel_instructions
        assert result.energy_nj == reference.energy_nj
        assert result.cache_hit_rate == reference.cache_hit_rate
        assert result.baseline_cycles == reference.baseline_cycles
        assert result.baseline_energy_nj == reference.baseline_energy_nj
        assert result.speedup_vs_baseline == reference.speedup_vs_baseline
        coordinator.close()

    def test_jobs_bound_respected(self):
        coordinator = _coordinator(ThreadBackend(max_workers=1))
        result = coordinator.run_requests(self.requests,
                                          compare_baseline=False)
        assert result.total_cycles == self.reference.total_cycles

    def test_process_merges_worker_baseline_entries(self):
        clear_baseline_cache()
        try:
            coordinator = _coordinator("process", num_channels=2)
            coordinator.run_requests(
                _requests(num_tables=2, batch=2, pooling=8, seed=9),
                compare_baseline=True)
            stats = baseline_cache_stats()
            # Both channels simulated their baseline in workers; the
            # parent cache received the merged (key, result) pairs.
            assert stats["entries"] == 2
            assert stats["misses"] == 2
            coordinator.close()
        finally:
            clear_baseline_cache()


class TestSharedMemoryTransport:
    """Zero-copy specifics of the shared-memory backend."""

    def test_weighted_and_metadata_requests_roundtrip(self):
        # Weights ride in the segment as float32 views; metadata (small)
        # travels with the descriptors.  Both must survive the transport.
        rng = np.random.default_rng(5)
        requests = []
        for table in range(2):
            indices = rng.integers(0, NUM_ROWS, size=24)
            requests.append(SLSRequest(
                table_id=table, indices=indices,
                lengths=np.full(2, 12),
                weights=rng.random(24).astype(np.float32),
                metadata={"origin": "test"}))
        results = {}
        for backend in ("serial", "shared-memory"):
            with _coordinator(backend, num_channels=2) as coordinator:
                result = coordinator.run_requests(requests,
                                                  compare_baseline=False)
                results[backend] = (result.total_cycles,
                                    result.per_channel_cycles,
                                    result.energy_nj)
        assert results["shared-memory"] == results["serial"]

    def test_repeat_dispatch_reuses_pool(self):
        with _coordinator("shared-memory", num_channels=2) as coordinator:
            first = coordinator.run_requests(
                _requests(num_tables=2, batch=2, pooling=8, seed=1),
                compare_baseline=False)
            pool = coordinator.backend._pool
            second = coordinator.run_requests(
                _requests(num_tables=2, batch=2, pooling=8, seed=1),
                compare_baseline=False)
            assert coordinator.backend._pool is pool
        assert first.total_cycles == second.total_cycles

    def test_merges_worker_baseline_entries(self):
        clear_baseline_cache()
        try:
            with _coordinator("shared-memory",
                              num_channels=2) as coordinator:
                coordinator.run_requests(
                    _requests(num_tables=2, batch=2, pooling=8, seed=9),
                    compare_baseline=True)
                stats = baseline_cache_stats()
                assert stats["entries"] == 2
                assert stats["misses"] == 2
        finally:
            clear_baseline_cache()


class TestContextManagers:
    def test_backend_context_manager_shuts_down(self):
        backend = ProcessBackend(max_workers=1)
        with backend as entered:
            assert entered is backend
            backend._ensure_pool(1)
            assert backend._pool is not None
        assert backend._pool is None

    def test_coordinator_context_manager(self):
        with _coordinator("serial", num_channels=2) as coordinator:
            result = coordinator.run_requests(
                _requests(num_tables=2, batch=1, pooling=4),
                compare_baseline=False)
        assert result.total_cycles > 0

    def test_system_context_manager(self):
        from repro.systems import build_system

        with build_system("recnmp-opt", table_rows=NUM_ROWS,
                          vector_size_bytes=VECTOR_BYTES,
                          compare_baseline=False) as system:
            result = system.run(_requests(num_tables=1, batch=1,
                                          pooling=4))
        assert result.total_cycles > 0


class TestNodeLevelServiceJobs:
    """The serving cluster's per-node shard fan-out (run_service_jobs)."""

    @staticmethod
    def _cluster(backend):
        from repro.serving import ShardedServingCluster

        return ShardedServingCluster(
            num_nodes=2, node_system="recnmp-opt",
            table_rows=NUM_ROWS, vector_size_bytes=VECTOR_BYTES,
            backend=backend)

    @staticmethod
    def _batch():
        from repro.serving.arrival import queries_from_traces
        from repro.serving.batcher import QueryBatch
        from repro.traces import random_trace

        traces = [random_trace(NUM_ROWS, 400, table_id=t, seed=t)
                  for t in range(4)]
        queries = queries_from_traces(traces, 4, [0.0] * 4,
                                      batch_size=2, pooling_factor=10)
        return QueryBatch(queries=queries, open_us=0.0, formed_us=0.0)

    @pytest.mark.parametrize("backend", ["thread", "process",
                                         "shared-memory"])
    def test_service_time_matches_serial(self, backend):
        batch = self._batch()
        with self._cluster("serial") as cluster:
            reference = cluster.service_time_us(batch)
        with self._cluster(backend) as cluster:
            assert cluster.service_time_us(batch) == reference

    def test_memoisation_stays_in_parent(self):
        batch = self._batch()
        with self._cluster("process") as cluster:
            first = cluster.service_time_us(batch)
            stats = cluster.service_cache_stats()
            assert stats["misses"] == 1
            assert cluster.service_time_us(batch) == first
            assert cluster.service_cache_stats()["hits"] == 1

    @pytest.mark.parametrize("backend", ["process", "shared-memory"])
    def test_unpicklable_node_override_named(self, backend):
        from repro.serving import ShardedServingCluster

        cluster = ShardedServingCluster(
            num_nodes=2, node_system="recnmp-opt",
            table_rows=NUM_ROWS, vector_size_bytes=VECTOR_BYTES,
            address_of=lambda table_id, row: row * 64,
            backend=backend)
        with cluster:
            with pytest.raises(ValueError,
                               match="node override 'address_of'"):
                cluster.service_time_us(self._batch())


class TestBaselineCacheMerge:
    def test_merge_entries_and_counters(self):
        clear_baseline_cache()
        try:
            merge_baseline_entries([("key-a", "result-a")], hits=3, misses=1)
            stats = baseline_cache_stats()
            assert stats == {"entries": 1, "hits": 3, "misses": 1}
            # Existing entries win on re-merge.
            merge_baseline_entries([("key-a", "other")])
            assert dict(export_baseline_entries())["key-a"] == "result-a"
        finally:
            clear_baseline_cache()
