"""Tests for repro.dram.bank."""

import pytest

from repro.dram.bank import Bank
from repro.dram.commands import CommandType
from repro.dram.timing import DDR4_2400


@pytest.fixture
def bank():
    return Bank(DDR4_2400, bank_group=0, bank_index=0)


class TestBankStateMachine:
    def test_initially_closed(self, bank):
        assert bank.is_row_closed()
        assert not bank.is_row_hit(0)

    def test_required_commands(self, bank):
        assert bank.required_commands(5) == [CommandType.ACT, CommandType.RD]
        bank.issue_activate(5, 0)
        assert bank.required_commands(5) == [CommandType.RD]
        assert bank.required_commands(9) == [CommandType.PRE, CommandType.ACT,
                                             CommandType.RD]

    def test_activate_opens_row(self, bank):
        bank.issue_activate(7, 0)
        assert bank.is_row_hit(7)
        assert not bank.is_row_closed()
        assert bank.activations == 1

    def test_activate_twice_without_precharge_fails(self, bank):
        bank.issue_activate(7, 0)
        with pytest.raises(RuntimeError):
            bank.issue_activate(8, DDR4_2400.tRC + 1)

    def test_read_requires_open_row(self, bank):
        with pytest.raises(RuntimeError):
            bank.issue_read(3, 0)

    def test_read_respects_trcd(self, bank):
        bank.issue_activate(3, 0)
        # RD before tRCD has elapsed must be rejected.
        with pytest.raises(RuntimeError):
            bank.issue_read(3, DDR4_2400.tRCD - 1)
        done = bank.issue_read(3, DDR4_2400.tRCD)
        assert done == DDR4_2400.tRCD + DDR4_2400.tCL + DDR4_2400.tBL

    def test_precharge_respects_tras(self, bank):
        bank.issue_activate(3, 0)
        with pytest.raises(RuntimeError):
            bank.issue_precharge(DDR4_2400.tRAS - 1)
        bank.issue_precharge(DDR4_2400.tRAS)
        assert bank.is_row_closed()

    def test_act_after_precharge_respects_trp(self, bank):
        bank.issue_activate(3, 0)
        bank.issue_precharge(DDR4_2400.tRAS)
        early = DDR4_2400.tRAS + DDR4_2400.tRP - 1
        assert not bank.can_issue(CommandType.ACT, early)
        assert bank.can_issue(CommandType.ACT, early + 1)

    def test_act_to_act_respects_trc(self, bank):
        bank.issue_activate(3, 0)
        bank.issue_precharge(DDR4_2400.tRAS)
        # tRC=55 > tRAS+tRP=55, equal here, so ACT allowed at 55.
        assert bank.earliest_issue_cycle(CommandType.ACT, 0) == DDR4_2400.tRC

    def test_consecutive_reads_respect_tccd(self, bank):
        bank.issue_activate(3, 0)
        bank.issue_read(3, DDR4_2400.tRCD)
        early = DDR4_2400.tRCD + DDR4_2400.tCCD_L - 1
        assert not bank.can_issue(CommandType.RD, early)
        assert bank.can_issue(CommandType.RD, early + 1)

    def test_stats_counters(self, bank):
        bank.record_access_outcome(1)            # closed -> miss
        bank.issue_activate(1, 0)
        bank.record_access_outcome(1)            # hit
        bank.record_access_outcome(2)            # conflict
        stats = bank.stats()
        assert stats["row_hits"] == 1
        assert stats["row_misses"] == 1
        assert stats["row_conflicts"] == 1

    def test_rejects_bad_timing_type(self):
        with pytest.raises(TypeError):
            Bank("not timing", 0, 0)
