"""Tests for repro.core.packet_generator."""

import numpy as np
import pytest

from repro.core.instruction import DDR_CMD_ACT, DDR_CMD_PRE, DDR_CMD_RD
from repro.core.packet_generator import PacketGenerator, PacketGeneratorConfig
from repro.dlrm.operators import SLSRequest


def _request(table_id=0, batch=4, pooling=8, num_rows=1000, seed=0,
             weights=False):
    rng = np.random.default_rng(seed)
    indices = rng.integers(0, num_rows, size=batch * pooling)
    lengths = np.full(batch, pooling)
    w = rng.random(batch * pooling).astype(np.float32) if weights else None
    return SLSRequest(table_id=table_id, indices=indices, lengths=lengths,
                      weights=w)


class TestConfigValidation:
    def test_poolings_bounded_by_psumtag(self):
        with pytest.raises(ValueError):
            PacketGeneratorConfig(poolings_per_packet=17)
        with pytest.raises(ValueError):
            PacketGeneratorConfig(poolings_per_packet=0)

    def test_vector_size_multiple_of_64(self):
        with pytest.raises(ValueError):
            PacketGeneratorConfig(vector_size_bytes=100)

    def test_vsize(self):
        assert PacketGeneratorConfig(vector_size_bytes=256).vsize == 4


class TestPacketGeneration:
    def test_instruction_count_matches_lookups(self):
        generator = PacketGenerator(PacketGeneratorConfig(
            poolings_per_packet=4, enable_hot_entry_profiling=False))
        request = _request(batch=8, pooling=10)
        packets = generator.packets_for_request(request)
        assert sum(len(p) for p in packets) == 80
        assert len(packets) == 2                  # 8 poolings / 4 per packet

    def test_psum_tags_within_packet(self):
        generator = PacketGenerator(PacketGeneratorConfig(
            poolings_per_packet=4, enable_hot_entry_profiling=False))
        packets = generator.packets_for_request(_request(batch=8, pooling=5))
        for packet in packets:
            assert packet.num_poolings == 4
            assert all(inst.psum_tag < 4 for inst in packet.instructions)

    def test_addresses_use_address_of(self):
        config = PacketGeneratorConfig(enable_hot_entry_profiling=False)
        generator = PacketGenerator(
            config, address_of=lambda table, row: 1_000_000 + row * 64)
        packets = generator.packets_for_request(_request(batch=1, pooling=4))
        for inst in packets[0].instructions:
            assert inst.daddr * 64 >= 1_000_000

    def test_weights_propagated(self):
        generator = PacketGenerator(PacketGeneratorConfig(
            enable_hot_entry_profiling=False))
        request = _request(batch=2, pooling=3, weights=True)
        packets = generator.packets_for_request(request)
        weights = [inst.weight for p in packets for inst in p.instructions]
        assert weights == pytest.approx(request.weights.tolist(), rel=1e-6)

    def test_ddr_cmd_tags_reflect_row_locality(self):
        # Consecutive rows in the same 8 KB DRAM row must elide ACT/PRE.
        config = PacketGeneratorConfig(enable_hot_entry_profiling=False)
        generator = PacketGenerator(config,
                                    address_of=lambda t, row: row * 64)
        request = SLSRequest(table_id=0, indices=[0, 1, 2, 1000],
                             lengths=[4])
        packet = generator.packets_for_request(request)[0]
        tags = [inst.ddr_cmd for inst in packet.instructions]
        assert tags[0] == DDR_CMD_ACT | DDR_CMD_RD | DDR_CMD_PRE
        assert tags[1] == DDR_CMD_RD
        assert tags[2] == DDR_CMD_RD
        assert tags[3] == DDR_CMD_ACT | DDR_CMD_RD | DDR_CMD_PRE

    def test_hot_entry_profiling_sets_locality_bits(self):
        config = PacketGeneratorConfig(poolings_per_packet=2,
                                       enable_hot_entry_profiling=True,
                                       hot_entry_threshold=2)
        generator = PacketGenerator(config)
        # Row 5 repeats 4 times, rows 10..15 appear once each.
        request = SLSRequest(table_id=0,
                             indices=[5, 10, 5, 11, 5, 12, 5, 13],
                             lengths=[4, 4])
        packet = generator.packets_for_request(request)[0]
        for inst in packet.instructions:
            if inst.row_index == 5:
                assert inst.locality_bit
            else:
                assert not inst.locality_bit

    def test_profiling_disabled_marks_everything_cacheable(self):
        config = PacketGeneratorConfig(enable_hot_entry_profiling=False)
        packet = PacketGenerator(config).packets_for_request(
            _request(batch=1, pooling=6))[0]
        assert packet.locality_fraction() == 1.0

    def test_packet_metadata(self):
        generator = PacketGenerator(PacketGeneratorConfig(
            enable_hot_entry_profiling=False))
        packets = generator.packets_for_requests(
            [_request(table_id=3, batch=2, pooling=2)], model_id=7)
        assert packets[0].table_id == 3
        assert packets[0].model_id == 7

    def test_packet_ids_unique(self):
        generator = PacketGenerator(PacketGeneratorConfig(
            poolings_per_packet=1, enable_hot_entry_profiling=False))
        packets = generator.packets_for_request(_request(batch=6, pooling=2))
        ids = [p.packet_id for p in packets]
        assert len(set(ids)) == len(ids)

    def test_reset_clears_counter_and_profiles(self):
        generator = PacketGenerator(PacketGeneratorConfig(
            poolings_per_packet=1))
        generator.packets_for_requests([_request(batch=4, pooling=2)])
        assert generator._packet_counter > 0
        assert generator.last_profiles
        generator.reset()
        assert generator._packet_counter == 0
        assert generator.last_profiles == {}
        # Packet ids restart from zero after a reset.
        packets = generator.packets_for_request(_request(batch=2, pooling=2))
        assert packets[0].packet_id == 0

    def test_vsize_stamped_from_config(self):
        config = PacketGeneratorConfig(vector_size_bytes=256,
                                       enable_hot_entry_profiling=False)
        packet = PacketGenerator(config).packets_for_request(
            _request(batch=1, pooling=3))[0]
        assert all(inst.vsize == 4 for inst in packet.instructions)


class TestRankLoad:
    def test_rank_load_counts_all_instructions(self):
        generator = PacketGenerator(PacketGeneratorConfig(
            enable_hot_entry_profiling=False))
        packets = generator.packets_for_request(_request(batch=4, pooling=8))
        load = generator.rank_load(packets,
                                   rank_of_address=lambda a: (a // 64) % 4,
                                   num_ranks=4)
        assert load.sum() == 32
        assert len(load) == 4
