"""Tests for the memoised DDR4 baseline simulation."""

import numpy as np
import pytest

from repro.dram.system import DramSystemConfig
from repro.perf.baseline_cache import (
    baseline_cache_stats,
    clear_baseline_cache,
    run_baseline_trace,
    trace_fingerprint,
)


def _trace(seed=0, n=256):
    rng = np.random.default_rng(seed)
    return (rng.integers(0, 1 << 20, size=n) * 64).tolist()


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_baseline_cache()
    yield
    clear_baseline_cache()


class TestBaselineCache:
    def test_hit_returns_identical_result(self):
        config = DramSystemConfig(num_channels=1)
        trace = _trace()
        first = run_baseline_trace(config, trace)
        second = run_baseline_trace(config, trace)
        assert second is first
        stats = baseline_cache_stats()
        assert stats == {"entries": 1, "hits": 1, "misses": 1}

    def test_cached_matches_uncached(self):
        config = DramSystemConfig(num_channels=1)
        trace = _trace(seed=1)
        cached = run_baseline_trace(config, trace)
        uncached = run_baseline_trace(config, trace, use_cache=False)
        assert cached.cycles == uncached.cycles
        assert cached.energy_nj == pytest.approx(uncached.energy_nj)
        assert cached.row_hit_rate == pytest.approx(uncached.row_hit_rate)

    def test_distinct_traces_and_configs_miss(self):
        config = DramSystemConfig(num_channels=1)
        run_baseline_trace(config, _trace(seed=2))
        run_baseline_trace(config, _trace(seed=3))
        run_baseline_trace(DramSystemConfig(num_channels=1,
                                            dimms_per_channel=2),
                           _trace(seed=2))
        run_baseline_trace(config, _trace(seed=2), request_bytes=128)
        stats = baseline_cache_stats()
        assert stats["misses"] == 4
        assert stats["hits"] == 0

    def test_fingerprint_depends_on_content_not_identity(self):
        trace = _trace(seed=4)
        assert trace_fingerprint(list(trace)) == \
            trace_fingerprint(np.asarray(trace))
        different = list(trace)
        different[0] += 64
        assert trace_fingerprint(different) != trace_fingerprint(trace)

    def test_clear_resets_counters(self):
        config = DramSystemConfig(num_channels=1)
        run_baseline_trace(config, _trace(seed=5))
        clear_baseline_cache()
        assert baseline_cache_stats() == {"entries": 0, "hits": 0,
                                          "misses": 0}
