"""Vectorised/streamed arrival generation vs the pinned scalar loops.

The arrival processes in :mod:`repro.serving.arrival` were rewritten
from scalar accumulation loops to draw-order-preserving vectorised
generators with chunked ``stream()`` counterparts.  Reports all over the
repo are keyed on exact arrival times, so the rewrite must be *bitwise*
identical: this module keeps verbatim copies of the retired scalar
loops as the specification and pins the new one-shot and chunked paths
against them over seeds, burst shapes and take patterns (including
empty takes and take sizes that split state sojourns mid-burst).
"""

import numpy as np
import pytest

from repro.serving.arrival import (
    MMPPArrivalProcess,
    PoissonArrivalProcess,
    TraceReplayArrivalProcess,
)


def legacy_poisson_times(process, num_queries):
    """Pre-rewrite Poisson one-shot (kept verbatim as the spec)."""
    rng = np.random.default_rng(process.seed)
    mean_gap_us = 1e6 / process.rate_qps
    gaps = rng.exponential(mean_gap_us, size=num_queries)
    return np.cumsum(gaps)


def legacy_mmpp_times(process, num_queries):
    """Pre-rewrite MMPP scalar loop (kept verbatim as the spec)."""
    rng = np.random.default_rng(process.seed)
    times = []
    now_us = 0.0
    high = False                    # start in the (longer) low state
    while len(times) < num_queries:
        rate_qps = process.rate_high_qps if high else process.rate_low_qps
        mean_sojourn = process.mean_high_us if high \
            else process.mean_low_us
        sojourn_us = rng.exponential(mean_sojourn)
        mean_gap_us = 1e6 / rate_qps
        t = now_us
        while len(times) < num_queries:
            t += rng.exponential(mean_gap_us)
            if t > now_us + sojourn_us:
                break
            times.append(t)
        now_us += sojourn_us
        high = not high
    return np.asarray(times[:num_queries], dtype=np.float64)


def legacy_replay_times(process, num_queries):
    """Pre-rewrite trace-replay tiling (kept verbatim as the spec)."""
    repeats = -(-num_queries // process.gaps_us.size) if num_queries \
        else 0
    gaps = np.tile(process.gaps_us, max(repeats, 1))[:num_queries]
    return np.cumsum(gaps)


def chunked_times(process, num_queries, chunks):
    """Drain ``num_queries`` arrivals via stream().take() pieces."""
    stream = process.stream()
    pieces, taken = [], 0
    for count in chunks:
        count = min(count, num_queries - taken)
        pieces.append(stream.take(count))
        taken += count
        if taken == num_queries:
            break
    while taken < num_queries:
        pieces.append(stream.take(min(1000, num_queries - taken)))
        taken += len(pieces[-1])
    return np.concatenate(pieces) if pieces else np.empty(0)


TAKE_PATTERNS = (
    [10_000],                       # one shot through the stream
    [1, 1, 5, 0, 64, 997, 10_000],  # ragged, with an empty take
    [250] * 40,                     # steady chunks
)


class TestPoisson:
    @pytest.mark.parametrize("seed", [0, 1, 7])
    @pytest.mark.parametrize("size", [0, 1, 100, 5000])
    def test_oneshot_matches_legacy(self, seed, size):
        process = PoissonArrivalProcess(rate_qps=150_000.0, seed=seed)
        assert np.array_equal(process.arrival_times_us(size),
                              legacy_poisson_times(process, size))

    @pytest.mark.parametrize("chunks", TAKE_PATTERNS)
    def test_stream_matches_oneshot(self, chunks):
        process = PoissonArrivalProcess(rate_qps=150_000.0, seed=3)
        expected = process.arrival_times_us(4000)
        assert np.array_equal(chunked_times(process, 4000, chunks),
                              expected)


class TestMMPP:
    SHAPES = (
        dict(rate_high_qps=400_000.0, rate_low_qps=40_000.0,
             mean_high_us=1_000.0, mean_low_us=5_000.0),
        dict(rate_high_qps=120_000.0, rate_low_qps=120_000.0,
             mean_high_us=50.0, mean_low_us=50.0),
        dict(rate_high_qps=1_000_000.0, rate_low_qps=1_000.0,
             mean_high_us=10_000.0, mean_low_us=100.0),
    )

    @pytest.mark.parametrize("shape", SHAPES)
    @pytest.mark.parametrize("seed", [0, 1, 5])
    @pytest.mark.parametrize("size", [0, 1, 7, 100, 3000])
    def test_oneshot_matches_legacy_loop(self, shape, seed, size):
        process = MMPPArrivalProcess(seed=seed, **shape)
        assert np.array_equal(process.arrival_times_us(size),
                              legacy_mmpp_times(process, size))

    @pytest.mark.parametrize("shape", SHAPES)
    @pytest.mark.parametrize("chunks", TAKE_PATTERNS)
    def test_stream_matches_oneshot(self, shape, chunks):
        process = MMPPArrivalProcess(seed=11, **shape)
        expected = process.arrival_times_us(4000)
        assert np.array_equal(chunked_times(process, 4000, chunks),
                              expected)

    def test_from_mean_stream_round_trip(self):
        process = MMPPArrivalProcess.from_mean(200_000.0, seed=2)
        expected = legacy_mmpp_times(process, 2500)
        assert np.array_equal(process.arrival_times_us(2500), expected)
        assert np.array_equal(chunked_times(process, 2500, [333] * 10),
                              expected)


class TestTraceReplay:
    def _process(self):
        rng = np.random.default_rng(9)
        gaps = rng.integers(1, 40, size=257).astype(np.float64)
        return TraceReplayArrivalProcess(gaps)

    @pytest.mark.parametrize("size", [0, 1, 256, 257, 258, 5000])
    def test_oneshot_matches_legacy(self, size):
        process = self._process()
        assert np.array_equal(process.arrival_times_us(size),
                              legacy_replay_times(process, size))

    @pytest.mark.parametrize("chunks", TAKE_PATTERNS)
    def test_stream_matches_oneshot(self, chunks):
        process = self._process()
        expected = process.arrival_times_us(4000)
        assert np.array_equal(chunked_times(process, 4000, chunks),
                              expected)

    def test_streams_are_independent(self):
        # Each stream() starts from the beginning of the gap cycle.
        process = self._process()
        first = process.stream().take(100)
        second = process.stream().take(100)
        assert np.array_equal(first, second)
