"""Tests for repro.perf.colocation and repro.perf.end_to_end."""

import pytest

from repro.dlrm.config import RM1_LARGE, RM1_SMALL, RM2_LARGE, RM2_SMALL
from repro.perf.colocation import ColocationModel
from repro.perf.end_to_end import EndToEndModel, latency_throughput_curve
from repro.perf.operator_latency import OperatorLatencyModel


class TestColocationModel:
    def test_no_colocation_no_degradation(self):
        model = ColocationModel()
        assert model.baseline_slowdown(10 * 1024 * 1024, 1) == \
            pytest.approx(1.0)

    def test_degradation_grows_with_colocation(self):
        model = ColocationModel()
        weights = RM2_LARGE.fc_weight_bytes()
        slowdowns = [model.baseline_slowdown(weights, d) for d in
                     (1, 2, 4, 8)]
        assert slowdowns == sorted(slowdowns)

    def test_large_fc_suffers_more_than_small_fc(self):
        model = ColocationModel()
        large = model.baseline_slowdown(RM2_LARGE.fc_weight_bytes(), 8)
        small = model.baseline_slowdown(256 * 1024, 8)
        assert large > small

    def test_worst_case_degradation_near_paper_value(self):
        # Fig. 17(b): up to ~30% degradation for RM2-large TopFC.
        model = ColocationModel()
        worst = model.baseline_slowdown(RM2_LARGE.fc_weight_bytes(), 8,
                                        pooling_factor=160)
        assert 1.2 < worst < 1.4

    def test_l2_resident_fc_barely_affected(self):
        # ~4% for FCs that fit in L2 (BottomFC, RM1 TopFC).
        model = ColocationModel()
        slowdown = model.baseline_slowdown(512 * 1024, 8)
        assert slowdown < 1.06

    def test_recnmp_removes_most_contention(self):
        model = ColocationModel()
        weights = RM2_LARGE.fc_weight_bytes()
        baseline = model.baseline_slowdown(weights, 8)
        relieved = model.recnmp_slowdown(weights, 8)
        assert relieved < baseline
        improvement = 1.0 - relieved / baseline
        # Fig. 17: 12-30% improvement for LLC-resident FCs.
        assert 0.1 < improvement < 0.35

    def test_fc_speedup_from_offload(self):
        model = ColocationModel()
        speedup = model.fc_speedup_from_offload(RM2_LARGE.fc_weight_bytes(), 8)
        assert speedup > 1.1

    def test_evaluate_sweep(self):
        model = ColocationModel()
        results = model.evaluate("RM2-large TopFC",
                                 RM2_LARGE.fc_weight_bytes(), [1, 2, 4, 8])
        assert len(results) == 4
        assert results[-1].recnmp_improvement >= results[0].recnmp_improvement
        assert all(r.as_dict()["fc_name"] == "RM2-large TopFC"
                   for r in results)

    def test_pooling_increases_pressure(self):
        model = ColocationModel()
        weights = RM2_LARGE.fc_weight_bytes()
        assert model.baseline_slowdown(weights, 4, pooling_factor=160) > \
            model.baseline_slowdown(weights, 4, pooling_factor=40)

    def test_validation(self):
        model = ColocationModel()
        with pytest.raises(ValueError):
            model.baseline_slowdown(1024, 0)
        with pytest.raises(ValueError):
            model.baseline_slowdown(1024, 2, pooling_factor=0)
        with pytest.raises(ValueError):
            ColocationModel(max_llc_degradation=1.5)


class TestEndToEnd:
    def test_speedup_increases_with_sls_speedup(self):
        model = EndToEndModel()
        low = model.speedup(RM2_LARGE, 256, sls_speedup=2.0)
        high = model.speedup(RM2_LARGE, 256, sls_speedup=9.8)
        assert high.end_to_end_speedup > low.end_to_end_speedup

    def test_model_speedups_in_paper_band(self):
        # Fig. 18(a): with the 8-rank design every model gains 2.4-4.2x; the
        # RM2 class (more tables) gains at least as much as the matching RM1
        # class.  (Our structural cost model ranks RM2-small slightly above
        # RM2-large, consistent with the batch-8 SLS shares of Fig. 4 --
        # see EXPERIMENTS.md.)
        model = EndToEndModel()
        speedups = {config.name: model.speedup(config, 256, 9.8)
                    for config in (RM1_SMALL, RM1_LARGE, RM2_SMALL,
                                   RM2_LARGE)}
        for result in speedups.values():
            assert 2.0 < result.end_to_end_speedup < 7.0
        assert speedups["RM2-small"].end_to_end_speedup >= \
            speedups["RM1-small"].end_to_end_speedup
        assert speedups["RM2-large"].end_to_end_speedup >= 3.0

    def test_headline_speedup_in_paper_range(self):
        # The paper reports up to 4.2x end-to-end throughput improvement for
        # RM2-large with the 8-rank optimised design (9.8x SLS speedup).
        model = EndToEndModel()
        result = model.speedup(RM2_LARGE, 256, sls_speedup=9.8)
        assert 3.0 < result.end_to_end_speedup < 6.5

    def test_speedup_grows_with_batch(self):
        # Fig. 18(b): larger batches shift more time into SLS -> more gain.
        model = EndToEndModel()
        assert model.speedup(RM1_LARGE, 256, 9.8).end_to_end_speedup > \
            model.speedup(RM1_LARGE, 8, 9.8).end_to_end_speedup

    def test_colocation_adds_fc_speedup(self):
        model = EndToEndModel()
        alone = model.speedup(RM2_LARGE, 64, 9.8, colocation_degree=1)
        colocated = model.speedup(RM2_LARGE, 64, 9.8, colocation_degree=8)
        assert colocated.non_sls_speedup > alone.non_sls_speedup
        assert colocated.end_to_end_speedup > alone.end_to_end_speedup

    def test_speedup_bounded_by_amdahl(self):
        model = EndToEndModel()
        result = model.speedup(RM1_SMALL, 8, sls_speedup=1000.0)
        assert result.end_to_end_speedup < 1.0 / (1.0 - result.sls_fraction) \
            + 1e-6

    def test_rank_config_speedups(self):
        model = EndToEndModel()
        results = model.rank_config_speedups(
            RM2_LARGE, 256, {"2-rank": 1.9, "4-rank": 3.8, "8-rank": 9.8})
        assert results["8-rank"].end_to_end_speedup > \
            results["2-rank"].end_to_end_speedup

    def test_sweep_shape(self):
        model = EndToEndModel()
        rows = model.speedup_sweep([RM1_SMALL, RM2_LARGE], [8, 256], 9.8)
        assert len(rows) == 4

    def test_validation(self):
        with pytest.raises(ValueError):
            EndToEndModel().speedup(RM1_SMALL, 8, sls_speedup=0)


class TestLatencyThroughput:
    def test_colocation_raises_throughput_and_latency(self):
        latency_model = OperatorLatencyModel()
        points = latency_throughput_curve(latency_model, RM2_SMALL, 64,
                                          [1, 2, 4, 8])
        latencies = [p["latency_us"] for p in points]
        throughputs = [p["throughput_inferences_per_s"] for p in points]
        assert latencies == sorted(latencies)
        assert throughputs == sorted(throughputs)

    def test_recnmp_improves_both_axes(self):
        latency_model = OperatorLatencyModel()
        host = latency_throughput_curve(latency_model, RM2_SMALL, 64,
                                        [1, 2, 4], sls_speedup=1.0)
        nmp = latency_throughput_curve(latency_model, RM2_SMALL, 64,
                                       [1, 2, 4], sls_speedup=8.0,
                                       use_recnmp=True)
        for host_point, nmp_point in zip(host, nmp):
            assert nmp_point["latency_us"] < host_point["latency_us"]
            assert nmp_point["throughput_inferences_per_s"] > \
                host_point["throughput_inferences_per_s"]

    def test_locality_bonus_fades_with_colocation(self):
        # Fig. 18(c): the production-trace advantage wears off as co-location
        # grows.
        latency_model = OperatorLatencyModel()
        random_curve = latency_throughput_curve(latency_model, RM1_LARGE, 64,
                                                [1, 8], locality_bonus=1.0)
        production = latency_throughput_curve(latency_model, RM1_LARGE, 64,
                                              [1, 8], locality_bonus=1.2)
        gain_at_1 = (random_curve[0]["latency_us"]
                     / production[0]["latency_us"])
        gain_at_8 = (random_curve[1]["latency_us"]
                     / production[1]["latency_us"])
        assert gain_at_1 > gain_at_8 > 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            latency_throughput_curve(OperatorLatencyModel(), RM1_SMALL, 8,
                                     [0])
