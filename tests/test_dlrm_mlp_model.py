"""Tests for repro.dlrm.mlp and repro.dlrm.model."""

import numpy as np
import pytest

from repro.dlrm.config import RM1_SMALL, scaled_config
from repro.dlrm.mlp import MLP, relu, sigmoid
from repro.dlrm.model import DLRMModel


class TestActivations:
    def test_relu(self):
        np.testing.assert_array_equal(relu(np.array([-1.0, 0.0, 2.0])),
                                      np.array([0.0, 0.0, 2.0]))

    def test_sigmoid_range_and_symmetry(self):
        x = np.linspace(-50, 50, 101)
        y = sigmoid(x)
        assert (y >= 0).all() and (y <= 1).all()
        assert sigmoid(np.array([0.0]))[0] == pytest.approx(0.5)

    def test_sigmoid_extremes_stable(self):
        y = sigmoid(np.array([-1000.0, 1000.0]))
        assert y[0] == pytest.approx(0.0, abs=1e-6)
        assert y[1] == pytest.approx(1.0, abs=1e-6)


class TestMLP:
    def test_output_shape(self):
        mlp = MLP(16, (32, 8), seed=0)
        output = mlp(np.zeros((4, 16), dtype=np.float32))
        assert output.shape == (4, 8)

    def test_1d_input_promoted(self):
        mlp = MLP(16, (4,), seed=0)
        assert mlp(np.zeros(16, dtype=np.float32)).shape == (1, 4)

    def test_wrong_width_rejected(self):
        mlp = MLP(16, (4,), seed=0)
        with pytest.raises(ValueError):
            mlp(np.zeros((2, 8), dtype=np.float32))

    def test_sigmoid_final_activation_bounds(self):
        mlp = MLP(8, (16, 1), final_activation="sigmoid", seed=1)
        output = mlp(np.random.default_rng(0).standard_normal((10, 8)))
        assert (output >= 0).all() and (output <= 1).all()

    def test_parameter_count(self):
        mlp = MLP(8, (4, 2), seed=0)
        assert mlp.num_parameters == 8 * 4 + 4 + 4 * 2 + 2
        assert mlp.weight_bytes == mlp.num_parameters * 4

    def test_flops_per_sample(self):
        mlp = MLP(8, (4, 2), seed=0)
        assert mlp.flops_per_sample() == 2 * (8 * 4 + 4 * 2)

    def test_relu_layers_nonnegative(self):
        mlp = MLP(8, (8, 8), final_activation="relu", seed=2)
        output = mlp(np.random.default_rng(1).standard_normal((5, 8)))
        assert (output >= 0).all()

    def test_validation(self):
        with pytest.raises(ValueError):
            MLP(0, (4,))
        with pytest.raises(ValueError):
            MLP(4, ())
        with pytest.raises(ValueError):
            MLP(4, (2,), final_activation="tanh")


@pytest.fixture(scope="module")
def tiny_model():
    config = scaled_config(RM1_SMALL, num_embedding_tables=4)
    return DLRMModel(config, rows_override=256, seed=0)


class TestDLRMModel:
    def test_forward_shapes(self, tiny_model):
        output = tiny_model.run_random_batch(batch_size=6, pooling_factor=10)
        assert output.predictions.shape == (6,)
        assert output.bottom_output.shape == (6, 64)
        assert len(output.embedding_outputs) == 4
        assert output.interaction.shape[0] == 6

    def test_predictions_are_probabilities(self, tiny_model):
        output = tiny_model.run_random_batch(batch_size=16, pooling_factor=5)
        assert (output.predictions >= 0).all()
        assert (output.predictions <= 1).all()

    def test_deterministic_given_inputs(self, tiny_model):
        dense, requests = tiny_model.random_inputs(4, pooling_factor=3)
        first = tiny_model.forward(dense, requests)
        second = tiny_model.forward(dense, requests)
        np.testing.assert_allclose(first.predictions, second.predictions)

    def test_interaction_width_matches_config(self, tiny_model):
        output = tiny_model.run_random_batch(batch_size=2, pooling_factor=3)
        assert output.interaction.shape[1] == \
            tiny_model.config.top_mlp_input_width()

    def test_request_count_validated(self, tiny_model):
        dense, requests = tiny_model.random_inputs(2, pooling_factor=3)
        with pytest.raises(ValueError):
            tiny_model.forward(dense, requests[:-1])

    def test_custom_index_sampler_used(self):
        config = scaled_config(RM1_SMALL, num_embedding_tables=2)
        model = DLRMModel(config, rows_override=64, seed=0)
        dense, requests = model.random_inputs(
            2, pooling_factor=4, index_sampler=lambda table, count:
            np.zeros(count, dtype=np.int64))
        for request in requests:
            assert (request.indices == 0).all()

    def test_batch_size_validation(self, tiny_model):
        with pytest.raises(ValueError):
            tiny_model.random_inputs(0)

    def test_config_type_checked(self):
        with pytest.raises(TypeError):
            DLRMModel("RM1-small")
