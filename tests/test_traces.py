"""Tests for repro.traces (trace containers and synthetic generators)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.set_associative import SetAssociativeCache
from repro.traces.production import (
    ProductionTraceGenerator,
    make_combined_trace,
    make_production_table_traces,
)
from repro.traces.synthetic import (
    batched_requests_from_trace,
    hotset_trace,
    random_trace,
    zipf_trace,
)
from repro.traces.trace import CombinedTrace, EmbeddingTrace


class TestEmbeddingTrace:
    def test_basic_properties(self):
        trace = EmbeddingTrace(table_id=0, indices=[1, 2, 2, 3],
                               num_rows=10, name="T1")
        assert len(trace) == 4
        assert trace.unique_fraction() == pytest.approx(0.75)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            EmbeddingTrace(table_id=0, indices=[10], num_rows=10)
        with pytest.raises(ValueError):
            EmbeddingTrace(table_id=0, indices=[-1], num_rows=10)

    def test_slice(self):
        trace = EmbeddingTrace(table_id=1, indices=list(range(10)),
                               num_rows=10)
        sub = trace.slice(2, 5)
        assert list(sub.indices) == [2, 3, 4]
        assert sub.table_id == 1

    def test_reuse_histogram(self):
        trace = EmbeddingTrace(table_id=0, indices=[0, 0, 0, 1], num_rows=5)
        histogram = trace.reuse_histogram(max_count=4)
        assert histogram[1] == 1      # one row accessed once
        assert histogram[3] == 1      # one row accessed three times

    def test_save_load_roundtrip(self, tmp_path):
        trace = random_trace(100, 50, seed=0)
        path = tmp_path / "trace.json"
        trace.save(path)
        loaded = EmbeddingTrace.load(path)
        np.testing.assert_array_equal(loaded.indices, trace.indices)
        assert loaded.num_rows == trace.num_rows
        assert loaded.name == trace.name


class TestCombinedTrace:
    def test_interleaving_preserves_all_accesses(self):
        traces = [random_trace(50, 10, table_id=i, seed=i) for i in range(3)]
        combined = CombinedTrace(traces)
        pairs = combined.interleaved_array()
        assert pairs.shape == (30, 2)
        assert set(pairs[:, 0].tolist()) == {0, 1, 2}

    def test_round_robin_order(self):
        traces = [
            EmbeddingTrace(table_id=0, indices=[1, 2], num_rows=5),
            EmbeddingTrace(table_id=1, indices=[3, 4], num_rows=5),
        ]
        pairs = CombinedTrace(traces, block_size=1).interleaved_array()
        assert pairs[:, 0].tolist() == [0, 1, 0, 1]

    def test_uneven_lengths(self):
        traces = [
            EmbeddingTrace(table_id=0, indices=[1], num_rows=5),
            EmbeddingTrace(table_id=1, indices=[2, 3, 4], num_rows=5),
        ]
        pairs = CombinedTrace(traces).interleaved_array()
        assert len(pairs) == 4

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            CombinedTrace([])


class TestSyntheticTraces:
    def test_random_trace_low_locality(self):
        trace = random_trace(1_000_000, 20_000, seed=0)
        cache = SetAssociativeCache(8 * 1024 * 1024, associativity=4)
        cache.access_many(trace.indices * 64)
        # The paper: random traces see <5% hit rate.
        assert cache.hit_rate < 0.05

    def test_hotset_trace_has_locality(self):
        trace = hotset_trace(1_000_000, 20_000, hot_fraction=0.0005,
                             hot_probability=0.6, seed=1)
        cache = SetAssociativeCache(8 * 1024 * 1024, associativity=4)
        cache.access_many(trace.indices * 64)
        assert cache.hit_rate > 0.3

    def test_zipf_trace_metadata(self):
        trace = zipf_trace(1000, 100, alpha=1.2, seed=0)
        assert trace.metadata["kind"] == "zipf"
        assert trace.metadata["alpha"] == 1.2

    def test_batched_requests(self):
        trace = random_trace(100, 100, table_id=3, seed=0)
        requests = batched_requests_from_trace(trace, batch_size=4,
                                               pooling_factor=5)
        assert len(requests) == 5
        for request in requests:
            assert request.table_id == 3
            assert request.batch_size == 4
            assert request.total_lookups == 20

    def test_batched_requests_validation(self):
        trace = random_trace(10, 10, seed=0)
        with pytest.raises(ValueError):
            batched_requests_from_trace(trace, 0, 1)


class TestProductionTraces:
    def test_t1_has_more_locality_than_t8(self):
        generator = ProductionTraceGenerator(num_rows=500_000, seed=0)
        t1 = generator.generate_table_trace(0, 15_000)
        t8 = generator.generate_table_trace(7, 15_000)
        cache_t1 = SetAssociativeCache(4 * 1024 * 1024, associativity=4)
        cache_t8 = SetAssociativeCache(4 * 1024 * 1024, associativity=4)
        cache_t1.access_many(t1.indices * 64)
        cache_t8.access_many(t8.indices * 64)
        assert cache_t1.hit_rate > cache_t8.hit_rate

    def test_comb8_hit_rate_in_paper_band(self):
        # Fig. 7(a): Comb-8 on an 8-64 MB cache sees roughly 20-60% hits.
        traces = make_production_table_traces(num_lookups_per_table=8_000,
                                              num_rows=1_000_000, seed=0)
        combined = make_combined_trace(traces)
        cache = SetAssociativeCache(16 * 1024 * 1024, associativity=4)
        for _, row in combined.interleaved():
            cache.access(row * 64)
        assert 0.15 < cache.hit_rate < 0.65

    def test_table_names(self):
        traces = make_production_table_traces(num_lookups_per_table=100,
                                              seed=0)
        assert [t.name for t in traces] == ["T%d" % i for i in range(1, 9)]

    def test_combined_multiplier(self):
        traces = make_production_table_traces(num_lookups_per_table=100,
                                              seed=0)
        combined = make_combined_trace(traces, multiplier=2)
        assert combined.num_tables == 16
        assert len(combined) == 1600

    def test_table_parameters_monotone(self):
        generator = ProductionTraceGenerator(num_tables=8)
        hot_probabilities = [generator.table_parameters(i)["hot_probability"]
                             for i in range(8)]
        assert hot_probabilities == sorted(hot_probabilities, reverse=True)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            ProductionTraceGenerator(num_tables=0)
        with pytest.raises(IndexError):
            ProductionTraceGenerator(num_tables=4).table_parameters(4)
        with pytest.raises(ValueError):
            make_combined_trace([], multiplier=0)


class TestTraceProperties:
    @given(num_rows=st.integers(min_value=10, max_value=10_000),
           lookups=st.integers(min_value=1, max_value=2000),
           seed=st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=20, deadline=None)
    def test_random_trace_within_bounds(self, num_rows, lookups, seed):
        trace = random_trace(num_rows, lookups, seed=seed)
        assert len(trace) == lookups
        assert trace.indices.min() >= 0
        assert trace.indices.max() < num_rows

    @given(multiplier=st.integers(min_value=1, max_value=4),
           block=st.integers(min_value=1, max_value=8))
    @settings(max_examples=10, deadline=None)
    def test_combined_length_scales_with_multiplier(self, multiplier, block):
        traces = make_production_table_traces(num_lookups_per_table=50,
                                              num_rows=10_000, num_tables=4,
                                              seed=1)
        combined = make_combined_trace(traces, multiplier=multiplier,
                                       block_size=block)
        assert len(combined) == 4 * 50 * multiplier
        assert len(combined.interleaved_array()) == len(combined)
