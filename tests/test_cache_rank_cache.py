"""Tests for repro.cache.rank_cache (the memory-side RankCache)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.rank_cache import RankCache


class TestRankCacheBehaviour:
    def test_miss_then_hit(self):
        cache = RankCache(capacity_bytes=1024, vector_size_bytes=64)
        assert cache.lookup(100) is False
        assert cache.lookup(100) is True

    def test_bypass_does_not_allocate(self):
        cache = RankCache(capacity_bytes=1024, vector_size_bytes=64)
        assert cache.lookup(7, locality_hint=False) is False
        assert cache.lookup(7, locality_hint=True) is False   # still a miss
        assert cache.stats.bypasses == 1
        assert cache.stats.misses == 1

    def test_bypass_does_not_evict(self):
        cache = RankCache(capacity_bytes=128, vector_size_bytes=64)  # 2 slots
        cache.lookup(1)
        cache.lookup(2)
        cache.lookup(3, locality_hint=False)   # must not evict 1 or 2
        assert cache.contains(1)
        assert cache.contains(2)
        assert not cache.contains(3)

    def test_bypassed_entry_can_still_hit_if_resident(self):
        cache = RankCache(capacity_bytes=1024, vector_size_bytes=64)
        cache.lookup(5, locality_hint=True)
        # Even with the hint cleared, a resident vector is a hit.
        assert cache.lookup(5, locality_hint=False) is True

    def test_lru_eviction(self):
        cache = RankCache(capacity_bytes=128, vector_size_bytes=64)
        cache.lookup(1)
        cache.lookup(2)
        cache.lookup(1)
        cache.lookup(3)
        assert cache.contains(1)
        assert not cache.contains(2)

    def test_capacity_in_vectors(self):
        cache = RankCache(capacity_bytes=128 * 1024, vector_size_bytes=256)
        assert cache.num_entries == 512

    def test_hit_rate_counts_bypasses_as_misses(self):
        cache = RankCache(capacity_bytes=1024)
        cache.lookup(1)                          # miss
        cache.lookup(1)                          # hit
        cache.lookup(2, locality_hint=False)     # bypass
        assert cache.stats.lookups == 3
        assert cache.hit_rate == pytest.approx(1 / 3)

    def test_flush_and_reset(self):
        cache = RankCache(capacity_bytes=1024)
        cache.lookup(1)
        cache.flush()
        assert cache.occupancy == 0
        cache.reset_stats()
        assert cache.stats.lookups == 0

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            RankCache(capacity_bytes=0)
        with pytest.raises(ValueError):
            RankCache(vector_size_bytes=0)
        with pytest.raises(ValueError):
            RankCache().lookup(-1)


class TestRankCacheProperties:
    @given(st.lists(st.tuples(st.integers(min_value=0, max_value=500),
                              st.booleans()),
                    min_size=1, max_size=300))
    @settings(max_examples=30, deadline=None)
    def test_occupancy_bounded(self, lookups):
        cache = RankCache(capacity_bytes=16 * 64, vector_size_bytes=64)
        for address, hint in lookups:
            cache.lookup(address, locality_hint=hint)
        assert cache.occupancy <= cache.num_entries

    @given(st.lists(st.integers(min_value=0, max_value=100),
                    min_size=1, max_size=200))
    @settings(max_examples=30, deadline=None)
    def test_counters_consistent(self, addresses):
        cache = RankCache(capacity_bytes=8 * 64, vector_size_bytes=64)
        for address in addresses:
            cache.lookup(address)
        stats = cache.stats
        assert stats.hits + stats.misses == len(addresses)
        assert stats.bypasses == 0

    @given(st.lists(st.integers(min_value=0, max_value=1000),
                    min_size=1, max_size=200))
    @settings(max_examples=20, deadline=None)
    def test_all_bypass_never_caches(self, addresses):
        cache = RankCache(capacity_bytes=8 * 64, vector_size_bytes=64)
        for address in addresses:
            cache.lookup(address, locality_hint=False)
        assert cache.occupancy == 0
        assert cache.stats.hits == 0
