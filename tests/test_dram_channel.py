"""Tests for repro.dram.channel."""

import pytest

from repro.dram.channel import Channel
from repro.dram.commands import CommandType
from repro.dram.timing import DDR4_2400


@pytest.fixture
def channel():
    return Channel(DDR4_2400, num_dimms=2, ranks_per_dimm=2)


class TestChannelStructure:
    def test_rank_count(self, channel):
        assert channel.num_ranks == 4
        assert len(channel.ranks) == 4

    def test_global_rank_index(self, channel):
        assert channel.global_rank_index(0, 0) == 0
        assert channel.global_rank_index(0, 1) == 1
        assert channel.global_rank_index(1, 0) == 2
        assert channel.global_rank_index(1, 1) == 3

    def test_global_rank_index_bounds(self, channel):
        with pytest.raises(IndexError):
            channel.global_rank_index(2, 0)
        with pytest.raises(IndexError):
            channel.global_rank_index(0, 2)

    def test_rank_lookup_bounds(self, channel):
        with pytest.raises(IndexError):
            channel.rank(4)

    def test_rejects_bad_population(self):
        with pytest.raises(ValueError):
            Channel(DDR4_2400, num_dimms=0)


class TestChannelBuses:
    def test_ca_bus_one_command_per_cycle(self, channel):
        channel.issue(CommandType.ACT, 0, 0, 0, 1, 0)
        assert not channel.ca_bus_free(0)
        assert channel.ca_bus_free(1)
        # A second command in the same cycle is illegal even to another rank.
        assert not channel.can_issue(CommandType.ACT, 1, 0, 0, 0)
        assert channel.can_issue(CommandType.ACT, 1, 0, 0, 1)

    def test_data_bus_shared_across_ranks(self, channel):
        channel.issue(CommandType.ACT, 0, 0, 0, 1, 0)
        channel.issue(CommandType.ACT, 1, 0, 0, 1, DDR4_2400.tRRD_S)
        rd_cycle = channel.earliest_issue_cycle(CommandType.RD, 0, 0, 0, 0)
        done0 = channel.issue(CommandType.RD, 0, 0, 0, 1, rd_cycle)
        rd_cycle_1 = channel.earliest_issue_cycle(CommandType.RD, 1, 0, 0,
                                                  rd_cycle + 1)
        done1 = channel.issue(CommandType.RD, 1, 0, 0, 1, rd_cycle_1)
        # The second rank's burst must wait for the shared bus plus the
        # rank-to-rank switch penalty.
        assert done1 >= done0 + DDR4_2400.tBL

    def test_illegal_issue_raises(self, channel):
        channel.issue(CommandType.ACT, 0, 0, 0, 1, 0)
        with pytest.raises(RuntimeError):
            channel.issue(CommandType.ACT, 1, 0, 0, 1, 0)

    def test_stats(self, channel):
        channel.issue(CommandType.ACT, 0, 0, 0, 1, 0)
        stats = channel.stats()
        assert stats["commands_issued"] == 1
        assert stats["activations"] == 1
