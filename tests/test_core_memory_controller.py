"""Tests for repro.core.memory_controller (the NMP extension)."""

import pytest

from repro.core.instruction import (
    DDR_CMD_ACT,
    DDR_CMD_PRE,
    DDR_CMD_RD,
    NMPInstruction,
    NMPPacket,
)
from repro.core.memory_controller import (
    NMPMemoryController,
    _ReorderedPacketView,
)
from repro.core.processing_unit import RecNMPChannel
from repro.core.rank_nmp import RankNMPConfig

FULL_CMD = DDR_CMD_ACT | DDR_CMD_RD | DDR_CMD_PRE


def _packet(table_id, batch_index, packet_id, count=8, stride=997):
    instructions = [
        NMPInstruction(ddr_cmd=FULL_CMD,
                       daddr=(packet_id * 10_000 + i * stride) & 0xFFFFFFFF,
                       psum_tag=i % 4, table_id=table_id)
        for i in range(count)
    ]
    return NMPPacket(instructions=instructions, table_id=table_id,
                     batch_index=batch_index, packet_id=packet_id)


class TestSubmissionAndDispatch:
    def test_dispatch_runs_all_packets(self):
        controller = NMPMemoryController(num_ranks=4)
        channel = RecNMPChannel(num_dimms=2, ranks_per_dimm=2)
        controller.submit([_packet(0, 0, i) for i in range(3)])
        controller.submit([_packet(1, 0, 10 + i) for i in range(3)])
        total, per_packet = controller.dispatch(channel)
        assert controller.stats.packets_issued == 6
        assert controller.stats.instructions_issued == 48
        assert len(per_packet) == 6
        assert total >= max(per_packet)

    def test_per_rank_instruction_accounting(self):
        controller = NMPMemoryController(num_ranks=4)
        channel = RecNMPChannel(num_dimms=2, ranks_per_dimm=2)
        controller.submit([_packet(0, 0, 0, count=16)])
        controller.dispatch(channel)
        assert sum(controller.stats.per_rank_instructions.values()) == 16

    def test_table_aware_policy_orders_by_table(self):
        controller = NMPMemoryController(num_ranks=2,
                                         scheduling_policy="table-aware")
        controller.submit([_packet(0, 0, 0), _packet(0, 0, 1)])
        controller.submit([_packet(1, 0, 2), _packet(1, 0, 3)])
        order = controller.scheduler.schedule()
        assert [p.table_id for p in order] == [0, 0, 1, 1]

    def test_fcfs_policy_interleaves(self):
        controller = NMPMemoryController(num_ranks=2,
                                         scheduling_policy="fcfs")
        controller.submit([_packet(0, 0, 0), _packet(0, 0, 1)])
        controller.submit([_packet(1, 0, 2), _packet(1, 0, 3)])
        order = controller.scheduler.schedule()
        assert [p.table_id for p in order] == [0, 1, 0, 1]

    def test_reset(self):
        controller = NMPMemoryController(num_ranks=2)
        controller.submit([_packet(0, 0, 0)])
        controller.reset()
        assert controller.scheduler.num_packets == 0
        assert controller.stats.packets_received == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            NMPMemoryController(num_ranks=0)
        with pytest.raises(ValueError):
            NMPMemoryController(reorder_window=0)


class TestReordering:
    def test_reorder_groups_same_row(self):
        controller = NMPMemoryController(num_ranks=1, reorder_window=8)
        # Rows alternate A, B, A, B...; reordering should group them.
        instructions = [NMPInstruction(ddr_cmd=FULL_CMD,
                                       daddr=(i % 2) * 128 * 64 + i)
                        for i in range(8)]
        packet = NMPPacket(instructions=instructions)
        reordered = controller._reorder_within_packet(packet)
        rows = [inst.daddr // 128 for inst in reordered]
        transitions = sum(1 for a, b in zip(rows, rows[1:]) if a != b)
        original_rows = [inst.daddr // 128 for inst in instructions]
        original_transitions = sum(1 for a, b in
                                   zip(original_rows, original_rows[1:])
                                   if a != b)
        assert transitions <= original_transitions
        # No instruction may be lost or duplicated.
        assert sorted(i.daddr for i in reordered) == \
            sorted(i.daddr for i in instructions)

    def test_reorder_preserves_instruction_multiset(self):
        controller = NMPMemoryController(num_ranks=4, reorder_window=4)
        packet = _packet(0, 0, 0, count=12)
        reordered = controller._reorder_within_packet(packet)
        assert sorted(i.daddr for i in reordered) == \
            sorted(i.daddr for i in packet.instructions)

    def test_dispatch_without_reorder(self):
        controller = NMPMemoryController(num_ranks=2)
        channel = RecNMPChannel(num_dimms=1, ranks_per_dimm=2,
                                rank_config=RankNMPConfig(use_cache=False))
        controller.submit([_packet(0, 0, 0)])
        total, _ = controller.dispatch(channel, reorder=False)
        assert total > 0


class TestPerRankStats:
    """Regression: the once-per-packet rank computation must produce the
    same per-rank instruction statistics as re-deriving the rank per
    instruction (the old second pass)."""

    @pytest.mark.parametrize("reorder", [True, False])
    def test_stats_match_per_instruction_recomputation(self, reorder):
        controller = NMPMemoryController(num_ranks=4, reorder_window=4)
        channel = RecNMPChannel(num_dimms=2, ranks_per_dimm=2)
        packets = [_packet(t, 0, 10 * t + i, count=16, stride=641)
                   for t in range(2) for i in range(2)]
        controller.submit(packets)
        controller.dispatch(channel, reorder=reorder)
        expected = {}
        for packet in packets:
            for instruction in packet.instructions:
                rank = controller.rank_of_instruction(instruction)
                expected[rank] = expected.get(rank, 0) + 1
        assert controller.stats.per_rank_instructions == expected
        assert sum(expected.values()) == 64

    def test_vectorised_rank_mapping_matches_scalar(self):
        def ranks_of(addresses):
            return (addresses // 64) % 4

        scalar = NMPMemoryController(num_ranks=4)
        vectorised = NMPMemoryController(num_ranks=4,
                                         ranks_of_addresses=ranks_of)
        packet = _packet(0, 0, 0, count=16)
        instructions = list(packet.instructions)
        assert vectorised._packet_ranks(instructions) == \
            scalar._packet_ranks(instructions)
        assert vectorised._reorder_within_packet(packet) == \
            scalar._reorder_within_packet(packet)


class TestReorderedPacketView:
    def _view(self, count=8):
        packet = _packet(3, 1, 7, count=count)
        return packet, _ReorderedPacketView(packet,
                                            list(packet.instructions))

    def test_num_poolings_cached_and_correct(self):
        packet, view = self._view()
        assert view.num_poolings == packet.num_poolings == 4
        # Computed once at construction: later mutation of the
        # instruction list must not change the reported pooling count.
        view.instructions.pop()
        assert view.num_poolings == 4

    def test_delegates_packet_attributes(self):
        packet, view = self._view()
        assert view.table_id == packet.table_id == 3
        assert view.packet_id == packet.packet_id == 7
        assert len(view) == len(packet.instructions)

    def test_slots_reject_stray_attributes(self):
        _, view = self._view()
        with pytest.raises(AttributeError):
            view.num_pooling = 1     # typo cannot silently attach
        with pytest.raises(AttributeError):
            _ = view.not_an_attribute
