"""Tests for the unified EmbeddingSystem interface and registry."""

import numpy as np
import pytest

from repro.baselines.host import HostBaseline
from repro.core.multi_channel import MultiChannelRecNMP
from repro.core.simulator import RecNMPConfig, RecNMPSimulator
from repro.dlrm.operators import SLSRequest
from repro.dram.system import DramSystemConfig
from repro.systems import (
    SystemResult,
    TableLayout,
    available_systems,
    build_system,
    register_system,
    system_description,
)

NUM_ROWS = 512
VECTOR_BYTES = 64


def address_of(table_id, row):
    return (table_id * NUM_ROWS + row) * VECTOR_BYTES


def tiny_requests(num_tables=4, batch=2, pooling=4, seed=0):
    rng = np.random.default_rng(seed)
    requests = []
    for table in range(num_tables):
        indices = rng.integers(0, NUM_ROWS, size=batch * pooling)
        requests.append(SLSRequest(table_id=table, indices=indices,
                                   lengths=np.full(batch, pooling)))
    return requests


def build(name, **overrides):
    overrides.setdefault("address_of", address_of)
    overrides.setdefault("vector_size_bytes", VECTOR_BYTES)
    return build_system(name, **overrides)


class TestRegistry:
    def test_builtin_names_registered(self):
        names = available_systems()
        for expected in ("host", "tensordimm", "chameleon", "recnmp-base",
                         "recnmp-cache", "recnmp-sched", "recnmp-opt",
                         "recnmp-opt-4ch"):
            assert expected in names

    def test_unknown_name_raises_with_candidates(self):
        with pytest.raises(KeyError, match="recnmp-opt"):
            build_system("no-such-system")

    def test_descriptions_exist(self):
        for name in available_systems():
            assert system_description(name)

    def test_register_custom_system(self):
        from repro.systems.registry import _REGISTRY
        register_system("custom-recnmp", type(build("recnmp-opt")),
                        description="custom", use_rank_cache=False,
                        scheduling_policy="fcfs",
                        enable_hot_entry_profiling=False)
        try:
            system = build("custom-recnmp")
            assert system.config.use_rank_cache is False
            result = system.run(tiny_requests())
            assert result.total_cycles > 0
        finally:
            _REGISTRY.pop("custom-recnmp", None)

    def test_every_registered_system_runs(self):
        requests = tiny_requests()
        for name in available_systems():
            result = build(name).run(requests)
            assert isinstance(result, SystemResult)
            assert result.system == name
            assert result.total_cycles > 0
            assert result.latency_ns > 0
            assert result.num_requests == len(requests)
            assert result.num_lookups == sum(r.total_lookups
                                             for r in requests)
            assert result.speedup_vs_baseline > 0
            payload = result.as_dict()
            assert payload["system"] == name
            assert "raw" not in payload

    def test_overrides_are_applied(self):
        system = build("recnmp-opt", num_dimms=2, ranks_per_dimm=4)
        assert system.config.num_dimms == 2
        assert system.config.ranks_per_dimm == 4


class TestLegacyEquivalence:
    """Registry-built systems reproduce the legacy per-system APIs."""

    def test_recnmp_matches_legacy_simulator(self):
        requests = tiny_requests()
        config = RecNMPConfig(num_dimms=2, ranks_per_dimm=2,
                              vector_size_bytes=VECTOR_BYTES)
        legacy = RecNMPSimulator(config, address_of=address_of)
        legacy_result = legacy.run_requests(requests)
        system = build("recnmp-opt", num_dimms=2, ranks_per_dimm=2)
        result = system.run(requests)
        assert result.total_cycles == legacy_result.total_cycles
        assert result.baseline_cycles == legacy_result.baseline_cycles
        assert result.speedup_vs_baseline == \
            pytest.approx(legacy_result.speedup_vs_baseline)
        assert result.cache_hit_rate == \
            pytest.approx(legacy_result.cache_hit_rate)
        assert result.energy_nj == pytest.approx(legacy_result.energy_nj)
        assert result.raw.num_packets == legacy_result.num_packets

    def test_host_matches_legacy_run_trace(self):
        requests = tiny_requests()
        addresses = [address_of(r.table_id, int(row))
                     for r in requests for row in r.indices]
        legacy = HostBaseline(dram_config=DramSystemConfig(
            num_channels=1, dimms_per_channel=4, ranks_per_dimm=2))
        legacy_result = legacy.run_trace(addresses,
                                         vector_bytes=VECTOR_BYTES)
        result = build("host").run(requests)
        assert result.total_cycles == legacy_result.cycles
        assert result.latency_ns == pytest.approx(legacy_result.latency_ns)
        assert result.speedup_vs_baseline == 1.0

    def test_multichannel_matches_legacy_coordinator(self):
        requests = tiny_requests(num_tables=6)
        config = RecNMPConfig(vector_size_bytes=VECTOR_BYTES)
        legacy = MultiChannelRecNMP(num_channels=2, channel_config=config,
                                    address_of=address_of, max_workers=1)
        legacy_result = legacy.run_requests(requests)
        result = build("recnmp-opt-4ch", num_channels=2).run(requests)
        assert result.total_cycles == legacy_result.total_cycles
        assert result.extras["per_channel_cycles"] == \
            legacy_result.per_channel_cycles
        assert result.speedup_vs_baseline == \
            pytest.approx(legacy_result.speedup_vs_baseline)

    def test_concurrent_channels_match_sequential(self):
        requests = tiny_requests(num_tables=6)
        config = RecNMPConfig(vector_size_bytes=VECTOR_BYTES)
        sequential = MultiChannelRecNMP(
            num_channels=3, channel_config=config, address_of=address_of,
            max_workers=1).run_requests(requests)
        concurrent = MultiChannelRecNMP(
            num_channels=3, channel_config=config,
            address_of=address_of).run_requests(requests)
        assert concurrent.total_cycles == sequential.total_cycles
        assert concurrent.per_channel_cycles == \
            sequential.per_channel_cycles
        assert concurrent.energy_nj == pytest.approx(sequential.energy_nj)

    def test_tensordimm_scales_with_dimms_only(self):
        requests = tiny_requests()
        one = build("tensordimm", num_dimms=1, ranks_per_dimm=2)
        four = build("tensordimm", num_dimms=4, ranks_per_dimm=2)
        more_ranks = build("tensordimm", num_dimms=1, ranks_per_dimm=4)
        assert four.run(requests).speedup_vs_baseline == \
            pytest.approx(4 * one.run(requests).speedup_vs_baseline)
        assert more_ranks.run(requests).speedup_vs_baseline == \
            pytest.approx(one.run(requests).speedup_vs_baseline)


class TestSystemBehaviour:
    def test_run_is_order_independent(self):
        """Repeated run() calls reproduce the fresh-simulator result."""
        requests_a = tiny_requests(seed=0)
        requests_b = tiny_requests(seed=1)
        system = build("recnmp-opt")
        fresh = build("recnmp-opt").run(requests_b)
        system.run(requests_a)
        reused = system.run(requests_b)
        assert reused.total_cycles == fresh.total_cycles
        assert reused.cache_hit_rate == pytest.approx(fresh.cache_hit_rate)

    def test_default_layout_used_without_address_of(self):
        requests = tiny_requests(num_tables=2)
        system = build_system("recnmp-opt", vector_size_bytes=VECTOR_BYTES,
                              table_rows=NUM_ROWS)
        result = system.run(requests)
        assert result.total_cycles > 0

    def test_table_layout_addresses(self):
        layout = TableLayout(num_rows=100, vector_bytes=64)
        assert layout.address_of(0, 0) == 0
        assert layout.address_of(0, 1) == 64
        assert layout.address_of(2, 3) == (2 * 100 + 3) * 64
        with pytest.raises(ValueError):
            TableLayout(num_rows=0)
        with pytest.raises(ValueError):
            TableLayout(vector_bytes=100)

    def test_run_trace_convenience(self):
        from repro.traces import random_trace
        trace = random_trace(NUM_ROWS, 64, table_id=0, seed=0)
        result = build("recnmp-base").run_trace(trace, batch_size=2,
                                                pooling_factor=4)
        assert result.num_requests == 8
        assert result.total_cycles > 0
