"""Tests for repro.core.ca_bandwidth, energy, and area_power."""

import pytest

from repro.core.area_power import AreaPowerModel
from repro.core.ca_bandwidth import CABandwidthModel
from repro.core.energy import NMPEnergyParameters, RecNMPEnergyModel


class TestCABandwidth:
    def test_worst_case_64b_utilization(self):
        # Section III-B: 64 B vectors with no locality consume 75% of the
        # C/A bandwidth (3 commands per 4-cycle burst window).
        model = CABandwidthModel()
        assert model.conventional_commands_per_vector(64) == 3
        assert model.conventional_ca_utilization(64) == pytest.approx(0.75)
        assert model.conventional_max_parallel_ranks(64) == 1

    def test_expansion_factor_is_8x_for_64b(self):
        model = CABandwidthModel()
        assert model.nmp_max_parallel_ranks(64) == 8
        assert model.expansion_factor(64) == pytest.approx(8.0)

    def test_larger_vectors_expand_more_or_equal(self):
        model = CABandwidthModel()
        assert model.expansion_factor(256) >= model.expansion_factor(64)

    def test_row_hits_reduce_command_count(self):
        model = CABandwidthModel()
        assert model.conventional_commands_per_vector(
            64, row_hit_fraction=1.0) == 1
        assert model.conventional_commands_per_vector(
            64, row_hit_fraction=0.5) == 2

    def test_summary_fields(self):
        summary = CABandwidthModel().summary(64)
        assert summary["instruction_bits"] == 79
        assert summary["nmp_max_parallel_ranks"] == 8

    def test_validation(self):
        model = CABandwidthModel()
        with pytest.raises(ValueError):
            model.conventional_commands_per_vector(100)
        with pytest.raises(ValueError):
            model.conventional_commands_per_vector(64, row_hit_fraction=1.5)
        with pytest.raises(ValueError):
            CABandwidthModel(nmp_insts_per_cycle=0)


class TestEnergyModel:
    def test_baseline_energy_components(self):
        model = RecNMPEnergyModel()
        report = model.baseline_energy(num_lookups=100, vector_bytes=64,
                                       activations=100, elapsed_ns=1000.0,
                                       active_ranks=8)
        assert report.activate_nj == pytest.approx(100 * 2.1)
        assert report.offchip_io_nj > 0
        assert report.rankcache_nj == 0.0

    def test_recnmp_moves_less_offchip_data(self):
        model = RecNMPEnergyModel()
        baseline = model.baseline_energy(num_lookups=1000, vector_bytes=64,
                                         activations=1000, elapsed_ns=1e4,
                                         active_ranks=8)
        recnmp = model.recnmp_energy(num_lookups=1000, vector_bytes=64,
                                     activations=800, cache_hits=200,
                                     elapsed_ns=2e3, num_outputs=10,
                                     active_ranks=8)
        assert recnmp.offchip_io_nj < baseline.offchip_io_nj
        assert recnmp.total_nj < baseline.total_nj

    def test_savings_in_papers_ballpark(self):
        # With a ~20% hit rate and a 5x faster execution the savings land in
        # the vicinity of the paper's 45.8%.
        model = RecNMPEnergyModel()
        baseline = model.baseline_energy(num_lookups=10_000, vector_bytes=128,
                                         activations=9_000, elapsed_ns=1e5,
                                         active_ranks=8)
        recnmp = model.recnmp_energy(num_lookups=10_000, vector_bytes=128,
                                     activations=7_000, cache_hits=2_000,
                                     elapsed_ns=2e4, num_outputs=100,
                                     active_ranks=8)
        savings = model.savings_fraction(baseline, recnmp)
        assert 0.3 < savings < 0.7

    def test_cache_hits_reduce_dram_energy(self):
        model = RecNMPEnergyModel()
        cold = model.recnmp_energy(1000, 64, 1000, cache_hits=0,
                                   elapsed_ns=1e3, num_outputs=10)
        warm = model.recnmp_energy(1000, 64, 600, cache_hits=400,
                                   elapsed_ns=1e3, num_outputs=10)
        assert warm.dram_read_nj < cold.dram_read_nj

    def test_weighted_adds_multiplier_energy(self):
        model = RecNMPEnergyModel()
        plain = model.recnmp_energy(100, 64, 100, 0, 1e3, 1, weighted=False)
        weighted = model.recnmp_energy(100, 64, 100, 0, 1e3, 1, weighted=True)
        assert weighted.compute_nj > plain.compute_nj

    def test_savings_fraction_validation(self):
        model = RecNMPEnergyModel()
        empty = model.baseline_energy(0, 64, 0, 0.0)
        with pytest.raises(ValueError):
            model.savings_fraction(empty, empty)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            NMPEnergyParameters(fp32_add_pj=-1)


class TestAreaPower:
    def test_recnmp_base_matches_table2(self):
        report = AreaPowerModel.recnmp_base().estimate()
        assert report.area_mm2 == pytest.approx(0.34, abs=0.01)
        assert report.power_mw == pytest.approx(151.3, abs=0.5)

    def test_recnmp_opt_matches_table2(self):
        report = AreaPowerModel.recnmp_opt().estimate()
        assert report.area_mm2 == pytest.approx(0.54, abs=0.01)
        assert report.power_mw == pytest.approx(184.2, abs=0.5)

    def test_chameleon_reference(self):
        report = AreaPowerModel.chameleon_reference()
        assert report.area_mm2 == pytest.approx(8.34)

    def test_fraction_of_chameleon_and_dimm_power(self):
        # The paper: RecNMP is 4.1%/6.5% of Chameleon's area and 4.6-5.9% of
        # its power; the PU is a small fraction of a DIMM's 13 W budget.
        base = AreaPowerModel.recnmp_base().estimate()
        opt = AreaPowerModel.recnmp_opt().estimate()
        chameleon = AreaPowerModel.chameleon_reference()
        assert base.area_mm2 / chameleon.area_mm2 == pytest.approx(0.041,
                                                                   abs=0.005)
        assert opt.area_mm2 / chameleon.area_mm2 == pytest.approx(0.065,
                                                                  abs=0.005)
        assert 0.04 < base.power_mw / chameleon.power_mw < 0.07
        assert 0.04 < opt.power_mw / chameleon.power_mw < 0.07
        assert base.power_fraction_of_dimm() < 0.02
        assert base.area_fraction_of_buffer_chip() < 0.01

    def test_overhead_scales_with_ranks(self):
        two = AreaPowerModel.recnmp_opt(num_ranks=2).estimate()
        four = AreaPowerModel.recnmp_opt(num_ranks=4).estimate()
        assert four.area_mm2 > two.area_mm2
        assert four.power_mw > two.power_mw

    def test_recnmp_much_smaller_than_chameleon(self):
        opt = AreaPowerModel.recnmp_opt().estimate()
        chameleon = AreaPowerModel.chameleon_reference()
        assert opt.area_mm2 < chameleon.area_mm2 / 10
        assert opt.power_mw < chameleon.power_mw / 10

    def test_comparison_table_keys(self):
        table = AreaPowerModel.comparison_table()
        assert set(table) == {"RecNMP-base", "RecNMP-opt", "Chameleon"}

    def test_validation(self):
        with pytest.raises(ValueError):
            AreaPowerModel(num_ranks=0)
        with pytest.raises(ValueError):
            AreaPowerModel(rankcache_kb=-1)
