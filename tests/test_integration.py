"""Integration tests: qualitative claims of the paper, end to end.

These tests wire the full pipeline together on reduced-size workloads (small
tables, short traces) and check the *shape* of the paper's results: rank
scaling, the benefit of the memory-side cache and its co-optimisations, the
ordering of RecNMP against the prior NMP baselines, and the end-to-end
speedup composition.
"""

import numpy as np
import pytest

from repro.baselines.chameleon import Chameleon
from repro.baselines.tensordimm import TensorDIMM
from repro.cache.set_associative import SetAssociativeCache
from repro.core.simulator import RecNMPConfig, RecNMPSimulator
from repro.dlrm.config import RM2_LARGE
from repro.dlrm.embedding import EmbeddingBag
from repro.dlrm.model import DLRMModel
from repro.dlrm.config import scaled_config, RM1_SMALL
from repro.dlrm.operators import SLSRequest, sparse_lengths_sum
from repro.perf.end_to_end import EndToEndModel
from repro.traces.production import (
    make_combined_trace,
    make_production_table_traces,
)
from repro.traces.synthetic import batched_requests_from_trace, random_trace

NUM_ROWS = 20_000
VECTOR_BYTES = 128


def _address_of(table_id, row):
    return table_id * NUM_ROWS * VECTOR_BYTES + row * VECTOR_BYTES


def _requests_from_traces(traces, batch=4, pooling=16):
    requests = []
    for trace in traces:
        requests.extend(batched_requests_from_trace(trace, batch, pooling)[:1])
    return requests


def _production_requests(seed=0, num_tables=4, batch=4, pooling=16):
    traces = make_production_table_traces(
        num_lookups_per_table=batch * pooling, num_rows=NUM_ROWS,
        num_tables=num_tables, seed=seed)
    return _requests_from_traces(traces, batch, pooling)


def _random_requests(seed=0, num_tables=4, batch=4, pooling=16):
    traces = [random_trace(NUM_ROWS, batch * pooling, table_id=i,
                           seed=seed + i) for i in range(num_tables)]
    return _requests_from_traces(traces, batch, pooling)


def _run(config_kwargs, requests):
    config = RecNMPConfig(vector_size_bytes=VECTOR_BYTES, **config_kwargs)
    simulator = RecNMPSimulator(config, address_of=_address_of)
    return simulator.run_requests(requests)


class TestRankScaling:
    """Fig. 14(a): SLS latency scales with the number of active ranks."""

    @pytest.mark.parametrize("small,large", [
        (dict(num_dimms=1, ranks_per_dimm=2),
         dict(num_dimms=2, ranks_per_dimm=2)),
        (dict(num_dimms=2, ranks_per_dimm=2),
         dict(num_dimms=4, ranks_per_dimm=2)),
    ])
    def test_more_ranks_lower_latency(self, small, large):
        requests = _random_requests(seed=1)
        cycles_small = _run({**small, "use_rank_cache": False},
                            requests).total_cycles
        cycles_large = _run({**large, "use_rank_cache": False},
                            requests).total_cycles
        assert cycles_large < cycles_small

    def test_8_rank_base_speedup_in_paper_band(self):
        # Paper: 8-rank RecNMP-base reaches 3.37-7.35x over the DRAM baseline.
        result = _run(dict(num_dimms=4, ranks_per_dimm=2,
                           use_rank_cache=False), _random_requests(seed=2))
        assert 2.5 < result.speedup_vs_baseline < 8.5

    def test_page_coloring_reduces_imbalance(self):
        requests = _random_requests(seed=3, num_tables=8)
        address = _run(dict(num_dimms=4, ranks_per_dimm=2,
                            rank_assignment="address"), requests)
        colored = _run(dict(num_dimms=4, ranks_per_dimm=2,
                            rank_assignment="page-coloring"), requests)
        assert colored.load_imbalance <= address.load_imbalance + 0.02


class TestOptimizationLadder:
    """Fig. 15(a): base -> +cache -> +schedule -> +profile improves latency."""

    def test_cache_and_optimizations_help_production_traces(self):
        requests = _production_requests(seed=4, batch=4, pooling=32)
        base = _run(dict(num_dimms=4, ranks_per_dimm=2,
                         use_rank_cache=False), requests)
        cache = _run(dict(num_dimms=4, ranks_per_dimm=2, use_rank_cache=True,
                          scheduling_policy="fcfs",
                          enable_hot_entry_profiling=False), requests)
        optimised = _run(dict(num_dimms=4, ranks_per_dimm=2,
                              use_rank_cache=True,
                              scheduling_policy="table-aware",
                              enable_hot_entry_profiling=True), requests)
        assert cache.total_cycles <= base.total_cycles
        assert optimised.total_cycles <= cache.total_cycles * 1.05
        assert optimised.speedup_vs_baseline > base.speedup_vs_baseline

    def test_production_traces_beat_random_traces_with_cache(self):
        # Fig. 16 (shaded): RecNMP-opt extracts extra performance from the
        # locality of production traces, unlike the cache-less baselines.
        config = dict(num_dimms=4, ranks_per_dimm=2, use_rank_cache=True)
        production = _run(config, _production_requests(seed=5, pooling=32))
        random_result = _run(config, _random_requests(seed=5, pooling=32))
        assert production.cache_hit_rate > random_result.cache_hit_rate
        assert production.speedup_vs_baseline > \
            random_result.speedup_vs_baseline


class TestBaselineOrdering:
    """Fig. 16: RecNMP-opt > TensorDIMM > Chameleon at equal DIMM count."""

    def test_ordering_at_4x2(self):
        # Use a full-size packet (8 poolings x 40 lookups) so the per-packet
        # overheads are amortised the way the paper's workloads amortise them.
        recnmp = _run(dict(num_dimms=4, ranks_per_dimm=2),
                      _production_requests(seed=6, batch=8, pooling=40))
        tensordimm = TensorDIMM(num_dimms=4,
                                ranks_per_dimm=2).memory_latency_speedup()
        chameleon = Chameleon(num_dimms=4,
                              ranks_per_dimm=2).memory_latency_speedup()
        assert recnmp.speedup_vs_baseline > tensordimm > chameleon > 1.0

    def test_rank_level_scaling_beats_dimm_level(self):
        # Increasing ranks per DIMM helps RecNMP but not the DIMM-level
        # baselines.
        recnmp_1x2 = _run(dict(num_dimms=1, ranks_per_dimm=2),
                          _production_requests(seed=7, pooling=32))
        recnmp_1x4 = _run(dict(num_dimms=1, ranks_per_dimm=4),
                          _production_requests(seed=7, pooling=32))
        assert recnmp_1x4.total_cycles < recnmp_1x2.total_cycles
        assert TensorDIMM(num_dimms=1, ranks_per_dimm=4). \
            memory_latency_speedup() == \
            TensorDIMM(num_dimms=1, ranks_per_dimm=2).memory_latency_speedup()


class TestEnergyAndEndToEnd:
    def test_memory_energy_savings_in_paper_ballpark(self):
        # Paper headline: 45.8% memory energy savings.
        result = _run(dict(num_dimms=4, ranks_per_dimm=2),
                      _production_requests(seed=8, pooling=32))
        assert 0.25 < result.energy_savings_fraction < 0.75

    def test_end_to_end_speedup_composition(self):
        # Feeding the simulated SLS speedup into the end-to-end model gives
        # a throughput improvement comparable to the paper's 4.2x headline.
        sls = _run(dict(num_dimms=4, ranks_per_dimm=2),
                   _production_requests(seed=9, pooling=32))
        model = EndToEndModel()
        end_to_end = model.speedup(RM2_LARGE, 256,
                                   sls_speedup=sls.speedup_vs_baseline)
        assert 1.5 < end_to_end.end_to_end_speedup < 7.0
        assert end_to_end.end_to_end_speedup < sls.speedup_vs_baseline


class TestLocalityCharacterisation:
    """Section II-F: production traces show temporal, not spatial, locality."""

    def test_hit_rate_grows_with_cache_size(self):
        traces = make_production_table_traces(num_lookups_per_table=4000,
                                              num_rows=1_000_000, seed=10)
        combined = make_combined_trace(traces)
        accesses = [row * 64 for _, row in combined.interleaved()]
        hit_rates = []
        for capacity_mb in (8, 32):
            cache = SetAssociativeCache(capacity_mb * 1024 * 1024,
                                        associativity=4)
            cache.access_many(accesses)
            hit_rates.append(cache.hit_rate)
        assert hit_rates[1] >= hit_rates[0]
        assert hit_rates[0] > 0.1

    def test_random_trace_hit_rate_below_5_percent(self):
        trace = random_trace(1_000_000, 30_000, seed=11)
        cache = SetAssociativeCache(16 * 1024 * 1024, associativity=4)
        cache.access_many(trace.indices * 64)
        assert cache.hit_rate < 0.05

    def test_no_spatial_locality(self):
        # Fig. 7(b): growing the cacheline size does not help (capacity is
        # wasted on never-used neighbours).
        traces = make_production_table_traces(num_lookups_per_table=4000,
                                              num_rows=1_000_000, seed=12)
        combined = make_combined_trace(traces)
        accesses = [row * 256 for _, row in combined.interleaved()]
        small_lines = SetAssociativeCache(16 * 1024 * 1024,
                                          line_size_bytes=64,
                                          associativity=4)
        large_lines = SetAssociativeCache(16 * 1024 * 1024,
                                          line_size_bytes=512,
                                          associativity=4)
        small_lines.access_many(accesses)
        large_lines.access_many(accesses)
        assert large_lines.hit_rate <= small_lines.hit_rate + 0.02


class TestFunctionalCorrectness:
    """The NMP datapath's pooling semantics match the NumPy SLS reference."""

    def test_dlrm_model_with_production_indices_runs(self):
        config = scaled_config(RM1_SMALL, num_embedding_tables=2)
        model = DLRMModel(config, rows_override=512, seed=0)
        traces = make_production_table_traces(num_lookups_per_table=160,
                                              num_rows=512, num_tables=2,
                                              seed=13)
        dense, requests = model.random_inputs(
            4, pooling_factor=8,
            index_sampler=lambda table, count: traces[table].indices[:count])
        output = model.forward(dense, requests)
        assert output.predictions.shape == (4,)
        assert np.isfinite(output.predictions).all()

    def test_psum_accumulation_counts_match_pooling_sizes(self):
        # The rank-NMP PsumTag bookkeeping must account for every vector of
        # every pooling exactly once.
        from repro.core.packet_generator import (
            PacketGenerator,
            PacketGeneratorConfig,
        )
        from repro.core.processing_unit import RecNMPChannel

        rng = np.random.default_rng(14)
        request = SLSRequest(table_id=0,
                             indices=rng.integers(0, NUM_ROWS, size=48),
                             lengths=np.full(6, 8))
        generator = PacketGenerator(
            PacketGeneratorConfig(poolings_per_packet=8,
                                  enable_hot_entry_profiling=False),
            address_of=_address_of)
        packets = generator.packets_for_request(request)
        channel = RecNMPChannel(num_dimms=1, ranks_per_dimm=2)
        for packet in packets:
            channel.execute_packet(packet)
        accumulated = sum(
            sum(rank._psum_counts.values())
            for rank in channel.all_rank_nmps())
        assert accumulated == 48

    def test_embedding_bag_lookup_equals_reference(self):
        bag = EmbeddingBag(num_tables=1, num_rows=64, embedding_dim=8, seed=5)
        indices = np.array([1, 5, 9, 1, 33, 7])
        lengths = np.array([3, 3])
        request = SLSRequest(table_id=0, indices=indices, lengths=lengths)
        output = bag.forward([request])[0]
        expected = sparse_lengths_sum(bag[0].weights, indices, lengths)
        np.testing.assert_allclose(output, expected, rtol=1e-6)
