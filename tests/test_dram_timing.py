"""Tests for repro.dram.timing."""

import pytest

from repro.dram.timing import DDR4_2400, ChannelSpec, DDR4Timing


class TestDDR4Timing:
    def test_table1_defaults(self):
        # The defaults must match Table I of the paper.
        t = DDR4_2400
        assert t.tRC == 55
        assert t.tRCD == 16
        assert t.tCL == 16
        assert t.tRP == 16
        assert t.tBL == 4
        assert t.tCCD_S == 4
        assert t.tCCD_L == 6
        assert t.tRRD_S == 4
        assert t.tRRD_L == 6
        assert t.tFAW == 26

    def test_data_rate(self):
        assert DDR4_2400.data_rate_mts == pytest.approx(2400.0)

    def test_cycle_time(self):
        assert DDR4_2400.cycle_time_ns == pytest.approx(1000.0 / 1200.0)

    def test_read_latency(self):
        assert DDR4_2400.read_latency_cycles() == 16 + 16 + 4

    def test_row_miss_penalty(self):
        assert DDR4_2400.row_miss_penalty_cycles() == 16 + 16

    def test_frozen(self):
        with pytest.raises(Exception):
            DDR4_2400.tRC = 10

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            DDR4Timing(tRCD=0)
        with pytest.raises(ValueError):
            DDR4Timing(clock_mhz=-1)

    def test_rejects_inconsistent_ras(self):
        with pytest.raises(ValueError):
            DDR4Timing(tRAS=100, tRP=16, tRC=55)

    def test_custom_timing(self):
        slow = DDR4Timing(clock_mhz=800.0)
        assert slow.data_rate_mts == pytest.approx(1600.0)
        assert slow.cycle_time_ns > DDR4_2400.cycle_time_ns


class TestChannelSpec:
    def test_peak_bandwidth(self):
        spec = ChannelSpec()
        # DDR4-2400 x 64-bit bus = 19.2 GB/s per channel.
        assert spec.peak_bandwidth_gbps == pytest.approx(19.2)

    def test_four_channels_match_paper_peak(self):
        spec = ChannelSpec()
        assert 4 * spec.peak_bandwidth_gbps == pytest.approx(76.8)
