"""Tests for the persistent cross-run service-time store."""

import pickle

import pytest

from repro.core import kernels
from repro.perf import service_store
from repro.perf.service_store import (
    STORE_DIR_ENV,
    STORE_FILENAME,
    ServiceTimeStore,
    batch_key_digest,
    default_store_path,
    resolve_service_store,
    stable_fingerprint,
)

CONFIG = "config-fingerprint"
KEY = ("deadbeef", "cafebabe")


class TestStableFingerprint:
    def test_deterministic_and_content_sensitive(self):
        value = {"b": 2, "a": [1, (2, 3)]}
        assert stable_fingerprint(value) == stable_fingerprint(
            {"a": [1, (2, 3)], "b": 2})
        assert stable_fingerprint(value) != stable_fingerprint(
            {"a": [1, (2, 4)], "b": 2})

    def test_callables_render_without_addresses(self):
        # Two lookups of the same module-level function must agree even
        # though the default repr embeds a memory address.
        assert stable_fingerprint(default_store_path) == \
            stable_fingerprint(default_store_path)
        assert "<callable" in service_store._stable_repr(default_store_path)

    def test_bound_methods_carry_their_type(self, tmp_path):
        store = ServiceTimeStore(tmp_path / "store.sqlite")
        text = service_store._stable_repr(store.stats)
        assert "ServiceTimeStore" in text
        store.close()

    def test_batch_key_digest_is_stable(self):
        assert batch_key_digest(KEY) == batch_key_digest(("deadbeef",
                                                          "cafebabe"))
        assert batch_key_digest(KEY) != batch_key_digest(KEY + ("00",))


class TestDefaultPath:
    def test_env_dir_wins(self, tmp_path, monkeypatch):
        monkeypatch.setenv(STORE_DIR_ENV, str(tmp_path / "cache"))
        assert default_store_path() == tmp_path / "cache" / STORE_FILENAME

    def test_xdg_fallback(self, tmp_path, monkeypatch):
        monkeypatch.delenv(STORE_DIR_ENV, raising=False)
        monkeypatch.setenv("XDG_CACHE_HOME", str(tmp_path / "xdg"))
        assert default_store_path() == \
            tmp_path / "xdg" / "repro" / STORE_FILENAME


class TestServiceTimeStore:
    def test_round_trip_and_counters(self, tmp_path):
        with ServiceTimeStore(tmp_path / "store.sqlite") as store:
            assert store.get(CONFIG, KEY) is None          # miss
            store.put(CONFIG, KEY, 123.5)
            assert store.get(CONFIG, KEY) == 123.5         # hit
            assert len(store) == 1
            stats = store.stats()
            assert stats["hits"] == 1
            assert stats["misses"] == 1
            assert stats["puts"] == 1

    def test_entries_survive_reopen(self, tmp_path):
        path = tmp_path / "store.sqlite"
        with ServiceTimeStore(path) as store:
            store.put(CONFIG, KEY, 7.0)
        with ServiceTimeStore(path) as store:
            assert store.get(CONFIG, KEY) == 7.0

    def test_config_namespaces_are_disjoint(self, tmp_path):
        with ServiceTimeStore(tmp_path / "store.sqlite") as store:
            store.put("config-a", KEY, 1.0)
            assert store.get("config-b", KEY) is None
            store.invalidate("config-b")
            assert store.get("config-a", KEY) == 1.0
            store.invalidate("config-a")
            assert store.get("config-a", KEY) is None

    def test_kernel_flavor_is_part_of_the_key(self, tmp_path):
        with ServiceTimeStore(tmp_path / "store.sqlite") as store:
            store.put(CONFIG, KEY, 5.0)
            with kernels.force_flavor("disabled"):
                # A different command-issue kernel flavour must miss.
                assert store.get(CONFIG, KEY) is None
                store.put(CONFIG, KEY, 6.0)
            assert store.get(CONFIG, KEY) == 5.0
            assert len(store) == 2

    def test_invalidate_all(self, tmp_path):
        with ServiceTimeStore(tmp_path / "store.sqlite") as store:
            store.put_many(CONFIG, [(KEY, 1.0), (("aa",), 2.0)])
            assert len(store) == 2
            store.invalidate()
            assert len(store) == 0

    def test_schema_version_bump_drops_entries(self, tmp_path,
                                               monkeypatch):
        path = tmp_path / "store.sqlite"
        with ServiceTimeStore(path) as store:
            store.put(CONFIG, KEY, 9.0)
        monkeypatch.setattr(service_store, "SCHEMA_VERSION", 999)
        with ServiceTimeStore(path) as store:
            assert len(store) == 0
            assert store.get(CONFIG, KEY) is None

    def test_broken_store_degrades_to_miss(self, tmp_path):
        # A directory is not a database: the store must come up broken
        # and every operation must be a quiet no-op / miss.
        store = ServiceTimeStore(tmp_path)
        assert store.get(CONFIG, KEY) is None
        store.put(CONFIG, KEY, 1.0)
        store.invalidate()
        assert len(store) == 0
        assert "broken" in store.describe()
        store.close()

    def test_closed_store_is_a_miss(self, tmp_path):
        store = ServiceTimeStore(tmp_path / "store.sqlite")
        store.put(CONFIG, KEY, 1.0)
        store.close()
        assert store.get(CONFIG, KEY) is None

    def test_pickles_as_path(self, tmp_path):
        path = tmp_path / "store.sqlite"
        with ServiceTimeStore(path) as store:
            store.put(CONFIG, KEY, 3.0)
            clone = pickle.loads(pickle.dumps(store))
        # The clone reopened its own connection from the path and sees
        # the original's entries, but starts with fresh counters.
        assert clone.path == path
        assert clone.get(CONFIG, KEY) == 3.0
        assert clone.stats()["hits"] == 1
        clone.close()

    def test_merge_counters(self, tmp_path):
        with ServiceTimeStore(tmp_path / "store.sqlite") as store:
            store.merge_counters(hits=2, misses=3, puts=4)
            stats = store.stats()
            assert (stats["hits"], stats["misses"], stats["puts"]) == \
                (2, 3, 4)


class TestResolveServiceStore:
    def test_none_disables(self):
        assert resolve_service_store(None) is None

    def test_instance_passes_through(self, tmp_path):
        store = ServiceTimeStore(tmp_path / "store.sqlite")
        assert resolve_service_store(store) is store
        store.close()

    def test_default_uses_env_dir(self, tmp_path, monkeypatch):
        monkeypatch.setenv(STORE_DIR_ENV, str(tmp_path / "cache"))
        for spec in (True, "default"):
            store = resolve_service_store(spec)
            assert store.path == tmp_path / "cache" / STORE_FILENAME
            store.close()

    def test_path_opens_there(self, tmp_path):
        store = resolve_service_store(tmp_path / "elsewhere.sqlite")
        assert store.path == tmp_path / "elsewhere.sqlite"
        store.close()

    def test_rejects_unknown(self):
        with pytest.raises(ValueError):
            resolve_service_store(123)
