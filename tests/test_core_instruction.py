"""Tests for repro.core.instruction (NMP-Inst and NMP packets)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.instruction import (
    DDR_CMD_ACT,
    DDR_CMD_PRE,
    DDR_CMD_RD,
    NMPInstruction,
    NMPOpcode,
    NMPPacket,
    TOTAL_INSTRUCTION_BITS,
)


class TestInstructionFormat:
    def test_width_is_79_bits(self):
        # Fig. 8(d): the NMP-Inst is 79 bits.
        assert TOTAL_INSTRUCTION_BITS == 79
        assert NMPInstruction.bit_width() == 79

    def test_fits_standard_ca_dq_interface(self):
        # The paper notes the format fits the 84-pin C/A + DQ interface.
        assert TOTAL_INSTRUCTION_BITS <= 84

    def test_ddr_cmd_flags(self):
        inst = NMPInstruction(ddr_cmd=DDR_CMD_ACT | DDR_CMD_RD)
        assert inst.needs_activate
        assert inst.needs_read
        assert not inst.needs_precharge

    def test_vector_bytes(self):
        assert NMPInstruction(vsize=1).vector_bytes == 64
        assert NMPInstruction(vsize=4).vector_bytes == 256

    def test_ddr_command_count(self):
        full = NMPInstruction(ddr_cmd=DDR_CMD_ACT | DDR_CMD_RD | DDR_CMD_PRE,
                              vsize=2)
        assert full.ddr_command_count() == 4    # PRE + ACT + 2 x RD
        hit = NMPInstruction(ddr_cmd=DDR_CMD_RD, vsize=1)
        assert hit.ddr_command_count() == 1

    def test_field_validation(self):
        with pytest.raises(ValueError):
            NMPInstruction(vsize=0)
        with pytest.raises(ValueError):
            NMPInstruction(vsize=16)
        with pytest.raises(ValueError):
            NMPInstruction(psum_tag=16)
        with pytest.raises(ValueError):
            NMPInstruction(daddr=1 << 32)
        with pytest.raises(ValueError):
            NMPInstruction(ddr_cmd=8)


class TestEncodeDecode:
    def test_roundtrip(self):
        inst = NMPInstruction(opcode=NMPOpcode.WEIGHTED_SUM,
                              ddr_cmd=DDR_CMD_ACT | DDR_CMD_RD,
                              daddr=0xDEADBEEF, vsize=4, weight=2.5,
                              locality_bit=True, psum_tag=11)
        decoded = NMPInstruction.decode(inst.encode())
        assert decoded.opcode is NMPOpcode.WEIGHTED_SUM
        assert decoded.ddr_cmd == inst.ddr_cmd
        assert decoded.daddr == inst.daddr
        assert decoded.vsize == 4
        assert decoded.weight == pytest.approx(2.5)
        assert decoded.locality_bit is True
        assert decoded.psum_tag == 11

    def test_encoded_fits_width(self):
        inst = NMPInstruction(daddr=0xFFFFFFFF, vsize=15, psum_tag=15,
                              weight=-1e30, ddr_cmd=7,
                              opcode=NMPOpcode.WEIGHTED_MEAN_8BIT)
        assert inst.encode() < (1 << TOTAL_INSTRUCTION_BITS)

    def test_decode_range_check(self):
        with pytest.raises(ValueError):
            NMPInstruction.decode(-1)
        with pytest.raises(ValueError):
            NMPInstruction.decode(1 << TOTAL_INSTRUCTION_BITS)

    @given(opcode=st.sampled_from(list(NMPOpcode)),
           ddr_cmd=st.integers(min_value=0, max_value=7),
           daddr=st.integers(min_value=0, max_value=(1 << 32) - 1),
           vsize=st.integers(min_value=1, max_value=15),
           weight=st.floats(min_value=-1e6, max_value=1e6, allow_nan=False,
                            width=32),
           locality=st.booleans(),
           psum_tag=st.integers(min_value=0, max_value=15))
    @settings(max_examples=100, deadline=None)
    def test_roundtrip_property(self, opcode, ddr_cmd, daddr, vsize, weight,
                                locality, psum_tag):
        inst = NMPInstruction(opcode=opcode, ddr_cmd=ddr_cmd, daddr=daddr,
                              vsize=vsize, weight=weight,
                              locality_bit=locality, psum_tag=psum_tag)
        decoded = NMPInstruction.decode(inst.encode())
        assert decoded.opcode is opcode
        assert decoded.ddr_cmd == ddr_cmd
        assert decoded.daddr == daddr
        assert decoded.vsize == vsize
        assert decoded.locality_bit == locality
        assert decoded.psum_tag == psum_tag
        if not math.isnan(weight):
            assert decoded.weight == pytest.approx(weight, rel=1e-6)


class TestNMPPacket:
    def test_counts(self):
        instructions = [NMPInstruction(psum_tag=i % 4, daddr=i)
                        for i in range(12)]
        packet = NMPPacket(instructions=instructions, table_id=2)
        assert len(packet) == 12
        assert packet.num_poolings == 4
        assert packet.total_vector_bytes == 12 * 64

    def test_groups_by_psum(self):
        instructions = [NMPInstruction(psum_tag=i % 2, daddr=i)
                        for i in range(6)]
        groups = NMPPacket(instructions=instructions).instructions_by_psum()
        assert set(groups) == {0, 1}
        assert len(groups[0]) == 3

    def test_locality_fraction(self):
        instructions = [NMPInstruction(locality_bit=(i < 3), daddr=i)
                        for i in range(6)]
        packet = NMPPacket(instructions=instructions)
        assert packet.locality_fraction() == pytest.approx(0.5)

    def test_empty_packet(self):
        packet = NMPPacket()
        assert len(packet) == 0
        assert packet.locality_fraction() == 0.0

    def test_too_many_poolings_rejected(self):
        # PsumTag is 4 bits -> max 16 poolings; NMPInstruction rejects larger
        # tags so a >16-pooling packet cannot even be constructed.
        with pytest.raises(ValueError):
            [NMPInstruction(psum_tag=tag) for tag in range(17)]
