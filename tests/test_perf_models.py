"""Tests for repro.perf (system, roofline, bandwidth, operator latency)."""

import pytest

from repro.dlrm.config import RM1_LARGE, RM1_SMALL, RM2_LARGE, RM2_SMALL
from repro.perf.bandwidth import BandwidthSaturationModel
from repro.perf.operator_latency import OperatorLatencyModel
from repro.perf.roofline import RooflineModel, RooflinePoint
from repro.perf.system import SKYLAKE_SYSTEM, SystemParameters


class TestSystemParameters:
    def test_table1_values(self):
        assert SKYLAKE_SYSTEM.num_cores == 18
        assert SKYLAKE_SYSTEM.peak_bandwidth_gbps == pytest.approx(76.8)
        assert SKYLAKE_SYSTEM.measured_bandwidth_gbps == pytest.approx(62.1)
        assert SKYLAKE_SYSTEM.llc_mb == pytest.approx(24.75)

    def test_machine_balance(self):
        balance = SKYLAKE_SYSTEM.machine_balance
        assert 10 < balance < 15      # ~12.8 FLOP/byte ridge point

    def test_validation(self):
        with pytest.raises(ValueError):
            SystemParameters(num_cores=0)
        with pytest.raises(ValueError):
            SystemParameters(measured_bandwidth_gbps=100.0,
                             peak_bandwidth_gbps=80.0)


class TestRoofline:
    def test_memory_bound_region(self):
        roofline = RooflineModel()
        assert roofline.is_memory_bound(0.25)
        assert not roofline.is_memory_bound(100.0)

    def test_attainable_flops(self):
        roofline = RooflineModel()
        assert roofline.attainable_flops(0.25) == pytest.approx(
            76.8e9 * 0.25)
        assert roofline.attainable_flops(1000.0) == pytest.approx(0.98e12)

    def test_sls_is_memory_bound_fc_grows_compute_bound(self):
        roofline = RooflineModel()
        latency = OperatorLatencyModel()
        small_batch = latency.operator_roofline_inputs(RM1_LARGE, 1)
        large_batch = latency.operator_roofline_inputs(RM1_LARGE, 256)
        sls_oi_small = small_batch["SLS"][0] / small_batch["SLS"][1]
        sls_oi_large = large_batch["SLS"][0] / large_batch["SLS"][1]
        fc_oi_small = small_batch["FC"][0] / small_batch["FC"][1]
        fc_oi_large = large_batch["FC"][0] / large_batch["FC"][1]
        # SLS operational intensity is low and flat; FC intensity grows.
        assert sls_oi_small == pytest.approx(sls_oi_large, rel=1e-6)
        assert roofline.is_memory_bound(sls_oi_large)
        assert fc_oi_large > 10 * fc_oi_small

    def test_lifted_roofline_speedup(self):
        roofline = RooflineModel()
        # In the bandwidth-bound region an 8x lift gives 8x higher bound.
        assert roofline.speedup_from_lift(0.25, 8.0) == pytest.approx(8.0)
        # In the compute-bound region lifting the memory roof does nothing.
        assert roofline.speedup_from_lift(1000.0, 8.0) == pytest.approx(1.0)

    def test_efficiency(self):
        roofline = RooflineModel()
        point = RooflinePoint(name="SLS", operational_intensity=0.25,
                              performance_flops=0.5 * 76.8e9 * 0.25)
        assert roofline.efficiency(point) == pytest.approx(0.5)

    def test_curve_monotone(self):
        roofline = RooflineModel()
        curve = roofline.curve([0.1, 1.0, 10.0, 100.0])
        values = [v for _, v in curve]
        assert values == sorted(values)

    def test_operator_point_constructor(self):
        roofline = RooflineModel()
        point = roofline.operator_point("FC", flops=1e9, bytes_moved=1e8,
                                        time_seconds=1e-3, batch_size=64)
        assert point.operational_intensity == pytest.approx(10.0)
        assert point.performance_flops == pytest.approx(1e12)

    def test_validation(self):
        with pytest.raises(ValueError):
            RooflineModel().attainable_flops(0)
        with pytest.raises(ValueError):
            RooflineModel().lifted(0)
        with pytest.raises(ValueError):
            RooflinePoint(name="x", operational_intensity=0,
                          performance_flops=1)


class TestBandwidthSaturation:
    def test_bandwidth_monotone_in_threads(self):
        model = BandwidthSaturationModel()
        values = [model.achieved_bandwidth_gbps(t, 256) for t in range(1, 41)]
        assert all(b >= a for a, b in zip(values, values[1:]))

    def test_bandwidth_bounded_by_measured_ceiling(self):
        model = BandwidthSaturationModel()
        assert model.achieved_bandwidth_gbps(100, 256) <= 62.1

    def test_saturation_point_matches_paper_shape(self):
        # Fig. 6: at batch 256, SLS threads pass 67.4% of peak around ~30
        # threads; smaller batches saturate later (or not at all).
        model = BandwidthSaturationModel()
        threads_256 = model.saturation_point(256)
        threads_64 = model.saturation_point(64)
        assert threads_256 is not None
        assert 10 <= threads_256 <= 40
        assert threads_64 is None or threads_64 > threads_256

    def test_latency_increases_sharply_near_saturation(self):
        model = BandwidthSaturationModel()
        low = model.access_latency_ns(2, 64)
        high = model.access_latency_ns(40, 256)
        assert high > 3 * low

    def test_zero_threads(self):
        model = BandwidthSaturationModel()
        assert model.achieved_bandwidth_gbps(0, 256) == 0.0
        assert model.access_latency_ns(0, 256) == model.unloaded_latency_ns

    def test_sweep_structure(self):
        model = BandwidthSaturationModel()
        surface = model.sweep([1, 10], [8, 256])
        assert set(surface) == {8, 256}
        assert len(surface[8]) == 2

    def test_validation(self):
        model = BandwidthSaturationModel()
        with pytest.raises(ValueError):
            model.thread_demand_gbps(0)
        with pytest.raises(ValueError):
            model.achieved_bandwidth_gbps(-1, 8)
        with pytest.raises(ValueError):
            BandwidthSaturationModel(per_thread_gbps_at_batch_1=0)


class TestOperatorLatency:
    def test_sls_fraction_grows_with_batch(self):
        # Fig. 4: the SLS share of execution time grows with batch size.
        model = OperatorLatencyModel()
        for config in (RM1_SMALL, RM1_LARGE, RM2_SMALL, RM2_LARGE):
            small = model.breakdown(config, 8).sls_fraction
            large = model.breakdown(config, 256).sls_fraction
            assert large > small

    def test_sls_fraction_grows_with_table_count(self):
        model = OperatorLatencyModel()
        assert model.breakdown(RM2_LARGE, 8).sls_fraction > \
            model.breakdown(RM1_SMALL, 8).sls_fraction

    def test_sls_dominates_rm2_at_batch8(self):
        # Fig. 4: RM2 models spend the majority of their time in SLS even at
        # batch 8 (73.5% / 68.9% in the paper).
        model = OperatorLatencyModel()
        assert model.breakdown(RM2_SMALL, 8).sls_fraction > 0.5
        assert model.breakdown(RM2_LARGE, 8).sls_fraction > 0.5

    def test_rm2_large_slower_than_rm1_large(self):
        # Fig. 4: RM2-large is several times slower than RM1-large.
        model = OperatorLatencyModel()
        assert model.breakdown(RM2_LARGE, 64).total_us > \
            2 * model.breakdown(RM1_LARGE, 64).total_us

    def test_bandwidth_scale_shortens_sls(self):
        model = OperatorLatencyModel()
        assert model.sls_time_us(RM1_LARGE, 64, bandwidth_scale=2.0) == \
            pytest.approx(model.sls_time_us(RM1_LARGE, 64) / 2.0)

    def test_breakdown_sweep_covers_grid(self):
        model = OperatorLatencyModel()
        rows = model.breakdown_sweep([RM1_SMALL, RM2_LARGE], [8, 64])
        assert len(rows) == 4

    def test_fractions_sum_to_one(self):
        breakdown = OperatorLatencyModel().breakdown(RM1_LARGE, 64)
        total = (breakdown.sls_fraction + breakdown.fc_fraction
                 + breakdown.other_us / breakdown.total_us)
        assert total == pytest.approx(1.0)

    def test_validation(self):
        model = OperatorLatencyModel()
        with pytest.raises(ValueError):
            model.breakdown(RM1_SMALL, 0)
        with pytest.raises(TypeError):
            model.breakdown("RM1", 8)
        with pytest.raises(ValueError):
            model.sls_time_us(RM1_SMALL, 8, bandwidth_scale=0)
        with pytest.raises(ValueError):
            OperatorLatencyModel(sls_effective_gbps=0)
