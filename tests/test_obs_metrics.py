"""Unit tests for :mod:`repro.obs.metrics`.

Counters/gauges/histograms, the fixed-bucket quantile estimator, the
get-or-create registry with snapshot-time collectors, and the
consistency contract the registry inherits from the cluster: every
counter resets and round-trips through ``snapshot()`` identically.
"""

import json
import math

import numpy as np
import pytest

from repro.obs import (
    DEFAULT_LATENCY_BUCKETS_US,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    observe_finite,
)


class TestCounter:
    def test_inc_and_reset(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(41)
        assert counter.value == 42
        counter.reset()
        assert counter.value == 0

    def test_negative_increment_rejected(self):
        with pytest.raises(ValueError, match="only go up"):
            Counter("c").inc(-1)


class TestGauge:
    def test_set_and_reset(self):
        gauge = Gauge("g")
        gauge.set(2.5)
        assert gauge.value == 2.5
        gauge.reset()
        assert gauge.value == 0.0


class TestHistogram:
    def test_default_buckets_span_us_to_seconds(self):
        bounds = DEFAULT_LATENCY_BUCKETS_US
        assert bounds[0] == 1.0
        assert bounds[-1] == 10_000_000.0
        assert all(b > a for a, b in zip(bounds, bounds[1:]))

    def test_observe_many_counts_sum_min_max(self):
        hist = Histogram("h", buckets=(1.0, 10.0, 100.0))
        hist.observe_many([0.5, 5.0, 50.0, 500.0])
        assert hist.count == 4
        assert hist.sum == pytest.approx(555.5)
        snap = hist.snapshot()
        assert snap["min"] == 0.5 and snap["max"] == 500.0
        assert [count for _, count in snap["buckets"]] == [1, 1, 1]
        assert snap["overflow"] == 1

    def test_quantiles_bracket_the_samples(self):
        hist = Histogram("h")
        values = np.linspace(10.0, 1000.0, 1000)
        hist.observe_many(values)
        assert hist.quantile(0.0) <= hist.quantile(0.5) \
            <= hist.quantile(0.99) <= hist.quantile(1.0)
        # In-bucket interpolation stays within the observed range and
        # lands near the exact percentile for a dense sample.
        p50 = hist.quantile(0.5)
        assert 10.0 <= p50 <= 1000.0
        assert p50 == pytest.approx(np.percentile(values, 50), rel=0.35)

    def test_empty_histogram_snapshot(self):
        snap = Histogram("h").snapshot()
        assert snap["count"] == 0
        assert snap["min"] is None and snap["max"] is None
        assert snap["p99"] == 0.0

    def test_non_finite_observation_rejected(self):
        with pytest.raises(ValueError, match="non-finite"):
            Histogram("h").observe(math.inf)

    def test_observe_finite_filters(self):
        hist = Histogram("h")
        observe_finite(hist, [1.0, math.inf, 2.0, math.nan])
        assert hist.count == 2

    def test_bad_bucket_bounds_rejected(self):
        with pytest.raises(ValueError, match="strictly increasing"):
            Histogram("h", buckets=(1.0, 1.0, 2.0))
        with pytest.raises(ValueError, match="at least one"):
            Histogram("h", buckets=())

    def test_reset_clears_distribution(self):
        hist = Histogram("h")
        hist.observe_many([1.0, 2.0, 3.0])
        hist.reset()
        assert hist.count == 0 and hist.sum == 0.0
        assert hist.snapshot()["buckets"][0][1] == 0


class TestMetricsRegistry:
    def test_get_or_create_returns_same_object(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.gauge("b") is registry.gauge("b")
        assert registry.histogram("c") is registry.histogram("c")

    def test_kind_mismatch_rejected(self):
        registry = MetricsRegistry()
        registry.counter("a")
        with pytest.raises(ValueError, match="is a Counter"):
            registry.gauge("a")

    def test_snapshot_shape_and_json_safety(self):
        registry = MetricsRegistry()
        registry.counter("runs").inc(3)
        registry.gauge("util").set(0.5)
        registry.histogram("lat").observe_many([10.0, 20.0])
        registry.register_collector("cache",
                                    lambda: {"hits": 1, "misses": 2})
        snap = registry.snapshot()
        assert snap["counters"] == {"runs": 3}
        assert snap["gauges"] == {"util": 0.5}
        assert snap["histograms"]["lat"]["count"] == 2
        assert snap["collected"]["cache"] == {"hits": 1, "misses": 2}
        # The snapshot is the metrics-json export: it must serialise.
        json.dumps(snap, allow_nan=False)

    def test_reset_zeroes_metrics_but_keeps_collectors(self):
        registry = MetricsRegistry()
        registry.counter("runs").inc(3)
        registry.histogram("lat").observe(5.0)
        registry.register_collector("cache", lambda: {"hits": 9})
        registry.reset()
        snap = registry.snapshot()
        assert snap["counters"] == {"runs": 0}
        assert snap["histograms"]["lat"]["count"] == 0
        assert snap["collected"] == {"cache": {"hits": 9}}

    def test_non_callable_collector_rejected(self):
        with pytest.raises(ValueError, match="callable"):
            MetricsRegistry().register_collector("x", 42)

    def test_get_and_names(self):
        registry = MetricsRegistry()
        counter = registry.counter("b")
        registry.gauge("a")
        assert registry.get("b") is counter
        assert registry.names() == ["a", "b"]
        with pytest.raises(KeyError):
            registry.get("absent")
