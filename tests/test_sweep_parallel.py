"""Tests for parallel qps_sweep, batched dedup and the warm store path.

The sweep backends must be invisible: whatever backend runs the points
(serial loop, per-point thread clones, worker-process rebuilds), the
reports -- percentiles, extras, SLO records -- must be *byte-identical*
to the serial loop, across stateless and stateful sharders and across
engines.  Batched service resolution must likewise be indistinguishable
from resolving batches one at a time, and a sweep re-run against a warm
persistent store must perform zero exact batch simulations.
"""

from repro.serving import (
    BatchingFrontend,
    PoissonArrivalProcess,
    ShardedServingCluster,
    qps_sweep,
    queries_from_traces,
)
from repro.serving.cluster import build_sweep_cluster
from repro.serving.sharding import ReplicatedTableSharder
from repro.traces import make_production_table_traces

NUM_ROWS = 512
NUM_TABLES = 4
QPS_POINTS = [40_000.0, 80_000.0, 120_000.0]
PARALLEL_BACKENDS = ("thread", "process")


def make_traces():
    return make_production_table_traces(
        num_lookups_per_table=256, num_rows=NUM_ROWS,
        num_tables=NUM_TABLES, seed=0)


def make_query_factory(traces):
    def make_queries(qps):
        return queries_from_traces(
            traces, 8, PoissonArrivalProcess(rate_qps=qps, seed=1),
            batch_size=2, pooling_factor=4)
    return make_queries


def make_cluster(**overrides):
    return ShardedServingCluster(num_nodes=2, node_system="recnmp-base",
                                 table_rows=NUM_ROWS, **overrides)


def run_sweep(backend, engine=None, sharder=None, service_store=None,
              traces=None):
    traces = traces if traces is not None else make_traces()
    with make_cluster(sharder=sharder,
                      service_store=service_store) as cluster:
        reports = qps_sweep(
            cluster, make_query_factory(traces), QPS_POINTS,
            frontend=BatchingFrontend(max_queries=4, max_delay_us=200.0),
            engine=engine, service_model="exact", backend=backend)
        stats = cluster.service_stats()
    return [report.as_dict() for report in reports], stats


class TestParallelSweepIdentity:
    def test_backends_match_serial(self):
        traces = make_traces()
        serial, _ = run_sweep("serial", traces=traces)
        assert len(serial) == len(QPS_POINTS)
        for backend in PARALLEL_BACKENDS:
            parallel, _ = run_sweep(backend, traces=traces)
            assert parallel == serial, backend

    def test_backends_match_serial_event_engine(self):
        traces = make_traces()
        serial, _ = run_sweep("serial", engine="event", traces=traces)
        for backend in PARALLEL_BACKENDS:
            parallel, _ = run_sweep(backend, engine="event", traces=traces)
            assert parallel == serial, backend

    def test_backends_match_serial_stateful_sharder(self):
        # Replication routes by running load counters (stateful), the
        # hardest case for per-point clones and worker rebuilds.
        traces = make_traces()

        def sharder():
            return ReplicatedTableSharder.from_traces(2, traces)

        serial, _ = run_sweep("serial", sharder=sharder(), traces=traces)
        for backend in PARALLEL_BACKENDS:
            parallel, _ = run_sweep(backend, sharder=sharder(),
                                    traces=traces)
            assert parallel == serial, backend

    def test_parallel_state_merges_back(self):
        # Worker deltas must land in the parent cluster: every point ran
        # somewhere, so the folded counters cover the whole sweep.
        _, stats = run_sweep("process")
        assert stats["exact_simulations"] > 0
        cache = stats["cache"]
        assert cache["entries"] > 0
        assert cache["hits"] + cache["misses"] > 0


class TestWarmStoreSweep:
    def test_warm_rerun_simulates_nothing(self, tmp_path):
        store_path = tmp_path / "sweep.sqlite"
        traces = make_traces()
        cold, cold_stats = run_sweep("serial", service_store=store_path,
                                     traces=traces)
        assert cold_stats["store"]["puts"] > 0
        for backend in ("serial",) + PARALLEL_BACKENDS:
            warm, warm_stats = run_sweep(backend,
                                         service_store=store_path,
                                         traces=traces)
            assert warm == cold, backend
            assert warm_stats["exact_simulations"] == 0, backend
            assert warm_stats["store"]["misses"] == 0, backend

    def test_store_entries_shared_across_configs_is_a_miss(self, tmp_path):
        store_path = tmp_path / "sweep.sqlite"
        traces = make_traces()
        _, stats = run_sweep("serial", service_store=store_path,
                             traces=traces)
        puts = stats["store"]["puts"]
        # A different cluster configuration must not reuse the entries.
        with ShardedServingCluster(
                num_nodes=2, node_system="recnmp-opt",
                table_rows=NUM_ROWS,
                service_store=store_path) as cluster:
            qps_sweep(cluster, make_query_factory(traces), QPS_POINTS[:1],
                      service_model="exact")
            other = cluster.service_stats()
        assert other["store"]["hits"] == 0
        assert other["store"]["entries"] > puts   # both configs stored


class TestBatchedDedup:
    def _batches(self, cluster, traces):
        queries = queries_from_traces(
            traces, 8, [float(i) * 1000.0 for i in range(8)],
            batch_size=2, pooling_factor=4)
        frontend = BatchingFrontend(max_queries=2)
        return list(frontend.form_batches(queries))

    def test_batched_equals_one_at_a_time(self):
        traces = make_traces()
        with make_cluster() as batched, make_cluster() as serial:
            batches = self._batches(batched, traces)
            # Repeat the batch list so in-flight dedup has work to do.
            stream = list(batches) + list(batches)
            vector = batched.service_times_us(stream)
            singles = [serial.service_time_us(batch) for batch in stream]
            assert vector == singles
            # One simulation per unique composition, repeats collapsed.
            assert batched.service_stats()["exact_simulations"] == \
                serial.service_stats()["exact_simulations"]
            assert batched.service_stats()["dedup_hits"] == len(batches)
            # Counter parity with the one-at-a-time path: collapsed
            # duplicates count as cache hits.
            assert batched.service_cache_stats() == \
                serial.service_cache_stats()

    def test_export_merge_round_trip(self):
        traces = make_traces()
        with make_cluster() as worker, make_cluster() as parent:
            batches = self._batches(worker, traces)
            worker.service_times_us(batches)
            state = worker.export_service_state()
            parent.merge_service_state(state)
            assert parent.service_cache_stats() == \
                worker.service_cache_stats()
            assert parent.service_stats()["exact_simulations"] == \
                worker.service_stats()["exact_simulations"]
            # Merged entries answer without new simulations.
            parent.service_times_us(batches[:1])
            assert parent.service_stats()["exact_simulations"] == \
                worker.service_stats()["exact_simulations"]


class TestSweepSpec:
    def test_build_sweep_cluster_reproduces_results(self, tmp_path):
        store_path = tmp_path / "sweep.sqlite"
        traces = make_traces()
        with make_cluster(service_store=store_path) as cluster:
            batches = TestBatchedDedup()._batches(cluster, traces)
            expected = cluster.service_times_us(batches)
            spec = cluster.sweep_spec()
        assert spec["service_store"] == str(store_path)
        with build_sweep_cluster(spec) as clone:
            # The clone shares the store file, so a fresh object answers
            # from disk with zero exact simulations.
            assert clone.service_times_us(batches) == expected
            assert clone.service_stats()["exact_simulations"] == 0
