"""Tests for replication-aware sharding and load-aware placement."""

import numpy as np
import pytest

from repro.dlrm.operators import SLSRequest
from repro.serving import (
    PLACEMENT_POLICIES,
    BatchingFrontend,
    PoissonArrivalProcess,
    ReplicatedTableSharder,
    ShardedServingCluster,
    TableSharder,
    compute_table_loads,
    load_imbalance,
    place_tables,
    queries_from_traces,
    table_loads_from_queries,
)
from repro.traces import make_production_table_traces

NUM_ROWS = 512
VECTOR_BYTES = 64

#: One hot table (~57% of the lookups) over four nodes: the skewed regime
#: replication-aware sharding exists for.
SKEWED_LOADS = {0: 800, 1: 200, 2: 100, 3: 100, 4: 50, 5: 50, 6: 50,
                7: 50}
SKEWED_POOLINGS = [64, 16, 8, 8, 4, 4, 4, 4]


def address_of(table_id, row):
    return (table_id * NUM_ROWS + row) * VECTOR_BYTES


def make_requests(pattern, lookups_per_request=8, seed=0):
    """One SLS request per entry of ``pattern`` (a table-id sequence)."""
    rng = np.random.default_rng(seed)
    return [SLSRequest(table_id=t,
                       indices=rng.integers(0, NUM_ROWS,
                                            size=lookups_per_request),
                       lengths=np.asarray([lookups_per_request]))
            for t in pattern]


def make_skewed_queries(num_queries=16, qps=50_000.0, seed=1):
    traces = make_production_table_traces(
        num_lookups_per_table=4_000, num_rows=NUM_ROWS,
        num_tables=len(SKEWED_POOLINGS), seed=0)
    return queries_from_traces(
        traces, num_queries, PoissonArrivalProcess(rate_qps=qps, seed=seed),
        batch_size=2, pooling_factor=SKEWED_POOLINGS)


class TestTableLoads:
    def test_compute_table_loads_is_trace_length(self):
        traces = make_production_table_traces(
            num_lookups_per_table=300, num_rows=NUM_ROWS, num_tables=3,
            seed=0)
        assert compute_table_loads(traces) == {0: 300, 1: 300, 2: 300}

    def test_loads_from_queries_measure_lookups(self):
        queries = make_skewed_queries(num_queries=4)
        loads = table_loads_from_queries(queries)
        # 4 queries x 2 poolings x per-table factor.
        assert loads[0] == pytest.approx(4 * 2 * 64)
        assert loads[7] == pytest.approx(4 * 2 * 4)
        with_overhead = table_loads_from_queries(
            queries, request_overhead_lookups=10.0)
        # One request per query per table: +10 lookup-equivalents each.
        assert with_overhead[0] == pytest.approx(loads[0] + 4 * 10.0)
        with pytest.raises(ValueError):
            table_loads_from_queries(queries, request_overhead_lookups=-1)

    def test_load_imbalance(self):
        assert load_imbalance([10.0, 10.0]) == pytest.approx(1.0)
        assert load_imbalance([30.0, 10.0]) == pytest.approx(1.5)
        assert load_imbalance([0.0, 0.0]) == 1.0
        with pytest.raises(ValueError):
            load_imbalance([])


class TestPlacementPolicies:
    def test_registry_names(self):
        assert sorted(PLACEMENT_POLICIES) == ["hash", "load-aware",
                                              "round-robin"]

    def test_round_robin_and_hash_match_table_sharder(self):
        sharder = TableSharder(4, policy="hash")
        placement = place_tables(SKEWED_LOADS, 4, policy="hash")
        assert placement == sharder.placement(SKEWED_LOADS)
        placement = place_tables(SKEWED_LOADS, 4, policy="round-robin")
        assert placement == TableSharder(4).placement(SKEWED_LOADS)

    def test_load_aware_beats_round_robin_on_skew(self):
        for num_nodes in (2, 3, 4):
            nodes_rr = [0.0] * num_nodes
            nodes_la = [0.0] * num_nodes
            la = place_tables(SKEWED_LOADS, num_nodes, "load-aware")
            rr = place_tables(SKEWED_LOADS, num_nodes, "round-robin")
            for table, load in SKEWED_LOADS.items():
                nodes_rr[rr[table]] += load
                nodes_la[la[table]] += load
            assert load_imbalance(nodes_la) <= load_imbalance(nodes_rr)

    def test_load_aware_is_deterministic(self):
        first = place_tables(SKEWED_LOADS, 4, "load-aware")
        second = place_tables(dict(reversed(list(SKEWED_LOADS.items()))),
                              4, "load-aware")
        assert first == second

    def test_unknown_policy(self):
        with pytest.raises(ValueError):
            place_tables(SKEWED_LOADS, 4, "nope")


class TestReplicationFactors:
    def test_uniform_loads_do_not_replicate(self):
        sharder = ReplicatedTableSharder(
            4, {t: 100 for t in range(8)}, max_replicas=3,
            hot_fraction=0.2)
        assert all(sharder.replication_factor(t) == 1 for t in range(8))

    def test_hot_table_replicates_proportionally(self):
        sharder = ReplicatedTableSharder(4, SKEWED_LOADS, max_replicas=4,
                                         hot_fraction=0.2)
        # Table 0 carries ~57% of the load: ceil(0.57 / 0.2) = 3 replicas.
        assert sharder.replication_factor(0) == 3
        assert sharder.replication_factor(1) == 1
        nodes = sharder.replica_nodes(0)
        assert len(nodes) == len(set(nodes)) == 3

    def test_factor_caps(self):
        capped = ReplicatedTableSharder(4, SKEWED_LOADS, max_replicas=2,
                                        hot_fraction=0.2)
        assert capped.replication_factor(0) == 2
        few_nodes = ReplicatedTableSharder(2, SKEWED_LOADS, max_replicas=8,
                                           hot_fraction=0.05)
        assert few_nodes.replication_factor(0) == 2    # <= num_nodes

    def test_max_replicas_one_is_pure_placement(self):
        sharder = ReplicatedTableSharder(4, SKEWED_LOADS, max_replicas=1,
                                         hot_fraction=0.1)
        assert all(len(nodes) == 1
                   for nodes in sharder.replicas.values())

    def test_replication_composes_with_static_policies(self):
        for policy in ("round-robin", "hash"):
            sharder = ReplicatedTableSharder(4, SKEWED_LOADS,
                                             policy=policy,
                                             max_replicas=3,
                                             hot_fraction=0.2)
            assert len(sharder.replica_nodes(0)) == 3

    def test_validation(self):
        with pytest.raises(ValueError):
            ReplicatedTableSharder(0, SKEWED_LOADS)
        with pytest.raises(ValueError):
            ReplicatedTableSharder(4, SKEWED_LOADS, policy="nope")
        with pytest.raises(ValueError):
            ReplicatedTableSharder(4, SKEWED_LOADS, max_replicas=0)
        with pytest.raises(ValueError):
            ReplicatedTableSharder(4, SKEWED_LOADS, hot_fraction=0.0)
        with pytest.raises(ValueError):
            ReplicatedTableSharder(4, {})
        with pytest.raises(ValueError):
            ReplicatedTableSharder(4, SKEWED_LOADS,
                                   request_overhead_lookups=-1.0)
        with pytest.raises(ValueError):
            ReplicatedTableSharder(4, SKEWED_LOADS).replica_nodes(-1)


class TestRouting:
    def test_routing_is_deterministic_across_frontends(self):
        """Two frontends replaying one stream must route identically."""
        queries = make_skewed_queries(num_queries=12)
        frontends = [
            ReplicatedTableSharder.from_queries(
                4, queries, policy="load-aware", max_replicas=3,
                hot_fraction=0.15, seed=7)
            for _ in range(2)]
        for query in queries:
            assignments = [frontend.assign_requests(query.requests)
                           for frontend in frontends]
            assert assignments[0] == assignments[1]

    def test_seed_changes_tie_breaking(self):
        """The rotation is seeded: equal-load replicas are broken
        differently under different seeds, identically under the same."""
        loads = {0: 100, 1: 100, 2: 100, 3: 100}
        requests = make_requests([0, 1, 2, 3])

        def first_picks(seed):
            # Each 25%-share table replicates onto both nodes
            # (0.25 > hot_fraction); a fresh sharder has all counters
            # zero, so the first pick is a pure tie among the replicas.
            sharder = ReplicatedTableSharder(2, loads, max_replicas=2,
                                             hot_fraction=0.2, seed=seed)
            assert sharder.replication_factor(0) == 2
            return sharder.assign_requests(requests, commit=False)

        assert first_picks(0) == first_picks(0)
        assert any(first_picks(seed) != first_picks(0)
                   for seed in range(1, 8))
        # Tie-breaking never routes outside the replica set.
        sharder = ReplicatedTableSharder(2, loads, max_replicas=2,
                                         hot_fraction=0.2, seed=3)
        assert sum(sharder.shard_load(requests)) == \
            sum(r.total_lookups for r in requests)

    def test_replicated_table_spreads_across_nodes(self):
        sharder = ReplicatedTableSharder(4, SKEWED_LOADS, max_replicas=3,
                                         hot_fraction=0.2)
        requests = make_requests([0] * 12)
        assignment = sharder.assign_requests(requests)
        assert set(assignment) == set(sharder.replica_nodes(0))
        # Least-loaded-of-k: even spread over the three replicas.
        counts = [assignment.count(n) for n in sharder.replica_nodes(0)]
        assert max(counts) - min(counts) <= 1

    def test_unknown_table_falls_back_deterministically(self):
        sharder = ReplicatedTableSharder(4, SKEWED_LOADS)
        requests = make_requests([99, 99])
        assignment = sharder.assign_requests(requests)
        assert assignment[0] == assignment[1]
        assert sharder.replica_nodes(99) == (assignment[0],)

    def test_shard_load_does_not_commit(self):
        sharder = ReplicatedTableSharder(4, SKEWED_LOADS, max_replicas=3,
                                         hot_fraction=0.2)
        requests = make_requests([0, 0, 1, 2])
        before = sharder.routing_state()
        sharder.shard_load(requests)
        assert sharder.routing_state() == before
        sharder.assign_requests(requests)
        assert sharder.routing_state() != before
        sharder.reset_routing()
        assert sharder.routing_state() == before

    def test_partition_preserves_requests(self):
        sharder = ReplicatedTableSharder(4, SKEWED_LOADS, max_replicas=3,
                                         hot_fraction=0.2)
        requests = make_requests([0, 0, 1, 2, 3, 4, 5, 6, 7])
        partitions = sharder.partition_requests(requests)
        flattened = [r for part in partitions for r in part]
        assert sorted(r.table_id for r in flattened) == \
            sorted(r.table_id for r in requests)


class TestSkewedPlacementProperty:
    def test_load_aware_reduces_imbalance_on_skewed_trace(self):
        """Property: on a skewed stream, load-aware placement strictly
        reduces the max/mean shard-load imbalance vs round-robin, and
        replication tightens it further."""
        queries = make_skewed_queries(num_queries=24)
        requests = [r for q in queries for r in q.requests]
        round_robin = load_imbalance(
            TableSharder(4).shard_load(requests))
        placed = load_imbalance(
            ReplicatedTableSharder.from_queries(
                4, queries, policy="load-aware",
                max_replicas=1).shard_load(requests))
        replicated = load_imbalance(
            ReplicatedTableSharder.from_queries(
                4, queries, policy="load-aware", max_replicas=3,
                hot_fraction=0.15).shard_load(requests))
        assert placed < round_robin
        assert replicated < placed
        assert replicated < 1.5

    def test_random_skews_never_worse_than_round_robin(self):
        for seed in range(5):
            rng = np.random.default_rng(seed)
            loads = {t: float(load) for t, load in
                     enumerate(rng.pareto(1.5, size=12) * 100 + 1)}
            pattern = [t for t, load in loads.items()
                       for _ in range(max(int(load) // 50, 1))]
            requests = make_requests(pattern, seed=seed)
            round_robin = load_imbalance(
                TableSharder(4).shard_load(requests))
            replicated = load_imbalance(ReplicatedTableSharder(
                4, loads, policy="load-aware", max_replicas=4,
                hot_fraction=0.1, seed=seed).shard_load(requests))
            assert replicated <= round_robin + 1e-9


class TestClusterIntegration:
    def make_cluster(self, sharder=None, **overrides):
        return ShardedServingCluster(
            num_nodes=4, node_system="recnmp-base", sharder=sharder,
            address_of=address_of, vector_size_bytes=VECTOR_BYTES,
            **overrides)

    def make_replicated(self, queries, **kwargs):
        kwargs.setdefault("policy", "load-aware")
        kwargs.setdefault("max_replicas", 3)
        kwargs.setdefault("hot_fraction", 0.15)
        return ReplicatedTableSharder.from_queries(4, queries, **kwargs)

    def test_simulate_with_replicated_sharder(self):
        queries = make_skewed_queries(num_queries=8)
        cluster = self.make_cluster(self.make_replicated(queries))
        report = cluster.simulate(
            queries, frontend=BatchingFrontend(max_queries=4,
                                               max_delay_us=100.0))
        assert report.extras["shard_policy"] == "load-aware"
        assert "replicated" in report.extras["sharder"]
        assert report.p50_us <= report.p95_us <= report.p99_us

    def test_replicated_cluster_is_deterministic(self):
        def run_once():
            queries = make_skewed_queries(num_queries=8)
            cluster = self.make_cluster(self.make_replicated(queries))
            return cluster.simulate(queries).as_dict()

        assert run_once() == run_once()

    def test_repeated_simulate_is_idempotent(self):
        """Regression: simulate() inherited the previous run's routing
        counters, so identical streams produced different reports
        depending on run order (and on sweep-point position)."""
        queries = make_skewed_queries(num_queries=8)
        cluster = self.make_cluster(self.make_replicated(queries))
        first = cluster.simulate(queries).as_dict()
        second = cluster.simulate(queries).as_dict()
        assert first == second

    def test_cache_key_includes_routing_state(self):
        """The same batch content routed differently must not collide.

        With a stateful sharder the replica chosen for a hot table depends
        on the running load counters, so replaying one batch twice can
        partition it differently -- a content-only cache key would replay
        the first service time for the second routing.
        """
        queries = make_skewed_queries(num_queries=4)
        sharder = self.make_replicated(queries)
        cluster = self.make_cluster(sharder)
        frontend = BatchingFrontend(max_queries=4, max_delay_us=1000.0)
        batch = frontend.form_batches(queries)[0]
        first_assignment = sharder.assign_requests(batch.requests(),
                                                   commit=False)
        cluster.service_time_us(batch)
        second_assignment = sharder.assign_requests(batch.requests(),
                                                    commit=False)
        cluster.service_time_us(batch)
        # The hot table's replica choice shifted with the counters ...
        assert first_assignment != second_assignment
        # ... so the second pass must be a distinct cache entry.
        assert cluster.service_cache_stats()["misses"] == 2

    def test_reset_clears_routing_state(self):
        queries = make_skewed_queries(num_queries=8)
        sharder = self.make_replicated(queries)
        cluster = self.make_cluster(sharder)
        cluster.simulate(queries)
        assert sharder.routing_state() != (0.0,) * 4
        cluster.reset()
        assert sharder.routing_state() == (0.0,) * 4

    def test_shard_policy_constructor_parameter(self):
        cluster = self.make_cluster(shard_policy="hash")
        assert cluster.sharder.policy == "hash"
        with pytest.raises(ValueError):
            self.make_cluster(shard_policy="load-aware")
        with pytest.raises(ValueError):
            self.make_cluster(sharder=TableSharder(4),
                              shard_policy="hash")

    def test_sharder_size_mismatch(self):
        with pytest.raises(ValueError):
            ShardedServingCluster(
                num_nodes=2, node_system="recnmp-base",
                sharder=ReplicatedTableSharder(4, SKEWED_LOADS),
                address_of=address_of, vector_size_bytes=VECTOR_BYTES)


class TestPerTableQueryShapes:
    def test_per_table_pooling_factors(self):
        queries = make_skewed_queries(num_queries=2)
        for query in queries:
            lookups = {r.table_id: r.total_lookups
                       for r in query.requests}
            assert lookups[0] == 2 * 64
            assert lookups[7] == 2 * 4

    def test_shape_length_mismatch_raises(self):
        traces = make_production_table_traces(
            num_lookups_per_table=400, num_rows=NUM_ROWS, num_tables=3,
            seed=0)
        with pytest.raises(ValueError):
            queries_from_traces(traces, 2, [0.0, 1.0],
                                batch_size=2, pooling_factor=[4, 4])
        with pytest.raises(ValueError):
            queries_from_traces(traces, 2, [0.0, 1.0],
                                batch_size=[2, 2], pooling_factor=4)


class TestCapacityConstrainedReplication:
    LOADS = {0: 100.0, 1: 50.0, 2: 25.0, 3: 10.0}
    BYTES = {0: 10.0, 1: 10.0, 2: 10.0, 3: 10.0}

    def build(self, budget, **overrides):
        kwargs = dict(policy="load-aware", max_replicas=2,
                      hot_fraction=0.2, table_bytes=self.BYTES,
                      node_capacity_bytes=budget)
        kwargs.update(overrides)
        return ReplicatedTableSharder(2, self.LOADS, **kwargs)

    def test_budget_respected_and_replication_survives(self):
        sharder = self.build(30.0)
        for used, budget in zip(sharder.node_bytes(), (30.0, 30.0)):
            assert used <= budget
        # Both hot tables (0 and 1 exceed hot_fraction 0.2) keep their
        # two replicas: the budget holds 3 tables per node.
        assert sharder.replication_factor(0) == 2
        assert sharder.replication_factor(1) == 2
        # Every table is placed exactly once per replica.
        placed = sorted(sharder.replicas)
        assert placed == [0, 1, 2, 3]

    def test_tight_budget_shrinks_replication_not_placement(self):
        # 20 bytes/node holds exactly one copy of every table and
        # nothing else: replication silently degrades to factor 1.
        sharder = self.build(20.0)
        for table in self.LOADS:
            assert sharder.replication_factor(table) == 1
        assert sorted(sharder.node_bytes()) == [20.0, 20.0]

    def test_unconstrained_placement_unchanged(self):
        """Passing table sizes without a budget keeps the legacy path."""
        legacy = ReplicatedTableSharder(2, self.LOADS, policy="load-aware",
                                        max_replicas=2, hot_fraction=0.2)
        sized = ReplicatedTableSharder(2, self.LOADS, policy="load-aware",
                                       max_replicas=2, hot_fraction=0.2,
                                       table_bytes=self.BYTES)
        assert sized.replicas == legacy.replicas
        # A roomy budget may tie-break differently (two-phase packing)
        # but must preserve every replication factor.
        roomy = self.build(1_000_000.0)
        for table in self.LOADS:
            assert roomy.replication_factor(table) == \
                legacy.replication_factor(table)

    def test_infeasible_budget_names_overflowing_tables(self):
        with pytest.raises(ValueError) as excinfo:
            self.build(15.0)
        message = str(excinfo.value)
        assert "infeasible" in message
        # 15 bytes/node fits one table per node; the two lightest-byte
        # tables (processed last) overflow and must both be named.
        assert "2 (10 bytes)" in message
        assert "3 (10 bytes)" in message

    def test_budget_requires_table_bytes(self):
        with pytest.raises(ValueError, match="table_bytes"):
            ReplicatedTableSharder(2, self.LOADS,
                                   node_capacity_bytes=100.0)

    def test_missing_table_sizes_are_named(self):
        with pytest.raises(ValueError, match="missing sizes"):
            ReplicatedTableSharder(2, self.LOADS,
                                   table_bytes={0: 10.0, 1: 10.0},
                                   node_capacity_bytes=100.0)

    def test_per_node_budgets(self):
        sharder = self.build([10.0, 60.0], max_replicas=1)
        used = sharder.node_bytes()
        assert used[0] <= 10.0
        assert used[1] <= 60.0
        assert sum(used) == 40.0                      # all four placed

    def test_per_node_budget_count_validated(self):
        with pytest.raises(ValueError, match="one capacity budget"):
            self.build([10.0, 20.0, 30.0])
        with pytest.raises(ValueError, match="positive"):
            self.build([10.0, 0.0])

    def test_fixed_primary_policies_shift_past_full_nodes(self):
        # Round-robin wants tables 0 and 2 on node 0, but node 0 only
        # holds one table: the displaced table ring-shifts to a node
        # with room instead of overflowing.
        sharder = ReplicatedTableSharder(
            2, self.LOADS, policy="round-robin", max_replicas=1,
            table_bytes=self.BYTES, node_capacity_bytes=20.0)
        assert sorted(sharder.node_bytes()) == [20.0, 20.0]
        assert sorted(sharder.replicas) == [0, 1, 2, 3]

    def test_describe_mentions_budget(self):
        assert "budget" in self.build(30.0).describe()

    def test_routing_still_works_under_budget(self):
        sharder = self.build(30.0)
        requests = make_requests([0, 1, 2, 3, 0, 0, 1])
        assignment = sharder.assign_requests(requests)
        assert len(assignment) == len(requests)
        for request, node in zip(requests, assignment):
            assert node in sharder.replica_nodes(request.table_id)


class TestRequestOverheadCalibration:
    def build_node(self, name="recnmp-base"):
        from repro.systems import build_system

        return build_system(name, address_of=address_of,
                            vector_size_bytes=VECTOR_BYTES,
                            compare_baseline=False)

    def make_request(self, poolings=32, pooling_factor=20, seed=0):
        rng = np.random.default_rng(seed)
        return SLSRequest(
            table_id=0,
            indices=rng.integers(0, NUM_ROWS,
                                 size=poolings * pooling_factor),
            lengths=np.full(poolings, pooling_factor))

    def test_calibration_is_finite_and_deterministic(self):
        from repro.serving import calibrate_request_overhead_lookups

        node = self.build_node()
        request = self.make_request()
        first = calibrate_request_overhead_lookups(node, request)
        second = calibrate_request_overhead_lookups(node, request)
        assert np.isfinite(first)
        assert first >= 0.0
        assert first == second

    def test_simulated_node_charges_real_dispatch_overhead(self):
        """RecNMP pays per-request cost, so the measurement is > 0.

        Split at serving-request granularity (4 poolings per request vs
        the 8-pooling NMP packets): the underfilled packets of small
        requests are exactly the dispatch overhead being priced.
        """
        from repro.serving import calibrate_request_overhead_lookups

        overhead = calibrate_request_overhead_lookups(
            self.build_node(), self.make_request(), splits=8)
        assert overhead > 0.0

    def test_from_queries_merges_small_requests(self):
        from repro.serving import calibrate_request_overhead_from_queries

        traces = make_production_table_traces(
            num_lookups_per_table=400, num_rows=NUM_ROWS, num_tables=2,
            seed=0)
        # Each query carries 2-pooling requests -- too narrow alone, but
        # the sample merges per table into a calibratable request.
        queries = queries_from_traces(
            traces, 8, [float(i) for i in range(8)], batch_size=2,
            pooling_factor=4)
        overhead = calibrate_request_overhead_from_queries(
            self.build_node(), queries)
        assert np.isfinite(overhead)
        assert overhead >= 0.0

    def test_single_pooling_sample_returns_neutral_price(self):
        from repro.serving import calibrate_request_overhead_from_queries

        traces = make_production_table_traces(
            num_lookups_per_table=50, num_rows=NUM_ROWS, num_tables=1,
            seed=0)
        queries = queries_from_traces(traces, 1, [0.0], batch_size=1,
                                      pooling_factor=4)
        assert calibrate_request_overhead_from_queries(
            self.build_node(), queries) == 0.0

    def test_validation(self):
        from repro.serving import calibrate_request_overhead_lookups

        node = self.build_node()
        with pytest.raises(ValueError, match="splits"):
            calibrate_request_overhead_lookups(node, self.make_request(),
                                               splits=1)
        with pytest.raises(ValueError, match="poolings"):
            calibrate_request_overhead_lookups(
                node, self.make_request(poolings=2), splits=4)

    def test_override_constant_still_honoured(self):
        """The hand-set constant remains the override path."""
        queries = make_skewed_queries()
        sharder = ReplicatedTableSharder.from_queries(
            4, queries, request_overhead_lookups=80.0)
        assert sharder.request_overhead_lookups == 80.0
