"""Tests for repro.core.host_interface (the Fig. 10 programming model)."""

import numpy as np
import pytest

from repro.core.host_interface import (
    MemoryRegion,
    NMPMemoryAllocator,
    RecNMPRuntime,
)
from repro.core.instruction import NMPOpcode
from repro.core.simulator import RecNMPConfig
from repro.dlrm.operators import (
    SLSRequest,
    sparse_lengths_sum,
    sparse_lengths_weighted_sum,
)


class TestAllocator:
    def test_regions_are_disjoint(self):
        allocator = NMPMemoryAllocator()
        table = allocator.allocate_table("emb", 100, 64)
        host = allocator.allocate_host_buffer("indices", 1024)
        assert table.region is MemoryRegion.NMP
        assert host.region is MemoryRegion.HOST
        assert table.end_address <= host.base_address
        assert allocator.region_of(table.base_address) is MemoryRegion.NMP
        assert allocator.region_of(host.base_address) is MemoryRegion.HOST

    def test_tables_page_aligned(self):
        allocator = NMPMemoryAllocator()
        first = allocator.allocate_table("a", 3, 64)
        second = allocator.allocate_table("b", 3, 64)
        assert first.base_address % 4096 == 0
        assert second.base_address % 4096 == 0
        assert second.base_address >= first.end_address

    def test_row_addresses(self):
        allocator = NMPMemoryAllocator()
        table = allocator.allocate_table("emb", 10, 256)
        assert table.row_address(0) == table.base_address
        assert table.row_address(3) == table.base_address + 3 * 256
        with pytest.raises(IndexError):
            table.row_address(10)

    def test_host_buffer_has_no_rows(self):
        allocator = NMPMemoryAllocator()
        buffer = allocator.allocate_host_buffer("out", 64)
        with pytest.raises(ValueError):
            buffer.row_address(0)

    def test_duplicate_names_rejected(self):
        allocator = NMPMemoryAllocator()
        allocator.allocate_host_buffer("x", 64)
        with pytest.raises(ValueError):
            allocator.allocate_host_buffer("x", 64)

    def test_nmp_region_exhaustion(self):
        allocator = NMPMemoryAllocator(nmp_region_base=0,
                                       host_region_base=8192)
        with pytest.raises(MemoryError):
            allocator.allocate_table("huge", 1000, 64)

    def test_lookup_by_name(self):
        allocator = NMPMemoryAllocator()
        allocation = allocator.allocate_host_buffer("lengths", 32)
        assert allocator["lengths"] is allocation

    def test_validation(self):
        with pytest.raises(ValueError):
            NMPMemoryAllocator(page_size=0)
        with pytest.raises(ValueError):
            NMPMemoryAllocator(nmp_region_base=100, host_region_base=50)
        with pytest.raises(ValueError):
            NMPMemoryAllocator().allocate_host_buffer("x", 0)
        with pytest.raises(ValueError):
            NMPMemoryAllocator().region_of(-1)


@pytest.fixture(scope="module")
def runtime():
    rng = np.random.default_rng(0)
    tables = {0: rng.standard_normal((256, 16)).astype(np.float32),
              1: rng.standard_normal((256, 16)).astype(np.float32)}
    config = RecNMPConfig(num_dimms=2, ranks_per_dimm=2,
                          vector_size_bytes=64)
    return RecNMPRuntime(config=config, tables=tables)


class TestRuntime:
    def test_tables_live_in_nmp_region(self, runtime):
        assert runtime.table_region(0) is MemoryRegion.NMP
        assert runtime.table_region(1) is MemoryRegion.NMP

    def test_sls_matches_reference(self, runtime):
        rng = np.random.default_rng(1)
        indices = rng.integers(0, 256, size=24)
        lengths = np.full(4, 6)
        execution = runtime.sls(0, indices, lengths, compare_baseline=False)
        expected = sparse_lengths_sum(runtime._tables[0], indices, lengths)
        np.testing.assert_allclose(execution.output, expected, rtol=1e-6)
        assert execution.simulated_cycles > 0
        assert execution.kernel.num_instructions == 24

    def test_weighted_sls(self, runtime):
        rng = np.random.default_rng(2)
        indices = rng.integers(0, 256, size=8)
        weights = rng.random(8).astype(np.float32)
        execution = runtime.sls(1, indices, [4, 4], weights=weights,
                                opcode=NMPOpcode.WEIGHTED_SUM,
                                compare_baseline=False)
        expected = sparse_lengths_weighted_sum(runtime._tables[1], indices,
                                               [4, 4], weights)
        np.testing.assert_allclose(execution.output, expected, rtol=1e-5)

    def test_mean_opcode(self, runtime):
        execution = runtime.sls(0, [1, 2, 3, 4], [4],
                                opcode=NMPOpcode.MEAN,
                                compare_baseline=False)
        expected = runtime._tables[0][[1, 2, 3, 4]].mean(axis=0)
        np.testing.assert_allclose(execution.output[0], expected, rtol=1e-5)

    def test_kernel_counter_configuration(self, runtime):
        rng = np.random.default_rng(3)
        request = SLSRequest(table_id=0,
                             indices=rng.integers(0, 256, size=12),
                             lengths=np.array([3, 4, 5]))
        kernel = runtime.compile_kernel([request])
        # One counter per (packet, pooling); counts sum to the lookup total.
        assert sum(kernel.counter_configuration.values()) == 12
        assert kernel.num_poolings == 3

    def test_multi_request_kernel(self, runtime):
        rng = np.random.default_rng(4)
        requests = [SLSRequest(table_id=t,
                               indices=rng.integers(0, 256, size=8),
                               lengths=np.array([4, 4])) for t in (0, 1)]
        execution = runtime.run_kernel(requests, compare_baseline=False)
        assert execution.output.shape == (4, 16)
        assert execution.kernel.num_packets >= 2

    def test_unknown_table_rejected(self, runtime):
        with pytest.raises(KeyError):
            runtime.sls(7, [0, 1], [2], compare_baseline=False)

    def test_weighted_requires_weights(self, runtime):
        with pytest.raises(ValueError):
            runtime.sls(0, [0, 1], [2], opcode=NMPOpcode.WEIGHTED_SUM,
                        compare_baseline=False)

    def test_duplicate_table_registration_rejected(self, runtime):
        with pytest.raises(ValueError):
            runtime.register_table(0, np.zeros((4, 4), dtype=np.float32))

    def test_1d_table_rejected(self):
        with pytest.raises(ValueError):
            RecNMPRuntime(tables={0: np.zeros(16, dtype=np.float32)})
