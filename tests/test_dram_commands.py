"""Tests for repro.dram.commands."""

import pytest

from repro.dram.commands import (
    CommandType,
    DramCommand,
    MemoryRequest,
    RequestType,
)


class TestMemoryRequest:
    def test_defaults(self):
        request = MemoryRequest(physical_address=4096)
        assert request.request_type is RequestType.READ
        assert request.size_bytes == 64
        assert request.completion_cycle == -1

    def test_unique_ids(self):
        a = MemoryRequest(physical_address=0)
        b = MemoryRequest(physical_address=0)
        assert a.request_id != b.request_id

    def test_latency_requires_completion(self):
        request = MemoryRequest(physical_address=0)
        with pytest.raises(ValueError):
            _ = request.latency_cycles
        request.arrival_cycle = 10
        request.completion_cycle = 50
        assert request.latency_cycles == 40

    def test_num_bursts(self):
        assert MemoryRequest(physical_address=0, size_bytes=64).num_bursts() \
            == 1
        assert MemoryRequest(physical_address=0, size_bytes=256).num_bursts() \
            == 4
        assert MemoryRequest(physical_address=0, size_bytes=65).num_bursts() \
            == 2

    def test_rejects_negative_address(self):
        with pytest.raises(ValueError):
            MemoryRequest(physical_address=-1)

    def test_rejects_nonpositive_size(self):
        with pytest.raises(ValueError):
            MemoryRequest(physical_address=0, size_bytes=0)

    def test_metadata_is_per_instance(self):
        a = MemoryRequest(physical_address=0)
        b = MemoryRequest(physical_address=0)
        a.metadata["table"] = 1
        assert b.metadata == {}


class TestCommands:
    def test_command_types(self):
        assert CommandType.ACT.value == "ACT"
        assert CommandType.RD.value == "RD"
        assert CommandType.PRE.value == "PRE"

    def test_dram_command_holds_fields(self):
        command = DramCommand(command_type=CommandType.ACT, address=None,
                              issue_cycle=12)
        assert command.command_type is CommandType.ACT
        assert command.issue_cycle == 12
