"""Tests for repro.core.simulator (the RecNMP cycle simulator)."""

import numpy as np
import pytest

from repro.core.simulator import RecNMPConfig, RecNMPSimulator
from repro.dlrm.operators import SLSRequest

NUM_ROWS = 20_000
VECTOR_BYTES = 128


def _address_of(table_id, row):
    return table_id * NUM_ROWS * VECTOR_BYTES + row * VECTOR_BYTES


def _requests(num_tables=2, batch=4, pooling=16, seed=0, hot=False):
    rng = np.random.default_rng(seed)
    requests = []
    for table in range(num_tables):
        if hot:
            indices = rng.integers(0, 16, size=batch * pooling)
        else:
            indices = rng.integers(0, NUM_ROWS, size=batch * pooling)
        requests.append(SLSRequest(table_id=table, indices=indices,
                                   lengths=np.full(batch, pooling)))
    return requests


def _simulator(**overrides):
    defaults = dict(num_dimms=2, ranks_per_dimm=2,
                    vector_size_bytes=VECTOR_BYTES)
    defaults.update(overrides)
    return RecNMPSimulator(RecNMPConfig(**defaults), address_of=_address_of)


class TestConfig:
    def test_num_ranks(self):
        assert RecNMPConfig(num_dimms=4, ranks_per_dimm=2).num_ranks == 8

    def test_labels(self):
        assert RecNMPConfig(use_rank_cache=False).label().endswith(
            "RecNMP-base")
        assert RecNMPConfig().label().endswith("RecNMP-opt")
        assert RecNMPConfig(
            enable_hot_entry_profiling=False).label().endswith("RecNMP-sched")
        assert RecNMPConfig(
            scheduling_policy="fcfs").label().endswith("RecNMP-cache")

    def test_validation(self):
        with pytest.raises(ValueError):
            RecNMPConfig(rank_assignment="striped")
        with pytest.raises(ValueError):
            RecNMPConfig(num_dimms=0)


class TestSimulation:
    def test_result_accounting(self):
        simulator = _simulator()
        result = simulator.run_requests(_requests(), compare_baseline=False)
        assert result.num_instructions == 2 * 4 * 16
        assert result.total_cycles > 0
        assert sum(result.rank_load) == result.num_instructions
        assert 0 < result.load_imbalance <= 1.0
        assert result.average_packet_cycles > 0

    def test_result_records_kernel_flavor(self):
        from repro.core import kernels
        simulator = _simulator()
        result = simulator.run_requests(_requests(), compare_baseline=False)
        assert result.kernel_flavor == kernels.active_flavor()
        assert result.as_dict()["kernel_flavor"] == result.kernel_flavor

    def test_speedup_vs_baseline_positive(self):
        simulator = _simulator()
        result = simulator.run_requests(_requests())
        assert result.baseline_cycles > 0
        assert result.speedup_vs_baseline > 0

    def test_more_ranks_faster(self):
        small = _simulator(num_dimms=1, ranks_per_dimm=2)
        large = _simulator(num_dimms=4, ranks_per_dimm=2)
        cycles_small = small.run_requests(
            _requests(seed=1), compare_baseline=False).total_cycles
        cycles_large = large.run_requests(
            _requests(seed=1), compare_baseline=False).total_cycles
        assert cycles_large < cycles_small

    def test_hot_trace_has_high_cache_hit_rate(self):
        simulator = _simulator()
        result = simulator.run_requests(_requests(hot=True, seed=2),
                                        compare_baseline=False)
        assert result.cache_hit_rate > 0.5

    def test_cache_helps_hot_traces(self):
        with_cache = _simulator(use_rank_cache=True)
        without_cache = _simulator(use_rank_cache=False)
        hot_requests = _requests(hot=True, seed=3)
        cycles_cache = with_cache.run_requests(
            hot_requests, compare_baseline=False).total_cycles
        cycles_plain = without_cache.run_requests(
            hot_requests, compare_baseline=False).total_cycles
        assert cycles_cache < cycles_plain

    def test_page_coloring_balances_load(self):
        address_mode = _simulator(rank_assignment="address",
                                  num_dimms=4, ranks_per_dimm=2)
        colored = _simulator(rank_assignment="page-coloring",
                             num_dimms=4, ranks_per_dimm=2)
        requests = _requests(num_tables=8, seed=4)
        imbalance_address = address_mode.run_requests(
            requests, compare_baseline=False).load_imbalance
        imbalance_colored = colored.run_requests(
            requests, compare_baseline=False).load_imbalance
        assert imbalance_colored <= imbalance_address + 0.05

    def test_energy_reported_and_positive(self):
        simulator = _simulator()
        result = simulator.run_requests(_requests(seed=5))
        assert result.energy_nj > 0
        assert result.baseline_energy_nj > 0
        assert result.energy_savings_fraction > 0

    def test_as_dict_keys(self):
        simulator = _simulator()
        result = simulator.run_requests(_requests(seed=6),
                                        compare_baseline=False)
        payload = result.as_dict()
        for key in ("total_cycles", "num_packets", "cache_hit_rate",
                    "load_imbalance"):
            assert key in payload

    def test_reset_clears_state(self):
        simulator = _simulator()
        simulator.run_requests(_requests(seed=7), compare_baseline=False)
        simulator.reset()
        stats = simulator.channel.aggregate_stats()
        assert stats["instructions"] == 0

    def test_reset_clears_packet_generator_state(self):
        """reset() must also clear the generator's profiling/id state."""
        simulator = _simulator()
        simulator.run_requests(_requests(seed=7), compare_baseline=False)
        assert simulator.packet_generator._packet_counter > 0
        assert simulator.packet_generator.last_profiles
        simulator.reset()
        assert simulator.packet_generator._packet_counter == 0
        assert simulator.packet_generator.last_profiles == {}

    def test_reset_makes_runs_reproducible(self):
        """A reset simulator reproduces a fresh simulator's result."""
        requests = _requests(seed=9)
        fresh = _simulator().run_requests(requests, compare_baseline=False)
        reused = _simulator()
        reused.run_requests(_requests(seed=10), compare_baseline=False)
        reused.reset()
        again = reused.run_requests(requests, compare_baseline=False)
        assert again.total_cycles == fresh.total_cycles
        assert again.cache_hit_rate == pytest.approx(fresh.cache_hit_rate)
        assert again.num_packets == fresh.num_packets

    def test_per_source_submission(self):
        simulator = _simulator()
        requests = _requests(num_tables=4, seed=8)
        result = simulator.run_requests(
            requests, compare_baseline=False,
            per_source_submission=[requests[:2], requests[2:]])
        assert result.num_instructions == 4 * 4 * 16
