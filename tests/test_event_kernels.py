"""Randomized equivalence tests for the serving event-loop kernels.

The compiled FIFO/EDF/admission kernels in
:mod:`repro.serving.event_kernels` must be *bit-identical* to the legacy
loops they replace (the ``heapq`` loops in
:func:`repro.serving.events.simulate_batch_queue` and the per-query
controller loop in :func:`repro.serving.admission.apply_admission`).
These tests drive randomized workloads -- with ties, idle gaps,
missing deadlines and every server count the engines use -- through
every interpreted flavor against the legacy paths, pin the flavor
plumbing, and (mirroring ``tests/test_core_kernels.py``) prove in
subprocesses that a host without numba, or with
``REPRO_DISABLE_KERNELS=1``, degrades to the same results.
"""

import os
import subprocess
import sys

import numpy as np
import pytest

from repro.serving import event_kernels
from repro.serving.admission import (
    DeadlineAwareAdmission,
    NoAdmission,
    QueueDepthAdmission,
    TokenBucketAdmission,
    admission_kernel_spec,
    apply_admission,
)
from repro.serving.arrival import ServingQuery
from repro.serving.event_kernels import (
    admission_mask,
    edf_queue_times,
    fifo_queue_times,
    force_flavor,
    new_admission_state,
)
from repro.serving.events import simulate_batch_queue

#: Interpreted flavors available on every host; the jitted flavor rides
#: along automatically where numba is installed (``active_flavor()``
#: resolves to it and the same tests run through it in the numba CI job).
FLAVORS = ["python", "flat-python"]
if event_kernels.active_flavor() == "numba":
    FLAVORS.append("numba")


def _random_queue(seed, size):
    """Ready/service vectors with ties, bursts and idle gaps."""
    rng = np.random.default_rng(seed)
    # Integer-valued gaps draw heavy ties (gap 0 = simultaneous ready
    # times) and occasional long idle stretches that drain the servers.
    gaps = rng.choice([0.0, 1.0, 2.0, 7.0, 500.0], size=size,
                      p=[0.3, 0.3, 0.2, 0.15, 0.05])
    ready = np.cumsum(gaps)
    services = rng.integers(1, 60, size=size).astype(np.float64)
    # Shuffle so arrival order != index order (the engines pass batches
    # in formation order, but the kernels must not rely on it).
    perm = rng.permutation(size)
    return ready[perm], services[perm]


class TestFifoKernels:
    @pytest.mark.parametrize("num_servers", [1, 2, 8])
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_matches_heapq_reference(self, seed, num_servers):
        import heapq

        ready, services = _random_queue(seed, 400)
        arrival_order = np.argsort(ready, kind="stable")
        starts = np.empty_like(ready)
        completes = np.empty_like(ready)
        free_at = [float(ready[arrival_order[0]])] * num_servers
        heapq.heapify(free_at)
        for index in arrival_order:
            start = max(float(ready[index]), heapq.heappop(free_at))
            complete = start + float(services[index])
            starts[index] = start
            completes[index] = complete
            heapq.heappush(free_at, complete)
        for flavor in FLAVORS:
            got_starts, got_completes = fifo_queue_times(
                ready, services, arrival_order, num_servers, flavor=flavor)
            assert np.array_equal(got_starts, starts), flavor
            assert np.array_equal(got_completes, completes), flavor

    @pytest.mark.parametrize("num_servers", [2, 8])
    @pytest.mark.parametrize("seed", [10, 11, 12])
    def test_simulate_batch_queue_flavors_match_disabled(self, seed,
                                                         num_servers):
        ready, services = _random_queue(seed, 300)
        with force_flavor("disabled"):
            expected = simulate_batch_queue(ready, services, num_servers)
        for flavor in FLAVORS:
            with force_flavor(flavor):
                got = simulate_batch_queue(ready, services, num_servers)
            assert np.array_equal(got[0], expected[0]), flavor
            assert np.array_equal(got[1], expected[1]), flavor
            assert got[2] == expected[2], flavor

    def test_single_batch(self):
        ready = np.array([5.0])
        services = np.array([3.0])
        order = np.array([0], dtype=np.int64)
        for flavor in FLAVORS:
            starts, completes = fifo_queue_times(ready, services, order, 4,
                                                 flavor=flavor)
            assert starts[0] == 5.0 and completes[0] == 8.0


class TestEdfKernels:
    def _priorities(self, rng, size):
        # Deadline-like priorities with heavy ties and +inf (no
        # deadline) entries -- the engine's exact construction.
        priorities = rng.choice([10.0, 20.0, 20.0, 50.0, np.inf],
                                size=size)
        offsets = rng.integers(0, 3, size=size).astype(np.float64)
        return priorities + offsets

    @pytest.mark.parametrize("num_servers", [1, 2, 8])
    @pytest.mark.parametrize("seed", [20, 21, 22, 23])
    def test_flavors_match_disabled(self, seed, num_servers):
        rng = np.random.default_rng(seed)
        ready, services = _random_queue(seed, 300)
        priorities = self._priorities(rng, ready.size)
        with force_flavor("disabled"):
            expected = simulate_batch_queue(ready, services, num_servers,
                                            order="edf",
                                            priorities=priorities)
        for flavor in FLAVORS:
            with force_flavor(flavor):
                got = simulate_batch_queue(ready, services, num_servers,
                                           order="edf",
                                           priorities=priorities)
            assert np.array_equal(got[0], expected[0]), flavor
            assert np.array_equal(got[1], expected[1]), flavor
            assert got[2] == expected[2], flavor

    def test_urgent_batch_overtakes(self):
        # Two batches waiting when the server frees: the later-arriving
        # but tighter-deadline batch must start first under EDF.
        ready = np.array([0.0, 1.0, 2.0])
        services = np.array([10.0, 5.0, 5.0])
        priorities = np.array([np.inf, 100.0, 20.0])
        order = np.argsort(ready, kind="stable")
        for flavor in FLAVORS:
            starts, _ = edf_queue_times(ready, services, priorities, order,
                                        1, flavor=flavor)
            assert starts[2] < starts[1]


class TestAdmissionKernels:
    CONTROLLERS = [
        NoAdmission(),
        TokenBucketAdmission(burst=8),
        TokenBucketAdmission(rate_qps=40_000.0, burst=4),
        QueueDepthAdmission(max_depth=16),
        DeadlineAwareAdmission(margin=1.2),
    ]

    def _queries(self, seed, size, with_deadlines):
        rng = np.random.default_rng(seed)
        gaps = rng.choice([0.0, 3.0, 9.0, 40.0], size=size)
        arrivals = np.cumsum(gaps)
        queries = []
        for index in range(size):
            deadline = None
            if with_deadlines and rng.random() < 0.8:
                deadline = float(arrivals[index]) \
                    + float(rng.integers(20, 400))
            queries.append(ServingQuery(query_id=index,
                                        arrival_us=float(arrivals[index]),
                                        deadline_us=deadline))
        return queries

    @pytest.mark.parametrize("controller", CONTROLLERS)
    @pytest.mark.parametrize("seed", [30, 31])
    def test_mask_matches_apply_admission(self, seed, controller):
        num_servers, est_query_us, est_batch_us = 3, 25.0, 200.0
        queries = self._queries(seed, 500, with_deadlines=True)
        admitted, shed = apply_admission(queries, controller, num_servers,
                                         est_query_us, est_batch_us)
        admitted_ids = {query.query_id for query in admitted}

        arrivals = np.array([q.arrival_us for q in queries])
        slacks = np.array([np.nan if q.deadline_us is None
                           else q.deadline_us - q.arrival_us
                           for q in queries])
        capacity_qps = num_servers / est_query_us * 1e6
        spec = admission_kernel_spec(controller, capacity_qps)
        assert spec is not None
        mode, param0, param1, initial_tokens = spec
        for flavor in FLAVORS:
            state = new_admission_state(arrivals[0], initial_tokens)
            mask = admission_mask(arrivals, slacks, state, num_servers,
                                  est_query_us, est_batch_us, mode, param0,
                                  param1, flavor=flavor)
            got_ids = {queries[i].query_id
                       for i in np.flatnonzero(mask)}
            assert got_ids == admitted_ids, flavor
        assert len(admitted) + len(shed) == len(queries)

    @pytest.mark.parametrize("chunk", [1, 7, 100])
    def test_chunked_state_carry_matches_oneshot(self, chunk):
        rng = np.random.default_rng(99)
        size = 400
        arrivals = np.cumsum(rng.choice([0.0, 5.0, 30.0], size=size))
        slacks = np.where(rng.random(size) < 0.3, np.nan,
                          rng.integers(10, 300, size).astype(np.float64))
        controller = TokenBucketAdmission(burst=6)
        mode, param0, param1, initial_tokens = admission_kernel_spec(
            controller, capacity_qps=3 / 25.0 * 1e6)
        for flavor in FLAVORS:
            state = new_admission_state(arrivals[0], initial_tokens)
            oneshot = admission_mask(arrivals, slacks, state, 3, 25.0,
                                     200.0, mode, param0, param1,
                                     flavor=flavor)
            state = new_admission_state(arrivals[0], initial_tokens)
            pieces = []
            for start in range(0, size, chunk):
                pieces.append(admission_mask(
                    arrivals[start:start + chunk],
                    slacks[start:start + chunk], state, 3, 25.0, 200.0,
                    mode, param0, param1, flavor=flavor))
            assert np.array_equal(np.concatenate(pieces), oneshot), flavor

    def test_custom_subclass_has_no_kernel_spec(self):
        class Tighter(TokenBucketAdmission):
            pass

        assert admission_kernel_spec(Tighter(), 1e6) is None


class TestFlavorPlumbing:
    def test_active_flavor_known(self):
        assert event_kernels.active_flavor() in (
            "numba", "python", "flat-python", "disabled")

    def test_describe_nonempty(self):
        assert event_kernels.describe()

    def test_force_numba_without_numba_raises(self):
        if event_kernels.active_flavor() == "numba":
            pytest.skip("numba installed: forcing it is legitimate")
        ready = np.array([0.0, 1.0])
        services = np.array([1.0, 1.0])
        order = np.array([0, 1], dtype=np.int64)
        with pytest.raises(RuntimeError, match="numba"):
            fifo_queue_times(ready, services, order, 2, flavor="numba")


class TestForcedFallback:
    """Missing numba and REPRO_DISABLE_KERNELS=1 must both degrade to
    bit-identical event simulations (mirrors the core-kernel test)."""

    SNIPPET = """
import sys
{prelude}
from repro.serving import event_kernels
assert event_kernels.active_flavor() == {expected!r}, \\
    event_kernels.active_flavor()
import numpy as np
from repro.serving.events import simulate_batch_queue

rng = np.random.default_rng(7)
ready = np.cumsum(rng.choice([0.0, 1.0, 2.0, 400.0], size=500))
services = rng.integers(1, 60, size=500).astype(np.float64)
starts, completes, depth = simulate_batch_queue(ready, services, 4)
print("CHECK=%r" % ((float(starts.sum()), float(completes.sum()),
                     depth),))
"""

    BLOCK_NUMBA = """
import importlib.abc

class _Block(importlib.abc.MetaPathFinder):
    def find_spec(self, name, path=None, target=None):
        if name == "numba" or name.startswith("numba."):
            raise ImportError("numba blocked for fallback test")
        return None

sys.meta_path.insert(0, _Block())
"""

    def _run_subprocess(self, prelude, expected, extra_env=None):
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [os.path.join(os.path.dirname(__file__), "..", "src")]
            + env.get("PYTHONPATH", "").split(os.pathsep))
        env.pop("REPRO_DISABLE_KERNELS", None)
        if extra_env:
            env.update(extra_env)
        script = self.SNIPPET.format(prelude=prelude, expected=expected)
        completed = subprocess.run([sys.executable, "-c", script],
                                   env=env, capture_output=True, text=True,
                                   timeout=240)
        assert completed.returncode == 0, completed.stderr
        for line in completed.stdout.splitlines():
            if line.startswith("CHECK="):
                return eval(line.split("=", 1)[1])  # literal tuple
        raise AssertionError("no CHECK line in output: %r"
                             % completed.stdout)

    def _reference(self):
        rng = np.random.default_rng(7)
        ready = np.cumsum(rng.choice([0.0, 1.0, 2.0, 400.0], size=500))
        services = rng.integers(1, 60, size=500).astype(np.float64)
        starts, completes, depth = simulate_batch_queue(ready, services, 4)
        return (float(starts.sum()), float(completes.sum()), depth)

    def test_env_var_disables_kernels(self):
        check = self._run_subprocess(
            "", "disabled", extra_env={"REPRO_DISABLE_KERNELS": "1"})
        assert check == self._reference()

    def test_import_without_numba(self):
        check = self._run_subprocess(self.BLOCK_NUMBA, "python")
        assert check == self._reference()
