"""Tests for repro.dram.controller."""

import pytest

from repro.dram.commands import MemoryRequest, RequestType
from repro.dram.controller import MemoryController
from repro.dram.timing import DDR4_2400


class TestControllerBasics:
    def test_single_read_latency(self):
        controller = MemoryController()
        request = MemoryRequest(physical_address=0)
        controller.enqueue(request)
        stats = controller.run_until_drained()
        assert stats.requests_completed == 1
        # Closed bank: ACT + RD -> at least tRCD + tCL + tBL cycles.
        minimum = DDR4_2400.tRCD + DDR4_2400.tCL + DDR4_2400.tBL
        assert request.latency_cycles >= minimum

    def test_row_hit_faster_than_miss(self):
        controller = MemoryController()
        first = MemoryRequest(physical_address=0)
        second = MemoryRequest(physical_address=64 * 4)  # same row, same bank
        controller.enqueue(first)
        controller.enqueue(second)
        controller.run_until_drained()
        assert second.completion_cycle > first.completion_cycle
        assert controller.stats.row_hits >= 1

    def test_writes_not_supported(self):
        controller = MemoryController()
        with pytest.raises(NotImplementedError):
            controller.enqueue(MemoryRequest(physical_address=0,
                                             request_type=RequestType.WRITE))

    def test_queue_depth_validation(self):
        with pytest.raises(ValueError):
            MemoryController(queue_depth=0)

    def test_pending_counts_waiting_requests(self):
        controller = MemoryController(queue_depth=2)
        for i in range(5):
            controller.enqueue(MemoryRequest(physical_address=i * 1 << 20))
        assert controller.pending_requests == 5
        controller.run_until_drained()
        assert controller.pending_requests == 0
        assert controller.stats.requests_completed == 5


class TestFRFCFS:
    def test_prioritises_row_hits(self):
        controller = MemoryController()
        # Request A opens row X.  Then enqueue B (different row, same bank)
        # and C (row X, same bank).  FR-FCFS should serve C before B.
        row_bytes = 4 * 128 * 64 * 4  # stride that lands on same bank/diff row
        a = MemoryRequest(physical_address=0)
        controller.enqueue(a)
        controller.run_until_drained()
        b = MemoryRequest(physical_address=row_bytes)
        c = MemoryRequest(physical_address=64 * 4)
        controller.enqueue(b)
        controller.enqueue(c)
        controller.run_until_drained()
        if controller.stats.row_hits >= 2:
            assert c.completion_cycle < b.completion_cycle

    def test_throughput_of_random_trace(self):
        controller = MemoryController()
        import random

        rng = random.Random(0)
        addresses = [rng.randrange(0, 1 << 30) // 64 * 64 for _ in range(200)]
        stats = controller.process_trace(addresses)
        assert stats.requests_completed == 200
        # Bank-level parallelism must beat fully serialised row misses.
        serialized = 200 * (DDR4_2400.tRP + DDR4_2400.tRCD + DDR4_2400.tCL)
        assert stats.cycles_elapsed < serialized

    def test_data_bus_bound_for_row_hits(self):
        controller = MemoryController()
        # Sequential addresses in one row: throughput ~ tBL per burst.
        addresses = [i * 64 for i in range(64)]
        stats = controller.process_trace(addresses)
        assert stats.cycles_elapsed >= 64 * DDR4_2400.tBL
        assert stats.cycles_elapsed <= 64 * DDR4_2400.tBL + 200

    def test_outstanding_cap(self):
        controller = MemoryController()
        addresses = [i * 4096 for i in range(50)]
        stats = controller.process_trace(addresses, batch_size=4)
        assert stats.requests_completed == 50

    def test_stats_row_hit_rate(self):
        controller = MemoryController()
        addresses = [i * 64 for i in range(32)]
        stats = controller.process_trace(addresses)
        assert 0.9 <= stats.row_hit_rate <= 1.0 or stats.row_hits >= 28
        assert stats.average_latency_cycles > 0
