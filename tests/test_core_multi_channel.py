"""Tests for repro.core.multi_channel (software-coordinated channels)."""

import numpy as np
import pytest

from repro.core.multi_channel import MultiChannelRecNMP
from repro.core.simulator import RecNMPConfig
from repro.dlrm.operators import SLSRequest

NUM_ROWS = 10_000
VECTOR_BYTES = 128


def _address_of(table_id, row):
    return table_id * NUM_ROWS * VECTOR_BYTES + row * VECTOR_BYTES


def _requests(num_tables=4, batch=4, pooling=16, seed=0):
    rng = np.random.default_rng(seed)
    return [SLSRequest(table_id=t,
                       indices=rng.integers(0, NUM_ROWS,
                                            size=batch * pooling),
                       lengths=np.full(batch, pooling))
            for t in range(num_tables)]


def _coordinator(num_channels=2, **config_overrides):
    defaults = dict(num_dimms=1, ranks_per_dimm=2,
                    vector_size_bytes=VECTOR_BYTES)
    defaults.update(config_overrides)
    return MultiChannelRecNMP(num_channels=num_channels,
                              channel_config=RecNMPConfig(**defaults),
                              address_of=_address_of)


class TestPartitioning:
    def test_tables_round_robin_over_channels(self):
        coordinator = _coordinator(num_channels=2)
        assert coordinator.channel_of_table(0) == 0
        assert coordinator.channel_of_table(1) == 1
        assert coordinator.channel_of_table(2) == 0

    def test_partition_preserves_all_requests(self):
        coordinator = _coordinator(num_channels=2)
        requests = _requests(num_tables=5)
        partitions = coordinator.partition_requests(requests)
        assert sum(len(p) for p in partitions) == 5
        assert len(partitions[0]) == 3 and len(partitions[1]) == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            MultiChannelRecNMP(num_channels=0)
        with pytest.raises(ValueError):
            _coordinator().channel_of_table(-1)


class TestExecution:
    def test_aggregate_accounting(self):
        coordinator = _coordinator(num_channels=2)
        requests = _requests(num_tables=4, seed=1)
        result = coordinator.run_requests(requests, compare_baseline=False)
        assert result.num_channels == 2
        assert result.total_cycles == max(result.per_channel_cycles)
        assert sum(result.per_channel_instructions) == 4 * 4 * 16
        assert 0.5 <= result.channel_utilization <= 1.0
        assert result.energy_nj > 0

    def test_two_channels_faster_than_one(self):
        requests = _requests(num_tables=4, seed=2)
        single = _coordinator(num_channels=1).run_requests(
            requests, compare_baseline=False)
        dual = _coordinator(num_channels=2).run_requests(
            requests, compare_baseline=False)
        assert dual.total_cycles < single.total_cycles

    def test_speedup_vs_baseline(self):
        coordinator = _coordinator(num_channels=2, num_dimms=2)
        result = coordinator.run_requests(_requests(num_tables=4, seed=3))
        assert result.baseline_cycles > 0
        assert result.speedup_vs_baseline > 1.0
        assert result.baseline_energy_nj > result.energy_nj

    def test_empty_channel_tolerated(self):
        # One table on a two-channel system leaves channel 1 idle.
        coordinator = _coordinator(num_channels=2)
        result = coordinator.run_requests(_requests(num_tables=1, seed=4),
                                          compare_baseline=False)
        assert result.per_channel_instructions[1] == 0
        assert result.total_cycles > 0

    def test_no_requests_rejected(self):
        with pytest.raises(ValueError):
            _coordinator().run_requests([], compare_baseline=False)

    def test_reset(self):
        coordinator = _coordinator(num_channels=2)
        coordinator.run_requests(_requests(seed=5), compare_baseline=False)
        coordinator.reset()
        for simulator in coordinator.simulators:
            assert simulator.channel.aggregate_stats()["instructions"] == 0
