"""Tests for repro.dram.system and repro.dram.energy."""

import pytest

from repro.dram.energy import DramEnergyModel, DramEnergyParameters
from repro.dram.system import DramSystem, DramSystemConfig
from repro.dram.timing import DDR4_2400


class TestDramSystemConfig:
    def test_defaults_match_table1(self):
        config = DramSystemConfig()
        assert config.num_channels == 4
        assert config.ranks_per_dimm == 2
        assert config.queue_depth == 32
        assert config.peak_bandwidth_gbps == pytest.approx(76.8)

    def test_total_ranks(self):
        assert DramSystemConfig().total_ranks == 8

    def test_rejects_bad_population(self):
        with pytest.raises(ValueError):
            DramSystemConfig(num_channels=0)


class TestDramSystemExecution:
    def test_trace_distributes_over_channels(self):
        system = DramSystem(DramSystemConfig(num_channels=2))
        addresses = [i * 64 for i in range(64)]
        result = system.run_trace(addresses)
        assert result.requests == 64
        assert len(result.per_channel_stats) == 2

    def test_multi_channel_faster_than_single(self):
        addresses = [i * 64 for i in range(256)]
        single = DramSystem(DramSystemConfig(num_channels=1)).run_trace(
            addresses)
        quad = DramSystem(DramSystemConfig(num_channels=4)).run_trace(
            addresses)
        assert quad.cycles < single.cycles

    def test_large_requests_expand_to_bursts(self):
        system = DramSystem(DramSystemConfig(num_channels=1))
        addresses = [i * 256 for i in range(32)]
        small = system.run_trace(addresses, request_bytes=64)
        system2 = DramSystem(DramSystemConfig(num_channels=1))
        large = system2.run_trace(addresses, request_bytes=256)
        assert large.requests == 4 * small.requests
        assert large.cycles > small.cycles

    def test_rejects_bad_request_bytes(self):
        system = DramSystem()
        with pytest.raises(ValueError):
            system.run_trace([0], request_bytes=100)

    def test_bandwidth_below_peak(self):
        system = DramSystem(DramSystemConfig(num_channels=1))
        addresses = [i * 64 for i in range(512)]
        result = system.run_trace(addresses)
        per_channel_peak = DDR4_2400.data_rate_mts * 1e6 * 8 / 1e9
        assert 0 < result.achieved_bandwidth_gbps <= per_channel_peak * 1.01

    def test_energy_reported(self):
        system = DramSystem(DramSystemConfig(num_channels=1))
        result = system.run_trace([i * 4096 for i in range(64)])
        assert result.energy_nj > 0
        assert result.energy_breakdown["activate_nj"] > 0


class TestDramEnergyModel:
    def test_activation_energy(self):
        model = DramEnergyModel()
        breakdown = model.energy(activations=10, bytes_read=0,
                                 bytes_to_host=0, elapsed_ns=0)
        assert breakdown.activate_nj == pytest.approx(21.0)

    def test_read_and_io_energy(self):
        model = DramEnergyModel()
        breakdown = model.energy(activations=0, bytes_read=64,
                                 bytes_to_host=64, elapsed_ns=0)
        assert breakdown.read_write_nj == pytest.approx(64 * 8 * 14 / 1000)
        assert breakdown.offchip_io_nj == pytest.approx(64 * 8 * 22 / 1000)

    def test_background_energy_scales_with_time_and_ranks(self):
        model = DramEnergyModel()
        one = model.energy(0, 0, 0, elapsed_ns=1000, active_ranks=1)
        two = model.energy(0, 0, 0, elapsed_ns=1000, active_ranks=2)
        assert two.background_nj == pytest.approx(2 * one.background_nj)

    def test_rejects_negative_inputs(self):
        with pytest.raises(ValueError):
            DramEnergyModel().energy(-1, 0, 0, 0)

    def test_parameters_validation(self):
        with pytest.raises(ValueError):
            DramEnergyParameters(activate_nj=-1)

    def test_total_is_sum(self):
        breakdown = DramEnergyModel().energy(5, 640, 640, 100.0, 2)
        parts = (breakdown.activate_nj + breakdown.read_write_nj
                 + breakdown.offchip_io_nj + breakdown.background_nj)
        assert breakdown.total_nj == pytest.approx(parts)
