"""Tests for repro.dram.rank."""

import pytest

from repro.dram.commands import CommandType
from repro.dram.rank import Rank
from repro.dram.timing import DDR4_2400


@pytest.fixture
def rank():
    return Rank(DDR4_2400)


class TestRankStructure:
    def test_bank_count(self, rank):
        assert len(rank.banks) == 16

    def test_bank_lookup(self, rank):
        bank = rank.bank(2, 3)
        assert bank.bank_group == 2
        assert bank.bank_index == 3

    def test_bank_lookup_out_of_range(self, rank):
        with pytest.raises(IndexError):
            rank.bank(4, 0)
        with pytest.raises(IndexError):
            rank.bank(0, 4)

    def test_rejects_bad_timing(self):
        with pytest.raises(TypeError):
            Rank("nope")

    def test_rejects_bad_bank_counts(self):
        with pytest.raises(ValueError):
            Rank(DDR4_2400, num_bank_groups=0)


class TestRankTiming:
    def test_trrd_short_across_bank_groups(self, rank):
        rank.issue(CommandType.ACT, 0, 0, 1, 0)
        ready = rank.earliest_issue_cycle(CommandType.ACT, 1, 0, 0)
        assert ready == DDR4_2400.tRRD_S

    def test_trrd_long_same_bank_group(self, rank):
        rank.issue(CommandType.ACT, 0, 0, 1, 0)
        ready = rank.earliest_issue_cycle(CommandType.ACT, 0, 1, 0)
        assert ready == DDR4_2400.tRRD_L

    def test_tfaw_limits_fifth_activate(self, rank):
        # Four ACTs to different banks as fast as tRRD allows.
        cycle = 0
        for i in range(4):
            bank_group = i % 4
            cycle = rank.earliest_issue_cycle(CommandType.ACT, bank_group, i // 4,
                                              cycle)
            rank.issue(CommandType.ACT, bank_group, i // 4, 1, cycle)
        # The fifth ACT must wait for the tFAW window of the first.
        ready = rank.earliest_issue_cycle(CommandType.ACT, 0, 2, cycle)
        assert ready >= rank._act_history[0] + DDR4_2400.tFAW

    def test_tccd_spacing(self, rank):
        rank.issue(CommandType.ACT, 0, 0, 1, 0)
        rank.issue(CommandType.ACT, 1, 0, 1, DDR4_2400.tRRD_S)
        first_rd = rank.earliest_issue_cycle(CommandType.RD, 0, 0, 0)
        rank.issue(CommandType.RD, 0, 0, 1, first_rd)
        # Same bank group -> tCCD_L; different -> tCCD_S.
        same_group = rank.earliest_issue_cycle(CommandType.RD, 0, 0,
                                               first_rd)
        other_group = rank.earliest_issue_cycle(CommandType.RD, 1, 0,
                                                first_rd)
        assert same_group >= first_rd + DDR4_2400.tCCD_L
        assert other_group >= first_rd + DDR4_2400.tCCD_S

    def test_data_bus_serialises_bursts(self, rank):
        rank.issue(CommandType.ACT, 0, 0, 1, 0)
        rank.issue(CommandType.ACT, 1, 0, 1, DDR4_2400.tRRD_S)
        rd1_cycle = rank.earliest_issue_cycle(CommandType.RD, 0, 0, 0)
        done1 = rank.issue(CommandType.RD, 0, 0, 1, rd1_cycle)
        rd2_cycle = rank.earliest_issue_cycle(CommandType.RD, 1, 0, rd1_cycle)
        done2 = rank.issue(CommandType.RD, 1, 0, 1, rd2_cycle)
        # Second burst cannot finish before the first plus one burst length.
        assert done2 >= done1 + DDR4_2400.tBL

    def test_illegal_issue_raises(self, rank):
        rank.issue(CommandType.ACT, 0, 0, 1, 0)
        with pytest.raises(RuntimeError):
            rank.issue(CommandType.ACT, 0, 1, 1, 1)   # violates tRRD_L

    def test_stats_aggregation(self, rank):
        rank.issue(CommandType.ACT, 0, 0, 1, 0)
        rd = rank.earliest_issue_cycle(CommandType.RD, 0, 0, 0)
        rank.issue(CommandType.RD, 0, 0, 1, rd)
        stats = rank.stats()
        assert stats["activations"] == 1
        assert stats["reads"] == 1
