"""Tests for repro.baselines (host, TensorDIMM, Chameleon)."""

import pytest

from repro.baselines.chameleon import Chameleon
from repro.baselines.host import HostBaseline
from repro.baselines.tensordimm import TensorDIMM
from repro.dram.system import DramSystemConfig


class TestHostBaseline:
    def test_trace_execution(self):
        baseline = HostBaseline(DramSystemConfig(num_channels=1))
        result = baseline.run_trace([i * 64 for i in range(128)])
        assert result.cycles > 0
        assert result.bytes_moved == 128 * 64
        assert result.energy_nj > 0

    def test_vector_bytes_expand_work(self):
        baseline = HostBaseline(DramSystemConfig(num_channels=1))
        small = baseline.run_trace([i * 256 for i in range(64)],
                                   vector_bytes=64)
        large = HostBaseline(DramSystemConfig(num_channels=1)).run_trace(
            [i * 256 for i in range(64)], vector_bytes=256)
        assert large.cycles > small.cycles
        assert large.bytes_moved == 4 * small.bytes_moved

    def test_analytical_time_scales_with_lookups(self):
        baseline = HostBaseline()
        assert baseline.analytical_sls_time_us(20_000) == pytest.approx(
            2 * baseline.analytical_sls_time_us(10_000))

    def test_analytical_validation(self):
        with pytest.raises(ValueError):
            HostBaseline().analytical_sls_time_us(-1)

    def test_normalisation_point(self):
        assert HostBaseline.memory_latency_speedup() == 1.0


class TestTensorDIMM:
    def test_scales_with_dimms_not_ranks(self):
        two_dimms = TensorDIMM(num_dimms=2, ranks_per_dimm=1)
        four_dimms = TensorDIMM(num_dimms=4, ranks_per_dimm=1)
        more_ranks = TensorDIMM(num_dimms=2, ranks_per_dimm=4)
        assert four_dimms.memory_latency_speedup() == pytest.approx(
            2 * two_dimms.memory_latency_speedup())
        assert more_ranks.memory_latency_speedup() == pytest.approx(
            two_dimms.memory_latency_speedup())

    def test_small_vectors_limit_per_vector_parallelism(self):
        model = TensorDIMM(num_dimms=4)
        assert model.effective_parallelism(vector_bytes=64) == 1
        assert model.effective_parallelism(vector_bytes=256) == 4
        assert model.memory_latency_speedup(vector_bytes=64,
                                            batch_parallel=False) == \
            pytest.approx(1.0)

    def test_locality_has_no_effect(self):
        model = TensorDIMM(num_dimms=4)
        assert model.memory_latency_speedup(trace_kind="random") == \
            model.memory_latency_speedup(trace_kind="production")

    def test_speedup_by_config(self):
        results = TensorDIMM().speedup_by_config([(1, 2), (4, 2)])
        assert results["4x2"] > results["1x2"]

    def test_validation(self):
        with pytest.raises(ValueError):
            TensorDIMM(num_dimms=0)
        with pytest.raises(ValueError):
            TensorDIMM(dimm_efficiency=0)
        with pytest.raises(ValueError):
            TensorDIMM().effective_parallelism(vector_bytes=100)


class TestChameleon:
    def test_multiplexing_penalty(self):
        chameleon = Chameleon(num_dimms=4)
        tensordimm = TensorDIMM(num_dimms=4)
        assert chameleon.memory_latency_speedup() < \
            tensordimm.memory_latency_speedup()

    def test_scales_with_dimms(self):
        assert Chameleon(num_dimms=4).memory_latency_speedup() == \
            pytest.approx(2 * Chameleon(num_dimms=2).memory_latency_speedup())

    def test_locality_has_no_effect(self):
        model = Chameleon()
        assert model.memory_latency_speedup(trace_kind="random") == \
            model.memory_latency_speedup(trace_kind="production")

    def test_speedup_by_config(self):
        results = Chameleon().speedup_by_config([(1, 2), (2, 2), (4, 2)])
        assert results["4x2"] > results["2x2"] > results["1x2"]

    def test_validation(self):
        with pytest.raises(ValueError):
            Chameleon(multiplexing_efficiency=0)
        with pytest.raises(ValueError):
            Chameleon(num_cgra_cores=0)
