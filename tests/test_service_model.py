"""Tests for the batch-size-aware service-time models and the LRU cache."""

import pytest

from repro.perf.service_model import (
    ExactServiceModel,
    InterpolatingServiceModel,
    ServiceTimeModel,
    resolve_service_model,
)
from repro.serving import (
    BatchingFrontend,
    PoissonArrivalProcess,
    ServingQuery,
    ShardedServingCluster,
    qps_sweep,
    queries_from_traces,
)
from repro.serving.batcher import QueryBatch
from repro.traces import make_production_table_traces
from repro.utils.lru import LRUCache

NUM_ROWS = 512
VECTOR_BYTES = 64


def address_of(table_id, row):
    return (table_id * NUM_ROWS + row) * VECTOR_BYTES


def make_traces(num_tables=4, lookups=2000):
    return make_production_table_traces(
        num_lookups_per_table=lookups, num_rows=NUM_ROWS,
        num_tables=num_tables, seed=0)


def make_cluster(**overrides):
    return ShardedServingCluster(
        num_nodes=2, node_system="recnmp-base", address_of=address_of,
        vector_size_bytes=VECTOR_BYTES, **overrides)


class TestLRUCache:
    def test_eviction_order(self):
        cache = LRUCache(max_entries=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1          # refresh "a"
        cache.put("c", 3)                   # evicts "b"
        assert "b" not in cache
        assert cache.get("a") == 1
        assert cache.get("c") == 3
        assert len(cache) == 2

    def test_stats_and_clear(self):
        cache = LRUCache(max_entries=4)
        cache.put("k", "v")
        assert cache.get("k") == "v"
        assert cache.get("missing") is None
        stats = cache.stats()
        assert stats == {"entries": 1, "max_entries": 4, "hits": 1,
                         "misses": 1}
        cache.clear()
        assert len(cache) == 0
        assert cache.stats()["hits"] == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            LRUCache(max_entries=0)


class TestServiceCacheBound:
    def test_cluster_cache_is_bounded(self):
        """Regression: _service_cache grew without limit on long replays."""
        cluster = make_cluster(service_cache_entries=2)
        queries = queries_from_traces(
            make_traces(), 6, [float(i) * 1000.0 for i in range(6)],
            batch_size=2, pooling_factor=4)
        frontend = BatchingFrontend(max_queries=1)
        cluster.simulate(queries, frontend=frontend)   # 6 distinct batches
        stats = cluster.service_cache_stats()
        assert stats["entries"] <= 2
        assert stats["misses"] == 6

    def test_reset_clears_cache(self):
        cluster = make_cluster()
        queries = queries_from_traces(
            make_traces(), 4, [float(i) for i in range(4)],
            batch_size=2, pooling_factor=4)
        cluster.simulate(queries)
        assert cluster.service_cache_stats()["entries"] > 0
        cluster.reset()
        assert cluster.service_cache_stats()["entries"] == 0


class TestResolution:
    def test_default_and_names(self):
        assert isinstance(resolve_service_model(None), ExactServiceModel)
        assert isinstance(resolve_service_model("exact"), ExactServiceModel)
        model = InterpolatingServiceModel(make_traces())
        assert resolve_service_model(model) is model
        assert isinstance(resolve_service_model(ExactServiceModel),
                          ExactServiceModel)

    def test_interp_requires_instance(self):
        with pytest.raises(ValueError):
            resolve_service_model("interp")
        with pytest.raises(ValueError):
            resolve_service_model("nope")

    def test_models_implement_interface(self):
        assert issubclass(ExactServiceModel, ServiceTimeModel)
        assert issubclass(InterpolatingServiceModel, ServiceTimeModel)


class TestExactModel:
    def test_matches_cluster_service_time(self):
        cluster = make_cluster()
        queries = queries_from_traces(
            make_traces(), 4, [float(i) for i in range(4)],
            batch_size=2, pooling_factor=4)
        batches = BatchingFrontend(max_queries=2).form_batches(queries)
        model = ExactServiceModel()
        for batch in batches:
            assert model.service_time_us(cluster, batch) == \
                pytest.approx(cluster.service_time_us(batch))


class TestInterpolatingModel:
    def test_within_tolerance_of_exact(self):
        """Interpolated service times track the simulated ones."""
        traces = make_traces()
        cluster = make_cluster()
        queries = queries_from_traces(
            traces, 16, [float(i) * 50.0 for i in range(16)],
            batch_size=2, pooling_factor=8)
        batches = BatchingFrontend(max_queries=4,
                                   max_delay_us=100.0).form_batches(queries)
        model = InterpolatingServiceModel(
            traces, batch_sizes=(1, 2, 4, 8, 16))
        for batch in batches:
            exact = cluster.service_time_us(batch)
            approx = model.service_time_us(cluster, batch)
            assert approx == pytest.approx(exact, rel=0.15)

    def test_calibration_is_amortised(self):
        """Many batches cost only the fixed calibration simulations."""
        traces = make_traces()
        cluster = make_cluster()
        queries = queries_from_traces(
            traces, 64, [float(i) * 10.0 for i in range(64)],
            batch_size=2, pooling_factor=8)
        batches = BatchingFrontend(max_queries=4).form_batches(queries)
        model = InterpolatingServiceModel(
            traces, batch_sizes=(1, 2, 4, 8))
        model.service_times_us(cluster, batches)
        stats = model.stats()
        assert stats["interpolated_calls"] == len(batches)
        assert stats["exact_calls"] <= 8      # calibration rows only
        # A second pass re-uses the calibrated grid entirely.
        model.service_times_us(cluster, batches)
        assert model.stats()["exact_calls"] == stats["exact_calls"]

    def test_extrapolates_beyond_grid(self):
        traces = make_traces()
        cluster = make_cluster()
        queries = queries_from_traces(
            traces, 12, [0.0] * 12, batch_size=4, pooling_factor=8)
        batches = BatchingFrontend(max_queries=12).form_batches(queries)
        assert len(batches) == 1
        # A 12-query batch; the batch-size grid stops at 4 queries.
        model = InterpolatingServiceModel(traces,
                                          batch_sizes=(1, 2, 4))
        approx = model.service_time_us(cluster, batches[0])
        exact = cluster.service_time_us(batches[0])
        assert approx == pytest.approx(exact, rel=0.35)
        assert approx > model.service_time_us(
            cluster, BatchingFrontend(max_queries=2).form_batches(
                queries[:2])[0])

    def test_validation(self):
        with pytest.raises(ValueError):
            InterpolatingServiceModel([])
        with pytest.raises(ValueError):
            InterpolatingServiceModel(make_traces(), batch_sizes=(4,))
        with pytest.raises(ValueError):
            InterpolatingServiceModel(make_traces(),
                                      batch_sizes=(0, 4))
        # Calibration traces too short for the observed request shape.
        short = make_traces(lookups=8)
        model = InterpolatingServiceModel(short, batch_sizes=(1, 2, 4))
        cluster = make_cluster()
        queries = queries_from_traces(make_traces(), 1, [0.0],
                                      batch_size=2, pooling_factor=8)
        batch = BatchingFrontend().form_batches(queries)[0]
        with pytest.raises(ValueError):
            model.service_time_us(cluster, batch)

    def test_pooling_factor_grid_clamps_out_of_range(self):
        """An off-grid pooling factor uses the nearest row, not a global
        extrapolation across the whole pooling-factor range."""
        traces = make_traces()
        cluster = make_cluster()
        queries = queries_from_traces(traces, 2, [0.0, 0.0],
                                      batch_size=2, pooling_factor=4)
        batch = BatchingFrontend(max_queries=2).form_batches(queries)[0]
        clamped = InterpolatingServiceModel(
            traces, batch_sizes=(1, 2, 4), pooling_factors=(8, 16))
        nearest_only = InterpolatingServiceModel(
            traces, batch_sizes=(1, 2, 4), pooling_factors=(8,))
        assert clamped.service_time_us(cluster, batch) == \
            pytest.approx(nearest_only.service_time_us(cluster, batch))
        # Only the pf=8 row was calibrated (3 grid points), not pf=16.
        assert clamped.stats()["exact_calls"] == 3
        # Above the grid clamps to the last row symmetrically.
        high = queries_from_traces(traces, 2, [0.0, 0.0],
                                   batch_size=2, pooling_factor=20)
        high_batch = BatchingFrontend(max_queries=2).form_batches(high)[0]
        top_only = InterpolatingServiceModel(
            traces, batch_sizes=(1, 2, 4), pooling_factors=(16,))
        assert clamped.service_time_us(cluster, high_batch) == \
            pytest.approx(top_only.service_time_us(cluster, high_batch))

    def test_empty_request_batch_raises_value_error(self):
        """Regression: a batch whose queries carry no requests raised a
        bare ZeroDivisionError from the shape derivation."""
        batch = QueryBatch(
            queries=[ServingQuery(query_id=0, arrival_us=0.0,
                                  requests=[])],
            open_us=0.0, formed_us=1.0)
        model = InterpolatingServiceModel(make_traces())
        with pytest.raises(ValueError, match="no SLS requests"):
            model.service_time_us(make_cluster(), batch)

    def test_qps_sweep_resolves_model_once(self):
        """A model passed by name/class is instantiated once per sweep,
        mirroring the engine handling."""
        instances = []

        class CountingModel(ExactServiceModel):
            def __init__(self):
                instances.append(self)

        cluster = make_cluster()
        traces = make_traces()

        def make_queries(qps):
            return queries_from_traces(
                traces, 4, PoissonArrivalProcess(rate_qps=qps, seed=3),
                batch_size=2, pooling_factor=4)

        reports = qps_sweep(cluster, make_queries,
                            [20_000.0, 30_000.0, 40_000.0],
                            service_model=CountingModel)
        assert len(reports) == 3
        assert len(instances) == 1

    def test_through_cluster_simulate(self):
        traces = make_traces()
        cluster = make_cluster()
        queries = queries_from_traces(
            traces, 12, PoissonArrivalProcess(rate_qps=30_000, seed=3),
            batch_size=2, pooling_factor=8)
        model = InterpolatingServiceModel(traces,
                                          batch_sizes=(1, 2, 4, 8))
        report = cluster.simulate(queries, engine="event",
                                  service_model=model)
        assert report.extras["service_model"] == "interp"
        assert report.mean_service_us > 0
