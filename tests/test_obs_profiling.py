"""Tests for host-side wall-clock profiling (:mod:`repro.obs.profiling`).

The one obs module allowed to read the host clock.  Stage timers
accumulate across entries, nest without interfering, format into a
table, and hook into ``qps_sweep`` strictly outside the simulated
paths -- the sweep's reports must be byte-identical with and without a
profiler attached.
"""

import dataclasses

import pytest

from repro.obs import StageProfiler, format_stage_table
from repro.serving import (
    PoissonArrivalProcess,
    ShardedServingCluster,
    qps_sweep,
    queries_from_traces,
)
from repro.traces import make_production_table_traces


class TestStageProfiler:
    def test_stage_accumulates_time_and_count(self):
        profiler = StageProfiler()
        for _ in range(3):
            with profiler.stage("work"):
                pass
        totals = profiler.totals()
        assert totals["work"]["count"] == 3
        assert totals["work"]["seconds"] >= 0.0
        assert profiler.seconds("work") == totals["work"]["seconds"]

    def test_unknown_stage_reads_zero(self):
        assert StageProfiler().seconds("absent") == 0.0

    def test_add_records_externally_measured_time(self):
        profiler = StageProfiler()
        profiler.add("io", 0.25)
        profiler.add("io", 0.75)
        assert profiler.seconds("io") == pytest.approx(1.0)
        assert profiler.totals()["io"]["count"] == 2

    def test_nested_stages_account_separately(self):
        profiler = StageProfiler()
        with profiler.stage("outer"):
            with profiler.stage("inner"):
                pass
        totals = profiler.totals()
        assert set(totals) == {"outer", "inner"}
        assert totals["outer"]["seconds"] >= totals["inner"]["seconds"]

    def test_exception_still_records_the_stage(self):
        profiler = StageProfiler()
        with pytest.raises(RuntimeError):
            with profiler.stage("doomed"):
                raise RuntimeError("boom")
        assert profiler.totals()["doomed"]["count"] == 1

    def test_format_stage_table(self):
        profiler = StageProfiler()
        profiler.add("sweep.generate", 0.5)
        profiler.add("sweep.simulate", 1.5)
        text = format_stage_table(profiler.totals())
        assert "sweep.generate" in text and "sweep.simulate" in text


class TestQpsSweepProfiling:
    def test_sweep_reports_unchanged_and_stages_timed(self):
        traces = make_production_table_traces(
            num_lookups_per_table=320, num_rows=2000, num_tables=2,
            seed=0)

        def make_queries(qps):
            return queries_from_traces(
                traces, 60, PoissonArrivalProcess(rate_qps=qps, seed=1))

        points = [50_000.0, 100_000.0]
        profiler = StageProfiler()
        with ShardedServingCluster(num_nodes=2,
                                   node_system="recnmp-opt") as cluster:
            plain = qps_sweep(cluster, make_queries, points,
                              engine="event")
            profiled = qps_sweep(cluster, make_queries, points,
                                 engine="event", profiler=profiler)
        assert [dataclasses.asdict(r) for r in profiled] \
            == [dataclasses.asdict(r) for r in plain]
        totals = profiler.totals()
        # Both stages wrap the whole sweep once: generation of every
        # point's queries, then the simulation of all points.
        assert totals["sweep.generate"]["count"] == 1
        assert totals["sweep.simulate"]["count"] == 1
        assert totals["sweep.generate"]["seconds"] >= 0.0
        assert totals["sweep.simulate"]["seconds"] > 0.0
