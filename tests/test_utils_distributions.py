"""Tests for repro.utils.distributions."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils.distributions import (
    HotSetGenerator,
    UniformGenerator,
    ZipfGenerator,
    make_index_generator,
)


class TestUniformGenerator:
    def test_range(self):
        generator = UniformGenerator(1000, seed=1)
        sample = generator.sample(5000)
        assert sample.min() >= 0
        assert sample.max() < 1000

    def test_deterministic_with_seed(self):
        a = UniformGenerator(1000, seed=7).sample(100)
        b = UniformGenerator(1000, seed=7).sample(100)
        np.testing.assert_array_equal(a, b)

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            UniformGenerator(0)
        with pytest.raises(ValueError):
            UniformGenerator(10).sample(-1)

    def test_covers_table(self):
        generator = UniformGenerator(10, seed=0)
        sample = generator.sample(2000)
        assert set(sample.tolist()) == set(range(10))


class TestZipfGenerator:
    def test_range(self):
        generator = ZipfGenerator(500, alpha=1.1, seed=3)
        sample = generator.sample(2000)
        assert sample.min() >= 0
        assert sample.max() < 500

    def test_skew(self):
        # Without permutation, low ranks must be much more popular.
        generator = ZipfGenerator(10_000, alpha=1.2, seed=5, permute=False)
        sample = generator.sample(20_000)
        top_fraction = np.mean(sample < 100)
        assert top_fraction > 0.4

    def test_permutation_spreads_hot_rows(self):
        generator = ZipfGenerator(10_000, alpha=1.2, seed=5, permute=True)
        sample = generator.sample(20_000)
        # The most popular row is no longer necessarily row 0.
        values, counts = np.unique(sample, return_counts=True)
        assert counts.max() > 100

    def test_rejects_bad_alpha(self):
        with pytest.raises(ValueError):
            ZipfGenerator(100, alpha=0.0)


class TestHotSetGenerator:
    def test_hot_fraction_of_accesses(self):
        generator = HotSetGenerator(100_000, hot_fraction=0.001,
                                    hot_probability=0.6, seed=11)
        sample = generator.sample(30_000)
        hot_rows = set(generator._hot_rows.tolist())
        hot_hits = np.mean([int(v) in hot_rows for v in sample])
        assert 0.5 < hot_hits < 0.7

    def test_zero_hot_probability(self):
        generator = HotSetGenerator(1000, hot_probability=0.0, seed=2)
        sample = generator.sample(1000)
        assert sample.min() >= 0 and sample.max() < 1000

    def test_rejects_bad_fraction(self):
        with pytest.raises(ValueError):
            HotSetGenerator(100, hot_fraction=0.0)
        with pytest.raises(ValueError):
            HotSetGenerator(100, hot_probability=1.5)


class TestFactory:
    @pytest.mark.parametrize("kind,expected", [
        ("uniform", UniformGenerator),
        ("zipf", ZipfGenerator),
        ("hotset", HotSetGenerator),
    ])
    def test_kinds(self, kind, expected):
        generator = make_index_generator(kind, 100, seed=0)
        assert isinstance(generator, expected)

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            make_index_generator("gaussian", 100)


class TestProperties:
    @given(num_rows=st.integers(min_value=1, max_value=5000),
           count=st.integers(min_value=0, max_value=2000),
           seed=st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=30, deadline=None)
    def test_uniform_always_in_range(self, num_rows, count, seed):
        sample = UniformGenerator(num_rows, seed=seed).sample(count)
        assert len(sample) == count
        if count:
            assert sample.min() >= 0
            assert sample.max() < num_rows

    @given(num_rows=st.integers(min_value=2, max_value=2000),
           alpha=st.floats(min_value=0.5, max_value=2.0),
           seed=st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=20, deadline=None)
    def test_zipf_always_in_range(self, num_rows, alpha, seed):
        sample = ZipfGenerator(num_rows, alpha=alpha, seed=seed).sample(500)
        assert sample.min() >= 0
        assert sample.max() < num_rows

    @given(hot_probability=st.floats(min_value=0.0, max_value=1.0),
           seed=st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=20, deadline=None)
    def test_hotset_always_in_range(self, hot_probability, seed):
        generator = HotSetGenerator(3000, hot_fraction=0.01,
                                    hot_probability=hot_probability,
                                    seed=seed)
        sample = generator.sample(400)
        assert sample.min() >= 0
        assert sample.max() < 3000
