"""The array-backed query path must mirror the object path exactly.

:mod:`repro.serving.query_columns` re-expresses ``ServingQuery`` lists,
``QueryBatch`` lists and the batching frontend as struct-of-arrays; the
contract is *byte identity* -- same ids, arrivals, fingerprints, batch
boundaries and, end to end, the same ``ServingReport`` out of
``ShardedServingCluster.simulate`` -- because every consumer (service
cache keys, SLO accounting, the event engines) is keyed on those values.
"""

import dataclasses

import numpy as np
import pytest

from repro.perf.service_model import InterpolatingServiceModel
from repro.serving import (
    BatchingFrontend,
    FixedSLOPolicy,
    PoissonArrivalProcess,
    QueryColumns,
    ShardedServingCluster,
    form_batch_columns,
    queries_from_traces,
    query_columns_from_traces,
)
from repro.traces import make_production_table_traces

NUM_QUERIES = 600
RATE_QPS = 120_000.0


@pytest.fixture(scope="module")
def traces():
    return make_production_table_traces(num_lookups_per_table=640,
                                        num_rows=4000, num_tables=4,
                                        seed=0)


def _arrivals(seed=1):
    return PoissonArrivalProcess(rate_qps=RATE_QPS, seed=seed)


@pytest.fixture(scope="module")
def object_queries(traces):
    return queries_from_traces(traces, NUM_QUERIES, _arrivals())


@pytest.fixture(scope="module")
def columns(traces):
    return query_columns_from_traces(traces, NUM_QUERIES, _arrivals())


class TestConstruction:
    def test_matches_object_queries(self, object_queries, columns):
        assert len(columns) == len(object_queries)
        for query, view in zip(object_queries, columns.views()):
            assert view.query_id == query.query_id
            assert view.arrival_us == query.arrival_us
            assert view.deadline_us is None and query.deadline_us is None
            assert view.fingerprint() == query.fingerprint()
            assert view.total_lookups == query.total_lookups
            assert view.num_tables == query.num_tables

    def test_from_queries_round_trip(self, object_queries):
        columns = QueryColumns.from_queries(object_queries)
        assert np.array_equal(
            columns.arrival_us,
            np.array([q.arrival_us for q in object_queries]))
        assert list(columns.fingerprints()) == \
            [q.fingerprint() for q in object_queries]

    def test_materialized_views_serve_requests(self, object_queries,
                                               columns):
        view = columns.view(7)
        requests = view.requests
        assert len(requests) == object_queries[7].num_tables
        assert [r.table_id for r in requests] == \
            [r.table_id for r in object_queries[7].requests]

    def test_take_and_slice(self, columns):
        picked = columns.take(np.array([3, 5, 11]))
        assert [v.query_id for v in picked.views()] == [
            columns.view(3).query_id, columns.view(5).query_id,
            columns.view(11).query_id]
        window = columns.slice(10, 20)
        assert len(window) == 10
        assert window.view(0).query_id == columns.view(10).query_id

    def test_concat_preserves_order_and_fingerprints(self, columns):
        merged = QueryColumns.concat([columns.slice(0, 100),
                                      columns.slice(100, len(columns))])
        assert np.array_equal(merged.arrival_us, columns.arrival_us)
        assert list(merged.fingerprints()) == list(columns.fingerprints())


class TestBatching:
    @pytest.mark.parametrize("max_delay_us", [0.0, 100.0, 1e9])
    def test_batch_boundaries_match_object_frontend(
            self, object_queries, columns, max_delay_us):
        frontend = BatchingFrontend(max_queries=8,
                                    max_delay_us=max_delay_us)
        object_batches = frontend.form_batches(object_queries)
        batch_columns, carry = frontend.form_batch_columns(columns)
        assert carry is None
        assert len(batch_columns) == len(object_batches)
        for object_batch, column_batch in zip(object_batches,
                                              batch_columns):
            assert column_batch.size == object_batch.size
            assert column_batch.formed_us == object_batch.formed_us
            assert column_batch.trigger == object_batch.trigger
            assert tuple(column_batch.query_fingerprints()) == \
                tuple(object_batch.query_fingerprints())
            assert column_batch.total_poolings == \
                object_batch.total_poolings
            assert [v.query_id for v in column_batch.queries] == \
                [q.query_id for q in object_batch.queries]

    def test_carry_plus_final_matches_oneshot(self, columns):
        formed_head, carry = form_batch_columns(
            columns.slice(0, 300), max_queries=8, max_delay_us=100.0,
            final=False)
        tail = columns.slice(300, len(columns))
        if carry is not None:
            tail = QueryColumns.concat([carry, tail])
        formed_tail, leftover = form_batch_columns(
            tail, max_queries=8, max_delay_us=100.0, final=True)
        assert leftover is None
        oneshot, _ = form_batch_columns(columns, max_queries=8,
                                        max_delay_us=100.0, final=True)
        assert list(formed_head.sizes) + list(formed_tail.sizes) == \
            list(oneshot.sizes)
        assert np.array_equal(
            np.concatenate([formed_head.formed_us, formed_tail.formed_us]),
            oneshot.formed_us)


class TestClusterEquivalence:
    @pytest.mark.parametrize("engine", ["analytic", "event", "event-edf"])
    @pytest.mark.parametrize("slo,admission", [
        (None, None),
        (FixedSLOPolicy(1_000.0), None),
        (FixedSLOPolicy(400.0), "token-bucket"),
    ])
    def test_simulate_columns_identical_to_objects(self, traces, engine,
                                                   slo, admission):
        with ShardedServingCluster(num_nodes=2,
                                   node_system="recnmp-opt") as cluster:
            # Fresh object queries per trial: slo_policy assignment
            # mutates ServingQuery deadlines in place.
            object_report = cluster.simulate(
                queries_from_traces(traces, NUM_QUERIES, _arrivals()),
                engine=engine, slo_policy=slo, admission=admission)
            column_report = cluster.simulate(
                query_columns_from_traces(traces, NUM_QUERIES,
                                          _arrivals()),
                engine=engine, slo_policy=slo, admission=admission)
        assert dataclasses.asdict(column_report) == \
            dataclasses.asdict(object_report)

    def test_interpolating_model_identical(self, traces):
        model = InterpolatingServiceModel(traces)
        with ShardedServingCluster(num_nodes=2,
                                   node_system="recnmp-opt") as cluster:
            object_report = cluster.simulate(
                queries_from_traces(traces, NUM_QUERIES, _arrivals()),
                engine="event", service_model=model)
            column_report = cluster.simulate(
                query_columns_from_traces(traces, NUM_QUERIES,
                                          _arrivals()),
                engine="event", service_model=model)
        assert dataclasses.asdict(column_report) == \
            dataclasses.asdict(object_report)

    def test_estimate_query_service_us_identical(self, traces):
        with ShardedServingCluster(num_nodes=2,
                                   node_system="recnmp-opt") as cluster:
            from_objects = cluster.estimate_query_service_us(
                queries_from_traces(traces, 64, _arrivals()))
            from_columns = cluster.estimate_query_service_us(
                query_columns_from_traces(traces, 64, _arrivals()))
        assert from_columns == from_objects
