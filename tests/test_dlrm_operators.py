"""Tests for repro.dlrm.operators (the SLS functional reference)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dlrm.operators import (
    SLSRequest,
    dequantize_rowwise_8bit,
    quantize_rowwise_8bit,
    sparse_lengths_mean,
    sparse_lengths_sum,
    sparse_lengths_sum_8bit,
    sparse_lengths_weighted_sum,
)


@pytest.fixture
def table():
    rng = np.random.default_rng(0)
    return rng.standard_normal((100, 8)).astype(np.float32)


class TestSLSRequest:
    def test_valid(self):
        request = SLSRequest(table_id=0, indices=[1, 2, 3, 4],
                             lengths=[2, 2])
        assert request.batch_size == 2
        assert request.total_lookups == 4

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            SLSRequest(table_id=0, indices=[1, 2, 3], lengths=[2, 2])

    def test_zero_length_pooling_rejected(self):
        with pytest.raises(ValueError):
            SLSRequest(table_id=0, indices=[1, 2], lengths=[2, 0])

    def test_weights_shape_checked(self):
        with pytest.raises(ValueError):
            SLSRequest(table_id=0, indices=[1, 2], lengths=[2],
                       weights=[1.0])

    def test_pooling_slices(self):
        request = SLSRequest(table_id=0, indices=[5, 6, 7], lengths=[1, 2])
        slices = list(request.pooling_slices())
        assert len(slices) == 2
        assert list(slices[0][1]) == [5]
        assert list(slices[1][1]) == [6, 7]


class TestSparseLengthsSum:
    def test_matches_manual(self, table):
        indices = np.array([0, 1, 2, 3, 4, 5])
        lengths = np.array([2, 2, 2])
        output = sparse_lengths_sum(table, indices, lengths)
        assert output.shape == (3, 8)
        np.testing.assert_allclose(output[0], table[0] + table[1], rtol=1e-5)
        np.testing.assert_allclose(output[2], table[4] + table[5], rtol=1e-5)

    def test_single_lookup_pooling(self, table):
        output = sparse_lengths_sum(table, [7], [1])
        np.testing.assert_allclose(output[0], table[7], rtol=1e-6)

    def test_repeated_index(self, table):
        output = sparse_lengths_sum(table, [3, 3, 3], [3])
        np.testing.assert_allclose(output[0], 3 * table[3], rtol=1e-5)

    def test_mean(self, table):
        output = sparse_lengths_mean(table, [0, 1, 2, 3], [4])
        np.testing.assert_allclose(output[0], table[:4].mean(axis=0),
                                   rtol=1e-5)

    def test_weighted_sum(self, table):
        weights = np.array([0.5, 2.0], dtype=np.float32)
        output = sparse_lengths_weighted_sum(table, [1, 2], [2], weights)
        np.testing.assert_allclose(output[0], 0.5 * table[1] + 2 * table[2],
                                   rtol=1e-5)

    def test_weighted_sum_with_unit_weights_equals_sum(self, table):
        indices = [0, 5, 9, 2]
        lengths = [2, 2]
        plain = sparse_lengths_sum(table, indices, lengths)
        weighted = sparse_lengths_weighted_sum(table, indices, lengths,
                                               np.ones(4, dtype=np.float32))
        np.testing.assert_allclose(plain, weighted, rtol=1e-6)

    def test_rejects_mismatched_lengths(self, table):
        with pytest.raises(ValueError):
            sparse_lengths_sum(table, [0, 1], [3])

    def test_rejects_1d_table(self):
        with pytest.raises(ValueError):
            sparse_lengths_sum(np.zeros(10), [0], [1])


class TestQuantized:
    def test_roundtrip_error_small(self, table):
        quantised, scale, bias = quantize_rowwise_8bit(table)
        restored = dequantize_rowwise_8bit(quantised, scale, bias)
        max_error = np.abs(restored - table).max()
        row_span = (table.max(axis=1) - table.min(axis=1)).max()
        assert max_error <= row_span / 255.0 + 1e-6

    def test_quantised_dtype(self, table):
        quantised, scale, bias = quantize_rowwise_8bit(table)
        assert quantised.dtype == np.uint8
        assert scale.dtype == np.float32

    def test_constant_row(self):
        table = np.full((2, 4), 3.5, dtype=np.float32)
        quantised, scale, bias = quantize_rowwise_8bit(table)
        restored = dequantize_rowwise_8bit(quantised, scale, bias)
        np.testing.assert_allclose(restored, table, atol=1e-6)

    def test_sls_8bit_close_to_fp32(self, table):
        quantised, scale, bias = quantize_rowwise_8bit(table)
        indices = np.array([0, 1, 2, 3, 4, 5])
        lengths = np.array([3, 3])
        exact = sparse_lengths_sum(table, indices, lengths)
        approx = sparse_lengths_sum_8bit(quantised, scale, bias, indices,
                                         lengths)
        np.testing.assert_allclose(approx, exact, atol=0.1)

    def test_sls_8bit_weighted(self, table):
        quantised, scale, bias = quantize_rowwise_8bit(table)
        weights = np.array([2.0, 1.0], dtype=np.float32)
        exact = sparse_lengths_weighted_sum(table, [1, 2], [2], weights)
        approx = sparse_lengths_sum_8bit(quantised, scale, bias, [1, 2], [2],
                                         weights)
        np.testing.assert_allclose(approx, exact, atol=0.1)


class TestProperties:
    @given(st.integers(min_value=1, max_value=30),
           st.integers(min_value=1, max_value=6),
           st.integers(min_value=1, max_value=5),
           st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=30, deadline=None)
    def test_sum_of_poolings_equals_total(self, rows, dim, batch, seed):
        rng = np.random.default_rng(seed)
        table = rng.standard_normal((rows, dim)).astype(np.float32)
        lengths = rng.integers(1, 5, size=batch)
        indices = rng.integers(0, rows, size=lengths.sum())
        output = sparse_lengths_sum(table, indices, lengths)
        # Summing all pooled outputs equals summing all gathered rows.
        np.testing.assert_allclose(output.sum(axis=0),
                                   table[indices].sum(axis=0), rtol=1e-4,
                                   atol=1e-4)

    @given(st.integers(min_value=2, max_value=20),
           st.integers(min_value=1, max_value=8),
           st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=30, deadline=None)
    def test_mean_bounded_by_rows(self, rows, dim, seed):
        rng = np.random.default_rng(seed)
        table = rng.standard_normal((rows, dim)).astype(np.float32)
        indices = rng.integers(0, rows, size=6)
        output = sparse_lengths_mean(table, indices, [6])
        assert (output[0] <= table[indices].max(axis=0) + 1e-5).all()
        assert (output[0] >= table[indices].min(axis=0) - 1e-5).all()

    @given(st.integers(min_value=1, max_value=50),
           st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=30, deadline=None)
    def test_quantisation_error_bounded(self, rows, seed):
        rng = np.random.default_rng(seed)
        table = rng.uniform(-10, 10, size=(rows, 16)).astype(np.float32)
        quantised, scale, bias = quantize_rowwise_8bit(table)
        restored = dequantize_rowwise_8bit(quantised, scale, bias)
        per_row_span = table.max(axis=1) - table.min(axis=1)
        per_row_error = np.abs(restored - table).max(axis=1)
        assert (per_row_error <= per_row_span / 255.0 + 1e-5).all()
