"""Integration tests for the tracing layer (:mod:`repro.obs`).

The two contracts the tentpole stands on:

* **Zero perturbation** -- a run with tracing and metrics enabled
  produces a byte-identical ``ServingReport`` (as a dict) to the same
  run with them off, across engines, event-kernel flavors and chunked
  streaming.  Spans are reconstructed post hoc from kernel output
  arrays, so this must hold exactly.
* **Faithful reconstruction** -- the per-query stage spans sum to the
  engine's reported latencies (within float tolerance, never ``==``:
  ``(formed-arrival)+(start-formed)+(complete-start)`` associates
  differently than ``complete-arrival``), timestamps are monotone
  through the lifecycle, the queue-depth series peaks at the engine's
  ``max_queue_depth``, and the Chrome trace validates against the
  checked-in schema.

The 100k-query EDF run at the bottom is the acceptance test from the
PR issue.
"""

import dataclasses
import json

import numpy as np
import pytest

from repro.obs import (
    MetricsRegistry,
    Tracer,
    chrome_trace,
    format_trace_summary,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.perf.service_model import InterpolatingServiceModel
from repro.serving import (
    FixedSLOPolicy,
    PoissonArrivalProcess,
    QueryStream,
    ShardedServingCluster,
    event_kernels,
    queries_from_traces,
    query_columns_from_traces,
)
from repro.serving.event_kernels import force_flavor
from repro.traces import make_production_table_traces

FLAVORS = ["python", "flat-python"]
if event_kernels.active_flavor() == "numba":
    FLAVORS.append("numba")

NUM_QUERIES = 400
RATE_QPS = 120_000.0


@pytest.fixture(scope="module")
def traces():
    return make_production_table_traces(num_lookups_per_table=640,
                                        num_rows=4000, num_tables=4,
                                        seed=0)


def _arrivals(seed=1):
    return PoissonArrivalProcess(rate_qps=RATE_QPS, seed=seed)


def _columns(traces, num_queries=NUM_QUERIES):
    return query_columns_from_traces(traces, num_queries, _arrivals())


def _cluster():
    return ShardedServingCluster(num_nodes=2, node_system="recnmp-opt")


def _traced_run(traces, engine, **kwargs):
    tracer = Tracer(label="test")
    with _cluster() as cluster:
        report = cluster.simulate(_columns(traces), engine=engine,
                                  trace=tracer, metrics=True, **kwargs)
    return tracer, report


# --------------------------------------------------------------------- #
class TestBitIdentity:
    @pytest.mark.parametrize("engine", ["analytic", "event", "event-edf"])
    def test_traced_report_identical_across_engines(self, traces, engine):
        with _cluster() as cluster:
            plain = cluster.simulate(_columns(traces), engine=engine)
            traced = cluster.simulate(_columns(traces), engine=engine,
                                      trace=Tracer(), metrics=True)
        assert dataclasses.asdict(traced) == dataclasses.asdict(plain)

    @pytest.mark.parametrize("flavor", FLAVORS)
    def test_traced_report_identical_across_flavors(self, traces, flavor):
        with _cluster() as cluster, force_flavor(flavor):
            plain = cluster.simulate(_columns(traces), engine="event")
            traced = cluster.simulate(_columns(traces), engine="event",
                                      trace=Tracer(), metrics=True)
        assert dataclasses.asdict(traced) == dataclasses.asdict(plain)

    def test_traced_report_identical_with_stream_chunk(self, traces):
        with _cluster() as cluster:
            plain = cluster.simulate(_columns(traces), engine="event-edf",
                                     slo_policy=FixedSLOPolicy(800.0),
                                     admission="queue-depth",
                                     stream_chunk=64)
            traced = cluster.simulate(_columns(traces),
                                      engine="event-edf",
                                      slo_policy=FixedSLOPolicy(800.0),
                                      admission="queue-depth",
                                      stream_chunk=64,
                                      trace=Tracer(), metrics=True)
        assert dataclasses.asdict(traced) == dataclasses.asdict(plain)

    def test_object_query_path_identical(self, traces):
        queries = queries_from_traces(traces, NUM_QUERIES, _arrivals())
        with _cluster() as cluster:
            plain = cluster.simulate(list(queries), engine="event")
            traced = cluster.simulate(list(queries), engine="event",
                                      trace=Tracer(), metrics=True)
        assert dataclasses.asdict(traced) == dataclasses.asdict(plain)


# --------------------------------------------------------------------- #
class TestSpanReconstruction:
    def test_span_sums_reconcile_with_latencies(self, traces):
        tracer, _ = _traced_run(traces, "event")
        spans = tracer.query_spans()
        durations = tracer.span_durations_us()
        total = (durations["batching"] + durations["queue"]
                 + durations["service"])
        assert np.allclose(total, spans["latency_us"],
                           rtol=1e-9, atol=1e-6)

    def test_timestamps_monotone_through_lifecycle(self, traces):
        tracer, _ = _traced_run(traces, "event")
        spans = tracer.query_spans()
        assert np.all(spans["arrival_us"] <= spans["formed_us"])
        assert np.all(spans["formed_us"] <= spans["start_us"])
        assert np.all(spans["start_us"] <= spans["complete_us"])

    def test_queue_depth_series_peaks_at_reported_max(self, traces):
        tracer, _ = _traced_run(traces, "event")
        times, depth = tracer.queue_depth_series()
        assert np.all(np.diff(times) >= 0)
        assert depth.min() >= 0
        assert depth.max() == tracer.capture.max_queue_depth
        assert depth[-1] == 0          # every batch eventually starts

    def test_frontend_assignments_never_overlap_a_lane(self, traces):
        tracer, report = _traced_run(traces, "event")
        capture = tracer.capture
        lanes = tracer.frontend_assignments()
        assert lanes.min() >= 0 and lanes.max() < report.num_servers
        for lane in range(report.num_servers):
            mask = lanes == lane
            starts = capture.batch_start_us[mask]
            completes = capture.batch_complete_us[mask]
            order = np.argsort(starts, kind="stable")
            assert np.all(completes[order][:-1] <= starts[order][1:]
                          + 1e-6)

    def test_node_accounting_from_routing_replay(self, traces):
        tracer, _ = _traced_run(traces, "event")
        counts = tracer.node_batch_counts()
        assert counts.sum() >= tracer.capture.num_batches
        busy = tracer.node_busy_us()
        assert busy.shape == counts.shape
        assert np.all(busy >= 0)
        assert np.all(tracer.node_utilization() >= 0)

    def test_summary_is_json_safe_and_formats(self, traces):
        tracer, report = _traced_run(traces, "event")
        summary = tracer.summary()
        json.dumps(summary, allow_nan=False)
        assert summary["num_queries"] == report.num_queries
        assert summary["engine"] == "event"
        assert not summary["approximate"]
        text = format_trace_summary(summary)
        assert "batching" in text and "service" in text

    def test_analytic_capture_is_marked_approximate(self, traces):
        tracer, _ = _traced_run(traces, "analytic")
        assert tracer.capture.approximate
        assert tracer.summary()["approximate"]
        validate_chrome_trace(chrome_trace(tracer))

    def test_tracer_is_single_use(self, traces):
        tracer, _ = _traced_run(traces, "event")
        with _cluster() as cluster:
            with pytest.raises(ValueError, match="fresh Tracer"):
                cluster.simulate(_columns(traces), engine="event",
                                 trace=tracer)

    def test_unused_tracer_refuses_views(self):
        with pytest.raises(ValueError, match="no run yet"):
            Tracer().query_spans()


# --------------------------------------------------------------------- #
class TestChromeTraceExport:
    def test_trace_validates_against_schema(self, traces):
        tracer, _ = _traced_run(traces, "event")
        trace = chrome_trace(tracer)
        validate_chrome_trace(trace)
        other = trace["otherData"]
        assert other["num_queries"] == NUM_QUERIES
        assert other["query_spans_truncated"] is False
        assert other["query_spans_dropped"] == 0
        assert other["time_unit"] == "simulated microseconds"

    def test_span_cap_records_truncation(self, traces):
        tracer, _ = _traced_run(traces, "event")
        trace = chrome_trace(tracer, max_query_spans=10)
        validate_chrome_trace(trace)
        assert trace["otherData"]["query_spans_emitted"] == 10
        assert trace["otherData"]["query_spans_truncated"] is True
        assert trace["otherData"]["query_spans_dropped"] \
            == NUM_QUERIES - 10

    def test_write_chrome_trace_round_trips(self, traces, tmp_path):
        tracer, _ = _traced_run(traces, "event")
        path = tmp_path / "trace.json"
        assert write_chrome_trace(tracer, path) == path
        validate_chrome_trace(json.loads(path.read_text()))

    def test_shed_queries_emit_instant_events(self, traces):
        tracer = Tracer()
        with _cluster() as cluster:
            report = cluster.simulate(
                _columns(traces), engine="event",
                slo_policy=FixedSLOPolicy(500.0), admission="deadline",
                trace=tracer)
        num_shed = report.extras["slo"]["num_shed"]
        assert tracer.shed_query_id.size == num_shed
        trace = chrome_trace(tracer)
        validate_chrome_trace(trace)
        instants = [event for event in trace["traceEvents"]
                    if event["ph"] == "i"]
        assert len(instants) == num_shed


# --------------------------------------------------------------------- #
class TestMetricsPublication:
    def test_cluster_registry_counts_the_run(self, traces):
        with _cluster() as cluster:
            report = cluster.simulate(_columns(traces), engine="event",
                                      metrics=True)
            snap = cluster.metrics.snapshot()
        assert snap["counters"]["serving.runs_total"] == 1
        assert snap["counters"]["serving.queries_total"] \
            == report.num_queries
        assert snap["counters"]["serving.batches_total"] \
            == report.num_batches
        assert snap["histograms"]["serving.query_latency_us"]["count"] \
            == report.num_queries
        assert snap["gauges"]["serving.last_offered_qps"] \
            == pytest.approx(report.offered_qps)
        assert "service_cache" in snap["collected"]

    def test_caller_owned_registry(self, traces):
        registry = MetricsRegistry()
        with _cluster() as cluster:
            cluster.simulate(_columns(traces), engine="event",
                             metrics=registry)
        assert registry.snapshot()["counters"]["serving.runs_total"] == 1

    def test_metrics_off_publishes_nothing(self, traces):
        with _cluster() as cluster:
            cluster.simulate(_columns(traces), engine="event")
            snap = cluster.metrics.snapshot()
        assert "serving.runs_total" not in snap["counters"]

    def test_dedup_counters_round_trip_reset(self, traces):
        # The PR-7 dedup/exact-sim counters now live in the registry:
        # export -> merge -> reset must round-trip through it.
        with _cluster() as cluster:
            cluster.simulate(_columns(traces), engine="event")
            exported = cluster.export_service_state()
            stats = cluster.service_stats()
            assert exported["exact_simulations"] \
                == stats["exact_simulations"]
            cluster.merge_service_state(exported)
            doubled = cluster.service_stats()
            assert doubled["exact_simulations"] \
                == 2 * stats["exact_simulations"]
            cluster.reset()
            cleared = cluster.service_stats()
        assert cleared["exact_simulations"] == 0
        assert cleared["dedup_hits"] == 0

    def test_invalid_trace_and_metrics_args_rejected(self, traces):
        with _cluster() as cluster:
            with pytest.raises(ValueError, match="Tracer"):
                cluster.simulate(_columns(traces), trace="out.json")
            with pytest.raises(ValueError, match="metrics"):
                cluster.simulate(_columns(traces), metrics="yes")


# --------------------------------------------------------------------- #
class TestAcceptance100kEDF:
    """The PR acceptance run: 100k queries, EDF, streamed, traced."""

    def test_100k_edf_trace_reconciles_and_validates(self, traces):
        num_queries = 100_000
        tracer = Tracer(label="acceptance")
        stream = QueryStream(traces, _arrivals(),
                             num_queries=num_queries)
        with _cluster() as cluster:
            report = cluster.simulate(
                stream, engine="event-edf",
                service_model=InterpolatingServiceModel(traces),
                slo_policy=FixedSLOPolicy(5_000.0),
                stream_chunk=8_192, trace=tracer, metrics=True)
        assert report.num_queries == num_queries
        spans = tracer.query_spans()
        assert spans["query_id"].size == num_queries
        durations = tracer.span_durations_us()
        total = (durations["batching"] + durations["queue"]
                 + durations["service"])
        # Per-query span sums reconcile with the reported latencies.
        assert np.allclose(total, spans["latency_us"],
                           rtol=1e-9, atol=1e-6)
        # And the aggregate view agrees with the report's percentiles.
        assert np.percentile(spans["latency_us"], 99.0) \
            == pytest.approx(report.p99_us, rel=1e-6)
        trace = chrome_trace(tracer)
        validate_chrome_trace(trace)
        assert trace["otherData"]["query_spans_truncated"] is True
        json.dumps(trace, allow_nan=False)
