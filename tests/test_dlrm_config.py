"""Tests for repro.dlrm.config."""

import pytest

from repro.dlrm.config import (
    MODEL_CONFIGS,
    RM1_LARGE,
    RM1_SMALL,
    RM2_LARGE,
    RM2_SMALL,
    ModelConfig,
    get_model_config,
    scaled_config,
)


class TestModelConfigs:
    def test_table_counts_match_paper(self):
        # Figure 2(b): 8, 12, 24, 64 embedding tables.
        assert RM1_SMALL.num_embedding_tables == 8
        assert RM1_LARGE.num_embedding_tables == 12
        assert RM2_SMALL.num_embedding_tables == 24
        assert RM2_LARGE.num_embedding_tables == 64

    def test_rows_per_table(self):
        for config in MODEL_CONFIGS.values():
            assert config.rows_per_table == 1_000_000

    def test_batch_sizes(self):
        assert RM1_SMALL.batch_sizes == (8, 64, 128, 256)

    def test_vector_bytes_in_production_range(self):
        # The paper quotes 64-256 B embedding vectors.
        for config in MODEL_CONFIGS.values():
            assert 64 <= config.embedding_vector_bytes <= 256

    def test_table_size_order_of_magnitude(self):
        # 1M rows x 256 B = 256 MB per table.
        assert RM1_SMALL.embedding_table_bytes == pytest.approx(256e6, rel=0.1)

    def test_total_embedding_bytes_grow_with_tables(self):
        assert RM2_LARGE.total_embedding_bytes > RM2_SMALL.total_embedding_bytes \
            > RM1_LARGE.total_embedding_bytes > RM1_SMALL.total_embedding_bytes

    def test_lookups_per_sample(self):
        assert RM1_SMALL.lookups_per_sample() == 8 * 80

    def test_sls_bytes_per_sample(self):
        expected = 8 * 80 * RM1_SMALL.embedding_vector_bytes
        assert RM1_SMALL.sls_bytes_per_sample() == expected

    def test_fc_flops_positive_and_ordered(self):
        assert RM2_LARGE.fc_flops_per_sample() > RM1_SMALL.fc_flops_per_sample()

    def test_top_mlp_input_width(self):
        # num features = tables + 1, pairwise interactions + bottom output.
        features = RM1_SMALL.num_embedding_tables + 1
        pairs = features * (features - 1) // 2
        assert RM1_SMALL.top_mlp_input_width() == \
            RM1_SMALL.bottom_mlp[-1] + pairs

    def test_rm2_large_topfc_exceeds_l2(self):
        # The co-location study relies on RM2-large's TopFC spilling to LLC.
        assert RM2_LARGE.fc_weight_bytes() > 1024 * 1024

    def test_validation(self):
        with pytest.raises(ValueError):
            ModelConfig(name="bad", num_embedding_tables=0, rows_per_table=1,
                        embedding_dim=1, pooling_factor=1, bottom_mlp=(1,),
                        top_mlp=(1,))
        with pytest.raises(ValueError):
            ModelConfig(name="bad", num_embedding_tables=1, rows_per_table=1,
                        embedding_dim=1, pooling_factor=1, bottom_mlp=(),
                        top_mlp=(1,))


class TestLookupHelpers:
    def test_get_by_name(self):
        assert get_model_config("RM1-small") is RM1_SMALL
        assert get_model_config("rm2-LARGE") is RM2_LARGE

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            get_model_config("RM3")

    def test_scaled_config_overrides(self):
        small = scaled_config(RM1_SMALL, rows_per_table=1024)
        assert small.rows_per_table == 1024
        assert small.num_embedding_tables == RM1_SMALL.num_embedding_tables
        assert isinstance(small.bottom_mlp, tuple)
