"""Bit-exactness tests for the compiled command-issue kernels.

The contract of :mod:`repro.core.kernels` is that every flavour --
``numba`` (jitted flat arrays), ``flat-python`` (the same flat-array
source, un-jitted), ``python`` (the list-native CPython twin) and
``disabled`` (the legacy object-path spec in
:class:`~repro.core.rank_nmp.RankNMP`) -- produces *identical* cycles,
statistics, cache contents and bank state.  These tests pin that
contract at two levels: randomized instruction streams on a single
rank-NMP (down to the per-bank timing state), and full-system runs over
the RecNMP variant matrix of the paper.
"""

import contextlib
import os
import subprocess
import sys

import numpy as np
import pytest

from repro.core import kernels
from repro.core.instruction import (
    DDR_CMD_ACT,
    DDR_CMD_PRE,
    DDR_CMD_RD,
    NMPInstruction,
)
from repro.core.rank_nmp import RankNMP, RankNMPConfig
from repro.dlrm.operators import SLSRequest
from repro.systems import build_system
from repro.traces import make_production_table_traces, random_trace

FULL_CMD = DDR_CMD_ACT | DDR_CMD_RD | DDR_CMD_PRE

NUM_ROWS = 6_000

#: The non-numba flavours runnable on any host.  ``flat-python`` executes
#: the *numba kernel source* un-jitted, so the jitted flavour's semantics
#: are pinned even where numba is not installed.
PORTABLE_FLAVORS = ("python", "flat-python")


def _random_instructions(rng, count, with_cache_traffic=True):
    """A randomized stream exercising hits, misses, bypasses and rows."""
    instructions = []
    for _ in range(count):
        daddr = int(rng.integers(0, 4096)) * int(rng.integers(1, 64))
        instructions.append(NMPInstruction(
            ddr_cmd=FULL_CMD,
            daddr=daddr,
            vsize=int(rng.integers(1, 5)),
            weight=float(rng.choice([1.0, 0.5])),
            locality_bit=bool(rng.integers(0, 2)) if with_cache_traffic
            else False,
            psum_tag=int(rng.integers(0, 8)),
        ))
    return instructions


def _rank_snapshot(rank):
    """Everything observable about a rank-NMP after a run."""
    return {
        "current_cycle": rank.current_cycle,
        "stats": rank.stats.as_dict(),
        "psums": dict(rank._psum_counts),
        "cache_order": list(rank.cache._entries) if rank.cache else None,
        "rank_scalars": list(rank.dram_rank.kernel_scalars()),
        "banks": [bank.kernel_state() for bank in rank.dram_rank.banks],
    }


class TestFlavorSelection:
    def test_active_flavor_known(self):
        assert kernels.active_flavor() in ("numba", "python", "disabled")

    def test_describe_nonempty(self):
        assert kernels.describe()

    def test_force_flavor_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown kernel flavor"):
            with kernels.force_flavor("cython"):
                pass

    def test_force_numba_without_numba_raises(self):
        if kernels.KERNEL_FLAVOR == "numba":
            pytest.skip("numba available: forcing it is legal")
        with pytest.raises(RuntimeError, match="numba"):
            with kernels.force_flavor("numba"):
                pass

    def test_disabled_flavor_removes_kernel(self):
        with kernels.force_flavor("disabled"):
            rank = RankNMP(RankNMPConfig())
            assert rank._kernel is None
            assert not rank.supports_packed

    def test_force_flavor_restores_after_body_exception(self):
        before = kernels._FORCED_FLAVOR
        with pytest.raises(RuntimeError, match="boom"):
            with kernels.force_flavor("python"):
                assert kernels._FORCED_FLAVOR == "python"
                raise RuntimeError("boom")
        assert kernels._FORCED_FLAVOR == before

    def test_force_flavor_exit_without_enter_is_noop(self):
        stray = kernels.force_flavor("python")
        with kernels.force_flavor("disabled"):
            stray.__exit__(None, None, None)
            assert kernels._FORCED_FLAVOR == "disabled"

    def test_force_flavor_reentrant_same_instance(self):
        before = kernels._FORCED_FLAVOR
        cm = kernels.force_flavor("python")
        with cm:
            with cm:
                assert kernels._FORCED_FLAVOR == "python"
            assert kernels._FORCED_FLAVOR == "python"
        assert kernels._FORCED_FLAVOR == before

    def test_force_flavor_nested_distinct_instances(self):
        before = kernels._FORCED_FLAVOR
        with kernels.force_flavor("python"):
            with kernels.force_flavor("disabled"):
                assert kernels._FORCED_FLAVOR == "disabled"
            assert kernels._FORCED_FLAVOR == "python"
        assert kernels._FORCED_FLAVOR == before


class TestRankTriParity:
    """python / flat-python / disabled agree on randomized streams."""

    @pytest.mark.parametrize("use_cache", [True, False])
    @pytest.mark.parametrize("seed", range(4))
    def test_tri_parity(self, seed, use_cache):
        rng = np.random.default_rng(seed)
        instructions = _random_instructions(rng, 120)
        arrivals = np.cumsum(rng.integers(0, 3, size=120)).tolist()
        config = RankNMPConfig(use_cache=use_cache,
                               cache_capacity_bytes=4096)
        snapshots = {}
        for flavor in ("disabled",) + PORTABLE_FLAVORS:
            with kernels.force_flavor(flavor):
                rank = RankNMP(config)
                last = rank.execute_instructions(
                    list(instructions), arrival_cycles=list(arrivals),
                    reorder_window=8)
            snapshots[flavor] = (last, _rank_snapshot(rank))
        reference = snapshots["disabled"]
        for flavor in PORTABLE_FLAVORS:
            assert snapshots[flavor] == reference, flavor

    def test_single_instruction_path(self):
        inst = NMPInstruction(ddr_cmd=FULL_CMD, daddr=123, vsize=2,
                              locality_bit=True)
        results = {}
        for flavor in ("disabled",) + PORTABLE_FLAVORS:
            with kernels.force_flavor(flavor):
                rank = RankNMP(RankNMPConfig())
                completion = rank.execute_instruction(inst)
                completion2 = rank.execute_instruction(inst)
            results[flavor] = (completion, completion2,
                               _rank_snapshot(rank))
        assert results["python"] == results["disabled"]
        assert results["flat-python"] == results["disabled"]

    def test_reset_clears_kernel_state(self):
        rng = np.random.default_rng(7)
        instructions = _random_instructions(rng, 40)
        rank = RankNMP(RankNMPConfig(use_cache=True))
        rank.execute_instructions(list(instructions))
        first = _rank_snapshot(rank)
        rank.reset()
        rank.execute_instructions(list(instructions))
        assert _rank_snapshot(rank) == first


def _requests_for(trace_kind, num_tables=3, batch=3, pooling=14, seed=0):
    per_table = batch * pooling
    if trace_kind == "production":
        traces = make_production_table_traces(
            num_lookups_per_table=per_table, num_rows=NUM_ROWS,
            num_tables=num_tables, seed=seed)
    else:
        traces = [random_trace(NUM_ROWS, per_table, table_id=t,
                               seed=seed + t)
                  for t in range(num_tables)]
    return [SLSRequest(table_id=trace.table_id,
                       indices=trace.indices[:per_table],
                       lengths=np.full(batch, pooling))
            for trace in traces]


def _system_fingerprint(result):
    return (result.total_cycles, result.latency_ns, result.cache_hit_rate,
            result.energy_nj)


class TestSystemMatrix:
    """Full-system bit-exactness over the RecNMP variant matrix.

    Four paper variants x two vector sizes x two trace localities x both
    rank assignments (including stateful first-touch page colouring),
    active kernels vs. the legacy object path.
    """

    @pytest.mark.parametrize("rank_assignment", ["address", "page-coloring"])
    @pytest.mark.parametrize("trace_kind", ["random", "production"])
    @pytest.mark.parametrize("vector_bytes", [64, 256])
    @pytest.mark.parametrize("variant", ["recnmp-base", "recnmp-cache",
                                         "recnmp-sched", "recnmp-opt"])
    def test_kernel_matches_legacy(self, variant, vector_bytes, trace_kind,
                                   rank_assignment):
        # 16 poolings x 18 lookups = 288-instruction packets, above the
        # packed dispatch cutover, so the kernel path (not the
        # small-packet object fallback) is what the matrix exercises.
        requests = _requests_for(trace_kind, pooling=18)

        def run(flavor):
            with kernels.force_flavor(flavor):
                with build_system(variant, table_rows=NUM_ROWS,
                                  vector_size_bytes=vector_bytes,
                                  rank_assignment=rank_assignment,
                                  poolings_per_packet=16,
                                  compare_baseline=False) as system:
                    return _system_fingerprint(system.run(requests))

        reference = run("disabled")
        for flavor in PORTABLE_FLAVORS:
            assert run(flavor) == reference, flavor
        if kernels.KERNEL_FLAVOR == "numba":
            assert run("numba") == reference


class TestForcedFallback:
    """REPRO_DISABLE_KERNELS=1 and missing numba must both degrade
    gracefully to bit-identical results."""

    SNIPPET = """
import sys
{prelude}
from repro.core import kernels
assert kernels.active_flavor() == {expected!r}, kernels.active_flavor()
import numpy as np
from repro.dlrm.operators import SLSRequest
from repro.systems import build_system
from repro.traces import random_trace

trace = random_trace(6000, 42, table_id=0, seed=1)
requests = [SLSRequest(table_id=0, indices=trace.indices,
                       lengths=np.array([21, 21]))]
with build_system("recnmp-opt", table_rows=6000, vector_size_bytes=128,
                  compare_baseline=False) as system:
    print("CYCLES=%d" % system.run(requests).total_cycles)
"""

    BLOCK_NUMBA = """
import importlib.abc

class _Block(importlib.abc.MetaPathFinder):
    def find_spec(self, name, path=None, target=None):
        if name == "numba" or name.startswith("numba."):
            raise ImportError("numba blocked for fallback test")
        return None

sys.meta_path.insert(0, _Block())
"""

    def _run_subprocess(self, prelude, expected, extra_env=None):
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [os.path.join(os.path.dirname(__file__), "..", "src")]
            + env.get("PYTHONPATH", "").split(os.pathsep))
        env.pop("REPRO_DISABLE_KERNELS", None)
        if extra_env:
            env.update(extra_env)
        script = self.SNIPPET.format(prelude=prelude, expected=expected)
        completed = subprocess.run([sys.executable, "-c", script],
                                   env=env, capture_output=True, text=True,
                                   timeout=240)
        assert completed.returncode == 0, completed.stderr
        for line in completed.stdout.splitlines():
            if line.startswith("CYCLES="):
                return int(line.split("=", 1)[1])
        raise AssertionError("no CYCLES line in output: %r"
                             % completed.stdout)

    def _reference_cycles(self):
        trace = random_trace(6000, 42, table_id=0, seed=1)
        requests = [SLSRequest(table_id=0, indices=trace.indices,
                               lengths=np.array([21, 21]))]
        with build_system("recnmp-opt", table_rows=6000,
                          vector_size_bytes=128,
                          compare_baseline=False) as system:
            return system.run(requests).total_cycles

    def test_env_var_disables_kernels(self):
        cycles = self._run_subprocess(
            "", "disabled", extra_env={"REPRO_DISABLE_KERNELS": "1"})
        assert cycles == self._reference_cycles()

    def test_import_without_numba(self):
        # Block numba at import time: the module must import cleanly and
        # fall back to the pure-python flavour with identical results.
        cycles = self._run_subprocess(self.BLOCK_NUMBA, "python")
        assert cycles == self._reference_cycles()


class TestPackedHelpers:
    def test_pack_decoded_matches_scalar_decode(self):
        config = RankNMPConfig()
        daddrs = np.array([0, 129, 4097, 65535, 12345], dtype=np.int64)
        bank_groups, banks, rows = kernels.pack_decoded(config, daddrs)
        for position, daddr in enumerate(daddrs.tolist()):
            block = daddr // config.columns_per_row
            assert bank_groups[position] == block % config.num_bank_groups
            block //= config.num_bank_groups
            assert banks[position] == block % config.banks_per_group
            assert rows[position] == block // config.banks_per_group

    def test_reorder_indices_is_permutation(self):
        rng = np.random.default_rng(11)
        rows = rng.integers(0, 6, size=40)
        ranks = rng.integers(0, 4, size=40)
        order = kernels.reorder_indices(rows, ranks, 8, 4)
        assert sorted(np.asarray(order).tolist()) == list(range(40))

    def test_reorder_groups_same_row(self):
        # Rows [A, B, A] on one rank: after issuing A, the windowed scan
        # must hoist the second A ahead of B.
        rows = np.array([5, 9, 5], dtype=np.int64)
        ranks = np.zeros(3, dtype=np.int64)
        order = np.asarray(kernels.reorder_indices(rows, ranks, 8, 1))
        assert order.tolist() == [0, 2, 1]

    def test_packed_dispatch_cutover_by_flavor(self):
        # The jitted flavour amortises its call overhead on far smaller
        # packets than the interpreted twins; disabled has no kernel to
        # route to, so its cutover is irrelevant (0).
        assert kernels.packed_dispatch_min_instructions("numba") < \
            kernels.packed_dispatch_min_instructions("python")
        assert kernels.packed_dispatch_min_instructions("flat-python") == \
            kernels.packed_dispatch_min_instructions("python")
        assert kernels.packed_dispatch_min_instructions("disabled") == 0
        # Forcing a flavor disables the cutover: the forced kernel runs
        # on every stream (the parity tests above depend on this).
        with kernels.force_flavor("python"):
            assert kernels.packed_dispatch_min_instructions() == 0
            assert RankNMP(RankNMPConfig())._kernel_min_instructions == 0

    def test_small_packets_fall_back_bit_identically(self):
        # Built under the ambient (un-forced) flavor, streams below the
        # cutover take the legacy object path even with a kernel bound;
        # the dispatch mix must not disturb the results.
        if kernels.active_flavor() == "disabled":
            pytest.skip("kernels globally disabled: no mixed dispatch")
        requests = _requests_for("random", num_tables=2, batch=2,
                                 pooling=6, seed=3)

        def run(forced):
            context = kernels.force_flavor(forced) if forced else \
                contextlib.nullcontext()
            with context:
                with build_system("recnmp-opt", table_rows=NUM_ROWS,
                                  compare_baseline=False) as system:
                    return _system_fingerprint(system.run(requests))

        assert run(None) == run("disabled")

    def test_packed_execution_rejected_without_kernel(self):
        from repro.core.instruction import PackedInstructions

        with kernels.force_flavor("disabled"):
            rank = RankNMP(RankNMPConfig())
        packed = PackedInstructions.from_instructions(
            _random_instructions(np.random.default_rng(0), 4))
        with pytest.raises(RuntimeError, match="kernel"):
            rank.execute_packed(packed, np.zeros(4, dtype=np.int64))
