"""Tests for repro.core.rank_nmp, dimm_nmp and processing_unit."""

import numpy as np
import pytest

from repro.core.dimm_nmp import DimmNMP
from repro.core.instruction import (
    DDR_CMD_ACT,
    DDR_CMD_PRE,
    DDR_CMD_RD,
    NMPInstruction,
    NMPPacket,
)
from repro.core.processing_unit import RecNMPChannel, RecNMPProcessingUnit
from repro.core.rank_nmp import RankNMP, RankNMPConfig
from repro.dram.timing import DDR4_2400

FULL_CMD = DDR_CMD_ACT | DDR_CMD_RD | DDR_CMD_PRE


def _instructions(count, stride_blocks=1000, vsize=1, locality=True,
                  psum_tags=1):
    return [NMPInstruction(ddr_cmd=FULL_CMD, daddr=i * stride_blocks,
                           vsize=vsize, locality_bit=locality,
                           psum_tag=i % psum_tags)
            for i in range(count)]


class TestRankNMP:
    def test_single_miss_latency(self):
        rank = RankNMP(RankNMPConfig(use_cache=False))
        completion = rank.execute_instruction(_instructions(1)[0])
        minimum = DDR4_2400.tRCD + DDR4_2400.tCL + DDR4_2400.tBL
        assert completion >= minimum

    def test_cache_hit_is_fast(self):
        config = RankNMPConfig(use_cache=True, cache_capacity_bytes=4096)
        rank = RankNMP(config)
        inst = _instructions(1)[0]
        rank.execute_instruction(inst)
        start = rank.current_cycle
        completion = rank.execute_instruction(inst)
        assert rank.stats.cache_hits == 1
        assert completion - start <= (config.cache_latency_cycles
                                      + config.adder_latency_cycles)

    def test_bypass_skips_cache(self):
        rank = RankNMP(RankNMPConfig(use_cache=True))
        inst = NMPInstruction(ddr_cmd=FULL_CMD, daddr=10, locality_bit=False)
        rank.execute_instruction(inst)
        rank.execute_instruction(inst)
        assert rank.stats.cache_hits == 0
        assert rank.stats.cache_bypasses == 2

    def test_throughput_pipelines_row_misses(self):
        # 64 random-row lookups must take far less than 64 serialized
        # PRE+ACT+RD latency chains thanks to bank-level pipelining.
        rank = RankNMP(RankNMPConfig(use_cache=False))
        instructions = _instructions(64, stride_blocks=997)
        last = rank.execute_instructions(instructions)
        serialized = 64 * (DDR4_2400.tRP + DDR4_2400.tRCD + DDR4_2400.tCL)
        assert last < serialized * 0.5

    def test_weighted_instruction_uses_multiplier(self):
        config = RankNMPConfig(use_cache=False)
        rank = RankNMP(config)
        unweighted = rank.execute_instruction(
            NMPInstruction(ddr_cmd=FULL_CMD, daddr=1, weight=1.0))
        rank2 = RankNMP(config)
        weighted = rank2.execute_instruction(
            NMPInstruction(ddr_cmd=FULL_CMD, daddr=1, weight=0.5))
        assert weighted == unweighted + config.multiplier_latency_cycles

    def test_psum_counts(self):
        rank = RankNMP(RankNMPConfig(use_cache=False))
        rank.execute_instructions(_instructions(8, psum_tags=4))
        assert rank.psum_count(0) == 2
        assert rank.psum_count(3) == 2
        rank.reset_psums()
        assert rank.psum_count(0) == 0

    def test_stats_bytes(self):
        rank = RankNMP(RankNMPConfig(use_cache=False, vector_size_bytes=256))
        rank.execute_instructions(_instructions(4, vsize=4))
        assert rank.stats.bytes_from_dram == 4 * 256

    def test_reset(self):
        rank = RankNMP()
        rank.execute_instructions(_instructions(4))
        rank.reset()
        assert rank.current_cycle == 0
        assert rank.stats.instructions == 0
        assert rank.cache.occupancy == 0

    def test_decode_bank_row_ranges(self):
        rank = RankNMP()
        for daddr in (0, 1, 127, 128, 5000, (1 << 32) - 1):
            bank_group, bank, row, column = rank.decode_bank_row(daddr)
            assert 0 <= bank_group < 4
            assert 0 <= bank < 4
            assert 0 <= column < 128
            assert row >= 0

    def test_arrival_cycles_respected(self):
        rank = RankNMP(RankNMPConfig(use_cache=False))
        completion = rank.execute_instruction(_instructions(1)[0],
                                              arrival_cycle=500)
        assert completion > 500


def _reference_execute_instructions(rank, instructions, arrival_cycles,
                                    reorder_window=16):
    """The pre-optimisation windowed scheduler, verbatim.

    ``_estimated_start`` is the readable specification of what the
    memoised fast path in ``execute_instructions`` must compute; this
    reference loop re-evaluates it for every window member on every
    iteration exactly like the original code, so the randomized
    equivalence test below keeps the two from silently diverging.
    """
    pending = list(zip(instructions, arrival_cycles))
    last_completion = rank.current_cycle
    while pending:
        window = pending[:max(1, reorder_window)]
        best_index = 0
        best_start = None
        for index, (instruction, arrival) in enumerate(window):
            estimate = rank._estimated_start(instruction, arrival)
            if best_start is None or estimate < best_start:
                best_start = estimate
                best_index = index
        instruction, arrival = pending.pop(best_index)
        last_completion = max(
            last_completion,
            rank.execute_instruction(instruction, arrival_cycle=arrival))
    return last_completion


class TestSchedulerEquivalence:
    """The memoised window scheduler must match the _estimated_start spec."""

    @pytest.mark.parametrize("seed", range(6))
    @pytest.mark.parametrize("use_cache", [True, False])
    def test_randomized_streams_cycle_identical(self, seed, use_cache):
        rng = np.random.default_rng(seed)
        config = RankNMPConfig(use_cache=use_cache,
                               cache_capacity_bytes=4096)
        count = 80
        instructions = [
            NMPInstruction(
                ddr_cmd=FULL_CMD,
                daddr=int(rng.integers(0, 4000)),
                vsize=int(rng.choice([1, 2])),
                weight=float(rng.choice([1.0, 0.5])),
                locality_bit=bool(rng.integers(0, 2)),
                psum_tag=int(rng.integers(0, 8)))
            for _ in range(count)
        ]
        arrivals = np.sort(rng.integers(0, 40, size=count)).tolist()
        window = int(rng.choice([1, 4, 16]))

        fast = RankNMP(config)
        fast_last = fast.execute_instructions(
            list(instructions), arrival_cycles=list(arrivals),
            reorder_window=window)
        reference = RankNMP(config)
        reference_last = _reference_execute_instructions(
            reference, list(instructions), list(arrivals),
            reorder_window=window)

        assert fast_last == reference_last
        assert fast.current_cycle == reference.current_cycle
        assert fast.stats.as_dict() == reference.stats.as_dict()
        assert fast._psum_counts == reference._psum_counts
        if use_cache:
            assert list(fast.cache._entries) == \
                list(reference.cache._entries)


class TestDimmNMP:
    def test_packet_execution_uses_all_ranks(self):
        dimm = DimmNMP(num_ranks=2,
                       rank_config=RankNMPConfig(use_cache=False))
        packet = NMPPacket(instructions=_instructions(16))
        completion, per_rank = dimm.execute_packet(packet)
        assert len(per_rank) == 2
        assert completion >= max(per_rank)
        assert dimm.stats.instructions_dispatched == 16

    def test_more_ranks_is_faster(self):
        packet = NMPPacket(instructions=_instructions(64, stride_blocks=997))
        slow = DimmNMP(num_ranks=1,
                       rank_config=RankNMPConfig(use_cache=False))
        fast = DimmNMP(num_ranks=4,
                       rank_config=RankNMPConfig(use_cache=False))
        slow_completion, _ = slow.execute_packet(packet)
        packet2 = NMPPacket(instructions=_instructions(64, stride_blocks=997))
        fast_completion, _ = fast.execute_packet(packet2)
        assert fast_completion < slow_completion

    def test_rank_load_distribution(self):
        dimm = DimmNMP(num_ranks=4)
        packet = NMPPacket(instructions=_instructions(16, stride_blocks=1))
        load = dimm.rank_load_distribution(packet)
        assert sum(load) == 16
        assert load == [4, 4, 4, 4]

    def test_validation(self):
        with pytest.raises(ValueError):
            DimmNMP(num_ranks=0)
        with pytest.raises(ValueError):
            DimmNMP(dispatch_rate_insts_per_cycle=0)

    def test_reset(self):
        dimm = DimmNMP(num_ranks=2)
        dimm.execute_packet(NMPPacket(instructions=_instructions(4)))
        dimm.reset()
        assert dimm.stats.packets == 0
        assert dimm.rank_nmps[0].stats.instructions == 0


class TestRecNMPChannel:
    def test_rank_indexing(self):
        channel = RecNMPChannel(num_dimms=2, ranks_per_dimm=2)
        assert channel.num_ranks == 4
        assert len(channel.all_rank_nmps()) == 4
        assert channel.rank_nmp(3) is \
            channel.processing_units[1].rank_nmps[1]

    def test_packet_execution_scales_with_ranks(self):
        def run(num_dimms, ranks_per_dimm):
            channel = RecNMPChannel(
                num_dimms=num_dimms, ranks_per_dimm=ranks_per_dimm,
                rank_config=RankNMPConfig(use_cache=False))
            packet = NMPPacket(
                instructions=_instructions(128, stride_blocks=997))
            return channel.execute_packet(packet)

        two_ranks = run(1, 2)
        eight_ranks = run(4, 2)
        assert eight_ranks < two_ranks

    def test_custom_rank_assignment(self):
        channel = RecNMPChannel(num_dimms=1, ranks_per_dimm=2,
                                rank_config=RankNMPConfig(use_cache=False))
        packet = NMPPacket(instructions=_instructions(8))
        channel.execute_packet(packet, rank_of_instruction=lambda inst: 1)
        stats = channel.aggregate_stats()
        assert stats["instructions"] == 8
        assert channel.rank_nmp(0).stats.instructions == 0
        assert channel.rank_nmp(1).stats.instructions == 8

    def test_invalid_rank_assignment_rejected(self):
        channel = RecNMPChannel(num_dimms=1, ranks_per_dimm=2)
        packet = NMPPacket(instructions=_instructions(1))
        with pytest.raises(ValueError):
            channel.execute_packet(packet, rank_of_instruction=lambda i: 5)

    def test_rank_load(self):
        channel = RecNMPChannel(num_dimms=1, ranks_per_dimm=2)
        packet = NMPPacket(instructions=_instructions(10, stride_blocks=1))
        load = channel.rank_load(packet)
        assert sum(load) == 10

    def test_processing_unit_wrapper(self):
        pu = RecNMPProcessingUnit(num_ranks=2)
        packet = NMPPacket(instructions=_instructions(8))
        completion = pu.execute_packet(packet)
        assert completion > 0
        assert pu.stats()["instructions_dispatched"] == 8
        pu.reset()
        assert pu.stats()["instructions_dispatched"] == 0

    def test_aggregate_stats_hit_rate(self):
        channel = RecNMPChannel(num_dimms=1, ranks_per_dimm=1)
        instructions = _instructions(4, stride_blocks=0)  # same address
        packet = NMPPacket(instructions=instructions)
        channel.execute_packet(packet)
        stats = channel.aggregate_stats()
        assert stats["cache_hits"] == 3
        assert stats["cache_hit_rate"] == pytest.approx(0.75)

    def test_reset(self):
        channel = RecNMPChannel(num_dimms=1, ranks_per_dimm=2)
        channel.execute_packet(NMPPacket(instructions=_instructions(4)))
        channel.reset()
        assert channel.aggregate_stats()["instructions"] == 0
