"""Tests for repro.dram.address_mapping."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dram.address_mapping import (
    InterleavedVectorMapping,
    MemoryGeometry,
    PageColoringMapping,
    SimplePageMapper,
    SkylakeAddressMapping,
)


class TestMemoryGeometry:
    def test_default_capacity_matches_table1(self):
        geometry = MemoryGeometry()
        # 4 channels x 1 DIMM x 2 ranks x 16 banks x 64K rows x 8 KB = 64 GB.
        assert geometry.total_bytes == 64 * 1024 ** 3

    def test_row_size(self):
        assert MemoryGeometry().row_size_bytes == 8192

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            MemoryGeometry(num_channels=0)


class TestSkylakeMapping:
    def test_fields_in_range(self):
        mapping = SkylakeAddressMapping()
        g = mapping.geometry
        for address in range(0, 1 << 22, 4096 + 64):
            decoded = mapping.map(address)
            assert 0 <= decoded.channel < g.num_channels
            assert 0 <= decoded.dimm < g.dimms_per_channel
            assert 0 <= decoded.rank < g.ranks_per_dimm
            assert 0 <= decoded.bank_group < g.bank_groups
            assert 0 <= decoded.bank < g.banks_per_group
            assert 0 <= decoded.row < g.rows_per_bank
            assert 0 <= decoded.column < g.columns_per_row

    def test_same_block_same_coordinates(self):
        mapping = SkylakeAddressMapping()
        assert mapping.map(128) == mapping.map(128 + 63)

    def test_consecutive_blocks_rotate_channels(self):
        mapping = SkylakeAddressMapping()
        channels = {mapping.map(64 * i).channel for i in range(4)}
        assert channels == {0, 1, 2, 3}

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            SkylakeAddressMapping().map(-1)

    @given(st.integers(min_value=0, max_value=2**36))
    @settings(max_examples=200, deadline=None)
    def test_always_in_range(self, address):
        mapping = SkylakeAddressMapping()
        g = mapping.geometry
        decoded = mapping.map(address)
        assert 0 <= decoded.channel < g.num_channels
        assert 0 <= decoded.rank < g.ranks_per_dimm
        assert 0 <= decoded.bank_group < g.bank_groups
        assert 0 <= decoded.bank < g.banks_per_group
        assert 0 <= decoded.column < g.columns_per_row
        assert 0 <= decoded.row < g.rows_per_bank


class TestPageColoring:
    def test_explicit_color_pins_rank(self):
        mapping = PageColoringMapping()
        mapping.assign_color(0, 1)
        decoded = mapping.map(100)        # inside page frame 0
        assert decoded.rank_global(mapping.geometry.ranks_per_dimm) == 1

    def test_whole_page_same_rank(self):
        mapping = PageColoringMapping()
        mapping.assign_color(3, 0)
        base = 3 * 4096
        ranks = {mapping.map(base + offset).rank_global(
            mapping.geometry.ranks_per_dimm) for offset in range(0, 4096, 64)}
        assert ranks == {0}

    def test_default_round_robin(self):
        mapping = PageColoringMapping()
        colors = {mapping.color_of_page(p) for p in range(8)}
        assert colors == {0, 1}

    def test_rejects_invalid_rank(self):
        with pytest.raises(ValueError):
            PageColoringMapping().assign_color(0, 99)


class TestInterleavedVectorMapping:
    def test_consecutive_blocks_rotate_dimms(self):
        geometry = MemoryGeometry(dimms_per_channel=4)
        mapping = InterleavedVectorMapping(geometry)
        dimms = [mapping.map(64 * i).dimm for i in range(4)]
        assert dimms == [0, 1, 2, 3]

    def test_small_vector_stays_on_one_dimm(self):
        geometry = MemoryGeometry(dimms_per_channel=4)
        mapping = InterleavedVectorMapping(geometry)
        # A 64 B vector occupies exactly one block and therefore one DIMM --
        # TensorDIMM's limitation with small embedding vectors.
        first = mapping.map(0)
        second = mapping.map(63)
        assert first.dimm == second.dimm


class TestSimplePageMapper:
    def test_deterministic(self):
        a = SimplePageMapper(seed=3)
        b = SimplePageMapper(seed=3)
        addresses = [4096 * i + 7 for i in range(50)]
        assert [a.translate(x) for x in addresses] == \
            [b.translate(x) for x in addresses]

    def test_offset_preserved(self):
        mapper = SimplePageMapper(seed=0)
        physical = mapper.translate(4096 + 123)
        assert physical % 4096 == 123

    def test_same_page_same_frame(self):
        mapper = SimplePageMapper(seed=0)
        first = mapper.translate(8192)
        second = mapper.translate(8192 + 100)
        assert second - first == 100

    def test_distinct_pages_get_distinct_frames(self):
        mapper = SimplePageMapper(seed=1)
        frames = {mapper.translate(4096 * i) // 4096 for i in range(200)}
        assert len(frames) == 200

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            SimplePageMapper().translate(-5)
