"""Tests for repro.cache.set_associative."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.set_associative import SetAssociativeCache


class TestConstruction:
    def test_basic_geometry(self):
        cache = SetAssociativeCache(16 * 1024, line_size_bytes=64,
                                    associativity=4)
        assert cache.num_sets == 64

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            SetAssociativeCache(0)

    def test_rejects_non_power_of_two_line(self):
        with pytest.raises(ValueError):
            SetAssociativeCache(1024, line_size_bytes=96)

    def test_rejects_indivisible_associativity(self):
        with pytest.raises(ValueError):
            SetAssociativeCache(64 * 3, line_size_bytes=64, associativity=4)


class TestBehaviour:
    def test_miss_then_hit(self):
        cache = SetAssociativeCache(1024, associativity=4)
        assert cache.access(0) is False
        assert cache.access(0) is True
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1

    def test_same_line_different_offsets_hit(self):
        cache = SetAssociativeCache(1024, line_size_bytes=64)
        cache.access(0)
        assert cache.access(63) is True
        assert cache.access(64) is False

    def test_lru_eviction(self):
        # Single-set cache of 2 ways.
        cache = SetAssociativeCache(128, line_size_bytes=64, associativity=2)
        assert cache.num_sets == 1
        cache.access(0)
        cache.access(64)
        cache.access(0)            # refresh line 0 -> line 64 becomes LRU
        cache.access(128)          # evicts line 64
        assert cache.access(0) is True
        assert cache.access(64) is False

    def test_eviction_counted(self):
        cache = SetAssociativeCache(128, line_size_bytes=64, associativity=2)
        for i in range(3):
            cache.access(i * 64)
        assert cache.stats.evictions == 1

    def test_flush_clears_contents_not_stats(self):
        cache = SetAssociativeCache(1024)
        cache.access(0)
        cache.flush()
        assert not cache.contains(0)
        assert cache.stats.misses == 1

    def test_reset_stats(self):
        cache = SetAssociativeCache(1024)
        cache.access(0)
        cache.reset_stats()
        assert cache.stats.accesses == 0

    def test_access_many_returns_hits(self):
        cache = SetAssociativeCache(4096)
        hits = cache.access_many([0, 64, 0, 64, 128])
        assert hits == 2

    def test_hit_rate(self):
        cache = SetAssociativeCache(4096)
        cache.access_many([0, 0, 0, 0])
        assert cache.hit_rate == pytest.approx(0.75)

    def test_rejects_negative_address(self):
        with pytest.raises(ValueError):
            SetAssociativeCache(1024).access(-1)

    def test_working_set_fits_all_hits_second_pass(self):
        cache = SetAssociativeCache(64 * 1024, associativity=4)
        addresses = [i * 64 for i in range(512)]    # 32 KB working set
        cache.access_many(addresses)
        hits = cache.access_many(addresses)
        assert hits == 512


class TestProperties:
    @given(st.lists(st.integers(min_value=0, max_value=1 << 20),
                    min_size=1, max_size=300))
    @settings(max_examples=30, deadline=None)
    def test_hits_plus_misses_equals_accesses(self, addresses):
        cache = SetAssociativeCache(8 * 1024)
        cache.access_many(addresses)
        assert cache.stats.hits + cache.stats.misses == len(addresses)

    @given(st.lists(st.integers(min_value=0, max_value=1 << 16),
                    min_size=1, max_size=200))
    @settings(max_examples=30, deadline=None)
    def test_occupancy_never_exceeds_capacity(self, addresses):
        cache = SetAssociativeCache(4 * 1024)
        cache.access_many(addresses)
        assert cache.resident_lines <= 4 * 1024 // 64

    @given(st.lists(st.integers(min_value=0, max_value=1 << 18),
                    min_size=1, max_size=200),
           st.integers(min_value=0, max_value=1 << 18))
    @settings(max_examples=30, deadline=None)
    def test_immediate_reaccess_always_hits(self, addresses, probe):
        cache = SetAssociativeCache(8 * 1024)
        cache.access_many(addresses)
        cache.access(probe)
        assert cache.access(probe) is True

    @given(st.lists(st.integers(min_value=0, max_value=1 << 20),
                    min_size=1, max_size=200))
    @settings(max_examples=20, deadline=None)
    def test_larger_cache_never_fewer_hits(self, addresses):
        small = SetAssociativeCache(4 * 1024)
        large = SetAssociativeCache(64 * 1024)
        small_hits = small.access_many(addresses)
        large_hits = large.access_many(addresses)
        assert large_hits >= small_hits
