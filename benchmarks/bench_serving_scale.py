"""Serving-scale benchmark: end-to-end queries/sec on million-query runs.

Measures the full serving pipeline -- arrival generation, column-backed
query construction, admission-free batching, the compiled event-loop
kernels and report summarisation -- at 100k and 1M queries per run
(interpolating service model, warm service cache) for every available
event-kernel flavor, against the pre-PR baseline: materialised
``ServingQuery`` objects driven through the legacy heap-based event
loop (``force_flavor("disabled")``).

All timed runs stream queries through ``simulate(stream_chunk=...)`` so
memory stays O(chunk); the reports are asserted byte-identical across
every flavor, against the legacy object path, and against a one-shot
materialised run.  Recorded throughput floors live in the
``serving_scale`` block of ``perf_reference.json`` next to the exact-sim
floors and are enforced with the same loose ``REGRESSION_FLOOR``
mechanism (refresh with ``REPRO_PERF_WRITE_REFERENCE=1``).

The observability section exercises ``repro.obs``: one extra run with
tracing + metrics enabled must produce a byte-identical report and a
schema-valid Perfetto trace (written to ``BENCH_serving_trace.json`` for
the CI artifact), and -- full mode only, where timings are stable --
the *disabled*-mode throughput must stay within
``obs_disabled_overhead_floor`` (2%) of the recorded pre-obs floors:
merging the observability layer must cost nothing when it is off.
"""

import dataclasses
import json
import os
import time
from pathlib import Path

from repro.core.kernels import KERNEL_FLAVOR
from repro.obs import Tracer, chrome_trace, validate_chrome_trace
from repro.perf.service_model import InterpolatingServiceModel
from repro.serving import (
    BatchingFrontend,
    PoissonArrivalProcess,
    QueryStream,
    ShardedServingCluster,
    queries_from_traces,
    query_columns_from_traces,
)
from repro.serving.event_kernels import force_flavor
from repro.traces import make_production_table_traces

from workloads import NUM_ROWS, VECTOR_BYTES, address_of, format_table, \
    smoke_scaled

SMOKE_MODE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")
MODE = "smoke" if SMOKE_MODE else "full"
REFERENCE_PATH = Path(__file__).resolve().parent / "perf_reference.json"
WRITE_REFERENCE = os.environ.get("REPRO_PERF_WRITE_REFERENCE", "") \
    not in ("", "0")
#: Loose CI floor: fail only when measured throughput drops more than
#: this factor below the recorded reference (same knob as
#: bench_simulator_perf).
REGRESSION_FLOOR = 2.0

#: Query counts per timed run.  Full mode is the headline measurement
#: (100k and 1M); smoke keeps the same shape at CI-friendly sizes while
#: still spanning several stream chunks.
SIZES = smoke_scaled((100_000, 1_000_000), (2_000, 8_000))
STREAM_CHUNK = smoke_scaled(65_536, 1_024)
OFFERED_QPS = 120_000.0
NUM_NODES = 2
NUM_FRONTENDS = 4
NUM_TABLES = smoke_scaled(8, 4)
QUERY_BATCH = 4
QUERY_POOLING = smoke_scaled(20, 8)
NODE_SYSTEM = "recnmp-opt"
#: Multi-frontend FIFO dispatch: the event engine path the compiled
#: kernels replace.
ENGINE = "event"

#: Full-mode speedup targets at the largest size, streamed columns vs
#: the legacy object path.  The interpreted twins already clear 1.5x;
#: the jitted kernels must clear 5x (asserted only when numba is the
#: active flavor).
TWIN_SPEEDUP_TARGET = 1.5
NUMBA_SPEEDUP_TARGET = 5.0

#: Observability must be free when off: with trace/metrics disabled the
#: streamed pipeline may lose at most this fraction of the recorded
#: pre-obs throughput floors (enforced full mode only -- smoke-sized
#: runs are too short for a 2% timing check).
OBS_DISABLED_OVERHEAD = 0.02
#: Perfetto trace emitted by the enabled run, uploaded by CI.
TRACE_ARTIFACT = "BENCH_serving_trace.json"


def _arrivals():
    return PoissonArrivalProcess(rate_qps=OFFERED_QPS, seed=1)


def _flavors():
    flavors = ["python", "flat-python"]
    if KERNEL_FLAVOR == "numba":
        flavors.append("numba")
    return flavors


def compute_serving_scale():
    traces = make_production_table_traces(
        num_lookups_per_table=QUERY_BATCH * QUERY_POOLING * 8,
        num_rows=NUM_ROWS, num_tables=NUM_TABLES, seed=0)
    model = InterpolatingServiceModel(traces)
    frontend = BatchingFrontend(max_queries=8, max_delay_us=100.0)
    report = {"engine": ENGINE, "stream_chunk": STREAM_CHUNK,
              "flavors": _flavors(), "sizes": {}}
    with ShardedServingCluster(
            num_nodes=NUM_NODES, node_system=NODE_SYSTEM,
            num_frontends=NUM_FRONTENDS, address_of=address_of,
            vector_size_bytes=VECTOR_BYTES) as cluster:

        def stream_run(num_queries, flavor):
            """One timed end-to-end run: generation included."""
            with force_flavor(flavor):
                start = time.perf_counter()
                stream = QueryStream(traces, _arrivals(),
                                     num_queries=num_queries,
                                     batch_size=QUERY_BATCH,
                                     pooling_factor=QUERY_POOLING)
                result = cluster.simulate(
                    stream, frontend=frontend, engine=ENGINE,
                    service_model=model, stream_chunk=STREAM_CHUNK)
                seconds = time.perf_counter() - start
            return result, seconds

        def legacy_run(num_queries):
            """Pre-PR baseline: object queries, heap event loop."""
            with force_flavor("disabled"):
                start = time.perf_counter()
                queries = queries_from_traces(
                    traces, num_queries, _arrivals(),
                    batch_size=QUERY_BATCH, pooling_factor=QUERY_POOLING)
                result = cluster.simulate(
                    queries, frontend=frontend, engine=ENGINE,
                    service_model=model)
                seconds = time.perf_counter() - start
            return result, seconds

        # Warm the interpolation grid and the content-keyed service
        # cache so every timed run sees the same steady state (the
        # cycled request pool bounds the distinct batch compositions).
        stream_run(min(SIZES), "flat-python")

        for num_queries in SIZES:
            entry = {"num_queries": num_queries, "runs": {}}
            baseline_report, seconds = legacy_run(num_queries)
            entry["runs"]["legacy-objects"] = {
                "seconds": round(seconds, 4),
                "queries_per_sec": round(num_queries / seconds, 1)}
            baseline = dataclasses.asdict(baseline_report)
            for flavor in _flavors():
                flavor_report, seconds = stream_run(num_queries, flavor)
                entry["runs"][flavor] = {
                    "seconds": round(seconds, 4),
                    "queries_per_sec": round(num_queries / seconds, 1)}
                assert dataclasses.asdict(flavor_report) == baseline, \
                    "streamed %s report diverged from the legacy object " \
                    "path at %d queries" % (flavor, num_queries)
            legacy_rate = \
                entry["runs"]["legacy-objects"]["queries_per_sec"]
            for flavor in _flavors():
                entry["runs"][flavor]["speedup_vs_legacy"] = round(
                    entry["runs"][flavor]["queries_per_sec"]
                    / legacy_rate, 2)
            report["sizes"][str(num_queries)] = entry

        # Chunked streaming is byte-identical to a one-shot materialised
        # columns run (same batcher, no chunk boundaries).
        num_queries = min(SIZES)
        columns = query_columns_from_traces(
            traces, num_queries, _arrivals(),
            batch_size=QUERY_BATCH, pooling_factor=QUERY_POOLING)
        oneshot = cluster.simulate(columns, frontend=frontend,
                                   engine=ENGINE, service_model=model)
        chunked, _ = stream_run(num_queries, "flat-python")
        assert dataclasses.asdict(oneshot) == dataclasses.asdict(chunked), \
            "one-shot columns run diverged from the chunked stream"

        # Observability: the traced+metered run must not perturb the
        # report, and its trace must validate against the checked-in
        # schema.  The enabled/disabled wall-clock pair is reported so
        # the cost of turning tracing on stays visible in CI logs.
        plain_report, plain_seconds = stream_run(num_queries,
                                                 "flat-python")
        tracer = Tracer(label="bench-serving-scale")
        with force_flavor("flat-python"):
            start = time.perf_counter()
            stream = QueryStream(traces, _arrivals(),
                                 num_queries=num_queries,
                                 batch_size=QUERY_BATCH,
                                 pooling_factor=QUERY_POOLING)
            traced_report = cluster.simulate(
                stream, frontend=frontend, engine=ENGINE,
                service_model=model, stream_chunk=STREAM_CHUNK,
                trace=tracer, metrics=True)
            traced_seconds = time.perf_counter() - start
        assert dataclasses.asdict(traced_report) \
            == dataclasses.asdict(plain_report), \
            "enabling trace+metrics changed the serving report"
        trace = chrome_trace(tracer)
        validate_chrome_trace(trace)
        Path(TRACE_ARTIFACT).write_text(json.dumps(trace))
        report["obs"] = {
            "num_queries": num_queries,
            "plain_seconds": round(plain_seconds, 4),
            "traced_seconds": round(traced_seconds, 4),
            "enabled_overhead": round(
                traced_seconds / plain_seconds - 1.0, 4),
            "trace_events": len(trace["traceEvents"]),
            "trace_path": TRACE_ARTIFACT,
        }
    return report


def _load_reference():
    if not REFERENCE_PATH.exists():
        return None
    return json.loads(REFERENCE_PATH.read_text())


def _maybe_write_reference(reference, report):
    """Refresh the ``serving_scale`` throughput floors for this mode."""
    if not WRITE_REFERENCE or reference is None:
        return
    recorded = reference.setdefault(MODE, {}).setdefault("recorded", {})
    recorded["serving_scale"] = {
        "stream_chunk": report["stream_chunk"],
        "obs_disabled_overhead_floor": OBS_DISABLED_OVERHEAD,
        "sizes": {
            size: {name: run["queries_per_sec"]
                   for name, run in entry["runs"].items()}
            for size, entry in report["sizes"].items()},
    }
    REFERENCE_PATH.write_text(json.dumps(reference, indent=2) + "\n")


def bench_serving_scale(benchmark):
    report = benchmark.pedantic(compute_serving_scale, rounds=1,
                                iterations=1)
    reference = _load_reference()
    _maybe_write_reference(reference, report)
    rows = []
    for size, entry in report["sizes"].items():
        for name, run in entry["runs"].items():
            rows.append((size, name, run["seconds"],
                         round(run["queries_per_sec"]),
                         run.get("speedup_vs_legacy", "")))
    print()
    print(format_table(
        "Serving scale: end-to-end queries/sec (%s engine, chunk %d)"
        % (ENGINE, report["stream_chunk"]),
        ["queries", "pipeline", "seconds", "queries/sec", "vs legacy"],
        rows))

    largest = report["sizes"][str(max(SIZES))]
    if not SMOKE_MODE:
        # Headline PR targets at the million-query size.
        for flavor in ("python", "flat-python"):
            speedup = largest["runs"][flavor]["speedup_vs_legacy"]
            assert speedup >= TWIN_SPEEDUP_TARGET, \
                "%s twin %.2fx vs the legacy object path at %d queries " \
                "is below the %.1fx target" \
                % (flavor, speedup, max(SIZES), TWIN_SPEEDUP_TARGET)
        if "numba" in largest["runs"]:
            speedup = largest["runs"]["numba"]["speedup_vs_legacy"]
            assert speedup >= NUMBA_SPEEDUP_TARGET, \
                "numba kernels %.2fx vs the legacy object path at %d " \
                "queries is below the %.1fx target" \
                % (speedup, max(SIZES), NUMBA_SPEEDUP_TARGET)

    obs = report.get("obs")
    if obs:
        print("obs: traced run at %d queries %.4fs vs %.4fs plain "
              "(%+.1f%% enabled overhead), %d trace events -> %s"
              % (obs["num_queries"], obs["traced_seconds"],
                 obs["plain_seconds"], 100 * obs["enabled_overhead"],
                 obs["trace_events"], obs["trace_path"]))

    # Loose CI floors vs the recorded throughput, same mechanism as the
    # exact-sim floors in bench_simulator_perf.
    recorded = ((reference or {}).get(MODE, {})
                .get("recorded", {}).get("serving_scale"))
    if recorded and not WRITE_REFERENCE:
        for size, entry in report["sizes"].items():
            pinned = recorded["sizes"].get(size, {})
            for name, run in entry["runs"].items():
                if name not in pinned:
                    continue
                floor = pinned[name] / REGRESSION_FLOOR
                assert run["queries_per_sec"] >= floor, \
                    "serving-scale throughput on %s at %s queries " \
                    "regressed >%.0fx below the recorded %.0f " \
                    "queries/sec (refresh with " \
                    "REPRO_PERF_WRITE_REFERENCE=1 if this host is " \
                    "legitimately slower)" \
                    % (name, size, REGRESSION_FLOOR, pinned[name])
        # Disabled-mode obs floor: the timed flavor runs above executed
        # with trace/metrics off, so shipping repro.obs may not cost
        # more than the recorded allowance against the pre-obs floors.
        # Full mode only: smoke runs are far too short to resolve 2%.
        if not SMOKE_MODE:
            allowance = recorded.get("obs_disabled_overhead_floor",
                                     OBS_DISABLED_OVERHEAD)
            for size, entry in report["sizes"].items():
                pinned = recorded["sizes"].get(size, {})
                for name, run in entry["runs"].items():
                    if name not in pinned:
                        continue
                    floor = pinned[name] * (1.0 - allowance)
                    assert run["queries_per_sec"] >= floor, \
                        "disabled-mode observability overhead: %s at " \
                        "%s queries measured %.0f queries/sec, more " \
                        "than %.0f%% below the recorded pre-obs %.0f " \
                        "(the obs layer must be free when off)" \
                        % (name, size, run["queries_per_sec"],
                           100 * allowance, pinned[name])
    print("SERVING_SCALE_JSON: %s" % json.dumps(report))
