"""Figure 9 / Section III-B: C/A bandwidth limitation and NMP-Inst expansion.

Regenerates the command/address bandwidth analysis: on the conventional DDR4
interface a 64 B embedding read with no spatial locality needs 3 commands per
4-cycle burst window (75% C/A utilisation, one activatable rank), while the
compressed NMP-Inst stream sustains 8 concurrent ranks -- the 8x expansion
the paper claims, growing further with vector size.
"""

from repro.core.ca_bandwidth import CABandwidthModel
from repro.core.instruction import NMPInstruction

from workloads import format_table

VECTOR_SIZES = (64, 128, 256)


def compute_ca_analysis():
    model = CABandwidthModel()
    rows = []
    for vector_bytes in VECTOR_SIZES:
        summary = model.summary(vector_bytes)
        rows.append((vector_bytes,
                     round(summary["conventional_commands_per_vector"], 2),
                     round(summary["conventional_ca_utilization"], 3),
                     summary["conventional_max_parallel_ranks"],
                     summary["nmp_max_parallel_ranks"],
                     round(summary["expansion_factor"], 1)))
    return rows


def bench_fig09_ca_bandwidth(benchmark):
    rows = benchmark.pedantic(compute_ca_analysis, rounds=1, iterations=1)
    print()
    print(format_table(
        "Fig. 9 -- C/A bandwidth: conventional DDR vs compressed NMP-Inst",
        ["vector (B)", "DDR cmds/vector", "C/A util", "DDR ranks",
         "NMP ranks", "expansion"], rows))
    print("NMP-Inst width: %d bits (84-pin interface)"
          % NMPInstruction.bit_width())
    by_size = {r[0]: r for r in rows}
    # Worst case (64 B): 3 commands, 75% utilisation, 8x expansion.
    assert by_size[64][1] == 3
    assert abs(by_size[64][2] - 0.75) < 1e-6
    assert by_size[64][4] == 8
    assert by_size[64][5] >= 8.0
    # Expansion does not shrink for larger vectors.
    assert by_size[256][5] >= by_size[64][5]
    assert NMPInstruction.bit_width() == 79
