"""SLO/admission benchmark: goodput under overload, per controller.

The serving layer's unconditional percentiles say nothing about what the
cluster does when offered *more* than it can serve: a FIFO queue simply
grows without bound and every query blows its deadline.  This benchmark
assigns every query a fixed completion SLO, sweeps the offered load from
0.3x to 2x the cluster's sustainable QPS under three arrival processes
(memoryless Poisson, bursty two-state MMPP, and a trace replay of
recorded MMPP gaps), and runs each point through the four admission
controllers (``none`` / ``token-bucket`` / ``queue-depth`` /
``deadline``), recording goodput, SLO attainment, shed rate and the
admitted-stream p99 from the event engine.

Claims checked:

* at low load (rho <= 0.3) every controller sheds nothing and reports
  *identical* percentiles -- admission is free when the cluster keeps up;
* at overload (>= 1.2x sustainable, bursty arrivals) deadline-aware
  shedding strictly beats open-loop ``none`` on goodput: dropping
  queries that cannot meet their deadline anyway frees capacity for
  queries that still can.

The machine-readable summary is printed last (``SLO_ADMISSION_JSON:``)
so ``run_all.py`` captures it into ``BENCH_results.json`` (its
non-finite-field check covers the goodput/attainment records), along
with one ``SLO_SUMMARY:`` line per arrival process.
"""

import json

import numpy as np

from repro.perf.service_model import InterpolatingServiceModel
from repro.serving import (
    BatchingFrontend,
    MMPPArrivalProcess,
    PoissonArrivalProcess,
    ShardedServingCluster,
    TraceReplayArrivalProcess,
    queries_from_traces,
)
from repro.traces import make_production_table_traces

from workloads import (
    NUM_ROWS,
    VECTOR_BYTES,
    address_of,
    format_table,
    smoke_scaled,
)

SYSTEM = "recnmp-opt"
NUM_NODES = 2
NUM_FRONTENDS = 2
NUM_TABLES = 8
QUERY_BATCH = 8                 # fig16's SLS batch size per query
QUERY_POOLING = 40              # fig16's pooling factor
MAX_BATCH = 8
MAX_DELAY_US = 200.0
#: Long enough that a 1.2x-overloaded FIFO backlog outgrows the SLO well
#: before the stream ends (the wait grows like 0.1x elapsed time at 1.2x
#: load, so the collapse needs on the order of a thousand queries).
NUM_QUERIES = smoke_scaled(4_000, 1_500)
#: Offered load as multiples of the cluster's sustainable QPS.  The
#: 0.3x point anchors the "admission is free at low load" claim; the
#: >= 1.2x points are the overload regime the controllers exist for.
LOAD_MULTIPLIERS = (0.3, 0.6, 0.9, 1.2, 1.5, 2.0)
OVERLOAD_THRESHOLD = 1.2
CONTROLLERS = ("none", "token-bucket", "queue-depth", "deadline")
ARRIVALS = ("poisson", "mmpp", "trace")
#: Per-query SLO as a multiple of the low-load p99: comfortably met by a
#: lightly loaded cluster, hopeless once the queue outgrows it.
SLO_P99_MULTIPLIER = 1.5
CALIBRATION_BATCH_SIZES = smoke_scaled((1, 2, 4, 8, 16), (1, 2, 4, 8))
REQUESTS_PER_TABLE = smoke_scaled(64, 16)


def build_traces():
    return make_production_table_traces(
        num_lookups_per_table=QUERY_BATCH * QUERY_POOLING
        * REQUESTS_PER_TABLE,
        num_rows=NUM_ROWS, num_tables=NUM_TABLES, seed=0)


def make_arrivals(kind, qps, num_queries):
    """Arrival process of one sweep point (deterministic per kind)."""
    if kind == "poisson":
        return PoissonArrivalProcess(rate_qps=qps, seed=7)
    if kind == "mmpp":
        return MMPPArrivalProcess.from_mean(qps, seed=7)
    # Trace replay: gaps recorded once from a reference MMPP sample and
    # rate-scaled per point -- the same burst shape at every load.
    return TraceReplayArrivalProcess.from_mmpp(qps, num_queries, seed=11)


def compute_slo_sweep():
    traces = build_traces()
    cluster = ShardedServingCluster(
        num_nodes=NUM_NODES, node_system=SYSTEM,
        num_frontends=NUM_FRONTENDS, address_of=address_of,
        vector_size_bytes=VECTOR_BYTES)
    frontend = BatchingFrontend(max_queries=MAX_BATCH,
                                max_delay_us=MAX_DELAY_US)
    model = InterpolatingServiceModel(
        traces, batch_sizes=CALIBRATION_BATCH_SIZES)

    def build_queries(kind, qps):
        return queries_from_traces(
            traces, NUM_QUERIES, make_arrivals(kind, qps, NUM_QUERIES),
            batch_size=QUERY_BATCH, pooling_factor=QUERY_POOLING)

    # ---- calibrate sustainable QPS and the SLO at low load ----------- #
    probe = cluster.simulate(build_queries("poisson", 50_000.0),
                             frontend=frontend, engine="event",
                             service_model=model)
    sustainable_qps = probe.sustainable_qps
    low_load = cluster.simulate(
        build_queries("poisson", 0.2 * sustainable_qps),
        frontend=frontend, engine="event", service_model=model)
    slo_us = SLO_P99_MULTIPLIER * low_load.p99_us

    # ---- offered-load sweep per arrival process and controller ------- #
    sweep = []
    for kind in ARRIVALS:
        for multiplier in LOAD_MULTIPLIERS:
            qps = multiplier * sustainable_qps
            queries = build_queries(kind, qps)
            for controller in CONTROLLERS:
                report = cluster.simulate(
                    queries, frontend=frontend, engine="event",
                    service_model=model, slo_policy=slo_us,
                    admission=controller)
                slo = report.extras["slo"]
                sweep.append({
                    "arrival": kind,
                    "multiplier": multiplier,
                    "offered_qps": round(report.offered_qps, 1),
                    "controller": controller,
                    "rho": round(report.utilization, 4),
                    "shed_rate": round(slo["shed_rate"], 4),
                    "num_shed": slo["num_shed"],
                    "attainment": None if slo["attainment"] is None
                    else round(slo["attainment"], 4),
                    "goodput_qps": round(slo["goodput_qps"], 1),
                    "p50_us": round(report.p50_us, 2),
                    "p95_us": round(report.p95_us, 2),
                    "p99_us": round(report.p99_us, 2),
                })
    return {"workload": "fig16-serving-overload",
            "system": cluster.describe(),
            "num_frontends": NUM_FRONTENDS,
            "num_queries": NUM_QUERIES,
            "sustainable_qps": round(sustainable_qps, 1),
            "slo_us": round(slo_us, 2),
            "arrivals": list(ARRIVALS),
            "controllers": list(CONTROLLERS),
            "sweep": sweep}


def _points(sweep, **filters):
    return [point for point in sweep
            if all(point[key] == value for key, value in filters.items())]


def bench_slo_admission(benchmark):
    payload = benchmark.pedantic(compute_slo_sweep, rounds=1, iterations=1)
    sweep = payload["sweep"]
    print()
    for kind in payload["arrivals"]:
        rows = [(point["multiplier"], point["controller"],
                 round(point["rho"], 3),
                 "%.1f%%" % (100 * point["shed_rate"]),
                 "-" if point["attainment"] is None
                 else "%.1f%%" % (100 * point["attainment"]),
                 round(point["goodput_qps"]), point["p99_us"])
                for point in _points(sweep, arrival=kind)]
        print(format_table(
            "SLO/admission sweep -- %s arrivals (%s, SLO %.0f us, "
            "sustainable %.0f QPS)"
            % (kind, payload["system"], payload["slo_us"],
               payload["sustainable_qps"]),
            ["load", "controller", "rho", "shed", "attainment",
             "goodput QPS", "p99 (us)"], rows))
        print()

    # Every recorded field must be finite (run_all.py enforces the same
    # on the captured JSON payload).
    for point in sweep:
        for field in ("rho", "shed_rate", "goodput_qps", "p50_us",
                      "p95_us", "p99_us"):
            assert np.isfinite(point[field]), (point, field)
        assert point["attainment"] is None \
            or np.isfinite(point["attainment"])

    # At low load (rho <= 0.3) admission is free: nothing sheds and all
    # controllers report byte-identical percentiles.
    for kind in payload["arrivals"]:
        low = _points(sweep, arrival=kind,
                      multiplier=LOAD_MULTIPLIERS[0])
        assert len(low) == len(CONTROLLERS)
        baseline = low[0]
        assert baseline["rho"] <= 0.35, baseline
        for point in low:
            assert point["shed_rate"] == 0.0, point
            for field in ("p50_us", "p95_us", "p99_us", "goodput_qps"):
                assert point[field] == baseline[field], (point, field)

    # At overload on bursty traffic, deadline-aware shedding strictly
    # beats the open-loop baseline on goodput.
    for kind in ("mmpp", "trace"):
        for multiplier in [m for m in LOAD_MULTIPLIERS
                           if m >= OVERLOAD_THRESHOLD]:
            none, = _points(sweep, arrival=kind, multiplier=multiplier,
                            controller="none")
            deadline, = _points(sweep, arrival=kind,
                                multiplier=multiplier,
                                controller="deadline")
            assert deadline["goodput_qps"] > none["goodput_qps"], \
                (kind, multiplier, none, deadline)
            assert deadline["num_shed"] > 0, (kind, multiplier, deadline)

    # One-line summaries run_all.py surfaces per serving benchmark.
    for kind in payload["arrivals"]:
        overload = _points(sweep, arrival=kind, multiplier=2.0)
        by_controller = {point["controller"]: point for point in overload}
        print("SLO_SUMMARY: %s@2.0x: goodput %s QPS; attainment %s"
              % (kind,
                 " / ".join("%s %d" % (c, by_controller[c]["goodput_qps"])
                            for c in CONTROLLERS),
                 " / ".join(
                     "%s %.0f%%" % (c,
                                    100 * by_controller[c]["attainment"])
                     for c in CONTROLLERS)))
    # Machine-readable record, captured into BENCH_results.json.
    print("SLO_ADMISSION_JSON: %s" % json.dumps(payload))
