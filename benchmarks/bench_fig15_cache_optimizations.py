"""Figure 15: RankCache and the HW/SW co-optimisation ladder.

(a) Normalised latency of the 8-rank system when adding, in order: the
    RankCache, table-aware packet scheduling, and hot-entry profiling
    (RecNMP-base -> RecNMP-cache -> +schedule -> +profile), on the
    production traces.
(b) RankCache capacity sweep (8 KB - 1 MB): latency and hit rate, showing
    the 128 KB sweet spot the paper reports.
"""

from workloads import format_table, production_requests, run_recnmp

CACHE_SIZES_KB = (8, 32, 128, 512, 1024)


def compute_fig15():
    requests = production_requests(num_tables=8, batch=8, pooling=40, seed=0)
    ladder = []
    baseline_cycles = None
    steps = (
        ("RecNMP-base", dict(use_rank_cache=False, enable_profiling=False,
                             scheduling_policy="fcfs")),
        ("RecNMP-cache", dict(use_rank_cache=True, enable_profiling=False,
                              scheduling_policy="fcfs")),
        ("+ schedule", dict(use_rank_cache=True, enable_profiling=False,
                            scheduling_policy="table-aware")),
        ("+ profile (RecNMP-opt)", dict(use_rank_cache=True,
                                        enable_profiling=True,
                                        scheduling_policy="table-aware")),
    )
    for name, overrides in steps:
        result = run_recnmp(requests, num_dimms=4, ranks_per_dimm=2,
                            compare_baseline=baseline_cycles is None,
                            **overrides)
        if baseline_cycles is None:
            baseline_cycles = result.baseline_cycles
        ladder.append((name, result.total_cycles,
                       round(result.total_cycles / baseline_cycles, 3),
                       round(baseline_cycles / result.total_cycles, 2),
                       round(result.cache_hit_rate, 3)))
    sweep = []
    for cache_kb in CACHE_SIZES_KB:
        result = run_recnmp(requests, num_dimms=4, ranks_per_dimm=2,
                            use_rank_cache=True, enable_profiling=True,
                            rank_cache_kb=cache_kb, compare_baseline=False)
        sweep.append((cache_kb,
                      round(result.total_cycles / baseline_cycles, 3),
                      round(result.cache_hit_rate, 3)))
    return ladder, sweep, baseline_cycles


def bench_fig15_cache_optimizations(benchmark):
    ladder, sweep, baseline_cycles = benchmark.pedantic(compute_fig15,
                                                        rounds=1,
                                                        iterations=1)
    print()
    print("DRAM baseline: %d cycles" % baseline_cycles)
    print(format_table(
        "Fig. 15(a) -- optimisation ladder (8-rank, production traces)",
        ["configuration", "cycles", "normalised latency", "speedup",
         "hit rate"], ladder))
    print()
    print(format_table(
        "Fig. 15(b) -- RankCache capacity sweep (RecNMP-opt)",
        ["cache (KB)", "normalised latency", "hit rate"], sweep))
    by_name = {row[0]: row for row in ladder}
    # Each optimisation step must not regress latency...
    assert by_name["RecNMP-cache"][1] <= by_name["RecNMP-base"][1] * 1.02
    assert by_name["+ schedule"][1] <= by_name["RecNMP-cache"][1] * 1.02
    assert by_name["+ profile (RecNMP-opt)"][1] <= \
        by_name["+ schedule"][1] * 1.02
    # ...and the fully optimised design clearly beats the cache-less base.
    assert by_name["+ profile (RecNMP-opt)"][3] > by_name["RecNMP-base"][3]
    # Hit rate grows with cache capacity and saturates (compulsory limit).
    hit_rates = [row[2] for row in sweep]
    assert hit_rates == sorted(hit_rates)
    assert hit_rates[-1] - hit_rates[-2] < 0.1
    # Latency at the 128 KB sweet spot is close to the best of the sweep.
    best = min(row[1] for row in sweep)
    sweet_spot = [row[1] for row in sweep if row[0] == 128][0]
    assert sweet_spot <= best * 1.1
