"""Table II: RecNMP processing-unit area and power overhead.

Regenerates Table II from the area/power model: RecNMP-base (no RankCache),
RecNMP-opt (with the 128 KB-per-rank RankCache) and the published Chameleon
numbers, plus the relative overheads quoted in the text (a few percent of
Chameleon, and a negligible fraction of a DIMM's power budget).
"""

from repro.core.area_power import AreaPowerModel

from workloads import format_table

PAPER_VALUES = {
    "RecNMP-base": (0.34, 151.3),
    "RecNMP-opt": (0.54, 184.2),
    "Chameleon": (8.34, 3195.2),
}


def compute_table2():
    table = AreaPowerModel.comparison_table()
    rows = []
    for name, payload in table.items():
        paper_area, paper_power = PAPER_VALUES[name]
        rows.append((name, payload["area_mm2"], paper_area,
                     payload["power_mw"], paper_power))
    return rows


def bench_table2_area_power(benchmark):
    rows = benchmark.pedantic(compute_table2, rounds=1, iterations=1)
    print()
    print(format_table(
        "Table II -- RecNMP PU design overhead (40 nm, 250 MHz)",
        ["configuration", "area (mm^2)", "paper area", "power (mW)",
         "paper power"], rows))
    by_name = {r[0]: r for r in rows}
    for name in ("RecNMP-base", "RecNMP-opt"):
        area, paper_area = by_name[name][1], by_name[name][2]
        power, paper_power = by_name[name][3], by_name[name][4]
        assert abs(area - paper_area) < 0.02
        assert abs(power - paper_power) < 1.0
    assert by_name["Chameleon"][1] > 10 * by_name["RecNMP-opt"][1]
