"""Serving benchmark: tail latency and sustainable QPS across systems.

Drives the request-level serving subsystem (Poisson arrivals, size- and
deadline-triggered batching, table sharding across nodes, closed-form
queueing) over three registry systems and reports p50/p95/p99 latency and
the maximum sustainable QPS of each.  Claims checked: RecNMP serves at
lower tail latency and higher sustainable throughput than the host at the
same offered load, and the multi-channel configuration extends both
further.
"""

import json

from repro.serving import (
    BatchingFrontend,
    FixedSLOPolicy,
    PoissonArrivalProcess,
    ShardedServingCluster,
    queries_from_traces,
)
from repro.traces import make_production_table_traces

from workloads import (
    NUM_ROWS,
    VECTOR_BYTES,
    address_of,
    format_table,
    smoke_scaled,
)

SYSTEMS = ("host", "recnmp-opt", "recnmp-opt-4ch")
NUM_QUERIES = smoke_scaled(64, 16)
OFFERED_QPS = 120_000.0
NUM_NODES = 2
NUM_TABLES = smoke_scaled(8, 4)
QUERY_BATCH = 4
QUERY_POOLING = smoke_scaled(20, 8)
#: Fixed per-query SLO for the attainment accounting.  Deadline
#: accounting is *passive* -- with admission left off, percentiles are
#: bit-identical to the pre-SLO benchmark -- so this only adds the
#: attainment column every system is summarised with.
SLO_US = 1_000.0


def compute_serving():
    traces = make_production_table_traces(
        num_lookups_per_table=QUERY_BATCH * QUERY_POOLING * 8,
        num_rows=NUM_ROWS, num_tables=NUM_TABLES, seed=0)
    queries = queries_from_traces(
        traces, NUM_QUERIES,
        PoissonArrivalProcess(rate_qps=OFFERED_QPS, seed=1),
        batch_size=QUERY_BATCH, pooling_factor=QUERY_POOLING)
    frontend = BatchingFrontend(max_queries=8, max_delay_us=100.0)
    reports, service_stats = {}, {}
    for name in SYSTEMS:
        with ShardedServingCluster(
                num_nodes=NUM_NODES, node_system=name,
                address_of=address_of,
                vector_size_bytes=VECTOR_BYTES) as cluster:
            reports[name] = cluster.simulate(
                queries, frontend=frontend,
                slo_policy=FixedSLOPolicy(SLO_US))
            service_stats[name] = cluster.service_stats()
    return reports, service_stats


def bench_serving_latency(benchmark):
    reports, service_stats = benchmark.pedantic(compute_serving, rounds=1,
                                                iterations=1)
    rows = [(name, round(r.utilization, 3), round(r.p50_us, 1),
             round(r.p95_us, 1), round(r.p99_us, 1),
             round(r.sustainable_qps))
            for name, r in reports.items()]
    print()
    print(format_table(
        "Serving: %d-node clusters at %.0f QPS offered (Poisson)"
        % (NUM_NODES, OFFERED_QPS),
        ["system", "rho", "p50 (us)", "p95 (us)", "p99 (us)",
         "sustainable QPS"], rows))
    host = reports["host"]
    opt = reports["recnmp-opt"]
    multi = reports["recnmp-opt-4ch"]
    for report in reports.values():
        # Percentiles are ordered and the queue is stable at this load.
        assert report.p50_us <= report.p95_us <= report.p99_us
        assert report.stable
        assert report.num_queries == NUM_QUERIES
    # RecNMP sustains more traffic than the host; multi-channel extends it.
    assert opt.sustainable_qps > host.sustainable_qps
    assert multi.sustainable_qps > opt.sustainable_qps
    # And serves the same offered load at lower tail latency.
    assert opt.p99_us < host.p99_us
    assert multi.p99_us <= opt.p99_us
    # Deadline accounting rides along passively: every report carries an
    # attainment figure, nothing was shed, and the faster system can
    # only improve attainment at the same offered load.
    for report in reports.values():
        slo = report.extras["slo"]
        assert slo["num_shed"] == 0
        assert 0.0 <= slo["attainment"] <= 1.0
    assert reports["recnmp-opt"].extras["slo"]["attainment"] >= \
        reports["host"].extras["slo"]["attainment"]
    print("SLO_SUMMARY: fixed %.0f us SLO at %.0f QPS: attainment %s"
          % (SLO_US, OFFERED_QPS,
             " / ".join("%s %.1f%%"
                        % (name, 100 * r.extras["slo"]["attainment"])
                        for name, r in reports.items())))
    # Per-cluster service-time cache effectiveness, surfaced by
    # run_all.py next to the baseline-cache line.
    print("SERVICE_STATS_JSON: %s" % json.dumps(service_stats))
