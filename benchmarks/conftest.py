"""Shared pytest hooks for the benchmark suites.

Each ``bench_*.py`` file runs as its own pytest session (see
``run_all.py``), so per-session hooks give per-benchmark accounting:

* the memoised DDR4 baseline cache is cleared at session start, making
  every benchmark's cache numbers attributable to that benchmark alone
  (process isolation already guarantees this when driven by
  ``run_all.py``; the explicit clear keeps the guarantee when a suite is
  run in an already-warm interpreter), and
* a machine-readable ``BASELINE_CACHE_JSON:`` record with the session's
  entries/hits/misses is printed at session finish, which ``run_all.py``
  surfaces after each benchmark and archives in ``BENCH_results.json``.
"""

import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.perf.baseline_cache import (            # noqa: E402
    baseline_cache_stats,
    clear_baseline_cache,
)


def _is_bench_session(session):
    """True only for benchmark sessions (run_all.py passes the bench
    collection overrides).  Plain repo-root pytest runs also import this
    conftest while walking the tree; they must not have their baseline
    cache flushed or their output decorated."""
    patterns = session.config.getini("python_files")
    return any("bench" in pattern for pattern in patterns)


def pytest_sessionstart(session):
    if _is_bench_session(session):
        clear_baseline_cache()


def pytest_sessionfinish(session, exitstatus):
    if not _is_bench_session(session):
        return
    stats = baseline_cache_stats()
    # -s is always passed by run_all.py, so this reaches the captured
    # output; print a trailing newline first in case a benchmark table
    # did not end its line.
    print()
    print("BASELINE_CACHE_JSON: %s" % json.dumps(stats))
