"""Figure 1(b) / Figure 5: roofline analysis and the RecNMP roofline lift.

Places the SLS and FC operators and the full RM1-large / RM2-large models on
the Skylake roofline while sweeping batch size, and reports the effect of
lifting the memory roof by the 8x internal bandwidth RecNMP exposes.  The
paper's observations: SLS operational intensity is flat and deep in the
memory-bound region, FC moves toward the compute-bound region with batch
size, the full models are bandwidth-bound within ~35% of the roof, and the
8x lift raises the attainable SLS performance by 8x.
"""

from repro.dlrm.config import RM1_LARGE, RM2_LARGE
from repro.perf.operator_latency import OperatorLatencyModel
from repro.perf.roofline import RooflineModel

from workloads import format_table

BATCH_SIZES = (1, 8, 64, 256)
RECNMP_BANDWIDTH_LIFT = 8.0


def compute_roofline_points():
    roofline = RooflineModel()
    latency = OperatorLatencyModel()
    rows = []
    for config in (RM1_LARGE, RM2_LARGE):
        for batch in BATCH_SIZES:
            inputs = latency.operator_roofline_inputs(config, batch)
            breakdown = latency.breakdown(config, batch)
            times = {
                "SLS": breakdown.sls_us * 1e-6,
                "FC": breakdown.fc_us * 1e-6,
                "model": breakdown.total_us * 1e-6,
            }
            for operator, (flops, moved) in inputs.items():
                point = roofline.operator_point(
                    "%s %s" % (config.name, operator), flops, moved,
                    times[operator], batch_size=batch)
                rows.append((config.name, operator, batch,
                             round(point.operational_intensity, 3),
                             round(point.performance_flops / 1e9, 2),
                             round(roofline.efficiency(point), 3),
                             roofline.is_memory_bound(
                                 point.operational_intensity),
                             round(roofline.speedup_from_lift(
                                 point.operational_intensity,
                                 RECNMP_BANDWIDTH_LIFT), 2)))
    return rows


def bench_fig05_roofline(benchmark):
    rows = benchmark.pedantic(compute_roofline_points, rounds=1, iterations=1)
    print()
    print(format_table(
        "Fig. 5 -- roofline points (and Fig. 1(b) lift)",
        ["model", "op", "batch", "OI (FLOP/B)", "GFLOP/s", "roof frac",
         "mem-bound", "8x-lift speedup"], rows))
    sls_rows = [r for r in rows if r[1] == "SLS"]
    model_rows = [r for r in rows if r[1] == "model"]
    fc_rows = [r for r in rows if r[1] == "FC"]
    # SLS and the full models are memory bound at every batch size.
    assert all(r[6] for r in sls_rows)
    assert all(r[6] for r in model_rows)
    # FC operational intensity grows with batch (moves right on the roofline).
    fc_by_model = {}
    for r in fc_rows:
        fc_by_model.setdefault(r[0], []).append(r[3])
    for intensities in fc_by_model.values():
        assert intensities[-1] > intensities[0]
    # The 8x bandwidth lift translates to ~8x higher bound for SLS.
    assert all(abs(r[7] - 8.0) < 1e-6 for r in sls_rows)
