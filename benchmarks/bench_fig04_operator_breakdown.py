"""Figure 4: inference latency and per-operator breakdown.

Regenerates the Fig. 4 stacks: for RM1-small/large and RM2-small/large at
batch sizes 8-256, the total latency of one inference batch and the fraction
of time spent in the SLS-family operators, FC operators, and everything
else.  The paper's headline observations: SLS dominates (37-74% at batch 8),
its share grows with batch size, and RM2-large is several times slower than
RM1-large.
"""

from repro.dlrm.config import RM1_LARGE, RM1_SMALL, RM2_LARGE, RM2_SMALL
from repro.perf.operator_latency import OperatorLatencyModel

from workloads import format_table

MODELS = (RM1_SMALL, RM1_LARGE, RM2_SMALL, RM2_LARGE)
BATCH_SIZES = (8, 64, 128, 256)

#: SLS share of execution time reported by the paper at batch 8 / 256.
PAPER_SLS_FRACTION_BATCH8 = {
    "RM1-small": 0.372, "RM1-large": 0.506,
    "RM2-small": 0.735, "RM2-large": 0.689,
}


def compute_breakdowns():
    model = OperatorLatencyModel()
    rows = []
    for config in MODELS:
        for batch in BATCH_SIZES:
            breakdown = model.breakdown(config, batch)
            rows.append((config.name, batch,
                         round(breakdown.total_us / 1e3, 3),
                         round(breakdown.sls_fraction, 3),
                         round(breakdown.fc_fraction, 3),
                         round(1 - breakdown.sls_fraction
                               - breakdown.fc_fraction, 3)))
    return rows


def bench_fig04_operator_breakdown(benchmark):
    rows = benchmark.pedantic(compute_breakdowns, rounds=1, iterations=1)
    print()
    print(format_table(
        "Fig. 4 -- operator latency breakdown",
        ["model", "batch", "latency (ms)", "SLS frac", "FC frac", "other"],
        rows))
    by_key = {(r[0], r[1]): r for r in rows}
    # SLS share grows with batch size for every model.
    for config in MODELS:
        assert by_key[(config.name, 256)][3] > by_key[(config.name, 8)][3]
    # RM2 models are dominated by SLS already at batch 8.
    assert by_key[("RM2-small", 8)][3] > 0.5
    assert by_key[("RM2-large", 8)][3] > 0.5
    # RM2-large is several times slower than RM1-large (paper: 3.6x).
    assert by_key[("RM2-large", 64)][2] > 2.5 * by_key[("RM1-large", 64)][2]
