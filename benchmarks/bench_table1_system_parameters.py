"""Table I: system parameters and configurations.

Regenerates the content of Table I from the simulator's configuration
objects so that any drift between the code defaults and the paper's
parameters is caught.
"""

from repro.core.energy import NMPEnergyParameters
from repro.dram.system import DramSystemConfig
from repro.dram.timing import DDR4_2400
from repro.perf.system import SKYLAKE_SYSTEM

from workloads import format_table


def compute_table1():
    dram = DramSystemConfig()
    energy = NMPEnergyParameters()
    rows = [
        ("Processor cores", SKYLAKE_SYSTEM.num_cores, "18"),
        ("Core frequency (GHz)", SKYLAKE_SYSTEM.frequency_ghz, "1.6"),
        ("LLC (MB)", SKYLAKE_SYSTEM.llc_mb, "24.75"),
        ("Memory channels", dram.num_channels, "4"),
        ("Ranks per DIMM", dram.ranks_per_dimm, "2"),
        ("Read queue entries", dram.queue_depth, "32"),
        ("Peak bandwidth (GB/s)", round(dram.peak_bandwidth_gbps, 1), "76.8"),
        ("tRC", DDR4_2400.tRC, "55"),
        ("tRCD", DDR4_2400.tRCD, "16"),
        ("tCL", DDR4_2400.tCL, "16"),
        ("tRP", DDR4_2400.tRP, "16"),
        ("tBL", DDR4_2400.tBL, "4"),
        ("tCCD_S", DDR4_2400.tCCD_S, "4"),
        ("tCCD_L", DDR4_2400.tCCD_L, "6"),
        ("tRRD_S", DDR4_2400.tRRD_S, "4"),
        ("tRRD_L", DDR4_2400.tRRD_L, "6"),
        ("tFAW", DDR4_2400.tFAW, "26"),
        ("DDR activate energy (nJ)", energy.dram.activate_nj, "2.1"),
        ("DDR RD/WR energy (pJ/b)", energy.dram.read_write_pj_per_bit, "14"),
        ("Off-chip IO energy (pJ/b)", energy.dram.offchip_io_pj_per_bit,
         "22"),
        ("RankCache access (pJ)", energy.rankcache_access_pj, "50"),
        ("FP32 adder energy (pJ/op)", energy.fp32_add_pj, "7.89"),
        ("FP32 multiplier energy (pJ/op)", energy.fp32_mult_pj, "25.2"),
    ]
    return rows


def bench_table1_system_parameters(benchmark):
    rows = benchmark.pedantic(compute_table1, rounds=1, iterations=1)
    print()
    print(format_table("Table I -- system parameters",
                       ["parameter", "implemented", "paper"], rows))
    for name, implemented, paper in rows:
        assert float(implemented) == float(paper), name
