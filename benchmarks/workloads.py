"""Shared workload builders for the benchmark harness.

Every ``bench_fig*.py`` / ``bench_table*.py`` file regenerates one table or
figure of the paper.  The workloads here are scaled-down versions of the
paper's (smaller tables, shorter traces) so a full benchmark run finishes in
minutes on a laptop, while preserving the access statistics that drive the
results (lookup locality, vector sizes, pooling factors, rank counts).
"""

import os

import numpy as np

from repro.dlrm.operators import SLSRequest
from repro.systems import build_system
from repro.traces.production import make_production_table_traces
from repro.traces.synthetic import batched_requests_from_trace, random_trace

# Scaled-down workload constants (documented in EXPERIMENTS.md).
NUM_ROWS = 20_000
VECTOR_BYTES = 128
BATCH_SIZE = 8
POOLING = 40

#: Smoke mode (``run_all.py --smoke`` / CI): benchmarks that opt in via
#: :func:`smoke_scaled` shrink their workloads to wiring-check size.
SMOKE_MODE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")


def smoke_scaled(value, smoke_value):
    """``value`` normally, ``smoke_value`` under ``REPRO_BENCH_SMOKE``.

    Smoke mode exists so CI can execute every benchmark end to end (the
    wiring, not the numbers) in seconds; benchmarks whose assertions only
    hold at full scale should gate those assertions on
    :data:`SMOKE_MODE`.
    """
    return smoke_value if SMOKE_MODE else value


def address_of(table_id, row):
    """Contiguous row-major placement of the scaled-down embedding tables."""
    return table_id * NUM_ROWS * VECTOR_BYTES + row * VECTOR_BYTES


def random_requests(num_tables=4, batch=BATCH_SIZE, pooling=POOLING, seed=0):
    """One SLS request per table with uniformly random indices."""
    rng = np.random.default_rng(seed)
    requests = []
    for table in range(num_tables):
        indices = rng.integers(0, NUM_ROWS, size=batch * pooling)
        requests.append(SLSRequest(table_id=table, indices=indices,
                                   lengths=np.full(batch, pooling)))
    return requests


def production_requests(num_tables=4, batch=BATCH_SIZE, pooling=POOLING,
                        seed=0):
    """One SLS request per table drawn from the synthetic production traces."""
    traces = make_production_table_traces(
        num_lookups_per_table=batch * pooling, num_rows=NUM_ROWS,
        num_tables=num_tables, seed=seed)
    requests = []
    for trace in traces:
        requests.extend(
            batched_requests_from_trace(trace, batch, pooling)[:1])
    return requests


def build_bench_system(name, **overrides):
    """Build a registry system wired to the shared benchmark workload layout.

    The comparison glue every ``bench_*`` file used to re-implement lives in
    :mod:`repro.systems` now; this helper only pins the scaled-down
    embedding layout (``address_of``, vector size) shared by the harness.
    """
    overrides.setdefault("address_of", address_of)
    overrides.setdefault("vector_size_bytes", VECTOR_BYTES)
    return build_system(name, **overrides)


def run_system(name, requests, **overrides):
    """Build a registry system and run one request list through it."""
    return build_bench_system(name, **overrides).run(requests)


def run_recnmp(requests, num_dimms=4, ranks_per_dimm=2, use_rank_cache=True,
               scheduling_policy="table-aware", enable_profiling=True,
               poolings_per_packet=8, rank_assignment="address",
               rank_cache_kb=128, compare_baseline=True):
    """Run one RecNMP configuration over a request list.

    Kept as the legacy-shaped entry point of the harness; routes through
    the system registry and returns the underlying ``RecNMPResult``.
    """
    result = run_system(
        "recnmp-opt", requests,
        num_dimms=num_dimms,
        ranks_per_dimm=ranks_per_dimm,
        use_rank_cache=use_rank_cache,
        rank_cache_kb=rank_cache_kb,
        scheduling_policy=scheduling_policy,
        enable_hot_entry_profiling=enable_profiling,
        poolings_per_packet=poolings_per_packet,
        rank_assignment=rank_assignment,
        compare_baseline=compare_baseline,
    )
    return result.raw


def format_table(title, headers, rows):
    """Render a small ASCII table for the benchmark logs."""
    widths = [max(len(str(header)),
                  max((len(str(row[i])) for row in rows), default=0))
              for i, header in enumerate(headers)]
    lines = [title,
             " | ".join(str(h).ljust(w) for h, w in zip(headers, widths)),
             "-+-".join("-" * w for w in widths)]
    for row in rows:
        lines.append(" | ".join(str(c).ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
