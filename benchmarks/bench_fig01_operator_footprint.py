"""Figure 1(a): compute vs memory footprint of DL operators across batch size.

Reproduces the scatter of Fig. 1(a): for each operator (FC, SLS, and the
full recommendation models) we report FLOPs and bytes moved while sweeping
the batch size 1-256.  SLS has a large, linearly-growing memory footprint
with negligible compute; FC has the opposite profile.
"""

from repro.dlrm.config import RM1_LARGE, RM2_LARGE
from repro.perf.operator_latency import OperatorLatencyModel

from workloads import format_table

BATCH_SIZES = (1, 8, 64, 256)


def compute_footprints():
    """Return rows of (model, operator, batch, GFLOPs, MB moved)."""
    model = OperatorLatencyModel()
    rows = []
    for config in (RM1_LARGE, RM2_LARGE):
        for batch in BATCH_SIZES:
            inputs = model.operator_roofline_inputs(config, batch)
            for operator in ("FC", "SLS"):
                flops, moved = inputs[operator]
                rows.append((config.name, operator, batch,
                             round(flops / 1e9, 4),
                             round(moved / 1e6, 3)))
    return rows


def bench_fig01_operator_footprint(benchmark):
    rows = benchmark.pedantic(compute_footprints, rounds=1, iterations=1)
    print()
    print(format_table(
        "Fig. 1(a) -- operator compute and memory footprint",
        ["model", "operator", "batch", "GFLOPs", "MB moved"], rows))
    # Qualitative checks of the paper's point: SLS moves orders of magnitude
    # more bytes per FLOP than FC, and its footprint grows with batch size.
    sls_rows = [r for r in rows if r[1] == "SLS"]
    fc_rows = [r for r in rows if r[1] == "FC"]
    assert all(r[4] > 0 for r in sls_rows)
    sls_intensity = sls_rows[-1][3] * 1e3 / sls_rows[-1][4]   # FLOP/KB
    fc_intensity = fc_rows[-1][3] * 1e3 / fc_rows[-1][4]
    assert fc_intensity > 10 * sls_intensity
