"""Run every ``bench_*.py`` and collect results into ``BENCH_results.json``.

Each benchmark file is executed as its own pytest session (they are
pytest-benchmark suites), so one failing figure never blocks the others.
The driver records pass/fail, duration and captured output per file and
writes a single JSON summary for trajectory tracking across PRs.  The
memoised DDR4 baseline cache is cleared between benchmarks and each
benchmark's cache effectiveness (entries/hits/misses, printed by
``conftest.py`` at session end) is surfaced after its run and archived
in the summary, as is every serving benchmark's one-line SLO summary
(``SLO_SUMMARY:`` lines -- goodput/attainment per admission controller).

Usage::

    python benchmarks/run_all.py [--output BENCH_results.json] [--match fig16]
                                 [--smoke]

``--smoke`` exports ``REPRO_BENCH_SMOKE=1`` to every benchmark: files that
opt in (via ``workloads.smoke_scaled``) shrink to wiring-check size, which
is how CI executes the whole suite on every push.
"""

import argparse
import json
import os
import re
import subprocess
import sys
import time
from pathlib import Path

BENCH_DIR = Path(__file__).resolve().parent
REPO_ROOT = BENCH_DIR.parent


def clear_parent_baseline_cache():
    """Clear the driver-process baseline cache between benchmarks.

    Benchmarks run as subprocesses (fresh caches by construction) and
    ``conftest.py`` clears again at session start, so this guards the
    attribution guarantee only if the driver ever executes a benchmark
    in-process.  The import is lazy and failure-tolerant so the driver
    itself stays dependency-free: a broken library module must fail the
    affected benchmark's record, never the whole run.
    """
    try:
        sys.path.insert(0, str(REPO_ROOT / "src"))
        from repro.perf.baseline_cache import clear_baseline_cache
    except Exception:  # repro-lint: allow-broad-except-audit (failure-tolerant lazy import: a broken library module must fail one benchmark record, never the driver)
        return
    finally:
        sys.path.pop(0)
    clear_baseline_cache()


#: Machine-readable report lines printed by benchmarks (e.g.
#: ``QUEUE_VALIDATION_JSON: {...}`` / ``SHARDING_JSON: {...}``).
JSON_RECORD = re.compile(r"^([A-Z][A-Z0-9_]*_JSON): (.*)$", re.MULTILINE)

#: Per-benchmark baseline-cache accounting printed by ``conftest.py``.
BASELINE_CACHE_RECORD = re.compile(r"^BASELINE_CACHE_JSON: (.*)$",
                                   re.MULTILINE)

#: One-line SLO summaries printed by the serving benchmarks (goodput /
#: attainment per admission controller); surfaced after each run and
#: archived in the summary record.
SLO_SUMMARY_RECORD = re.compile(r"^SLO_SUMMARY: (.*)$", re.MULTILINE)


def slo_summaries(output):
    """The benchmark's one-line SLO summaries, in print order."""
    return [match.group(1) for match in SLO_SUMMARY_RECORD.finditer(output)]


def format_service_stats(label, stats):
    """One ``service cache ...; store ...`` line from a
    :meth:`ShardedServingCluster.service_stats` record."""

    def tier(tier_stats):
        hits = tier_stats.get("hits", 0)
        misses = tier_stats.get("misses", 0)
        lookups = hits + misses
        rate = 100.0 * hits / lookups if lookups else 0.0
        return "%d entries, %d hits, %d misses (%.1f%% hit rate)" % (
            tier_stats.get("entries", 0), hits, misses, rate)

    line = "service cache [%s]: %s" % (label, tier(stats.get("cache", {})))
    store = stats.get("store")
    if store is not None:
        line += "; store: %s" % tier(store)
    return line


def baseline_cache_record(output):
    """The benchmark session's baseline-cache stats, or None."""
    match = BASELINE_CACHE_RECORD.search(output)
    if not match:
        return None
    try:
        return json.loads(match.group(1))
    except ValueError:
        return None


def json_records(output):
    """Every machine-readable ``*_JSON`` report in the captured output.

    Parsed from the *full* output, not the bounded ``output_tail`` --
    large reports (the SLO/admission sweep exceeds the tail bound) stay
    archived in ``BENCH_results.json`` intact.
    """
    records = {}
    for match in JSON_RECORD.finditer(output):
        try:
            records[match.group(1)] = json.loads(match.group(2))
        except ValueError:
            continue          # truncated/invalid line: not a report
    return records


def non_finite_records(output):
    """Names of JSON report lines carrying non-finite fields.

    A NaN or Infinity in a report means a degenerate-input bug upstream
    (a rate estimator exploding on a zero span, an unstable queue leaking
    into a summary): the smoke run must fail on it, not archive it.
    ``json.dumps`` happily emits those constants, so scan every captured
    record with a ``parse_constant`` hook -- the whole document, nested
    fields included, which is how the goodput/attainment/shed records of
    ``SLO_ADMISSION_JSON`` are covered alongside the older reports.
    """
    bad = []
    for match in JSON_RECORD.finditer(output):
        constants = []
        try:
            json.loads(match.group(2),
                       parse_constant=lambda name: constants.append(name))
        except ValueError:
            continue          # truncated/invalid line: not a report
        if constants:
            bad.append("%s: %s" % (match.group(1),
                                   ", ".join(sorted(set(constants)))))
    return bad


def discover(match=None):
    names = sorted(p.name for p in BENCH_DIR.glob("bench_*.py"))
    if match:
        names = [n for n in names if match in n]
    return names


def run_one(name, timeout_seconds, smoke=False):
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + (os.pathsep + env["PYTHONPATH"]
                               if env.get("PYTHONPATH") else "")
    if smoke:
        env["REPRO_BENCH_SMOKE"] = "1"
    # -s: benchmark tables and machine-readable records (e.g.
    # QUEUE_VALIDATION_JSON) are printed from inside the tests; without
    # it pytest captures them and they never reach output_tail.
    command = [sys.executable, "-m", "pytest", str(BENCH_DIR / name),
               "-q", "-s", "-p", "no:cacheprovider",
               "-o", "python_files=bench_*.py",
               "-o", "python_functions=bench_*"]
    start = time.perf_counter()
    try:
        completed = subprocess.run(
            command, cwd=str(REPO_ROOT), env=env, timeout=timeout_seconds,
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True)
        status = "passed" if completed.returncode == 0 else "failed"
        output = completed.stdout
        returncode = completed.returncode
    except subprocess.TimeoutExpired as error:
        status = "timeout"
        output = (error.stdout or b"").decode("utf-8", "replace") \
            if isinstance(error.stdout, bytes) else (error.stdout or "")
        returncode = -1
    duration = time.perf_counter() - start
    non_finite = non_finite_records(output)
    if non_finite and status == "passed":
        status = "failed"
    record = {
        "benchmark": name,
        "status": status,
        "returncode": returncode,
        "duration_seconds": round(duration, 3),
        "output_tail": output[-8000:],
    }
    if non_finite:
        record["non_finite_fields"] = non_finite
    cache_stats = baseline_cache_record(output)
    if cache_stats is not None:
        record["baseline_cache"] = cache_stats
    summaries = slo_summaries(output)
    if summaries:
        record["slo_summaries"] = summaries
    reports = json_records(output)
    if reports:
        record["reports"] = reports
    return record


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--output", default=str(REPO_ROOT /
                                                "BENCH_results.json"))
    parser.add_argument("--match", default=None,
                        help="only run benchmarks whose filename contains "
                             "this substring")
    parser.add_argument("--timeout", type=float, default=900.0,
                        help="per-benchmark timeout in seconds")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny workloads: set REPRO_BENCH_SMOKE=1 for "
                             "every benchmark so the whole suite runs as a "
                             "wiring check (used by CI)")
    args = parser.parse_args(argv)

    names = discover(args.match)
    if not names:
        print("no benchmarks matched", file=sys.stderr)
        return 2
    results = []
    for name in names:
        clear_parent_baseline_cache()
        print("running %s ..." % name, flush=True)
        record = run_one(name, args.timeout, smoke=args.smoke)
        print("  %s in %.1fs" % (record["status"],
                                 record["duration_seconds"]), flush=True)
        cache_stats = record.get("baseline_cache")
        if cache_stats is not None:
            print("  baseline cache: %d entries, %d hits, %d misses"
                  % (cache_stats.get("entries", 0),
                     cache_stats.get("hits", 0),
                     cache_stats.get("misses", 0)), flush=True)
        for summary in record.get("slo_summaries", ()):
            print("  slo: %s" % summary, flush=True)
        # Serving benchmarks report their per-cluster service-time cache
        # and persistent-store effectiveness as SERVICE_STATS_JSON; the
        # line rides next to the baseline-cache one above.
        service_stats = record.get("reports", {}).get("SERVICE_STATS_JSON")
        if isinstance(service_stats, dict):
            for label in sorted(service_stats):
                print("  %s" % format_service_stats(
                    label, service_stats[label]), flush=True)
        results.append(record)

    summary = {
        "generated_unix_time": int(time.time()),
        "python": sys.version.split()[0],
        "smoke": bool(args.smoke),
        "num_benchmarks": len(results),
        "num_passed": sum(r["status"] == "passed" for r in results),
        "total_seconds": round(sum(r["duration_seconds"]
                                   for r in results), 3),
        "results": results,
    }
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(summary, handle, indent=2)
        handle.write("\n")
    print("wrote %s (%d/%d passed)"
          % (args.output, summary["num_passed"], summary["num_benchmarks"]))
    return 0 if summary["num_passed"] == summary["num_benchmarks"] else 1


if __name__ == "__main__":
    sys.exit(main())
