"""Figure 16: RecNMP vs TensorDIMM vs Chameleon vs the host baseline.

Regenerates the comparison across memory configurations (1x2, 1x4, 2x2,
4x2), on random and production traces.  All four systems are built by name
through the unified registry (:mod:`repro.systems`) -- RecNMP is simulated,
TensorDIMM and Chameleon use their analytical models grounded on the
simulated host cycle count.  Paper claims checked: RecNMP scales with rank
count while the others only scale with DIMM count, RecNMP wins at every
configuration, and only RecNMP benefits from the locality of production
traces.
"""

from workloads import (
    format_table,
    production_requests,
    random_requests,
    run_system,
)

CONFIGS = ((1, 2), (1, 4), (2, 2), (4, 2))


def compute_fig16():
    workloads = {
        "random": random_requests(num_tables=8, batch=8, pooling=40, seed=0),
        "production": production_requests(num_tables=8, batch=8, pooling=40,
                                          seed=0),
    }
    rows = []
    for num_dimms, ranks_per_dimm in CONFIGS:
        label = "%dx%d" % (num_dimms, ranks_per_dimm)
        population = dict(num_dimms=num_dimms, ranks_per_dimm=ranks_per_dimm)
        for trace_kind, requests in workloads.items():
            speedups = {
                name: run_system(name, requests,
                                 **population).speedup_vs_baseline
                for name in ("recnmp-opt", "tensordimm", "chameleon")
            }
            rows.append((label, trace_kind,
                         round(speedups["recnmp-opt"], 2),
                         round(speedups["tensordimm"], 2),
                         round(speedups["chameleon"], 2)))
    return rows


def bench_fig16_comparison(benchmark):
    rows = benchmark.pedantic(compute_fig16, rounds=1, iterations=1)
    print()
    print(format_table(
        "Fig. 16 -- memory latency speedup over the host baseline",
        ["config", "trace", "RecNMP-opt", "TensorDIMM", "Chameleon"], rows))
    by_key = {(r[0], r[1]): r for r in rows}
    # RecNMP wins over both prior designs at the full 4x2 configuration.
    assert by_key[("4x2", "production")][2] > \
        by_key[("4x2", "production")][3] > by_key[("4x2", "production")][4]
    # Rank-level scaling: RecNMP improves from 1x2 to 1x4, the DIMM-level
    # designs do not.
    assert by_key[("1x4", "production")][2] > \
        by_key[("1x2", "production")][2]
    assert by_key[("1x4", "production")][3] == \
        by_key[("1x2", "production")][3]
    # Only RecNMP extracts extra performance from production-trace locality.
    assert by_key[("4x2", "production")][2] > by_key[("4x2", "random")][2]
    assert by_key[("4x2", "production")][3] == by_key[("4x2", "random")][3]
    assert by_key[("4x2", "production")][4] == by_key[("4x2", "random")][4]
