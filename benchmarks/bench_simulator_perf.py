"""Perf regression harness for the exact cycle simulator.

The exact RecNMP cycle simulation is the foundation of every serving
number (event-engine percentiles, sustainable QPS, sharding sweeps), so
this benchmark guards both its *speed* and its *answers*:

* **Cycle-exactness** -- ``total_cycles``, cache hit rate, energy and the
  per-rank/per-channel statistics on the fig16 comparison workloads must
  be bit-identical to the pre-optimisation serial simulator (pinned in
  ``perf_reference.json``), and identical across the ``serial`` /
  ``thread`` / ``process`` execution backends.
* **Throughput** -- single-channel exact-sim instructions/sec and the
  4-channel wall-clock are measured per backend; at full scale the suite
  asserts the PR's speedup targets (>=3x single-channel vs the recorded
  pre-optimisation throughput, >=2.5x 4-channel wall-clock with the
  process backend).
* **Kernel flavour** -- the single-channel workload is re-timed with the
  compiled command-issue kernels disabled (the legacy object path);
  results must match bit-for-bit, and at full scale the active kernel
  must beat the legacy path (>=4x when the jitted ``numba`` flavour is
  active, a >=1.2x floor for the pure-python twin).
* **Transports** -- the 4-channel timing covers the pickling ``process``
  backend *and* the zero-copy ``shared-memory`` backend, recording their
  wall-clock ratio (``shm_vs_pickle``).
* **Node-level parallelism** -- one batch on an 8-node serving cluster
  is timed with the serial and shared-memory *node-level* backends;
  service times must be identical, and on hosts with >=8 cores the
  fan-out must reach the >=3x wall-clock target at full scale.
* **Sweep-level parallelism** -- an exact-mode ``qps_sweep`` is timed
  with the serial and process sweep backends (reports must be
  bit-identical), recording points/sec and the batch dedup ratio, then
  re-run cold and warm against a persistent service-time store: the warm
  pass must perform *zero* exact batch simulations (store misses == 0)
  in every mode, and on hosts with >=4 cores the process sweep must
  reach the >=3x wall-clock target at full scale.
* **Regression floor** -- in every mode (including ``run_all.py --smoke``
  / CI) the measured single-channel throughput and serial sweep
  points/sec must stay within 2x of the recorded post-optimisation
  values, so future PRs cannot silently re-slow the hot paths.

Results are printed as a ``SIM_PERF_JSON:`` record for
``BENCH_results.json``.  Set ``REPRO_PERF_WRITE_REFERENCE=1`` to refresh
the ``recorded`` throughput section after an intentional perf change
(the ``exact`` and ``pre_pr`` sections are never rewritten).
"""

import json
import os
import tempfile
import time
from pathlib import Path

from workloads import (
    NUM_ROWS,
    SMOKE_MODE,
    VECTOR_BYTES,
    build_bench_system,
    format_table,
    production_requests,
    random_requests,
    smoke_scaled,
)

from repro.core import kernels

REFERENCE_PATH = Path(__file__).resolve().parent / "perf_reference.json"
MODE = "smoke" if SMOKE_MODE else "full"
NUM_TABLES = 8
BATCH = smoke_scaled(8, 2)
POOLING = smoke_scaled(40, 8)
REPEATS = 3
BACKENDS = ("serial", "thread", "process", "shared-memory")
WRITE_REFERENCE = os.environ.get("REPRO_PERF_WRITE_REFERENCE", "") \
    not in ("", "0")

#: CI floor: fail when throughput regresses more than 2x below recorded.
REGRESSION_FLOOR = 2.0
#: Full-scale PR targets vs the pre-optimisation measurements.
SINGLE_SPEEDUP_TARGET = 3.0
MULTI_SPEEDUP_TARGET = 2.5
#: Kernel-vs-legacy single-channel targets (full scale): the jitted
#: flavour must clear 4x; the pure-python twin is a modest win over the
#: object path it replaces and must at least never lose to it.
NUMBA_KERNEL_TARGET = 4.0
PYTHON_KERNEL_FLOOR = 1.05
#: 8-node node-parallel wall-clock target, only meaningful on hosts with
#: at least one core per node.
NODE_PARALLEL_TARGET = 3.0
NODE_COUNT = 8
#: Sweep-level configuration: an exact-mode ``qps_sweep`` over this many
#: offered-load points, timed per sweep backend, then cold/warm against
#: a persistent service-time store.
SWEEP_POINTS = smoke_scaled(8, 3)
SWEEP_QUERIES = smoke_scaled(24, 8)
SWEEP_POOLING = smoke_scaled(16, 8)
SWEEP_BACKENDS = ("serial", "process")
#: Full-scale parallel-sweep wall-clock target, only meaningful on hosts
#: with at least one core per in-flight sweep point.
SWEEP_SPEEDUP_TARGET = 3.0


def _workloads():
    return {
        "random": random_requests(num_tables=NUM_TABLES, batch=BATCH,
                                  pooling=POOLING, seed=0),
        "production": production_requests(num_tables=NUM_TABLES, batch=BATCH,
                                          pooling=POOLING, seed=0),
    }


def _timed(system, requests, repeats=REPEATS):
    """Best-of-N wall clock of ``system.run(requests)`` (and the result)."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = system.run(requests)
        best = min(best, time.perf_counter() - start)
    return result, best


def _single_fields(result):
    return {"total_cycles": result.total_cycles,
            "cache_hit_rate": result.cache_hit_rate,
            "energy_nj": result.energy_nj,
            "rank_load": list(result.extras["rank_load"]),
            "num_packets": result.extras["num_packets"]}


def _multi_fields(result):
    return {"total_cycles": result.total_cycles,
            "cache_hit_rate": result.cache_hit_rate,
            "energy_nj": result.energy_nj,
            "per_channel_cycles": list(result.extras["per_channel_cycles"]),
            "per_channel_instructions":
                list(result.extras["per_channel_instructions"])}


def _kernel_comparison(requests):
    """Single-channel timing with the active kernel flavour vs the
    legacy object path (``force_flavor("disabled")``)."""
    active = kernels.active_flavor()
    if active == "disabled":
        return None   # kernels globally off: nothing to compare against
    timings = {}
    fields = {}
    for label, flavor in (("active", active), ("legacy", "disabled")):
        with kernels.force_flavor(flavor):
            with build_bench_system(
                    "recnmp-opt", num_dimms=4, ranks_per_dimm=2,
                    compare_baseline=False) as system:
                result, seconds = _timed(system, requests)
        timings[label] = seconds
        fields[label] = _single_fields(result)
    assert fields["active"] == fields["legacy"], \
        "kernel flavour %r diverged from the legacy object path" % active
    return {
        "flavor": active,
        "kernel_seconds": round(timings["active"], 5),
        "legacy_seconds": round(timings["legacy"], 5),
        "speedup_vs_legacy": round(
            timings["legacy"] / timings["active"], 3),
    }


def _node_batch():
    """One batch spanning all the 8-node cluster's tables."""
    from repro.serving.arrival import queries_from_traces
    from repro.serving.batcher import QueryBatch
    from repro.traces import random_trace

    pooling = smoke_scaled(24, 8)
    queries_count = smoke_scaled(8, 2)
    lookups = queries_count * 2 * pooling
    traces = [random_trace(NUM_ROWS, lookups, table_id=t, seed=t)
              for t in range(NODE_COUNT)]
    queries = queries_from_traces(traces, queries_count,
                                  [0.0] * queries_count,
                                  batch_size=2, pooling_factor=pooling)
    return QueryBatch(queries=queries, open_us=0.0, formed_us=0.0)


def _timed_service(cluster, batch, repeats=REPEATS):
    """Best-of-N wall clock of one *uncached* batch service time."""
    best = float("inf")
    value = None
    for _ in range(repeats):
        cluster._service_cache.clear()   # defeat the batch memoisation
        start = time.perf_counter()
        value = cluster.service_time_us(batch)
        best = min(best, time.perf_counter() - start)
    return value, best


def _node_parallel_comparison():
    """8-node batch wall-clock: serial vs shared-memory node backend."""
    from repro.serving import ShardedServingCluster

    batch = _node_batch()
    entry = {"num_nodes": NODE_COUNT, "backends": {}}
    values = {}
    for backend in ("serial", "shared-memory"):
        with ShardedServingCluster(
                num_nodes=NODE_COUNT, node_system="recnmp-opt",
                table_rows=NUM_ROWS, vector_size_bytes=VECTOR_BYTES,
                backend=backend) as cluster:
            cluster.service_time_us(batch)   # warm-up (pool spin-up)
            value, seconds = _timed_service(cluster, batch)
        values[backend] = value
        entry["backends"][backend] = {"seconds": round(seconds, 5)}
    assert values["shared-memory"] == values["serial"], \
        "node-level fan-out changed the batch service time"
    entry["service_time_us"] = values["serial"]
    entry["parallel_speedup"] = round(
        entry["backends"]["serial"]["seconds"]
        / entry["backends"]["shared-memory"]["seconds"], 3)
    return entry


def _sweep_inputs():
    """The query-stream factory and QPS grid of the sweep benchmark."""
    from repro.serving import PoissonArrivalProcess, queries_from_traces
    from repro.traces import make_production_table_traces

    traces = make_production_table_traces(
        num_lookups_per_table=SWEEP_QUERIES * SWEEP_POOLING * 4,
        num_rows=NUM_ROWS, num_tables=4, seed=0)

    def make_queries(qps):
        return queries_from_traces(
            traces, SWEEP_QUERIES,
            PoissonArrivalProcess(rate_qps=qps, seed=1),
            batch_size=2, pooling_factor=SWEEP_POOLING)

    qps_points = [40_000.0 + 20_000.0 * i for i in range(SWEEP_POINTS)]
    return make_queries, qps_points


def _run_sweep(backend, make_queries, qps_points, service_store=None):
    """One exact-mode qps_sweep on a fresh 2-node cluster.

    Returns the per-point reports as plain dicts (the byte-identity
    currency of the serial-vs-parallel and cold-vs-warm comparisons),
    the wall-clock seconds of the sweep itself, and the cluster's
    service cache/store stats.
    """
    from repro.serving import (
        BatchingFrontend,
        ShardedServingCluster,
        qps_sweep,
    )

    with ShardedServingCluster(
            num_nodes=2, node_system="recnmp-opt", table_rows=NUM_ROWS,
            vector_size_bytes=VECTOR_BYTES,
            service_store=service_store) as cluster:
        frontend = BatchingFrontend(max_queries=4, max_delay_us=200.0)
        start = time.perf_counter()
        reports = qps_sweep(cluster, make_queries, qps_points,
                            frontend=frontend, service_model="exact",
                            backend=backend)
        seconds = time.perf_counter() - start
        stats = cluster.service_stats()
    return [r.as_dict() for r in reports], seconds, stats


def _sweep_comparison(store_dir):
    """Serial-vs-process sweep timing plus a cold/warm store pass."""
    make_queries, qps_points = _sweep_inputs()
    entry = {"num_points": len(qps_points), "backends": {}}
    fields = {}
    stats_records = {}
    for backend in SWEEP_BACKENDS:
        reports, seconds, stats = _run_sweep(backend, make_queries,
                                             qps_points)
        fields[backend] = reports
        stats_records["sweep-" + backend] = stats
        entry["backends"][backend] = {
            "seconds": round(seconds, 5),
            "points_per_sec": round(len(qps_points) / seconds, 3),
        }
    for backend in SWEEP_BACKENDS[1:]:
        assert fields[backend] == fields["serial"], \
            "%s sweep reports diverged from the serial loop" % backend
    entry["parallel_speedup"] = round(
        entry["backends"]["serial"]["seconds"]
        / entry["backends"]["process"]["seconds"], 3)
    # Dedup effectiveness of the serial sweep: every batch the engine
    # consumed vs the exact simulations actually run (the rest were
    # served by in-batch dedup or the memoised cache).
    cache = stats_records["sweep-serial"]["cache"]
    resolved = cache["hits"] + cache["misses"]
    entry["batches_resolved"] = resolved
    entry["exact_simulations"] = \
        stats_records["sweep-serial"]["exact_simulations"]
    entry["dedup_ratio"] = round(
        1.0 - entry["exact_simulations"] / resolved, 4) if resolved else 0.0

    # Cold vs warm persistent store: same sweep twice against the same
    # store file, each on a fresh cluster (cold in-memory cache both
    # times, so the second run isolates the store tier).
    store_path = store_dir / "sweep_store.sqlite"
    cold_reports, cold_seconds, cold_stats = _run_sweep(
        "serial", make_queries, qps_points, service_store=store_path)
    warm_reports, warm_seconds, warm_stats = _run_sweep(
        "serial", make_queries, qps_points, service_store=store_path)
    assert warm_reports == cold_reports, \
        "warm-store sweep reports diverged from the cold run"
    assert warm_stats["exact_simulations"] == 0, \
        "warm-store sweep ran %d exact simulations (expected zero)" \
        % warm_stats["exact_simulations"]
    assert warm_stats["store"]["misses"] == 0, \
        "warm-store sweep missed the store %d times (expected zero)" \
        % warm_stats["store"]["misses"]
    stats_records["sweep-store-cold"] = cold_stats
    stats_records["sweep-store-warm"] = warm_stats
    entry["store"] = {
        "entries": warm_stats["store"]["entries"],
        "cold_seconds": round(cold_seconds, 5),
        "warm_seconds": round(warm_seconds, 5),
        "warm_speedup": round(cold_seconds / warm_seconds, 3),
    }
    return entry, stats_records


def compute_simulator_perf():
    report = {"mode": MODE, "kernel_flavor": kernels.active_flavor(),
              "workloads": {}}
    for kind, requests in _workloads().items():
        with build_bench_system(
                "recnmp-opt", num_dimms=4, ranks_per_dimm=2,
                compare_baseline=False) as single_system:
            single_result, single_seconds = _timed(single_system, requests)
        lookups = single_result.num_lookups
        entry = {
            "num_lookups": lookups,
            "single": _single_fields(single_result),
            "single_seconds": round(single_seconds, 5),
            "single_insts_per_sec": round(lookups / single_seconds, 1),
            "kernel": _kernel_comparison(requests),
            "multi4_backends": {},
        }
        for backend in BACKENDS:
            with build_bench_system(
                    "recnmp-opt-4ch", num_channels=4, num_dimms=1,
                    ranks_per_dimm=2, compare_baseline=False,
                    backend=backend) as system:
                system.run(requests)  # warm-up (spins up worker pools)
                result, seconds = _timed(system, requests)
            entry["multi4_backends"][backend] = {
                "seconds": round(seconds, 5),
                "insts_per_sec": round(lookups / seconds, 1),
                "fields": _multi_fields(result),
            }
        serial_seconds = entry["multi4_backends"]["serial"]["seconds"]
        for backend in BACKENDS:
            backend_entry = entry["multi4_backends"][backend]
            backend_entry["scaling_vs_serial"] = round(
                serial_seconds / backend_entry["seconds"], 3)
        entry["shm_vs_pickle"] = round(
            entry["multi4_backends"]["process"]["seconds"]
            / entry["multi4_backends"]["shared-memory"]["seconds"], 3)
        report["workloads"][kind] = entry
    report["node8"] = _node_parallel_comparison()
    with tempfile.TemporaryDirectory(prefix="repro-sweep-store-") as tmp:
        report["sweep"], report["sweep_service_stats"] = \
            _sweep_comparison(Path(tmp))
    return report


def _load_reference():
    if not REFERENCE_PATH.exists():
        return None
    return json.loads(REFERENCE_PATH.read_text())


def _maybe_write_reference(reference, report):
    """Refresh the ``recorded`` throughput floor for the current mode."""
    if not WRITE_REFERENCE or reference is None:
        return
    recorded = reference.setdefault(MODE, {}).setdefault("recorded", {})
    for kind, entry in report["workloads"].items():
        recorded[kind] = {
            "single_insts_per_sec": entry["single_insts_per_sec"],
            "multi4_process_seconds":
                entry["multi4_backends"]["process"]["seconds"],
            "multi4_shared_memory_seconds":
                entry["multi4_backends"]["shared-memory"]["seconds"],
            "shm_vs_pickle": entry["shm_vs_pickle"],
            "kernel": entry["kernel"],
        }
    recorded["node8"] = {
        "kernel_flavor": report["kernel_flavor"],
        "serial_seconds":
            report["node8"]["backends"]["serial"]["seconds"],
        "shared_memory_seconds":
            report["node8"]["backends"]["shared-memory"]["seconds"],
        "parallel_speedup": report["node8"]["parallel_speedup"],
        "cpu_count": os.cpu_count(),
    }
    sweep = report["sweep"]
    recorded["sweep"] = {
        "num_points": sweep["num_points"],
        "serial_points_per_sec":
            sweep["backends"]["serial"]["points_per_sec"],
        "parallel_speedup": sweep["parallel_speedup"],
        "dedup_ratio": sweep["dedup_ratio"],
        "warm_speedup": sweep["store"]["warm_speedup"],
        "cpu_count": os.cpu_count(),
    }
    REFERENCE_PATH.write_text(json.dumps(reference, indent=2) + "\n")


def bench_simulator_perf(benchmark):
    report = benchmark.pedantic(compute_simulator_perf, rounds=1,
                                iterations=1)
    reference = _load_reference()
    _maybe_write_reference(reference, report)
    rows = []
    for kind, entry in report["workloads"].items():
        rows.append((kind, "single", entry["single_seconds"],
                     entry["single_insts_per_sec"], "-"))
        kernel = entry["kernel"]
        if kernel:
            rows.append((kind, "single/no-kernel",
                         kernel["legacy_seconds"],
                         round(entry["num_lookups"]
                               / kernel["legacy_seconds"], 1),
                         "%.2fx %s" % (kernel["speedup_vs_legacy"],
                                       kernel["flavor"])))
        for backend in BACKENDS:
            backend_entry = entry["multi4_backends"][backend]
            rows.append((kind, "4ch/" + backend, backend_entry["seconds"],
                         backend_entry["insts_per_sec"],
                         backend_entry["scaling_vs_serial"]))
    node8 = report["node8"]
    for backend in ("serial", "shared-memory"):
        rows.append(("batch", "8node/" + backend,
                     node8["backends"][backend]["seconds"], "-",
                     node8["parallel_speedup"]
                     if backend == "shared-memory" else "-"))
    sweep = report["sweep"]
    for backend in SWEEP_BACKENDS:
        rows.append(("sweep", "%dpt/%s" % (sweep["num_points"], backend),
                     sweep["backends"][backend]["seconds"],
                     "%.2f pts/s"
                     % sweep["backends"][backend]["points_per_sec"],
                     sweep["parallel_speedup"]
                     if backend != "serial" else "-"))
    rows.append(("sweep", "store/cold", sweep["store"]["cold_seconds"],
                 "-", "-"))
    rows.append(("sweep", "store/warm", sweep["store"]["warm_seconds"],
                 "-", sweep["store"]["warm_speedup"]))
    print()
    print(format_table(
        "Exact-simulator throughput (%s mode, best of %d, kernels: %s)"
        % (MODE, REPEATS, report["kernel_flavor"]),
        ["workload", "config", "seconds", "insts/sec", "vs serial"], rows))
    print("sweep dedup: %d/%d batches exact-simulated (dedup ratio %.2f), "
          "warm store re-run: %d exact sims"
          % (sweep["exact_simulations"], sweep["batches_resolved"],
             sweep["dedup_ratio"],
             report["sweep_service_stats"]["sweep-store-warm"]
             ["exact_simulations"]))
    print("SIM_PERF_JSON: %s" % json.dumps(report))
    print("SERVICE_STATS_JSON: %s"
          % json.dumps(report["sweep_service_stats"]))

    for kind, entry in report["workloads"].items():
        # Backend equivalence: every backend must report identical cycles
        # and statistics for the same workload.
        serial_fields = entry["multi4_backends"]["serial"]["fields"]
        for backend in BACKENDS[1:]:
            assert entry["multi4_backends"][backend]["fields"] == \
                serial_fields, (kind, backend)
        # Kernel-vs-legacy speedup targets (full scale only: smoke
        # workloads are too small for stable timing).
        kernel = entry["kernel"]
        if kernel and not SMOKE_MODE:
            if kernel["flavor"] == "numba":
                assert kernel["speedup_vs_legacy"] >= NUMBA_KERNEL_TARGET, \
                    "numba kernel speedup %.2fx below the %.1fx target " \
                    "on %s" % (kernel["speedup_vs_legacy"],
                               NUMBA_KERNEL_TARGET, kind)
            elif kernel["flavor"] == "python":
                assert kernel["speedup_vs_legacy"] >= PYTHON_KERNEL_FLOOR, \
                    "python kernel speedup %.2fx below the %.2fx floor " \
                    "on %s" % (kernel["speedup_vs_legacy"],
                               PYTHON_KERNEL_FLOOR, kind)

    # Node-level fan-out target: only meaningful with one core per node.
    if not SMOKE_MODE and os.cpu_count() and os.cpu_count() >= NODE_COUNT:
        assert node8["parallel_speedup"] >= NODE_PARALLEL_TARGET, \
            "8-node shared-memory fan-out %.2fx below the %.1fx target " \
            "on a %d-core host" % (node8["parallel_speedup"],
                                   NODE_PARALLEL_TARGET, os.cpu_count())
    elif node8["parallel_speedup"] < 1.0:
        print("note: 8-node fan-out speedup %.2fx on a %s-core host "
              "(node-level parallelism needs cores to pay off)"
              % (node8["parallel_speedup"], os.cpu_count()))

    # Sweep-level fan-out target: needs a core per in-flight point.
    if not SMOKE_MODE and os.cpu_count() and os.cpu_count() >= 4:
        assert sweep["parallel_speedup"] >= SWEEP_SPEEDUP_TARGET, \
            "process sweep %.2fx below the %.1fx target on a %d-core " \
            "host" % (sweep["parallel_speedup"], SWEEP_SPEEDUP_TARGET,
                      os.cpu_count())
    elif sweep["parallel_speedup"] < 1.0:
        print("note: process sweep speedup %.2fx on a %s-core host "
              "(sweep-level parallelism needs cores to pay off)"
              % (sweep["parallel_speedup"], os.cpu_count()))

    if reference is None:
        return
    mode_reference = reference.get(MODE)
    if not mode_reference:
        return
    for kind, entry in report["workloads"].items():
        # Cycle-exactness vs the pre-optimisation serial simulator.
        pinned = mode_reference["workloads"][kind]["exact"]
        assert entry["single"] == pinned["single"], \
            "single-channel results diverged from the pre-optimisation " \
            "simulator on %s" % kind
        assert entry["multi4_backends"]["serial"]["fields"] == \
            pinned["multi4"], \
            "multi-channel results diverged from the pre-optimisation " \
            "simulator on %s" % kind
        # Loose CI floor vs the recorded post-optimisation throughput.
        recorded = mode_reference.get("recorded", {}).get(kind)
        if recorded and not WRITE_REFERENCE:
            floor = recorded["single_insts_per_sec"] / REGRESSION_FLOOR
            assert entry["single_insts_per_sec"] >= floor, \
                "exact-sim throughput on %s regressed >%.0fx below the " \
                "recorded %.0f insts/sec (if this host is legitimately " \
                "slower than the reference machine, refresh the floor " \
                "with REPRO_PERF_WRITE_REFERENCE=1)" \
                % (kind, REGRESSION_FLOOR, recorded["single_insts_per_sec"])
        # Full-scale PR speedup targets vs the pre-PR measurements.
        # Note: on single-core hosts the 4-channel gain comes entirely
        # from the hot-path rewrite (process dispatch cannot beat serial
        # with one core); the per-backend scaling_vs_serial numbers in
        # the record are what show whether process dispatch itself pays
        # off on a given machine, so surface them when it does not.
        pre_pr = mode_reference.get("pre_pr", {}).get(kind)
        if pre_pr and not SMOKE_MODE:
            process_scaling = \
                entry["multi4_backends"]["process"]["scaling_vs_serial"]
            if os.cpu_count() and os.cpu_count() >= 4 and \
                    process_scaling < 1.0:
                print("note: process backend scaling_vs_serial=%.2f on a "
                      "%d-core host (dispatch overhead exceeds the "
                      "parallel gain at this workload size)"
                      % (process_scaling, os.cpu_count()))
            single_speedup = entry["single_insts_per_sec"] \
                / pre_pr["single_insts_per_sec"]
            multi_speedup = pre_pr["multi4_seconds"] \
                / entry["multi4_backends"]["process"]["seconds"]
            print("%s: single-channel %.2fx vs pre-PR, 4ch process %.2fx "
                  "vs pre-PR" % (kind, single_speedup, multi_speedup))
            assert single_speedup >= SINGLE_SPEEDUP_TARGET, \
                "single-channel speedup %.2fx below the %.1fx target on " \
                "%s" % (single_speedup, SINGLE_SPEEDUP_TARGET, kind)
            assert multi_speedup >= MULTI_SPEEDUP_TARGET, \
                "4-channel process-backend speedup %.2fx below the %.1fx " \
                "target on %s" % (multi_speedup, MULTI_SPEEDUP_TARGET, kind)
    # Loose CI floor on the serial sweep rate, same mechanism as the
    # single-channel throughput floor above.
    recorded_sweep = mode_reference.get("recorded", {}).get("sweep")
    if recorded_sweep and not WRITE_REFERENCE:
        floor = recorded_sweep["serial_points_per_sec"] / REGRESSION_FLOOR
        measured = sweep["backends"]["serial"]["points_per_sec"]
        assert measured >= floor, \
            "serial sweep rate %.2f points/sec regressed >%.0fx below " \
            "the recorded %.2f points/sec (refresh with " \
            "REPRO_PERF_WRITE_REFERENCE=1 if this host is legitimately " \
            "slower)" % (measured, REGRESSION_FLOOR,
                         recorded_sweep["serial_points_per_sec"])
