"""Figure 14: RecNMP-base latency scaling and rank load imbalance.

(a) Normalised SLS latency of RecNMP-base (no RankCache) against the DRAM
    baseline for the 1x2, 1x4, 2x2 and 4x2 memory configurations, sweeping
    the number of poolings per NMP packet, plus the page-colouring layout.
(b) The distribution of work on the slowest rank (load imbalance).

Paper claims reproduced in shape: latency scales with the number of active
ranks, more poolings per packet help, page colouring approaches the ideal
speedup, and smaller packets distribute work more unevenly.
"""

from workloads import format_table, random_requests, run_recnmp

CONFIGS = ((1, 2), (1, 4), (2, 2), (4, 2))
POOLINGS_PER_PACKET = (2, 8)


def compute_fig14():
    requests = random_requests(num_tables=4, seed=0)
    rows = []
    imbalance_rows = []
    baseline_cycles = None
    for num_dimms, ranks_per_dimm in CONFIGS:
        for poolings in POOLINGS_PER_PACKET:
            result = run_recnmp(requests, num_dimms=num_dimms,
                                ranks_per_dimm=ranks_per_dimm,
                                use_rank_cache=False,
                                enable_profiling=False,
                                poolings_per_packet=poolings,
                                compare_baseline=baseline_cycles is None)
            if baseline_cycles is None:
                baseline_cycles = result.baseline_cycles
            normalized = result.total_cycles / baseline_cycles
            rows.append(("%dx%d" % (num_dimms, ranks_per_dimm), poolings,
                         "address", round(normalized, 3),
                         round(1.0 / normalized, 2)))
            imbalance_rows.append(("%dx%d" % (num_dimms, ranks_per_dimm),
                                   poolings, round(result.load_imbalance, 3),
                                   round(1.0 / (num_dimms * ranks_per_dimm),
                                         3)))
        colored = run_recnmp(requests, num_dimms=num_dimms,
                             ranks_per_dimm=ranks_per_dimm,
                             use_rank_cache=False, enable_profiling=False,
                             poolings_per_packet=8,
                             rank_assignment="page-coloring",
                             compare_baseline=False)
        normalized = colored.total_cycles / baseline_cycles
        rows.append(("%dx%d" % (num_dimms, ranks_per_dimm), 8,
                     "page-coloring", round(normalized, 3),
                     round(1.0 / normalized, 2)))
    return rows, imbalance_rows, baseline_cycles


def bench_fig14_recnmp_base(benchmark):
    rows, imbalance_rows, baseline_cycles = benchmark.pedantic(
        compute_fig14, rounds=1, iterations=1)
    print()
    print("DRAM baseline: %d cycles" % baseline_cycles)
    print(format_table(
        "Fig. 14(a) -- RecNMP-base latency normalised to the DRAM baseline",
        ["config", "poolings/packet", "layout", "normalised latency",
         "speedup"], rows))
    print()
    print(format_table(
        "Fig. 14(b) -- fraction of lookups served by the slowest rank",
        ["config", "poolings/packet", "slowest-rank share",
         "balanced share"], imbalance_rows))
    speedups = {(r[0], r[1], r[2]): r[4] for r in rows}
    # Latency scales with the number of active ranks (8 poolings, address).
    assert speedups[("4x2", 8, "address")] > speedups[("2x2", 8, "address")] \
        > speedups[("1x2", 8, "address")]
    # More poolings per packet help every configuration.
    for config in ("1x2", "2x2", "4x2"):
        assert speedups[(config, 8, "address")] >= \
            speedups[(config, 2, "address")]
    # Page colouring approaches (or beats) the address-hash layout.
    assert speedups[("4x2", 8, "page-coloring")] >= \
        0.95 * speedups[("4x2", 8, "address")]
    # The 8-rank base design lands in the paper's 3.37-7.35x band.
    assert 2.5 < speedups[("4x2", 8, "page-coloring")] < 8.5
    # Load imbalance: the slowest rank always serves at least its fair share.
    for config, poolings, share, fair in imbalance_rows:
        assert share >= fair - 1e-6
