"""Figure 7: temporal and spatial locality of embedding table traces.

(a) Temporal locality: hit rate of an LRU, 4-way cache while sweeping the
    capacity 8-64 MB (64 B lines) for the random trace and the combined
    production traces Comb-8 / Comb-16 / Comb-32.
(b) Spatial locality: hit rate while sweeping the cacheline size 64-512 B at
    a fixed 16 MB capacity (Comb-8), plus the fully-associative control.

Paper observations reproduced: random stays below 5%, the production
combinations land in the 20-60% band and grow with capacity, and larger
cachelines *reduce* the hit rate (no spatial locality).
"""

from repro.cache.fully_associative import FullyAssociativeCache
from repro.cache.set_associative import SetAssociativeCache
from repro.traces.production import (
    make_combined_trace,
    make_production_table_traces,
)
from repro.traces.synthetic import random_trace

from workloads import format_table

LOOKUPS_PER_TABLE = 25_000
NUM_ROWS = 1_000_000
VECTOR_BYTES = 64
CACHE_SIZES_MB = (8, 16, 32, 64)
LINE_SIZES = (64, 128, 256, 512)


def _combined_accesses(multiplier, seed=0):
    traces = make_production_table_traces(
        num_lookups_per_table=LOOKUPS_PER_TABLE, num_rows=NUM_ROWS, seed=seed)
    combined = make_combined_trace(traces, multiplier=multiplier)
    return [table * NUM_ROWS * VECTOR_BYTES + row * VECTOR_BYTES
            for table, row in combined.interleaved()]


def compute_locality():
    # The random workload touches the same footprint as Comb-8 (8 tables of
    # 1M rows), uniformly -- the paper's worst-case-locality reference.
    random_accesses = (random_trace(8 * NUM_ROWS, 8 * LOOKUPS_PER_TABLE,
                                    seed=1).indices * VECTOR_BYTES).tolist()
    workloads = {
        "random": random_accesses,
        "Comb-8": _combined_accesses(1),
        "Comb-16": _combined_accesses(2),
        "Comb-32": _combined_accesses(4),
    }
    temporal_rows = []
    for name, accesses in workloads.items():
        for capacity_mb in CACHE_SIZES_MB:
            cache = SetAssociativeCache(capacity_mb * 1024 * 1024,
                                        line_size_bytes=64, associativity=4)
            cache.access_many(accesses)
            temporal_rows.append((name, capacity_mb,
                                  round(cache.hit_rate, 3)))
    spatial_rows = []
    comb8 = workloads["Comb-8"]
    for line_size in LINE_SIZES:
        set_assoc = SetAssociativeCache(16 * 1024 * 1024,
                                        line_size_bytes=line_size,
                                        associativity=4)
        fully_assoc = FullyAssociativeCache(16 * 1024 * 1024,
                                            line_size_bytes=line_size)
        set_assoc.access_many(comb8)
        fully_assoc.access_many(comb8)
        spatial_rows.append((line_size, round(set_assoc.hit_rate, 3),
                             round(fully_assoc.hit_rate, 3)))
    return temporal_rows, spatial_rows


def bench_fig07_locality(benchmark):
    temporal_rows, spatial_rows = benchmark.pedantic(compute_locality,
                                                     rounds=1, iterations=1)
    print()
    print(format_table("Fig. 7(a) -- temporal locality (64 B lines)",
                       ["trace", "cache (MB)", "hit rate"], temporal_rows))
    print()
    print(format_table("Fig. 7(b) -- spatial locality (16 MB, Comb-8)",
                       ["line (B)", "4-way hit rate", "fully-assoc hit rate"],
                       spatial_rows))
    by_trace = {}
    for name, capacity, hit_rate in temporal_rows:
        by_trace.setdefault(name, []).append(hit_rate)
    # Random trace: <5% everywhere.  Production combinations: 20-60% band.
    assert all(rate < 0.05 for rate in by_trace["random"])
    assert all(0.15 < rate < 0.65 for rate in by_trace["Comb-8"])
    # Hit rate grows with capacity for the production combinations.
    assert by_trace["Comb-8"][-1] >= by_trace["Comb-8"][0]
    # Larger cachelines do not help (little spatial locality) -- for both the
    # 4-way and the fully-associative control.
    assert spatial_rows[-1][1] <= spatial_rows[0][1] + 0.02
    assert spatial_rows[-1][2] <= spatial_rows[0][2] + 0.02
