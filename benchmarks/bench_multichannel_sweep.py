"""Multi-channel sweep: correctness and the cost of baseline comparisons.

Sweeps the software-coordinated RecNMP configuration over channel counts
with the host-baseline comparison enabled -- the workload pattern that used
to re-simulate the DDR4 baseline from scratch on every point.  The sweep
now runs channels concurrently and memoises the per-channel baseline, so a
repeated sweep (same traces, different coordination knobs) replays the
stored baselines.  The benchmark measures both sweeps and asserts the
memoised pass is measurably faster.
"""

import time

from repro.perf import baseline_cache_stats, clear_baseline_cache

from workloads import format_table, production_requests, run_system

CHANNEL_COUNTS = (1, 2, 4)


def _sweep():
    requests = production_requests(num_tables=8, batch=8, pooling=40, seed=0)
    rows = []
    for num_channels in CHANNEL_COUNTS:
        result = run_system("recnmp-opt-4ch", requests,
                            num_channels=num_channels)
        rows.append((num_channels, result.total_cycles,
                     round(result.speedup_vs_baseline, 2),
                     round(result.load_imbalance, 2)))
    return rows


def compute_sweep():
    clear_baseline_cache()
    start = time.perf_counter()
    cold_rows = _sweep()
    cold_seconds = time.perf_counter() - start
    start = time.perf_counter()
    warm_rows = _sweep()
    warm_seconds = time.perf_counter() - start
    return cold_rows, warm_rows, cold_seconds, warm_seconds


def bench_multichannel_sweep(benchmark):
    cold_rows, warm_rows, cold_seconds, warm_seconds = benchmark.pedantic(
        compute_sweep, rounds=1, iterations=1)
    print()
    print(format_table(
        "Multi-channel RecNMP-opt sweep (with baseline comparison)",
        ["channels", "cycles", "speedup", "busiest-channel share"],
        cold_rows))
    stats = baseline_cache_stats()
    print("cold sweep %.2fs, warm sweep %.2fs, baseline cache %s"
          % (cold_seconds, warm_seconds, stats))
    # Deterministic: the warm sweep reproduces the cold sweep exactly.
    assert warm_rows == cold_rows
    # More channels never slow the batch down.
    cycles = [row[1] for row in cold_rows]
    assert cycles == sorted(cycles, reverse=True)
    # The memoised baseline makes the repeated sweep measurably faster.
    assert stats["hits"] > 0
    assert warm_seconds < cold_seconds
