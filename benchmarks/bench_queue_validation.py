"""Queue-model validation: analytic M/G/c vs event-driven simulation.

The analytic serving engine approximates waiting-time quantiles with an
Erlang-C exponential tail; the paper's serving claims live exactly where
that approximation is least trustworthy (high utilisation).  This
benchmark sweeps utilisation from rho = 0.2 to 0.95 on the fig16-style
production workload, runs both engines over *identical* batches and
service times, and records the per-percentile analytic-vs-event error.

It also validates the interpolating service-time model that makes the
sweep affordable: interpolated per-batch service times must stay within
10% of exact cycle simulation on the fig16 workload, while making a
100k-query event-driven run at least 10x faster than exact mode.

The machine-readable summary is printed last (``QUEUE_VALIDATION_JSON:``)
so ``run_all.py`` captures it into ``BENCH_results.json``.
"""

import json
import time

import numpy as np

from repro.perf.service_model import InterpolatingServiceModel
from repro.serving import (
    AnalyticEngine,
    BatchingFrontend,
    EventEngine,
    PoissonArrivalProcess,
    ShardedServingCluster,
    queries_from_traces,
)
from repro.traces import make_production_table_traces

from workloads import (
    NUM_ROWS,
    VECTOR_BYTES,
    address_of,
    format_table,
    smoke_scaled,
)

SYSTEM = "recnmp-opt"
NUM_NODES = 2
NUM_FRONTENDS = 2
NUM_TABLES = 8
QUERY_BATCH = 8                 # fig16's SLS batch size per query
QUERY_POOLING = 40              # fig16's pooling factor
MAX_BATCH = 8
MAX_DELAY_US = 200.0
RHO_TARGETS = (0.2, 0.4, 0.6, 0.8, 0.9, 0.95)
SWEEP_QUERIES = smoke_scaled(20_000, 1_500)
LONG_RUN_QUERIES = smoke_scaled(100_000, 5_000)
ACCURACY_SAMPLE = smoke_scaled(48, 16)
CALIBRATION_BATCH_SIZES = smoke_scaled((1, 2, 4, 8, 16), (1, 2, 4, 8))
#: Distinct per-table requests in the trace pool: enough that consecutive
#: batches carry different compositions (a short trace cycles into a
#: handful of fingerprints, which would let the service cache make exact
#: mode look free and the interpolation error trivially zero).
REQUESTS_PER_TABLE = smoke_scaled(64, 16)
#: The long event run draws from a larger pool: production traffic does
#: not repeat a few dozen batch compositions, and the pool size bounds
#: how many distinct compositions exact mode would have to simulate.
LONG_RUN_REQUESTS_PER_TABLE = smoke_scaled(512, 32)


def build_traces(requests_per_table=REQUESTS_PER_TABLE):
    return make_production_table_traces(
        num_lookups_per_table=QUERY_BATCH * QUERY_POOLING
        * requests_per_table,
        num_rows=NUM_ROWS, num_tables=NUM_TABLES, seed=0)


def build_queries(traces, num_queries, qps, seed=2):
    return queries_from_traces(
        traces, num_queries, PoissonArrivalProcess(rate_qps=qps, seed=seed),
        batch_size=QUERY_BATCH, pooling_factor=QUERY_POOLING)


def relative_error(approx, exact):
    return (approx - exact) / exact if exact else 0.0


def compute_validation():
    traces = build_traces()
    cluster = ShardedServingCluster(
        num_nodes=NUM_NODES, node_system=SYSTEM,
        num_frontends=NUM_FRONTENDS, address_of=address_of,
        vector_size_bytes=VECTOR_BYTES)
    frontend = BatchingFrontend(max_queries=MAX_BATCH,
                                max_delay_us=MAX_DELAY_US)
    model = InterpolatingServiceModel(
        traces, batch_sizes=CALIBRATION_BATCH_SIZES)
    analytic, event = AnalyticEngine(), EventEngine()

    # ---- service-model accuracy + exact-mode cost on fig16 batches ---- #
    sample = frontend.form_batches(
        build_queries(traces, ACCURACY_SAMPLE, qps=150_000.0, seed=5))
    start = time.perf_counter()
    exact_times = [cluster.service_time_us(batch) for batch in sample]
    exact_seconds_per_batch = (time.perf_counter() - start) / len(sample)
    approx_times = [model.service_time_us(cluster, batch)
                    for batch in sample]
    errors = [abs(relative_error(a, e))
              for a, e in zip(approx_times, exact_times)]
    accuracy = {
        "num_batches": len(sample),
        "mean_abs_error": round(float(np.mean(errors)), 4),
        "max_abs_error": round(float(np.max(errors)), 4),
        "exact_seconds_per_batch": round(exact_seconds_per_batch, 4),
    }

    # ---- calibrate the qps -> rho mapping at one reference point ----- #
    reference_qps = 150_000.0
    reference = analytic.summarize(
        cluster.describe(), *_batches_and_services(
            traces, frontend, model, cluster, SWEEP_QUERIES,
            reference_qps),
        num_servers=NUM_FRONTENDS)
    qps_per_rho = reference_qps / reference.utilization

    # ---- utilisation sweep: identical batches through both engines --- #
    sweep = []
    for target in RHO_TARGETS:
        # Batch composition shifts with offered load, so the linear
        # qps -> rho mapping drifts near saturation; refine each point
        # against the achieved utilisation (interpolated passes, cheap).
        qps = target * qps_per_rho
        for _ in range(3):
            batches, services = _batches_and_services(
                traces, frontend, model, cluster, SWEEP_QUERIES, qps)
            achieved = analytic.summarize(
                cluster.describe(), batches, services,
                num_servers=NUM_FRONTENDS).utilization
            if abs(achieved - target) < 0.01 or achieved <= 0.0:
                break
            qps *= target / achieved
        reports = {
            "analytic": analytic.summarize(
                cluster.describe(), batches, services,
                num_servers=NUM_FRONTENDS),
            "event": event.summarize(
                cluster.describe(), batches, services,
                num_servers=NUM_FRONTENDS),
        }
        measured = reports["event"]
        approx = reports["analytic"]
        # Rounded: the payload is printed for capture into
        # BENCH_results.json's bounded output_tail.
        sweep.append({
            "rho_target": target,
            "rho": round(approx.utilization, 4),
            "mean_error": round(relative_error(
                approx.mean_latency_us, measured.mean_latency_us), 4),
            "p50_error": round(relative_error(approx.p50_us,
                                              measured.p50_us), 4),
            "p95_error": round(relative_error(approx.p95_us,
                                              measured.p95_us), 4),
            "p99_error": round(relative_error(approx.p99_us,
                                              measured.p99_us), 4),
            "event_p99_us": round(measured.p99_us, 2),
            "analytic_p99_us": round(approx.p99_us, 2),
        })

    # ---- long event-driven run: interp model vs extrapolated exact --- #
    long_traces = build_traces(LONG_RUN_REQUESTS_PER_TABLE)
    start = time.perf_counter()
    long_batches, long_services = _batches_and_services(
        long_traces, frontend, model, cluster, LONG_RUN_QUERIES,
        0.8 * qps_per_rho)
    long_report = event.summarize(cluster.describe(), long_batches,
                                  long_services,
                                  num_servers=NUM_FRONTENDS)
    interp_seconds = time.perf_counter() - start
    # Exact mode memoises by batch content, so it would only cycle-
    # simulate the *distinct* compositions in the stream (the trace pool
    # cycles, so many batches repeat); charge it for those alone.
    distinct_batches = len({
        tuple(query.fingerprint() for query in batch.queries)
        for batch in long_batches})
    exact_mode_seconds = exact_seconds_per_batch * distinct_batches
    long_run = {
        "num_queries": LONG_RUN_QUERIES,
        "num_batches": len(long_batches),
        "num_distinct_batches": distinct_batches,
        "interp_seconds": round(interp_seconds, 3),
        "exact_mode_seconds_estimated": round(exact_mode_seconds, 1),
        "speedup_vs_exact": round(exact_mode_seconds / interp_seconds, 1),
        "p99_us": round(long_report.p99_us, 2),
        "service_model": model.stats(),
    }
    return {"workload": "fig16-serving", "system": cluster.describe(),
            "num_frontends": NUM_FRONTENDS, "sweep": sweep,
            "service_model_accuracy": accuracy, "long_run": long_run}


def _batches_and_services(traces, frontend, model, cluster, num_queries,
                          qps):
    batches = frontend.form_batches(
        build_queries(traces, num_queries, qps=qps))
    return batches, model.service_times_us(cluster, batches)


def bench_queue_validation(benchmark):
    payload = benchmark.pedantic(compute_validation, rounds=1, iterations=1)
    sweep = payload["sweep"]
    rows = [(point["rho_target"], round(point["rho"], 3),
             "%+.1f%%" % (100 * point["mean_error"]),
             "%+.1f%%" % (100 * point["p50_error"]),
             "%+.1f%%" % (100 * point["p95_error"]),
             "%+.1f%%" % (100 * point["p99_error"]))
            for point in sweep]
    print()
    print(format_table(
        "Queue validation -- analytic vs event-driven "
        "(%s, %d frontends)" % (payload["system"],
                                payload["num_frontends"]),
        ["rho target", "rho", "mean err", "p50 err", "p95 err", "p99 err"],
        rows))
    accuracy = payload["service_model_accuracy"]
    long_run = payload["long_run"]
    print("interp service model: mean |err| %.1f%%, max |err| %.1f%% "
          "over %d fig16 batches"
          % (100 * accuracy["mean_abs_error"],
             100 * accuracy["max_abs_error"], accuracy["num_batches"]))
    print("%d-query event run: %.1fs interpolated vs %.0fs exact-mode "
          "estimate (%.0fx)"
          % (long_run["num_queries"], long_run["interp_seconds"],
             long_run["exact_mode_seconds_estimated"],
             long_run["speedup_vs_exact"]))

    # The sweep must cover low to near-saturation utilisation.
    assert len(sweep) == len(RHO_TARGETS)
    assert sweep[0]["rho"] < 0.3
    assert sweep[-1]["rho"] > 0.88
    assert all(np.isfinite(point["p99_error"]) for point in sweep)
    # Engines agree on the mean where the closed form is trustworthy.
    assert abs(sweep[0]["mean_error"]) < 0.05
    # Acceptance criteria: interpolated service times within 10% of exact
    # on the fig16 workload, long event runs >= 10x faster than exact.
    assert accuracy["mean_abs_error"] < 0.10
    assert long_run["speedup_vs_exact"] >= 10.0
    # Machine-readable record, captured into BENCH_results.json.
    print("QUEUE_VALIDATION_JSON: %s" % json.dumps(payload))
