"""Figure 12: RankCache hit rate under the HW/SW co-optimisations.

Replays the Comb-8 combined production trace through a 1 MB RankCache under
four regimes, per table (T1-T8) and combined:

1. no optimisation (tables interleaved, everything cached),
2. table-aware packet scheduling (per-table accesses issued together),
3. scheduling + hot-entry profiling (cold lookups bypass the cache),
4. ideal (infinite cache, compulsory misses only).

The paper's claim: the combined optimisations bring the measured hit rate
close to the ideal one for every table, including the low-locality T8.
"""

from repro.cache.rank_cache import RankCache
from repro.core.hot_entry import HotEntryProfiler
from repro.traces.production import make_production_table_traces

from workloads import format_table

LOOKUPS_PER_TABLE = 20_000
NUM_ROWS = 1_000_000
VECTOR_BYTES = 64
CACHE_BYTES = 1024 * 1024
HOT_THRESHOLD = 2


def _address(table_id, row):
    return table_id * NUM_ROWS * VECTOR_BYTES + row * VECTOR_BYTES


def _interleaved(traces):
    """Baseline issue order: tables interleaved one lookup at a time."""
    order = []
    length = max(len(t) for t in traces)
    for position in range(length):
        for trace in traces:
            if position < len(trace):
                order.append((trace.table_id, int(trace.indices[position])))
    return order


def _table_aware(traces):
    """Table-aware order: all lookups of one table issued back to back."""
    order = []
    for trace in traces:
        order.extend((trace.table_id, int(row)) for row in trace.indices)
    return order


def _replay(order, profiles=None):
    cache = RankCache(capacity_bytes=CACHE_BYTES,
                      vector_size_bytes=VECTOR_BYTES)
    per_table_hits = {}
    per_table_lookups = {}
    for table_id, row in order:
        hint = True
        if profiles is not None:
            hint = profiles[table_id].is_hot(row)
        hit = cache.lookup(_address(table_id, row), locality_hint=hint)
        per_table_hits[table_id] = per_table_hits.get(table_id, 0) + int(hit)
        per_table_lookups[table_id] = per_table_lookups.get(table_id, 0) + 1
    per_table = {table: per_table_hits[table] / per_table_lookups[table]
                 for table in per_table_lookups}
    return cache.hit_rate, per_table


def _ideal(traces):
    """Compulsory-miss-only hit rate per table (infinite cache)."""
    per_table = {}
    for trace in traces:
        unique = len(set(trace.indices.tolist()))
        per_table[trace.table_id] = 1.0 - unique / len(trace)
    overall = sum((1.0 - len(set(t.indices.tolist())) / len(t)) * len(t)
                  for t in traces) / sum(len(t) for t in traces)
    return overall, per_table


def compute_hit_rates():
    traces = make_production_table_traces(
        num_lookups_per_table=LOOKUPS_PER_TABLE, num_rows=NUM_ROWS, seed=0)
    profiler = HotEntryProfiler(threshold=HOT_THRESHOLD)
    profiles = {trace.table_id: profiler.profile(trace.indices,
                                                 trace.table_id)
                for trace in traces}
    results = {
        "none": _replay(_interleaved(traces)),
        "schedule": _replay(_table_aware(traces)),
        "schedule+profile": _replay(_table_aware(traces), profiles),
        "ideal": _ideal(traces),
    }
    rows = []
    for name in ("none", "schedule", "schedule+profile", "ideal"):
        overall, per_table = results[name]
        rows.append([name, round(overall, 3)]
                    + [round(per_table[t], 3) for t in range(len(traces))])
    headers = ["config", "Comb-8"] + ["T%d" % (i + 1)
                                      for i in range(len(traces))]
    return headers, rows


def bench_fig12_hitrate_optimizations(benchmark):
    headers, rows = benchmark.pedantic(compute_hit_rates, rounds=1,
                                       iterations=1)
    print()
    print(format_table("Fig. 12 -- 1 MB RankCache hit rate", headers, rows))
    by_name = {row[0]: row for row in rows}
    # Each optimisation step must not hurt the combined hit rate, and the
    # fully-optimised configuration approaches the ideal (compulsory) limit.
    assert by_name["schedule"][1] >= by_name["none"][1] - 0.02
    assert by_name["schedule+profile"][1] >= by_name["schedule"][1] - 0.02
    assert by_name["schedule+profile"][1] >= 0.6 * by_name["ideal"][1]
    # The trend holds for the high-locality table T1 as well.
    assert by_name["schedule+profile"][2] >= 0.6 * by_name["ideal"][2]
