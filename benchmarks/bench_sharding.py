"""Sharding-policy benchmark: replication + load-aware placement on skew.

Production embedding traffic is skewed: a handful of hot tables carry most
of the lookups, so single-placement sharding (round-robin or hash of the
table id) leaves one shard setting every batch's service time.  This
benchmark offers the same skewed production-trace query stream to four
placement configurations of a sharded cluster --

* ``round-robin`` -- the PR-1 baseline (table id modulo node count),
* ``hash``        -- Knuth multiplicative hash of the table id,
* ``load-aware``  -- greedy bin-packing by per-table trace load, and
* ``load-aware + replication`` -- bin-packing plus hot-table replicas
  routed least-loaded-first,

and records per policy the shard-load imbalance (max/mean per-node
lookups) and the event-engine p99 / sustainable-QPS figures at the same
offered load.  Claims checked: load-aware placement reduces the imbalance
vs round-robin, and replication reduces it further while improving the
measured p99 and the sustainable QPS.

The machine-readable summary is printed last (``SHARDING_JSON:``) so
``run_all.py`` captures it into ``BENCH_results.json`` (and fails the run
if any field is non-finite).
"""

import json

import numpy as np

from repro.serving import (
    BatchingFrontend,
    PoissonArrivalProcess,
    ReplicatedTableSharder,
    ShardedServingCluster,
    TableSharder,
    load_imbalance,
    queries_from_traces,
)
from repro.traces.production import ProductionTraceGenerator

from workloads import (
    NUM_ROWS,
    VECTOR_BYTES,
    address_of,
    format_table,
    smoke_scaled,
)

SYSTEM = "recnmp-opt"
NUM_NODES = 4
NUM_FRONTENDS = 2
NUM_TABLES = 8
#: Skewed per-table pooling factors: the first table carries ~half of the
#: cluster's lookups (the hot-table regime replication exists for), and
#: the factors are large enough that lookup volume -- not per-request
#: dispatch overhead -- dominates each shard's service time.
POOLINGS = (256, 96, 48, 32, 24, 16, 8, 8)
QUERY_BATCH = 8                  # poolings per request
NUM_QUERIES = smoke_scaled(96, 24)
MAX_BATCH = 4
MAX_DELAY_US = 200.0
#: Offered load as a fraction of the round-robin baseline's sustainable
#: QPS: high enough that queueing matters, stable for every policy.
LOAD_FRACTION = 0.75
MAX_REPLICAS = 3
HOT_FRACTION = 0.15
#: Per-request dispatch cost in lookup-equivalents: RecNMP charges every
#: SLS request instruction issue and packet headers worth roughly this
#: many lookups, so the load fed to placement/routing is
#: ``lookups + overhead * requests`` -- balancing raw lookups alone would
#: over-pack nodes with many small-table requests.
REQUEST_OVERHEAD_LOOKUPS = 80.0
#: Distinct requests per table in the trace pool (trace length scales
#: with the table's pooling factor, preserving the skew in the traces).
REQUESTS_PER_TABLE = smoke_scaled(16, 6)


def build_traces():
    generator = ProductionTraceGenerator(num_rows=NUM_ROWS,
                                         num_tables=NUM_TABLES, seed=0)
    return [generator.generate_table_trace(
        index, QUERY_BATCH * POOLINGS[index] * REQUESTS_PER_TABLE)
        for index in range(NUM_TABLES)]


def build_queries(traces, qps, seed=4):
    return queries_from_traces(
        traces, NUM_QUERIES, PoissonArrivalProcess(rate_qps=qps, seed=seed),
        batch_size=QUERY_BATCH, pooling_factor=POOLINGS)


def build_sharders(queries):
    """(name, sharder factory) pairs, round-robin baseline first.

    The load-aware sharders measure per-table loads from the offered
    stream itself (arrival times do not matter, only request content).
    """
    def replicated(max_replicas):
        return ReplicatedTableSharder.from_queries(
            NUM_NODES, queries,
            request_overhead_lookups=REQUEST_OVERHEAD_LOOKUPS,
            policy="load-aware", max_replicas=max_replicas,
            hot_fraction=HOT_FRACTION, seed=0)

    return (
        ("round-robin", lambda: TableSharder(NUM_NODES, "round-robin")),
        ("hash", lambda: TableSharder(NUM_NODES, "hash")),
        ("load-aware", lambda: replicated(1)),
        ("load-aware+replication", lambda: replicated(MAX_REPLICAS)),
    )


def compute_sharding_sweep():
    traces = build_traces()
    frontend = BatchingFrontend(max_queries=MAX_BATCH,
                                max_delay_us=MAX_DELAY_US)

    def make_cluster(sharder):
        return ShardedServingCluster(
            num_nodes=NUM_NODES, node_system=SYSTEM, sharder=sharder,
            num_frontends=NUM_FRONTENDS, address_of=address_of,
            vector_size_bytes=VECTOR_BYTES)

    # Calibrate the offered load against the round-robin baseline so every
    # policy serves the identical, comparably loaded stream.
    probe = make_cluster(TableSharder(NUM_NODES)).simulate(
        build_queries(traces, qps=20_000.0), frontend=frontend)
    offered_qps = LOAD_FRACTION * probe.sustainable_qps
    queries = build_queries(traces, qps=offered_qps)
    requests = [request for query in queries for request in query.requests]
    sharders = build_sharders(queries)

    policies = {}
    for name, make_sharder in sharders:
        sharder = make_sharder()
        imbalance = load_imbalance(sharder.shard_load(requests))
        report = make_cluster(sharder).simulate(queries, frontend=frontend,
                                                engine="event")
        policies[name] = {
            "imbalance": round(float(imbalance), 4),
            "utilization": round(report.utilization, 4),
            "mean_service_us": round(report.mean_service_us, 2),
            "p99_us": round(report.p99_us, 2),
            "sustainable_qps": round(report.sustainable_qps, 1),
            "sharder": sharder.describe(),
        }

    baseline = policies["round-robin"]
    replicated = policies["load-aware+replication"]
    deltas = {
        "imbalance_reduction": round(
            baseline["imbalance"] / replicated["imbalance"], 3),
        "p99_speedup": round(baseline["p99_us"] / replicated["p99_us"], 3),
        "sustainable_qps_gain": round(
            replicated["sustainable_qps"] / baseline["sustainable_qps"],
            3),
    }
    return {"workload": "skewed-production-serving",
            "system": "%dx %s" % (NUM_NODES, SYSTEM),
            "num_frontends": NUM_FRONTENDS,
            "poolings": list(POOLINGS),
            "offered_qps": round(offered_qps, 1),
            "policies": policies,
            "replication_vs_round_robin": deltas}


def bench_sharding_policies(benchmark):
    payload = benchmark.pedantic(compute_sharding_sweep, rounds=1,
                                 iterations=1)
    policies = payload["policies"]
    rows = [(name, record["imbalance"], record["utilization"],
             record["mean_service_us"], record["p99_us"],
             record["sustainable_qps"])
            for name, record in policies.items()]
    print()
    print(format_table(
        "Sharding policies on a skewed production trace "
        "(%s, %.0f QPS offered)" % (payload["system"],
                                    payload["offered_qps"]),
        ["policy", "imbalance", "rho", "E[S] (us)", "p99 (us)",
         "sustainable QPS"], rows))
    deltas = payload["replication_vs_round_robin"]
    print("load-aware + replication vs round-robin: %.2fx lower "
          "imbalance, %.2fx lower p99, %.2fx sustainable QPS"
          % (deltas["imbalance_reduction"], deltas["p99_speedup"],
             deltas["sustainable_qps_gain"]))

    round_robin = policies["round-robin"]
    load_aware = policies["load-aware"]
    replicated = policies["load-aware+replication"]
    # Every reported field must be finite (run_all.py enforces the same
    # on the captured JSON payload).
    for record in policies.values():
        for field in ("imbalance", "utilization", "mean_service_us",
                      "p99_us", "sustainable_qps"):
            assert np.isfinite(record[field])
        assert record["utilization"] < 1.0
    # Load-aware placement reduces the shard-load imbalance vs round-robin
    # on a skewed trace, and replication strictly tightens it further.
    assert load_aware["imbalance"] < round_robin["imbalance"]
    assert replicated["imbalance"] < load_aware["imbalance"]
    # Dividing the hot tables' load shortens the slowest shard, which
    # shows up as lower measured p99 and higher sustainable throughput.
    assert replicated["mean_service_us"] < round_robin["mean_service_us"]
    assert replicated["p99_us"] < round_robin["p99_us"]
    assert replicated["sustainable_qps"] > round_robin["sustainable_qps"]
    # Machine-readable record, captured into BENCH_results.json.
    print("SHARDING_JSON: %s" % json.dumps(payload))
