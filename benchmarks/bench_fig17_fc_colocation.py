"""Figure 17: co-located FC latency degradation and the RecNMP relief.

Regenerates the TopFC cache-contention study: the latency degradation of the
TopFC layers of RM2-small and RM2-large as the number of co-located models
grows (1-8) for two pooling factors, on the CPU baseline and with SLS
offloaded to RecNMP.  Paper claims: degradation grows with co-location,
FC size and pooling; RecNMP recovers up to ~30% for the large (LLC-resident)
TopFC and ~4% for FCs that fit in L2.
"""

from repro.dlrm.config import RM1_SMALL, RM2_LARGE, RM2_SMALL
from repro.perf.colocation import ColocationModel

from workloads import format_table

COLOCATION_DEGREES = (1, 2, 4, 8)
POOLING_FACTORS = (80, 160)


def _top_fc_bytes(config):
    """Weight bytes of the TopFC stack only."""
    total = 0
    prev = config.top_mlp_input_width()
    for width in config.top_mlp:
        total += prev * width * 4
        prev = width
    return total


def compute_fig17():
    model = ColocationModel()
    rows = []
    for config in (RM2_SMALL, RM2_LARGE):
        fc_bytes = _top_fc_bytes(config)
        for pooling in POOLING_FACTORS:
            for degree in COLOCATION_DEGREES:
                baseline = model.baseline_slowdown(fc_bytes, degree, pooling)
                relieved = model.recnmp_slowdown(fc_bytes, degree, pooling)
                rows.append(("%s TopFC" % config.name,
                             round(fc_bytes / 1e6, 2), pooling, degree,
                             round(baseline, 3), round(relieved, 3),
                             round(100 * (1 - relieved / baseline), 1)))
    small_fc = model.evaluate("RM1-small BottomFC-class (fits in L2)",
                              512 * 1024, COLOCATION_DEGREES)
    for result in small_fc:
        rows.append((result.fc_name, 0.5, 80, result.colocation_degree,
                     round(result.baseline_slowdown, 3),
                     round(result.recnmp_slowdown, 3),
                     round(100 * result.recnmp_improvement, 1)))
    return rows


def bench_fig17_fc_colocation(benchmark):
    rows = benchmark.pedantic(compute_fig17, rounds=1, iterations=1)
    print()
    print(format_table(
        "Fig. 17 -- co-located FC slowdown (baseline vs RecNMP)",
        ["FC", "weights (MB)", "pooling", "co-location", "baseline slowdown",
         "RecNMP slowdown", "improvement %"], rows))
    rm2_large = [r for r in rows if r[0] == "RM2-large TopFC"]
    rm2_small = [r for r in rows if r[0] == "RM2-small TopFC"]
    l2_resident = [r for r in rows if "fits in L2" in r[0]]
    # Degradation grows with co-location degree and pooling.
    assert rm2_large[3][4] > rm2_large[0][4]
    assert rm2_large[7][4] >= rm2_large[3][4]
    # The larger TopFC suffers (and therefore recovers) more.
    assert max(r[6] for r in rm2_large) > max(r[6] for r in rm2_small)
    # RecNMP recovers a Fig. 17-like share for the LLC-resident TopFC...
    assert 10.0 < max(r[6] for r in rm2_large) < 35.0
    # ...and only a few percent for L2-resident layers.
    assert max(r[6] for r in l2_resident) < 6.0
    # RM1_SMALL is unused directly but kept for readers comparing configs.
    assert RM1_SMALL.top_mlp[-1] == 1
