"""Headline numbers of the paper (abstract / Section V).

* up to 9.8x memory latency speedup for the offloaded SLS operators,
* up to 4.2x end-to-end throughput improvement,
* 45.8% memory energy savings.

This bench runs the full pipeline -- production-like traces, hot-entry
profiling, table-aware scheduling, the 8-rank RecNMP-opt channel, the DRAM
baseline, the energy model, and the end-to-end composition -- and reports
our measured equivalents next to the paper's numbers.  Absolute parity is
not expected (our substrate is a scaled-down simulator); the assertions
check that each number is a large improvement of the same character.
"""

from repro.dlrm.config import RM2_LARGE
from repro.perf.end_to_end import EndToEndModel

from workloads import format_table, production_requests, run_recnmp


def compute_headline():
    requests = production_requests(num_tables=8, batch=8, pooling=40, seed=0)
    sls = run_recnmp(requests, num_dimms=4, ranks_per_dimm=2,
                     use_rank_cache=True, enable_profiling=True,
                     scheduling_policy="table-aware")
    end_to_end = EndToEndModel().speedup(RM2_LARGE, 256,
                                         sls.speedup_vs_baseline)
    rows = [
        ("SLS memory latency speedup", round(sls.speedup_vs_baseline, 2),
         "9.8x"),
        ("End-to-end model speedup (RM2-large)",
         round(end_to_end.end_to_end_speedup, 2), "4.2x"),
        ("Memory energy savings",
         "%.1f%%" % (100 * sls.energy_savings_fraction), "45.8%"),
        ("RankCache hit rate", round(sls.cache_hit_rate, 3), "--"),
    ]
    return rows, sls, end_to_end


def bench_headline_numbers(benchmark):
    rows, sls, end_to_end = benchmark.pedantic(compute_headline, rounds=1,
                                               iterations=1)
    print()
    print(format_table("Headline numbers (measured vs paper)",
                       ["metric", "measured", "paper"], rows))
    assert sls.speedup_vs_baseline > 3.0
    assert end_to_end.end_to_end_speedup > 2.0
    assert 0.25 < sls.energy_savings_fraction < 0.80
