"""Figure 6: memory bandwidth saturation with parallel SLS threads.

Regenerates the Fig. 6 curves: achieved memory bandwidth as the number of
parallel SLS threads grows, for several batch sizes, against the theoretical
peak (76.8 GB/s) and the MLC-measured ceiling (62.1 GB/s).  The paper's
saturation point -- 67.4% of peak (51.8 GB/s) at batch size 256 around 30
threads -- and the steep latency increase past it are checked.
"""

from repro.perf.bandwidth import BandwidthSaturationModel

from workloads import format_table

THREAD_COUNTS = (1, 2, 4, 8, 16, 24, 30, 36, 40)
BATCH_SIZES = (8, 64, 256)


def compute_saturation():
    model = BandwidthSaturationModel()
    rows = []
    for batch in BATCH_SIZES:
        for threads in THREAD_COUNTS:
            rows.append((batch, threads,
                         round(model.achieved_bandwidth_gbps(threads, batch),
                               2),
                         round(model.utilization(threads, batch), 3),
                         round(model.access_latency_ns(threads, batch), 1)))
    return rows


def bench_fig06_bandwidth_saturation(benchmark):
    rows = benchmark.pedantic(compute_saturation, rounds=1, iterations=1)
    model = BandwidthSaturationModel()
    print()
    print(format_table(
        "Fig. 6 -- bandwidth saturation (peak 76.8 GB/s, MLC 62.1 GB/s)",
        ["batch", "threads", "GB/s", "frac of peak", "latency (ns)"], rows))
    saturation_threads = model.saturation_point(256)
    print("saturation point at batch 256: %s threads (paper: ~30)"
          % saturation_threads)
    # Bandwidth never exceeds the MLC ceiling and grows with thread count.
    assert all(r[2] <= 62.1 + 1e-9 for r in rows)
    batch256 = [r for r in rows if r[0] == 256]
    assert batch256[-1][2] > batch256[0][2]
    # The 67.4%-of-peak saturation point lands in the paper's regime.
    assert saturation_threads is not None and 10 <= saturation_threads <= 40
    # Latency rises steeply once saturated.
    assert batch256[-1][4] > 3 * batch256[0][4]
