"""Figure 18: end-to-end model speedup and the co-location trade-off.

(a) End-to-end inference speedup of the four models with 2-, 4- and 8-rank
    RecNMP systems (SLS speedups taken from the rank-scaling study).
(b) Speedup versus batch size for the 8-rank system.
(c) Latency-throughput trade-off under model co-location, host vs
    RecNMP-opt, random vs production traces.
"""

from repro.dlrm.config import RM1_LARGE, RM1_SMALL, RM2_LARGE, RM2_SMALL
from repro.perf.end_to_end import EndToEndModel, latency_throughput_curve
from repro.perf.operator_latency import OperatorLatencyModel

from workloads import format_table, production_requests, run_system

MODELS = (RM1_SMALL, RM1_LARGE, RM2_SMALL, RM2_LARGE)
BATCH_SIZES = (8, 64, 128, 256)
RANK_CONFIGS = {"2-rank": (1, 2), "4-rank": (2, 2), "8-rank": (4, 2)}


def _sls_speedups():
    """Memory-latency speedup of each rank configuration (simulated)."""
    requests = production_requests(num_tables=8, batch=8, pooling=40, seed=0)
    speedups = {}
    for label, (num_dimms, ranks_per_dimm) in RANK_CONFIGS.items():
        result = run_system("recnmp-opt", requests, num_dimms=num_dimms,
                            ranks_per_dimm=ranks_per_dimm)
        speedups[label] = result.speedup_vs_baseline
    return speedups


def compute_fig18():
    sls_speedups = _sls_speedups()
    model = EndToEndModel()
    config_rows = []
    for dlrm in MODELS:
        for label, sls_speedup in sls_speedups.items():
            result = model.speedup(dlrm, 256, sls_speedup)
            config_rows.append((dlrm.name, label, round(sls_speedup, 2),
                                round(result.sls_fraction, 3),
                                round(result.end_to_end_speedup, 2)))
    batch_rows = []
    for dlrm in MODELS:
        for batch in BATCH_SIZES:
            result = model.speedup(dlrm, batch, sls_speedups["8-rank"])
            batch_rows.append((dlrm.name, batch,
                               round(result.end_to_end_speedup, 2)))
    latency_model = OperatorLatencyModel()
    tradeoff_rows = []
    for name, use_recnmp in (("host", False), ("RecNMP-opt", True)):
        for trace, bonus in (("random", 1.0), ("production", 1.15)):
            points = latency_throughput_curve(
                latency_model, RM2_SMALL, 64, [1, 2, 4, 8],
                sls_speedup=sls_speedups["8-rank"], locality_bonus=bonus,
                use_recnmp=use_recnmp)
            for point in points:
                tradeoff_rows.append((name, trace, point["colocation"],
                                      round(point["latency_us"] / 1e3, 3),
                                      round(point[
                                          "throughput_inferences_per_s"], 0)))
    return sls_speedups, config_rows, batch_rows, tradeoff_rows


def bench_fig18_end_to_end(benchmark):
    sls_speedups, config_rows, batch_rows, tradeoff_rows = benchmark.pedantic(
        compute_fig18, rounds=1, iterations=1)
    print()
    print("Simulated SLS memory-latency speedups: %s"
          % {k: round(v, 2) for k, v in sls_speedups.items()})
    print(format_table(
        "Fig. 18(a) -- end-to-end speedup by rank configuration (batch 256)",
        ["model", "config", "SLS speedup", "SLS fraction", "end-to-end"],
        config_rows))
    print()
    print(format_table("Fig. 18(b) -- end-to-end speedup vs batch (8-rank)",
                       ["model", "batch", "speedup"], batch_rows))
    print()
    print(format_table(
        "Fig. 18(c) -- latency/throughput under co-location (RM2-small)",
        ["system", "trace", "co-located models", "latency (ms)",
         "inferences/s"], tradeoff_rows))
    # Speedup grows with rank count for every model.
    by_model = {}
    for name, label, _, _, speedup in config_rows:
        by_model.setdefault(name, {})[label] = speedup
    for speedups in by_model.values():
        assert speedups["8-rank"] > speedups["4-rank"] > speedups["2-rank"]
    # The 8-rank end-to-end speedups land in the paper's 2.4-4.2x regime.
    assert 1.8 < min(s["8-rank"] for s in by_model.values())
    assert max(s["8-rank"] for s in by_model.values()) < 7.0
    # Speedup grows with batch size.
    by_batch = {}
    for name, batch, speedup in batch_rows:
        by_batch.setdefault(name, []).append(speedup)
    for series in by_batch.values():
        assert series[-1] > series[0]
    # Co-location trades latency for throughput on both systems, and RecNMP
    # dominates the host curve.
    host = [r for r in tradeoff_rows
            if r[0] == "host" and r[1] == "production"]
    nmp = [r for r in tradeoff_rows
           if r[0] == "RecNMP-opt" and r[1] == "production"]
    assert host[-1][4] > host[0][4] and host[-1][3] > host[0][3]
    for host_point, nmp_point in zip(host, nmp):
        assert nmp_point[3] < host_point[3]
        assert nmp_point[4] > host_point[4]
