"""Fully-connected (MLP) layers of the DLRM model.

These are the compute-intensive operators that stay on the host CPU in the
RecNMP system (BottomFC and TopFC).  The functional implementation is plain
NumPy; the performance characteristics (FLOPs, weight bytes) feed the
roofline and co-location models in :mod:`repro.perf`.
"""

import numpy as np


def relu(x):
    """Rectified linear unit."""
    return np.maximum(x, 0.0)


def sigmoid(x):
    """Numerically stable logistic sigmoid."""
    out = np.empty_like(x, dtype=np.float64)
    positive = x >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-x[positive]))
    exp_x = np.exp(x[~positive])
    out[~positive] = exp_x / (1.0 + exp_x)
    return out.astype(np.float32)


class MLP:
    """A stack of dense layers with ReLU activations (sigmoid on the last).

    Parameters
    ----------
    input_dim:
        Width of the input feature vector.
    layer_widths:
        Output width of each layer.
    final_activation:
        ``"sigmoid"``, ``"relu"`` or ``None`` for the last layer.
    seed:
        RNG seed for weight initialisation.
    """

    def __init__(self, input_dim, layer_widths, final_activation="relu",
                 seed=None):
        if input_dim <= 0:
            raise ValueError("input_dim must be positive")
        if not layer_widths:
            raise ValueError("layer_widths must be non-empty")
        if final_activation not in ("relu", "sigmoid", None):
            raise ValueError("unsupported final_activation %r"
                             % (final_activation,))
        self.input_dim = int(input_dim)
        self.layer_widths = tuple(int(w) for w in layer_widths)
        self.final_activation = final_activation
        rng = np.random.default_rng(seed)
        self.weights = []
        self.biases = []
        prev = self.input_dim
        for width in self.layer_widths:
            scale = np.sqrt(2.0 / prev)
            self.weights.append(
                (rng.standard_normal((prev, width)) * scale).astype(
                    np.float32))
            self.biases.append(np.zeros(width, dtype=np.float32))
            prev = width

    # ------------------------------------------------------------------ #
    def forward(self, x):
        """Run the MLP on a batch ``x`` of shape (batch, input_dim)."""
        x = np.asarray(x, dtype=np.float32)
        if x.ndim == 1:
            x = x[None, :]
        if x.shape[1] != self.input_dim:
            raise ValueError(
                "input width %d does not match MLP input_dim %d"
                % (x.shape[1], self.input_dim))
        activation = x
        last = len(self.weights) - 1
        for i, (weight, bias) in enumerate(zip(self.weights, self.biases)):
            activation = activation @ weight + bias
            if i < last:
                activation = relu(activation)
            elif self.final_activation == "relu":
                activation = relu(activation)
            elif self.final_activation == "sigmoid":
                activation = sigmoid(activation)
        return activation

    __call__ = forward

    # ------------------------------------------------------------------ #
    @property
    def num_parameters(self):
        """Total number of weight + bias parameters."""
        return sum(w.size + b.size for w, b in zip(self.weights, self.biases))

    @property
    def weight_bytes(self):
        """Bytes of FP32 parameters."""
        return self.num_parameters * 4

    def flops_per_sample(self):
        """Multiply-accumulate FLOPs (2 * MACs) for one input sample."""
        flops = 0
        prev = self.input_dim
        for width in self.layer_widths:
            flops += 2 * prev * width
            prev = width
        return flops
