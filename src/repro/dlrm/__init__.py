"""DLRM workload substrate.

Functional (NumPy) implementations of the deep-learning recommendation model
pieces the paper characterises: embedding tables with the SLS family of
Gather-Reduce operators, bottom/top MLPs, and the four representative model
configurations (RM1-small, RM1-large, RM2-small, RM2-large).
"""

from repro.dlrm.config import (
    ModelConfig,
    RM1_SMALL,
    RM1_LARGE,
    RM2_SMALL,
    RM2_LARGE,
    MODEL_CONFIGS,
    get_model_config,
)
from repro.dlrm.embedding import EmbeddingTable, EmbeddingBag
from repro.dlrm.operators import (
    SLSRequest,
    sparse_lengths_sum,
    sparse_lengths_mean,
    sparse_lengths_weighted_sum,
    sparse_lengths_sum_8bit,
    quantize_rowwise_8bit,
    dequantize_rowwise_8bit,
)
from repro.dlrm.mlp import MLP
from repro.dlrm.model import DLRMModel, DLRMOutput

__all__ = [
    "ModelConfig",
    "RM1_SMALL",
    "RM1_LARGE",
    "RM2_SMALL",
    "RM2_LARGE",
    "MODEL_CONFIGS",
    "get_model_config",
    "EmbeddingTable",
    "EmbeddingBag",
    "SLSRequest",
    "sparse_lengths_sum",
    "sparse_lengths_mean",
    "sparse_lengths_weighted_sum",
    "sparse_lengths_sum_8bit",
    "quantize_rowwise_8bit",
    "dequantize_rowwise_8bit",
    "MLP",
    "DLRMModel",
    "DLRMOutput",
]
