"""Representative recommendation-model configurations.

Figure 2(b) of the paper lists the four DLRM configurations studied
(RM1-small, RM1-large, RM2-small, RM2-large): the number of embedding
tables, rows per table, pooling factor range, batch-size range, and the
number of FC layers.  RM1 models are smaller (few tables, over 30 % of
Facebook's ML cycles), RM2 models have tens of tables (over 25 %).
"""

from dataclasses import dataclass, field


@dataclass(frozen=True)
class ModelConfig:
    """Parameters of one recommendation model configuration.

    Attributes
    ----------
    name:
        Human-readable configuration name.
    num_embedding_tables:
        Number of sparse features / embedding tables.
    rows_per_table:
        Number of rows (entities) in each embedding table.
    embedding_dim:
        Embedding vector length in FP32 elements (vector bytes = dim * 4).
    pooling_factor:
        Average number of lookups reduced per pooling operation.
    bottom_mlp:
        Layer widths of the bottom MLP (dense-feature arm).
    top_mlp:
        Layer widths of the top MLP (post feature-interaction).
    num_dense_features:
        Width of the dense input feature vector.
    batch_sizes:
        Batch sizes exercised in the evaluation.
    """

    name: str
    num_embedding_tables: int
    rows_per_table: int
    embedding_dim: int
    pooling_factor: int
    bottom_mlp: tuple
    top_mlp: tuple
    num_dense_features: int = 512
    batch_sizes: tuple = (8, 64, 128, 256)

    def __post_init__(self):
        if self.num_embedding_tables <= 0:
            raise ValueError("num_embedding_tables must be positive")
        if self.rows_per_table <= 0:
            raise ValueError("rows_per_table must be positive")
        if self.embedding_dim <= 0:
            raise ValueError("embedding_dim must be positive")
        if self.pooling_factor <= 0:
            raise ValueError("pooling_factor must be positive")
        if not self.bottom_mlp or not self.top_mlp:
            raise ValueError("MLP layer lists must be non-empty")

    # ------------------------------------------------------------------ #
    @property
    def embedding_vector_bytes(self):
        """Bytes of one FP32 embedding vector."""
        return self.embedding_dim * 4

    @property
    def embedding_table_bytes(self):
        """Bytes of one embedding table."""
        return self.rows_per_table * self.embedding_vector_bytes

    @property
    def total_embedding_bytes(self):
        """Bytes of all embedding tables of one model instance."""
        return self.num_embedding_tables * self.embedding_table_bytes

    def lookups_per_sample(self):
        """Embedding rows gathered for one input sample."""
        return self.num_embedding_tables * self.pooling_factor

    def sls_bytes_per_sample(self):
        """Bytes read from embedding tables for one input sample."""
        return self.lookups_per_sample() * self.embedding_vector_bytes

    def sls_flops_per_sample(self):
        """FLOPs of the pooling reductions for one input sample."""
        # Each pooling sums `pooling_factor` vectors of `embedding_dim`
        # elements: (pooling_factor - 1) * dim additions per table.
        return (self.num_embedding_tables
                * (self.pooling_factor - 1) * self.embedding_dim)

    def fc_flops_per_sample(self):
        """FLOPs of the bottom + top MLPs for one input sample (GEMV)."""
        flops = 0
        prev = self.num_dense_features
        for width in self.bottom_mlp:
            flops += 2 * prev * width
            prev = width
        interaction_width = self.top_mlp_input_width()
        prev = interaction_width
        for width in self.top_mlp:
            flops += 2 * prev * width
            prev = width
        return flops

    def top_mlp_input_width(self):
        """Width of the feature-interaction output feeding the top MLP.

        DLRM concatenates the bottom-MLP output with the pairwise dot
        products of the embedding-pooling outputs and the dense embedding.
        """
        num_features = self.num_embedding_tables + 1
        num_pairs = num_features * (num_features - 1) // 2
        return self.bottom_mlp[-1] + num_pairs

    def fc_weight_bytes(self):
        """Bytes of all FC weights (FP32)."""
        total = 0
        prev = self.num_dense_features
        for width in self.bottom_mlp:
            total += prev * width * 4
            prev = width
        prev = self.top_mlp_input_width()
        for width in self.top_mlp:
            total += prev * width * 4
            prev = width
        return total


# --------------------------------------------------------------------- #
# The four configurations of Figure 2(b).  The paper gives the table
# count, ~1M rows per table, pooling 20-80 (we use the 80 upper bound the
# SLS latency study quotes: "one pooling is the sum of 80 embedding
# vectors"), and 6 FC layers; MLP widths follow the open-source DLRM
# benchmark's representative configurations.
# --------------------------------------------------------------------- #
RM1_SMALL = ModelConfig(
    name="RM1-small",
    num_embedding_tables=8,
    rows_per_table=1_000_000,
    embedding_dim=64,
    pooling_factor=80,
    bottom_mlp=(512, 256, 64),
    top_mlp=(256, 64, 1),
)

RM1_LARGE = ModelConfig(
    name="RM1-large",
    num_embedding_tables=12,
    rows_per_table=1_000_000,
    embedding_dim=64,
    pooling_factor=80,
    bottom_mlp=(512, 256, 64),
    top_mlp=(512, 128, 1),
)

RM2_SMALL = ModelConfig(
    name="RM2-small",
    num_embedding_tables=24,
    rows_per_table=1_000_000,
    embedding_dim=64,
    pooling_factor=80,
    bottom_mlp=(512, 256, 64),
    top_mlp=(512, 128, 1),
)

RM2_LARGE = ModelConfig(
    name="RM2-large",
    num_embedding_tables=64,
    rows_per_table=1_000_000,
    embedding_dim=64,
    pooling_factor=80,
    bottom_mlp=(512, 256, 64),
    top_mlp=(1024, 512, 1),
)

MODEL_CONFIGS = {
    config.name: config
    for config in (RM1_SMALL, RM1_LARGE, RM2_SMALL, RM2_LARGE)
}


def get_model_config(name):
    """Look up a model configuration by name (case-insensitive)."""
    key = name.strip()
    for config_name, config in MODEL_CONFIGS.items():
        if config_name.lower() == key.lower():
            return config
    raise KeyError(
        "unknown model config %r; available: %s"
        % (name, ", ".join(sorted(MODEL_CONFIGS))))


def scaled_config(base, **overrides):
    """Return a copy of ``base`` with selected fields overridden.

    Useful for building reduced-size configurations that keep the shape of a
    production model but fit comfortably in unit tests.
    """
    from dataclasses import asdict

    params = asdict(base)
    params.update(overrides)
    # dataclasses.asdict converts tuples to lists; restore tuples.
    for key in ("bottom_mlp", "top_mlp", "batch_sizes"):
        params[key] = tuple(params[key])
    return ModelConfig(**params)
