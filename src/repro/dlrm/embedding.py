"""Embedding tables and the EmbeddingBag front-end.

:class:`EmbeddingTable` owns the table data (optionally 8-bit quantised) and
its placement in the simulated physical address space, which is what the
trace/packet generators need to turn row indices into DRAM addresses.
:class:`EmbeddingBag` groups the tables of one model and exposes the SLS
execution used by the functional DLRM model.
"""

import numpy as np

from repro.dlrm.operators import (
    quantize_rowwise_8bit,
    sparse_lengths_mean,
    sparse_lengths_sum,
    sparse_lengths_sum_8bit,
    sparse_lengths_weighted_sum,
)


class EmbeddingTable:
    """One embedding table with optional quantisation and address placement.

    Parameters
    ----------
    num_rows, embedding_dim:
        Table geometry.
    table_id:
        Integer identifier used in traces and NMP packets.
    base_address:
        Starting byte address of the table in the (virtual) address space;
        rows are laid out contiguously.
    quantized:
        If True the table stores uint8 rows with per-row scale/bias.
    seed:
        RNG seed for the synthetic weights.
    lazy:
        If True no weight data is materialised (address/geometry only), which
        is what the trace-driven performance studies use for the 1M-row
        production-scale tables.
    """

    def __init__(self, num_rows, embedding_dim, table_id=0, base_address=0,
                 quantized=False, seed=None, lazy=False):
        if num_rows <= 0:
            raise ValueError("num_rows must be positive")
        if embedding_dim <= 0:
            raise ValueError("embedding_dim must be positive")
        if base_address < 0:
            raise ValueError("base_address must be non-negative")
        self.num_rows = int(num_rows)
        self.embedding_dim = int(embedding_dim)
        self.table_id = int(table_id)
        self.base_address = int(base_address)
        self.quantized = bool(quantized)
        self.lazy = bool(lazy)
        self.weights = None
        self.quantized_rows = None
        self.scale = None
        self.bias = None
        if not lazy:
            rng = np.random.default_rng(seed)
            weights = rng.standard_normal(
                (self.num_rows, self.embedding_dim)).astype(np.float32)
            if quantized:
                self.quantized_rows, self.scale, self.bias = \
                    quantize_rowwise_8bit(weights)
            else:
                self.weights = weights

    # ------------------------------------------------------------------ #
    @property
    def bytes_per_row(self):
        """Storage bytes of one row (FP32, or uint8 + scale/bias)."""
        if self.quantized:
            return self.embedding_dim + 8  # uint8 elements + fp32 scale+bias
        return self.embedding_dim * 4

    @property
    def table_bytes(self):
        return self.num_rows * self.bytes_per_row

    def row_address(self, row_index):
        """Virtual byte address of a row."""
        if not 0 <= row_index < self.num_rows:
            raise IndexError(
                "row %d out of range for table with %d rows"
                % (row_index, self.num_rows))
        return self.base_address + row_index * self.bytes_per_row

    def row_addresses(self, row_indices):
        """Vectorised :meth:`row_address` for an array of indices."""
        rows = np.asarray(row_indices, dtype=np.int64)
        if rows.size and (rows.min() < 0 or rows.max() >= self.num_rows):
            raise IndexError("row index out of range")
        return self.base_address + rows * self.bytes_per_row

    def dense_weights(self):
        """Return the FP32 view of the table (dequantising if needed)."""
        if self.lazy:
            raise RuntimeError("lazy table has no weight data")
        if self.quantized:
            from repro.dlrm.operators import dequantize_rowwise_8bit

            return dequantize_rowwise_8bit(self.quantized_rows, self.scale,
                                           self.bias)
        return self.weights

    # ------------------------------------------------------------------ #
    def lookup(self, indices, lengths, weights=None, mode="sum"):
        """Execute an SLS-family pooling over this table."""
        if self.lazy:
            raise RuntimeError("lazy table cannot execute lookups")
        if self.quantized:
            return sparse_lengths_sum_8bit(self.quantized_rows, self.scale,
                                           self.bias, indices, lengths,
                                           weights)
        if mode == "sum":
            if weights is not None:
                return sparse_lengths_weighted_sum(self.weights, indices,
                                                   lengths, weights)
            return sparse_lengths_sum(self.weights, indices, lengths)
        if mode == "mean":
            return sparse_lengths_mean(self.weights, indices, lengths)
        raise ValueError("unsupported pooling mode %r" % (mode,))


class EmbeddingBag:
    """The set of embedding tables of one model instance.

    Tables are laid out back to back in a shared virtual address space
    starting at ``base_address``, each aligned to a page boundary so the
    page-colouring layout can pin whole tables to ranks.
    """

    def __init__(self, num_tables, num_rows, embedding_dim, base_address=0,
                 page_size=4096, quantized=False, seed=0, lazy=False):
        if num_tables <= 0:
            raise ValueError("num_tables must be positive")
        self.page_size = int(page_size)
        self.tables = []
        address = int(base_address)
        for table_id in range(num_tables):
            table = EmbeddingTable(
                num_rows=num_rows,
                embedding_dim=embedding_dim,
                table_id=table_id,
                base_address=address,
                quantized=quantized,
                seed=None if seed is None else seed + table_id,
                lazy=lazy,
            )
            self.tables.append(table)
            # Align the next table to a page boundary.
            address += table.table_bytes
            remainder = address % self.page_size
            if remainder:
                address += self.page_size - remainder
        self.total_bytes = address - int(base_address)

    def __len__(self):
        return len(self.tables)

    def __getitem__(self, table_id):
        return self.tables[table_id]

    def __iter__(self):
        return iter(self.tables)

    @classmethod
    def from_config(cls, config, base_address=0, lazy=True, seed=0,
                    rows_override=None):
        """Build the bag described by a :class:`ModelConfig`.

        ``rows_override`` lets tests shrink the 1M-row production tables.
        """
        return cls(
            num_tables=config.num_embedding_tables,
            num_rows=rows_override or config.rows_per_table,
            embedding_dim=config.embedding_dim,
            base_address=base_address,
            lazy=lazy,
            seed=seed,
        )

    def forward(self, requests, mode="sum"):
        """Execute one SLS request per table; returns a list of outputs."""
        outputs = []
        for request in requests:
            table = self.tables[request.table_id]
            outputs.append(table.lookup(request.indices, request.lengths,
                                        weights=request.weights, mode=mode))
        return outputs
