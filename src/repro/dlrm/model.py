"""Functional DLRM model: BottomFC -> embeddings -> interaction -> TopFC.

This is a faithful (if simplified) NumPy reproduction of the open-source
DLRM benchmark architecture the paper characterises (Fig. 2(a)): dense
features flow through the bottom MLP, sparse features through per-table SLS
poolings, both meet in a pairwise dot-product feature interaction, and the
top MLP produces the click-through-rate prediction.
"""

from dataclasses import dataclass

import numpy as np

from repro.dlrm.config import ModelConfig
from repro.dlrm.embedding import EmbeddingBag
from repro.dlrm.mlp import MLP
from repro.dlrm.operators import SLSRequest


@dataclass
class DLRMOutput:
    """Output of one DLRM forward pass."""

    predictions: np.ndarray          # (batch,) click-through-rate in [0, 1]
    bottom_output: np.ndarray        # (batch, bottom_mlp[-1])
    embedding_outputs: list          # per-table (batch, dim) pooled vectors
    interaction: np.ndarray          # (batch, top_mlp_input_width)


class DLRMModel:
    """A runnable, small-scale instance of a DLRM configuration.

    Production tables have a million rows; for a functional model we allow
    shrinking them (``rows_override``) while keeping the architecture -- the
    performance studies never need the full weight data, only addresses.
    """

    def __init__(self, config, rows_override=1024, seed=0):
        if not isinstance(config, ModelConfig):
            raise TypeError("config must be a ModelConfig")
        if rows_override is not None and rows_override <= 0:
            raise ValueError("rows_override must be positive")
        self.config = config
        self.num_rows = rows_override or config.rows_per_table
        self.embeddings = EmbeddingBag(
            num_tables=config.num_embedding_tables,
            num_rows=self.num_rows,
            embedding_dim=config.embedding_dim,
            lazy=False,
            seed=seed,
        )
        self.bottom_mlp = MLP(config.num_dense_features, config.bottom_mlp,
                              final_activation="relu", seed=seed + 1)
        if config.bottom_mlp[-1] != config.embedding_dim:
            raise ValueError(
                "bottom MLP output width (%d) must equal embedding_dim (%d) "
                "for the dot-product interaction"
                % (config.bottom_mlp[-1], config.embedding_dim))
        self.top_mlp = MLP(config.top_mlp_input_width(), config.top_mlp,
                           final_activation="sigmoid", seed=seed + 2)
        self._rng = np.random.default_rng(seed + 3)

    # ------------------------------------------------------------------ #
    # Input generation                                                   #
    # ------------------------------------------------------------------ #
    def random_inputs(self, batch_size, pooling_factor=None, index_sampler=None):
        """Generate a random (dense, sparse-requests) input batch.

        ``index_sampler`` optionally supplies row indices (e.g. a production
        trace generator); the default is uniform random.
        """
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        pooling = pooling_factor or self.config.pooling_factor
        dense = self._rng.standard_normal(
            (batch_size, self.config.num_dense_features)).astype(np.float32)
        requests = []
        for table_id in range(self.config.num_embedding_tables):
            count = batch_size * pooling
            if index_sampler is None:
                indices = self._rng.integers(0, self.num_rows, size=count,
                                             dtype=np.int64)
            else:
                indices = np.asarray(index_sampler(table_id, count),
                                     dtype=np.int64) % self.num_rows
            lengths = np.full(batch_size, pooling, dtype=np.int64)
            requests.append(SLSRequest(table_id=table_id, indices=indices,
                                       lengths=lengths))
        return dense, requests

    # ------------------------------------------------------------------ #
    # Forward pass                                                       #
    # ------------------------------------------------------------------ #
    def interact(self, bottom_output, embedding_outputs):
        """Pairwise dot-product feature interaction (DLRM "dot" mode)."""
        batch_size = bottom_output.shape[0]
        features = np.stack([bottom_output] + list(embedding_outputs), axis=1)
        # (batch, F, F) Gram matrix of the F feature vectors.
        gram = np.einsum("bfd,bgd->bfg", features, features)
        num_features = features.shape[1]
        upper_i, upper_j = np.triu_indices(num_features, k=1)
        pairwise = gram[:, upper_i, upper_j]
        return np.concatenate([bottom_output, pairwise], axis=1).astype(
            np.float32).reshape(batch_size, -1)

    def forward(self, dense_features, sls_requests):
        """Run the full model; returns a :class:`DLRMOutput`."""
        dense_features = np.asarray(dense_features, dtype=np.float32)
        if dense_features.ndim != 2:
            raise ValueError("dense_features must be (batch, num_dense)")
        batch_size = dense_features.shape[0]
        if len(sls_requests) != self.config.num_embedding_tables:
            raise ValueError(
                "expected %d SLS requests (one per table), got %d"
                % (self.config.num_embedding_tables, len(sls_requests)))
        bottom_output = self.bottom_mlp(dense_features)
        embedding_outputs = self.embeddings.forward(sls_requests)
        for output in embedding_outputs:
            if output.shape[0] != batch_size:
                raise ValueError(
                    "SLS batch size %d does not match dense batch size %d"
                    % (output.shape[0], batch_size))
        interaction = self.interact(bottom_output, embedding_outputs)
        predictions = self.top_mlp(interaction)[:, 0]
        return DLRMOutput(predictions=predictions,
                          bottom_output=bottom_output,
                          embedding_outputs=embedding_outputs,
                          interaction=interaction)

    __call__ = forward

    # ------------------------------------------------------------------ #
    def run_random_batch(self, batch_size, pooling_factor=None):
        """Convenience wrapper: random inputs + forward pass."""
        dense, requests = self.random_inputs(batch_size, pooling_factor)
        return self.forward(dense, requests)
