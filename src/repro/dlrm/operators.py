"""SLS-family sparse embedding operators (functional, NumPy).

The paper targets the Caffe2 ``SparseLengths*`` operator family: a Gather of
embedding rows followed by an element-wise Reduce (sum / mean), optionally
weighted and optionally over 8-bit row-wise-quantised tables.  These
functional implementations are the golden reference the near-memory datapath
is validated against.
"""

from dataclasses import dataclass, field

import numpy as np


@dataclass
class SLSRequest:
    """One SLS operator invocation: a batch of pooling operations.

    Attributes
    ----------
    table_id:
        Identifier of the embedding table being read.
    indices:
        Flat vector of row indices, length ``sum(lengths)``.
    lengths:
        Per-pooling lookup counts; ``len(lengths)`` is the batch size.
    weights:
        Optional per-lookup weights (same length as ``indices``).
    """

    table_id: int
    indices: np.ndarray
    lengths: np.ndarray
    weights: np.ndarray = None
    metadata: dict = field(default_factory=dict)

    def __post_init__(self):
        self.indices = np.asarray(self.indices, dtype=np.int64)
        self.lengths = np.asarray(self.lengths, dtype=np.int64)
        if self.indices.ndim != 1:
            raise ValueError("indices must be a 1-D vector")
        if self.lengths.ndim != 1:
            raise ValueError("lengths must be a 1-D vector")
        if self.lengths.sum() != self.indices.shape[0]:
            raise ValueError(
                "sum(lengths)=%d does not match len(indices)=%d"
                % (self.lengths.sum(), self.indices.shape[0]))
        if (self.lengths <= 0).any():
            raise ValueError("all pooling lengths must be positive")
        if self.weights is not None:
            self.weights = np.asarray(self.weights, dtype=np.float32)
            if self.weights.shape != self.indices.shape:
                raise ValueError("weights must match indices in shape")

    @property
    def batch_size(self):
        """Number of pooling operations in this request."""
        return int(self.lengths.shape[0])

    @property
    def total_lookups(self):
        """Total number of embedding rows gathered."""
        return int(self.indices.shape[0])

    def pooling_slices(self):
        """Yield ``(pooling_index, indices_slice, weights_slice)`` tuples."""
        offsets = np.concatenate(([0], np.cumsum(self.lengths)))
        for i in range(self.batch_size):
            start, stop = offsets[i], offsets[i + 1]
            weights = (self.weights[start:stop]
                       if self.weights is not None else None)
            yield i, self.indices[start:stop], weights


def _check_table(table):
    table = np.asarray(table)
    if table.ndim != 2:
        raise ValueError("embedding table must be 2-D (rows x dim)")
    return table


def _segment_offsets(lengths):
    lengths = np.asarray(lengths, dtype=np.int64)
    if (lengths <= 0).any():
        raise ValueError("all pooling lengths must be positive")
    return np.concatenate(([0], np.cumsum(lengths))), lengths


def sparse_lengths_sum(table, indices, lengths):
    """SparseLengthsSum: per-pooling sum of gathered rows.

    Returns an array of shape ``(len(lengths), table.shape[1])``.
    """
    table = _check_table(table)
    indices = np.asarray(indices, dtype=np.int64)
    offsets, lengths = _segment_offsets(lengths)
    if offsets[-1] != indices.shape[0]:
        raise ValueError("sum(lengths) must equal len(indices)")
    output = np.zeros((lengths.shape[0], table.shape[1]), dtype=np.float32)
    gathered = table[indices].astype(np.float32, copy=False)
    for i in range(lengths.shape[0]):
        output[i] = gathered[offsets[i]:offsets[i + 1]].sum(axis=0)
    return output


def sparse_lengths_mean(table, indices, lengths):
    """SparseLengthsMean: per-pooling mean of gathered rows."""
    sums = sparse_lengths_sum(table, indices, lengths)
    lengths = np.asarray(lengths, dtype=np.float32)
    return sums / lengths[:, None]


def sparse_lengths_weighted_sum(table, indices, lengths, weights):
    """SparseLengthsWeightedSum: per-pooling weighted sum of gathered rows."""
    table = _check_table(table)
    indices = np.asarray(indices, dtype=np.int64)
    weights = np.asarray(weights, dtype=np.float32)
    if weights.shape != indices.shape:
        raise ValueError("weights must match indices in shape")
    offsets, lengths = _segment_offsets(lengths)
    if offsets[-1] != indices.shape[0]:
        raise ValueError("sum(lengths) must equal len(indices)")
    output = np.zeros((lengths.shape[0], table.shape[1]), dtype=np.float32)
    gathered = table[indices].astype(np.float32, copy=False)
    weighted = gathered * weights[:, None]
    for i in range(lengths.shape[0]):
        output[i] = weighted[offsets[i]:offsets[i + 1]].sum(axis=0)
    return output


# --------------------------------------------------------------------- #
# 8-bit row-wise quantisation (SparseLengthsSum8BitsRowwise).            #
# --------------------------------------------------------------------- #
def quantize_rowwise_8bit(table):
    """Row-wise 8-bit quantisation.

    Each row is linearly quantised to uint8 with a per-row ``scale`` and
    ``bias`` such that ``row ~= quantised * scale + bias``.  Returns
    ``(quantised_uint8, scale, bias)``.
    """
    table = _check_table(table).astype(np.float32)
    row_min = table.min(axis=1)
    row_max = table.max(axis=1)
    span = row_max - row_min
    scale = np.where(span > 0, span / 255.0, 1.0).astype(np.float32)
    bias = row_min.astype(np.float32)
    quantised = np.clip(
        np.rint((table - bias[:, None]) / scale[:, None]), 0, 255
    ).astype(np.uint8)
    return quantised, scale, bias


def dequantize_rowwise_8bit(quantised, scale, bias):
    """Inverse of :func:`quantize_rowwise_8bit` (lossy)."""
    quantised = np.asarray(quantised)
    scale = np.asarray(scale, dtype=np.float32)
    bias = np.asarray(bias, dtype=np.float32)
    return quantised.astype(np.float32) * scale[:, None] + bias[:, None]


def sparse_lengths_sum_8bit(quantised, scale, bias, indices, lengths,
                            weights=None):
    """SparseLengthsSum over an 8-bit row-wise-quantised table.

    Rows are dequantised on the fly (``q * scale + bias``) before the
    (optionally weighted) per-pooling summation -- exactly the datapath the
    rank-NMP module implements with its Scalar and Bias registers.
    """
    dequantised = dequantize_rowwise_8bit(quantised, scale, bias)
    if weights is None:
        return sparse_lengths_sum(dequantised, indices, lengths)
    return sparse_lengths_weighted_sum(dequantised, indices, lengths, weights)
