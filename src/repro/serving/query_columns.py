"""Struct-of-arrays query path for million-query serving runs.

The object query path builds one :class:`~repro.serving.arrival.ServingQuery`
per query and re-walks Python object graphs for every aggregate -- fine
for thousands of queries, the bottleneck at millions.  This module keeps
the *stream* of queries in flat numpy columns and materialises objects
only where a caller actually needs one:

* :class:`QueryColumns` -- the per-query arrays (ids, arrivals,
  deadlines, per-query lookup/pooling counts) plus a *request provider*
  that lazily resolves each query's SLS requests and content
  fingerprint.  Slicing, sorting and concatenation are array ops.
* :class:`ColumnQueryView` -- a zero-copy view of one row that quacks
  like a ``ServingQuery`` (``arrival_us``, ``deadline_us``,
  ``slack_us``, ``requests``, ``fingerprint()``), so object-path
  consumers (custom SLO policies, admission controllers, the exact
  service path) keep working unchanged.
* :func:`form_batch_columns` -- the two-trigger batcher
  (:class:`~repro.serving.batcher.BatchingFrontend` semantics) as a
  per-*batch* ``searchsorted`` scan instead of a per-query loop, with a
  carry-out open batch so chunked streaming reproduces the one-shot
  batching byte for byte.
* :class:`BatchColumns` / :class:`ColumnBatch` -- the formed batches as
  arrays (formation times, sizes, triggers, per-batch deadline minima)
  plus per-batch views compatible with
  :class:`~repro.serving.batcher.QueryBatch`.
* :class:`QueryStream` -- a resumable generator of ``QueryColumns``
  chunks from traces plus an arrival process, the O(chunk)-memory
  source behind ``ShardedServingCluster.simulate(stream_chunk=N)``.

Everything here is representation, not policy: batch boundaries,
formation times, aggregates and fingerprints are defined by the object
path and reproduced exactly (equivalence is pinned by
``tests/test_query_columns.py``).
"""

import hashlib
import math

import numpy as np

from repro.serving.arrival import _per_table
from repro.traces.synthetic import batched_requests_from_trace

#: Residue-pattern periods above this fall back to a per-pattern dict;
#: below it, one digest per ``row % period`` covers every query.
_MAX_DIGEST_PERIOD = 1 << 16


class _CycledRequests:
    """Request provider cycling per-table candidate requests by row id.

    The provider behind :func:`query_columns_from_traces` and
    :class:`QueryStream`: row ``r`` carries request
    ``candidates[r % len(candidates)]`` from every table, exactly like
    :func:`repro.serving.arrival.queries_from_traces`.  Fingerprints are
    memoised per *residue pattern*: the request content of row ``r``
    repeats with period lcm(candidate counts), so a million-query stream
    usually needs only a handful of distinct digests.
    """

    def __init__(self, per_table_requests):
        if not per_table_requests:
            raise ValueError("need at least one table of requests")
        self.per_table = [list(requests) for requests in per_table_requests]
        if any(not requests for requests in self.per_table):
            raise ValueError("every table needs at least one request")
        self._counts = [len(requests) for requests in self.per_table]
        period = 1
        for count in self._counts:
            period = math.lcm(period, count)
        #: Row-content period; 0 disables the periodic digest cache.
        self.period = period if period <= _MAX_DIGEST_PERIOD else 0
        self._content = [[None] * count for count in self._counts]
        self._digests = {}

    def row_requests(self, row):
        """The SLS requests of row ``row`` (shared candidate objects)."""
        return [requests[row % count] for requests, count
                in zip(self.per_table, self._counts)]

    def _candidate_content(self, table, candidate):
        """Fingerprint bytes of one candidate request (memoised)."""
        content = self._content[table][candidate]
        if content is None:
            request = self.per_table[table][candidate]
            content = (str(request.table_id).encode()
                       + np.ascontiguousarray(request.indices).tobytes()
                       + np.ascontiguousarray(request.lengths).tobytes())
            self._content[table][candidate] = content
        return content

    def _pattern_digest(self, key, residues):
        digest = hashlib.sha1()
        for table, residue in enumerate(residues):
            digest.update(self._candidate_content(table, residue))
        hexdigest = digest.hexdigest()
        self._digests[key] = hexdigest
        return hexdigest

    def row_fingerprint(self, row):
        """Content digest of row ``row`` -- equal to the digest a
        ``ServingQuery`` with the same requests would report."""
        if self.period:
            key = row % self.period
            cached = self._digests.get(key)
            if cached is not None:
                return cached
            residues = [key % count for count in self._counts]
        else:
            residues = tuple(row % count for count in self._counts)
            key = residues
            cached = self._digests.get(key)
            if cached is not None:
                return cached
        return self._pattern_digest(key, residues)

    def fingerprints_for(self, rows):
        """Digest list for an array of row ids (vectorised memo lookup)."""
        if self.period:
            keys = np.asarray(rows, dtype=np.int64) % self.period
            for key in np.unique(keys):
                key = int(key)
                if key not in self._digests:
                    self._pattern_digest(
                        key, [key % count for count in self._counts])
            return [self._digests[int(key)] for key in keys]
        return [self.row_fingerprint(int(row)) for row in rows]


class _ExplicitRequests:
    """Request provider over materialised :class:`ServingQuery` objects.

    Used by :meth:`QueryColumns.from_queries`: requests and fingerprints
    delegate to the original objects, so digests memoised there are
    shared with the object path.
    """

    def __init__(self, queries):
        self.queries = list(queries)

    def row_requests(self, row):
        return self.queries[row].requests

    def row_fingerprint(self, row):
        return self.queries[row].fingerprint()

    def fingerprints_for(self, rows):
        return [self.queries[int(row)].fingerprint() for row in rows]


class ColumnQueryView:
    """One row of a :class:`QueryColumns`, quacking like a ServingQuery.

    Attribute reads resolve against the backing arrays, so views are
    cheap to create and always current; assigning ``deadline_us`` writes
    through to the column (the array is the source of truth -- the
    originating ``ServingQuery`` object, if any, is *not* updated).
    """

    __slots__ = ("_columns", "_position")

    def __init__(self, columns, position):
        self._columns = columns
        self._position = position

    @property
    def query_id(self):
        return int(self._columns.query_id[self._position])

    @property
    def arrival_us(self):
        return float(self._columns.arrival_us[self._position])

    @property
    def deadline_us(self):
        deadline = self._columns.deadline_us[self._position]
        return None if deadline != deadline else float(deadline)

    @deadline_us.setter
    def deadline_us(self, value):
        self._columns.deadline_us[self._position] = \
            np.nan if value is None else float(value)

    @property
    def requests(self):
        return self._columns.provider.row_requests(
            int(self._columns.rows[self._position]))

    @property
    def total_lookups(self):
        return int(self._columns.lookups[self._position])

    @property
    def num_tables(self):
        return int(self._columns.num_requests[self._position])

    @property
    def slack_us(self):
        deadline = self._columns.deadline_us[self._position]
        if deadline != deadline:
            return None
        return float(deadline) - float(
            self._columns.arrival_us[self._position])

    def fingerprint(self):
        return self._columns.provider.row_fingerprint(
            int(self._columns.rows[self._position]))

    def __repr__(self):
        return ("ColumnQueryView(query_id=%d, arrival_us=%s)"
                % (self.query_id, self.arrival_us))


class QueryColumns:
    """A query stream as flat per-query arrays plus a request provider.

    ``deadline_us`` uses NaN for "no deadline" (the array analogue of
    ``ServingQuery.deadline_us = None``).  ``rows`` indexes the shared
    ``provider``, which owns request materialisation and fingerprints;
    slices and takes reuse the provider, so digests are memoised once
    per stream however it is chunked.
    """

    def __init__(self, query_id, arrival_us, deadline_us, lookups,
                 poolings, num_requests, rows, provider):
        self.query_id = np.ascontiguousarray(query_id, dtype=np.int64)
        self.arrival_us = np.ascontiguousarray(arrival_us,
                                               dtype=np.float64)
        self.deadline_us = np.ascontiguousarray(deadline_us,
                                                dtype=np.float64)
        self.lookups = np.ascontiguousarray(lookups, dtype=np.int64)
        self.poolings = np.ascontiguousarray(poolings, dtype=np.int64)
        self.num_requests = np.ascontiguousarray(num_requests,
                                                 dtype=np.int64)
        self.rows = np.ascontiguousarray(rows, dtype=np.int64)
        self.provider = provider
        size = self.query_id.shape[0]
        for array in (self.arrival_us, self.deadline_us, self.lookups,
                      self.poolings, self.num_requests, self.rows):
            if array.shape[0] != size:
                raise ValueError("query columns must have equal length")

    # ------------------------------------------------------------------ #
    @classmethod
    def from_queries(cls, queries):
        """Columns over existing :class:`ServingQuery` objects.

        Requests and fingerprints stay delegated to the originals; the
        arrays snapshot ids, arrivals, deadlines and lookup counts at
        conversion time (later edits to the arrays do not write back).
        """
        queries = list(queries)
        size = len(queries)
        deadline = np.full(size, np.nan, dtype=np.float64)
        lookups = np.empty(size, dtype=np.int64)
        poolings = np.empty(size, dtype=np.int64)
        num_requests = np.empty(size, dtype=np.int64)
        query_id = np.empty(size, dtype=np.int64)
        arrival = np.empty(size, dtype=np.float64)
        for index, query in enumerate(queries):
            query_id[index] = query.query_id
            arrival[index] = query.arrival_us
            if query.deadline_us is not None:
                deadline[index] = query.deadline_us
            lookups[index] = query.total_lookups
            poolings[index] = sum(len(request.lengths)
                                  for request in query.requests)
            num_requests[index] = len(query.requests)
        return cls(query_id, arrival, deadline, lookups, poolings,
                   num_requests, np.arange(size, dtype=np.int64),
                   _ExplicitRequests(queries))

    # ------------------------------------------------------------------ #
    def __len__(self):
        return self.query_id.shape[0]

    def view(self, position):
        """A :class:`ColumnQueryView` of one row."""
        return ColumnQueryView(self, position)

    def views(self):
        """Lazy per-row views (materialised on call, not stored)."""
        return [ColumnQueryView(self, position)
                for position in range(len(self))]

    def take(self, indices):
        """Row subset by index array (shares the provider)."""
        indices = np.asarray(indices)
        return QueryColumns(
            self.query_id[indices], self.arrival_us[indices],
            self.deadline_us[indices], self.lookups[indices],
            self.poolings[indices], self.num_requests[indices],
            self.rows[indices], self.provider)

    def slice(self, start, stop):
        """Contiguous row range as zero-copy array views."""
        return QueryColumns(
            self.query_id[start:stop], self.arrival_us[start:stop],
            self.deadline_us[start:stop], self.lookups[start:stop],
            self.poolings[start:stop], self.num_requests[start:stop],
            self.rows[start:stop], self.provider)

    def sorted_by_arrival(self):
        """Rows in ``(arrival_us, query_id)`` order (the serving order)."""
        order = np.lexsort((self.query_id, self.arrival_us))
        if np.array_equal(order, np.arange(len(self))):
            return self
        return self.take(order)

    def fingerprints(self):
        """Per-row content digests (provider-memoised)."""
        return self.provider.fingerprints_for(self.rows)

    @classmethod
    def concat(cls, parts):
        """Concatenate column chunks sharing one provider."""
        parts = [part for part in parts if len(part)]
        if not parts:
            raise ValueError("need at least one non-empty chunk")
        provider = parts[0].provider
        if any(part.provider is not provider for part in parts):
            raise ValueError("cannot concatenate columns with different "
                             "request providers")
        return cls(
            np.concatenate([part.query_id for part in parts]),
            np.concatenate([part.arrival_us for part in parts]),
            np.concatenate([part.deadline_us for part in parts]),
            np.concatenate([part.lookups for part in parts]),
            np.concatenate([part.poolings for part in parts]),
            np.concatenate([part.num_requests for part in parts]),
            np.concatenate([part.rows for part in parts]),
            provider)


def query_columns_from_traces(traces, num_queries, arrivals, batch_size=4,
                              pooling_factor=20, start_id=0):
    """Array-path equivalent of
    :func:`repro.serving.arrival.queries_from_traces`.

    Same request recipe -- query ``i`` carries candidate ``i % len``
    from every table -- but per-query lookup/pooling counts come from a
    vectorised pass over the candidate statistics and no query objects
    are built.  Row-for-row identical to the object path (ids, arrivals,
    request content, fingerprints).
    """
    if num_queries <= 0:
        raise ValueError("num_queries must be positive")
    if hasattr(arrivals, "arrival_times_us"):
        arrival_times = arrivals.arrival_times_us(num_queries)
    else:
        arrival_times = np.asarray(arrivals, dtype=np.float64)
        if arrival_times.size != num_queries:
            raise ValueError("need one arrival time per query")
    batch_sizes = _per_table(batch_size, len(traces), "batch size")
    pooling_factors = _per_table(pooling_factor, len(traces),
                                 "pooling factor")
    per_table_requests = []
    for trace, table_batch, table_pooling in zip(traces, batch_sizes,
                                                 pooling_factors):
        requests = batched_requests_from_trace(trace, table_batch,
                                               table_pooling)
        if not requests:
            raise ValueError("trace %r too short for one %dx%d request"
                             % (trace.name, table_batch, table_pooling))
        per_table_requests.append(requests)
    provider = _CycledRequests(per_table_requests)
    rows = np.arange(num_queries, dtype=np.int64)
    return _columns_for_rows(provider, rows, arrival_times,
                             start_id + rows)


def _columns_for_rows(provider, rows, arrival_times, query_ids):
    """Build :class:`QueryColumns` for cycled rows of ``provider``."""
    size = rows.shape[0]
    lookups = np.zeros(size, dtype=np.int64)
    poolings = np.zeros(size, dtype=np.int64)
    for requests, count in zip(provider.per_table, provider._counts):
        candidate_lookups = np.asarray(
            [request.total_lookups for request in requests],
            dtype=np.int64)
        candidate_poolings = np.asarray(
            [len(request.lengths) for request in requests],
            dtype=np.int64)
        residues = rows % count
        lookups += candidate_lookups[residues]
        poolings += candidate_poolings[residues]
    num_requests = np.full(size, len(provider.per_table), dtype=np.int64)
    return QueryColumns(
        np.asarray(query_ids, dtype=np.int64),
        np.asarray(arrival_times, dtype=np.float64),
        np.full(size, np.nan, dtype=np.float64),
        lookups, poolings, num_requests, rows, provider)


class QueryStream:
    """Resumable chunk generator: traces + arrival process -> columns.

    ``take(n)`` yields the next ``n`` queries as a :class:`QueryColumns`
    chunk; successive takes continue the same arrival stream and row
    cycle, so ``take(a); take(b)`` concatenated equals one
    ``take(a + b)`` (and equals :func:`query_columns_from_traces` over
    the same total).  ``num_queries`` bounds the stream (``None`` for
    unbounded).  The chunked path of
    :meth:`ShardedServingCluster.simulate` drains one of these with
    O(chunk) memory.
    """

    def __init__(self, traces, arrivals, num_queries=None, batch_size=4,
                 pooling_factor=20, start_id=0):
        if num_queries is not None and num_queries <= 0:
            raise ValueError("num_queries must be positive (or None)")
        batch_sizes = _per_table(batch_size, len(traces), "batch size")
        pooling_factors = _per_table(pooling_factor, len(traces),
                                     "pooling factor")
        per_table_requests = []
        for trace, table_batch, table_pooling in zip(traces, batch_sizes,
                                                     pooling_factors):
            requests = batched_requests_from_trace(trace, table_batch,
                                                   table_pooling)
            if not requests:
                raise ValueError(
                    "trace %r too short for one %dx%d request"
                    % (trace.name, table_batch, table_pooling))
            per_table_requests.append(requests)
        self.provider = _CycledRequests(per_table_requests)
        if hasattr(arrivals, "stream"):
            self._arrivals = arrivals.stream()
        elif hasattr(arrivals, "take"):
            self._arrivals = arrivals
        else:
            raise ValueError("arrivals must be an arrival process with "
                             ".stream() or an arrival stream with "
                             ".take(n)")
        self.num_queries = num_queries
        self.start_id = int(start_id)
        self._position = 0

    @property
    def remaining(self):
        """Queries left in the stream (None when unbounded)."""
        if self.num_queries is None:
            return None
        return self.num_queries - self._position

    def take(self, count):
        """The next ``count`` queries as columns (fewer at stream end).

        Returns an empty-length columns object once the stream is
        exhausted.
        """
        if count <= 0:
            raise ValueError("count must be positive")
        if self.num_queries is not None:
            count = min(count, self.num_queries - self._position)
        if count <= 0:
            rows = np.empty(0, dtype=np.int64)
            return _columns_for_rows(self.provider, rows,
                                     np.empty(0, dtype=np.float64), rows)
        arrival_times = self._arrivals.take(count)
        rows = np.arange(self._position, self._position + count,
                         dtype=np.int64)
        self._position += count
        return _columns_for_rows(self.provider, rows, arrival_times,
                                 self.start_id + rows)


# --------------------------------------------------------------------- #
# Batches over columns                                                  #
# --------------------------------------------------------------------- #
class ColumnBatch:
    """One dispatched batch as a row range of a :class:`QueryColumns`.

    Interface-compatible with :class:`~repro.serving.batcher.QueryBatch`
    (``queries``, ``requests()``, the aggregate properties,
    ``batching_delay_us``), with the aggregates answered from array
    slices instead of object walks and ``query_fingerprints()`` served
    straight from the provider's digest memo.
    """

    __slots__ = ("columns", "start", "stop", "open_us", "formed_us",
                 "trigger", "_queries")

    def __init__(self, columns, start, stop, open_us, formed_us, trigger):
        self.columns = columns
        self.start = start
        self.stop = stop
        self.open_us = open_us
        self.formed_us = formed_us
        self.trigger = trigger
        self._queries = None

    @property
    def queries(self):
        if self._queries is None:
            self._queries = [ColumnQueryView(self.columns, position)
                             for position in range(self.start, self.stop)]
        return self._queries

    @property
    def size(self):
        return self.stop - self.start

    @property
    def total_lookups(self):
        return int(self.columns.lookups[self.start:self.stop].sum())

    @property
    def total_poolings(self):
        return int(self.columns.poolings[self.start:self.stop].sum())

    @property
    def num_pooling_ops(self):
        return self.total_poolings

    @property
    def num_requests(self):
        return int(self.columns.num_requests[self.start:self.stop].sum())

    @property
    def mean_pooling_factor(self):
        poolings = self.total_poolings
        return self.total_lookups / poolings if poolings else 0.0

    @property
    def earliest_deadline_us(self):
        deadlines = self.columns.deadline_us[self.start:self.stop]
        earliest = np.fmin.reduce(deadlines)
        return None if earliest != earliest else float(earliest)

    def requests(self):
        provider = self.columns.provider
        rows = self.columns.rows
        return [request
                for position in range(self.start, self.stop)
                for request in provider.row_requests(int(rows[position]))]

    def query_fingerprints(self):
        """Per-query digests of the batch (the service-cache key body)."""
        return self.columns.provider.fingerprints_for(
            self.columns.rows[self.start:self.stop])

    def batching_delay_us(self, query):
        return self.formed_us - query.arrival_us


class BatchColumns:
    """Formed batches of one (chunk of a) query stream, as arrays.

    ``columns`` holds the *batched* queries in dispatch order (batch
    after batch, each batch in arrival order), ``starts`` the per-batch
    offsets into it.  Engines branch on the ``is_columns`` marker to
    consume the arrays directly; iteration and indexing materialise
    :class:`ColumnBatch` views for object-path consumers.
    """

    is_columns = True

    def __init__(self, columns, starts, formed_us, open_us, triggers):
        self.columns = columns
        self.starts = np.ascontiguousarray(starts, dtype=np.int64)
        self.formed_us = np.ascontiguousarray(formed_us, dtype=np.float64)
        self.open_us = np.ascontiguousarray(open_us, dtype=np.float64)
        #: 0 = size trigger, 1 = deadline trigger.
        self.triggers = np.ascontiguousarray(triggers, dtype=np.uint8)
        count = self.starts.shape[0]
        if (self.formed_us.shape[0] != count
                or self.open_us.shape[0] != count
                or self.triggers.shape[0] != count):
            raise ValueError("batch columns must have equal length")

    @property
    def sizes(self):
        """Queries per batch (int64)."""
        ends = np.append(self.starts[1:], len(self.columns))
        return ends - self.starts

    @property
    def num_queries(self):
        return len(self.columns)

    def earliest_deadline_us(self):
        """Per-batch deadline minima (NaN = no deadline in the batch)."""
        return np.fmin.reduceat(self.columns.deadline_us, self.starts)

    def trigger_counts(self):
        """``{"size": n, "deadline": m}`` over the batch arrays."""
        deadline = int(np.count_nonzero(self.triggers))
        return {"size": len(self) - deadline, "deadline": deadline}

    def __len__(self):
        return self.starts.shape[0]

    def __getitem__(self, index):
        count = len(self)
        if index < 0:
            index += count
        if not 0 <= index < count:
            raise IndexError("batch index out of range")
        start = int(self.starts[index])
        stop = int(self.starts[index + 1]) if index + 1 < count \
            else len(self.columns)
        trigger = "deadline" if self.triggers[index] else "size"
        return ColumnBatch(self.columns, start, stop,
                           float(self.open_us[index]),
                           float(self.formed_us[index]), trigger)

    def __iter__(self):
        for index in range(len(self)):
            yield self[index]

    def batches(self):
        """All batches as :class:`ColumnBatch` views, in dispatch order."""
        return list(self)

    @classmethod
    def concat(cls, parts):
        """Concatenate per-chunk batch columns into one run."""
        parts = [part for part in parts if len(part)]
        if not parts:
            raise ValueError("need at least one non-empty chunk")
        columns = QueryColumns.concat([part.columns for part in parts])
        starts, offset = [], 0
        for part in parts:
            starts.append(part.starts + offset)
            offset += len(part.columns)
        return cls(columns, np.concatenate(starts),
                   np.concatenate([part.formed_us for part in parts]),
                   np.concatenate([part.open_us for part in parts]),
                   np.concatenate([part.triggers for part in parts]))


def form_batch_columns(columns, max_queries, max_delay_us, final=True):
    """Two-trigger batch formation over sorted query columns.

    Reproduces :meth:`BatchingFrontend.form_batches` exactly -- same
    batch boundaries, formation times and trigger labels -- with one
    ``searchsorted`` per *batch* instead of per-query object work.
    ``columns`` must already be in ``(arrival_us, query_id)`` order.

    Returns ``(batch_columns, carry)``: with ``final=False`` a trailing
    open batch whose deadline has not passed within ``columns`` (and
    that could still grow) is returned as a ``carry`` columns remnant
    instead of being flushed; prepend it (``QueryColumns.concat``) to
    the next chunk to continue byte-identically.  ``final=True`` always
    returns ``carry=None``.
    """
    arrivals = columns.arrival_us
    size = arrivals.shape[0]
    starts, formed, opens, triggers = [], [], [], []
    position = 0
    while position < size:
        open_us = float(arrivals[position])
        cutoff = open_us + max_delay_us
        limit = int(np.searchsorted(arrivals, cutoff, side="left"))
        # The opening query always belongs to its own batch even when
        # max_delay_us is 0 (it is appended before any deadline check).
        count = max(limit - position, 1)
        if count >= max_queries:
            starts.append(position)
            opens.append(open_us)
            formed.append(float(arrivals[position + max_queries - 1]))
            triggers.append(0)
            position += max_queries
            continue
        if limit >= size and not final:
            # Every remaining arrival is inside the open batch's window
            # and the batch is not full: its fate depends on queries
            # beyond this chunk, so it carries over.
            carry = columns.slice(position, size)
            return _finish_batches(columns, starts, formed, opens,
                                   triggers, position), carry
        starts.append(position)
        opens.append(open_us)
        formed.append(cutoff)
        triggers.append(1)
        position += count
    return _finish_batches(columns, starts, formed, opens, triggers,
                           size), None


def _finish_batches(columns, starts, formed, opens, triggers, stop):
    return BatchColumns(columns.slice(0, stop),
                        np.asarray(starts, dtype=np.int64),
                        np.asarray(formed, dtype=np.float64),
                        np.asarray(opens, dtype=np.float64),
                        np.asarray(triggers, dtype=np.uint8))
