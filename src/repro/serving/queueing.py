"""Closed-form queueing step: batch service times -> latency percentiles.

The serving simulator produces one *service time* per batch (the simulated
execution time on the sharded cluster).  Rather than event-driven simulation
of the dispatch queue, the frontend is modelled as an M/G/1 queue in steady
state, which yields closed-form waiting times from the first two moments of
the service distribution (the Pollaczek-Khinchine formula) and an
exponential-tail approximation for the waiting-time quantiles.  Combined
with the exact per-query batching delays this turns one pass of batch
simulations into p50/p95/p99 latency and a sustainable-QPS number.
"""

import math
from dataclasses import dataclass, field

import numpy as np


def percentile(samples, p):
    """The ``p``-th percentile with linear interpolation (0 <= p <= 100)."""
    if not 0 <= p <= 100:
        raise ValueError("p must be in [0, 100]")
    array = np.asarray(samples, dtype=np.float64)
    if array.size == 0:
        raise ValueError("need at least one sample")
    return float(np.percentile(array, p))


def latency_percentiles(samples, ps=(50.0, 95.0, 99.0)):
    """``{"p50": ..., "p95": ..., "p99": ...}`` for a sample vector."""
    return {"p%g" % p: percentile(samples, p) for p in ps}


def mg1_utilization(arrival_rate_per_us, service_times_us):
    """Offered load rho = lambda * E[S] of the batch queue."""
    services = np.asarray(service_times_us, dtype=np.float64)
    if services.size == 0:
        raise ValueError("need at least one service time")
    return float(arrival_rate_per_us * services.mean())


def mg1_mean_wait_us(arrival_rate_per_us, service_times_us):
    """Mean queueing delay of an M/G/1 queue (Pollaczek-Khinchine).

    ``W = lambda * E[S^2] / (2 * (1 - rho))``; returns ``inf`` when the
    queue is unstable (rho >= 1).
    """
    services = np.asarray(service_times_us, dtype=np.float64)
    rho = mg1_utilization(arrival_rate_per_us, services)
    if rho >= 1.0:
        return float("inf")
    second_moment = float((services ** 2).mean())
    return arrival_rate_per_us * second_moment / (2.0 * (1.0 - rho))


def wait_quantile_us(arrival_rate_per_us, service_times_us, p):
    """Approximate ``p``-th percentile of the queueing delay.

    Uses the classic exponential-tail approximation
    ``P(W > t) = rho * exp(-(1 - rho) * t / E[S])`` (exact for M/M/1, a
    good heavy-traffic approximation for M/G/1).  Returns 0 for quantiles
    below the probability mass of not waiting at all, ``inf`` when the
    queue is unstable.
    """
    if not 0 <= p <= 100:
        raise ValueError("p must be in [0, 100]")
    services = np.asarray(service_times_us, dtype=np.float64)
    rho = mg1_utilization(arrival_rate_per_us, services)
    if rho >= 1.0:
        return float("inf")
    tail = 1.0 - p / 100.0
    if tail >= rho:
        return 0.0
    mean_service = float(services.mean())
    return -math.log(tail / rho) * mean_service / (1.0 - rho)


@dataclass
class ServingReport:
    """Latency and throughput summary of one serving run."""

    system: str
    num_queries: int
    num_batches: int
    offered_qps: float
    utilization: float
    mean_service_us: float
    mean_batch_delay_us: float
    mean_wait_us: float
    mean_latency_us: float
    p50_us: float
    p95_us: float
    p99_us: float
    sustainable_qps: float
    trigger_counts: dict = field(default_factory=dict)
    extras: dict = field(default_factory=dict)

    @property
    def stable(self):
        return self.utilization < 1.0

    def as_dict(self):
        return {
            "system": self.system,
            "num_queries": self.num_queries,
            "num_batches": self.num_batches,
            "offered_qps": self.offered_qps,
            "utilization": self.utilization,
            "mean_service_us": self.mean_service_us,
            "mean_batch_delay_us": self.mean_batch_delay_us,
            "mean_wait_us": self.mean_wait_us,
            "mean_latency_us": self.mean_latency_us,
            "p50_us": self.p50_us,
            "p95_us": self.p95_us,
            "p99_us": self.p99_us,
            "sustainable_qps": self.sustainable_qps,
            "stable": self.stable,
            "trigger_counts": dict(self.trigger_counts),
            "extras": dict(self.extras),
        }


def summarize_serving(system_name, batches, service_times_us,
                      trigger_counts=None, extras=None):
    """Turn per-batch service times into a :class:`ServingReport`.

    ``batches`` are the dispatched :class:`~repro.serving.batcher.QueryBatch`
    objects; ``service_times_us`` the simulated execution time of each.  A
    per-query latency percentile combines the exact batching-delay-plus-
    service distribution with the M/G/1 waiting-time quantile at the same
    percentile (:func:`wait_quantile_us`), so the tail reflects queueing
    variance, not just the mean wait.
    """
    services = np.asarray(service_times_us, dtype=np.float64)
    if len(batches) != services.size:
        raise ValueError("need one service time per batch")
    if not len(batches):
        raise ValueError("need at least one batch")
    queries = [query for batch in batches for query in batch.queries]
    first_arrival = min(query.arrival_us for query in queries)
    last_arrival = max(query.arrival_us for query in queries)
    span_us = max(last_arrival - first_arrival, 1e-9)
    offered_qps = len(queries) / span_us * 1e6
    # Batch arrival rate from the inter-dispatch intervals; a single batch
    # never queues behind anything, so it contributes no waiting.
    if len(batches) > 1:
        formed = [batch.formed_us for batch in batches]
        batch_span_us = max(max(formed) - min(formed), 1e-9)
        batch_rate_per_us = (len(batches) - 1) / batch_span_us
    else:
        batch_rate_per_us = 0.0
    rho = mg1_utilization(batch_rate_per_us, services)
    mean_wait = mg1_mean_wait_us(batch_rate_per_us, services)
    base_samples = []
    for batch, service in zip(batches, services):
        for query in batch.queries:
            base_samples.append(batch.batching_delay_us(query)
                                + float(service))
    percentiles = {
        "p%g" % p: percentile(base_samples, p)
        + wait_quantile_us(batch_rate_per_us, services, p)
        for p in (50.0, 95.0, 99.0)
    }
    samples = [base + mean_wait for base in base_samples]
    mean_service = float(services.mean())
    queries_per_batch = len(queries) / len(batches)
    # The cluster saturates when batches arrive as fast as they are served:
    # 1/E[S] batches per microsecond, each carrying E[queries-per-batch].
    sustainable_qps = queries_per_batch / mean_service * 1e6
    delays = [batch.batching_delay_us(query)
              for batch in batches for query in batch.queries]
    return ServingReport(
        system=system_name,
        num_queries=len(queries),
        num_batches=len(batches),
        offered_qps=offered_qps,
        utilization=rho,
        mean_service_us=mean_service,
        mean_batch_delay_us=float(np.mean(delays)),
        mean_wait_us=mean_wait,
        mean_latency_us=float(np.mean(samples)),
        p50_us=percentiles["p50"],
        p95_us=percentiles["p95"],
        p99_us=percentiles["p99"],
        sustainable_qps=sustainable_qps,
        trigger_counts=dict(trigger_counts or {}),
        extras=dict(extras or {}),
    )
