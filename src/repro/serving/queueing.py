"""Closed-form queueing step: batch service times -> latency percentiles.

The serving simulator produces one *service time* per batch (the simulated
execution time on the sharded cluster).  Rather than event-driven simulation
of the dispatch queue, the frontend is modelled as an M/G/c queue in steady
state: ``c`` identical dispatch servers (frontends) drain a single FIFO
batch queue.  The waiting-time mean comes from the Lee-Longton
approximation ``W(M/G/c) = (1 + CV^2)/2 * W(M/M/c)`` -- which reduces
*exactly* to the Pollaczek-Khinchine formula at ``c = 1`` -- and the
waiting-time quantiles from the matching Erlang-C exponential-tail
approximation.  Combined with the exact per-query batching delays this
turns one pass of batch simulations into p50/p95/p99 latency and a
sustainable-QPS number.

The event-driven alternative that *measures* these quantities instead of
approximating them lives in :mod:`repro.serving.events`; both are exposed
behind the :class:`~repro.serving.engine.ServingEngine` interface.
"""

import math
from dataclasses import dataclass, field

import numpy as np


def percentile(samples, p):
    """The ``p``-th percentile with linear interpolation (0 <= p <= 100)."""
    if not 0 <= p <= 100:
        raise ValueError("p must be in [0, 100]")
    array = np.asarray(samples, dtype=np.float64)
    if array.size == 0:
        raise ValueError("need at least one sample")
    return float(np.percentile(array, p))


def latency_percentiles(samples, ps=(50.0, 95.0, 99.0)):
    """``{"p50": ..., "p95": ..., "p99": ...}`` for a sample vector."""
    return {"p%g" % p: percentile(samples, p) for p in ps}


def mg1_utilization(arrival_rate_per_us, service_times_us):
    """Offered load rho = lambda * E[S] of a single-server batch queue."""
    return mgc_utilization(arrival_rate_per_us, service_times_us, 1)


def mgc_utilization(arrival_rate_per_us, service_times_us, num_servers):
    """Per-server utilisation ``rho = lambda * E[S] / c`` of the queue."""
    if num_servers < 1:
        raise ValueError("num_servers must be >= 1")
    services = np.asarray(service_times_us, dtype=np.float64)
    if services.size == 0:
        raise ValueError("need at least one service time")
    return float(arrival_rate_per_us * services.mean() / num_servers)


def erlang_c(num_servers, offered_load):
    """Erlang-C probability that an arrival waits (M/M/c queue).

    ``offered_load`` is ``a = lambda * E[S]`` in erlangs; the queue is
    stable only for ``a < num_servers``.  For one server this is simply
    ``a`` (the utilisation), which is why the ``c = 1`` specialisations
    below match the classic M/G/1 formulas term for term.
    """
    if num_servers < 1:
        raise ValueError("num_servers must be >= 1")
    if offered_load < 0:
        raise ValueError("offered_load must be non-negative")
    if offered_load >= num_servers:
        return 1.0
    if offered_load == 0.0:
        return 0.0
    # Iterative Erlang-B, then convert to Erlang-C: numerically stable for
    # any server count (no explicit factorials).
    erlang_b = 1.0
    for k in range(1, num_servers + 1):
        erlang_b = offered_load * erlang_b / (k + offered_load * erlang_b)
    rho = offered_load / num_servers
    return erlang_b / (1.0 - rho + rho * erlang_b)


def mg1_mean_wait_us(arrival_rate_per_us, service_times_us):
    """Mean queueing delay of an M/G/1 queue (Pollaczek-Khinchine).

    ``W = lambda * E[S^2] / (2 * (1 - rho))``; returns ``inf`` when the
    queue is unstable (rho >= 1).
    """
    return mgc_mean_wait_us(arrival_rate_per_us, service_times_us, 1)


def mgc_mean_wait_us(arrival_rate_per_us, service_times_us, num_servers):
    """Mean queueing delay of an M/G/c queue (Lee-Longton approximation).

    ``W = (1 + CV^2) / 2 * ErlangC(c, a) * E[S] / (c * (1 - rho))``.  At
    ``c = 1`` the Erlang-C term is ``rho`` and the expression reduces
    exactly to Pollaczek-Khinchine.  Returns ``inf`` when the queue is
    unstable (rho >= 1).
    """
    services = np.asarray(service_times_us, dtype=np.float64)
    rho = mgc_utilization(arrival_rate_per_us, services, num_servers)
    if rho >= 1.0:
        return float("inf")
    mean_service = float(services.mean())
    if mean_service <= 0.0 or arrival_rate_per_us <= 0.0:
        return 0.0
    second_moment = float((services ** 2).mean())
    cv_squared = second_moment / mean_service ** 2 - 1.0
    offered = arrival_rate_per_us * mean_service
    wait_mmc = erlang_c(num_servers, offered) * mean_service \
        / (num_servers * (1.0 - rho))
    return (1.0 + cv_squared) / 2.0 * wait_mmc


def wait_quantile_us(arrival_rate_per_us, service_times_us, p,
                     num_servers=1):
    """Approximate ``p``-th percentile of the queueing delay.

    Uses the Erlang-C exponential-tail approximation
    ``P(W > t) = C(c, a) * exp(-c * (1 - rho) * t / E[S])`` (exact for
    M/M/c, a good heavy-traffic approximation for M/G/c).  At ``c = 1``
    the waiting probability ``C(1, a)`` equals ``rho`` and the formula is
    the classic ``rho * exp(-(1 - rho) * t / E[S])``.  Returns 0 for
    quantiles below the probability mass of not waiting at all, ``inf``
    when the queue is unstable.
    """
    if not 0 <= p <= 100:
        raise ValueError("p must be in [0, 100]")
    services = np.asarray(service_times_us, dtype=np.float64)
    rho = mgc_utilization(arrival_rate_per_us, services, num_servers)
    if rho >= 1.0:
        return float("inf")
    mean_service = float(services.mean())
    if mean_service <= 0.0 or arrival_rate_per_us <= 0.0:
        return 0.0
    wait_probability = erlang_c(num_servers,
                                arrival_rate_per_us * mean_service)
    tail = 1.0 - p / 100.0
    if tail >= wait_probability:
        return 0.0
    return -math.log(tail / wait_probability) * mean_service \
        / (num_servers * (1.0 - rho))


def traffic_stats(batches):
    """Shared offered-load bookkeeping for the serving engines.

    Returns ``(queries, delays_us, offered_qps, batch_rate_per_us)``:
    the flattened query list, per-query batching delays, the offered
    query rate over the arrival span, and the batch arrival rate from
    the inter-dispatch intervals.  Both rates use the interval form
    ``(N - 1) / span`` -- the maximum-likelihood rate estimate from N
    arrivals, and the only form that stays finite when the span
    degenerates.  A single query (or a single batch), and identical
    arrival (or dispatch) times, carry no rate information at all, so
    those degenerate spans report a rate of 0 rather than exploding on
    an epsilon floor.
    """
    if not len(batches):
        raise ValueError("need at least one batch")
    queries = [query for batch in batches for query in batch.queries]
    first_arrival = min(query.arrival_us for query in queries)
    last_arrival = max(query.arrival_us for query in queries)
    span_us = last_arrival - first_arrival
    offered_qps = ((len(queries) - 1) / span_us * 1e6
                   if len(queries) > 1 and span_us > 0.0 else 0.0)
    if len(batches) > 1:
        formed = [batch.formed_us for batch in batches]
        batch_span_us = max(formed) - min(formed)
        batch_rate_per_us = ((len(batches) - 1) / batch_span_us
                             if batch_span_us > 0.0 else 0.0)
    else:
        batch_rate_per_us = 0.0
    delays = [batch.batching_delay_us(query)
              for batch in batches for query in batch.queries]
    return queries, delays, offered_qps, batch_rate_per_us


def saturation_qps(num_queries, num_batches, mean_service_us, num_servers):
    """Query rate at which ``num_servers`` frontends saturate.

    The cluster saturates when batches arrive as fast as its frontends
    serve them: ``c / E[S]`` batches per microsecond, each carrying
    E[queries-per-batch].
    """
    return num_servers * (num_queries / num_batches) \
        / mean_service_us * 1e6


@dataclass
class ServingReport:
    """Latency and throughput summary of one serving run."""

    system: str
    num_queries: int
    num_batches: int
    offered_qps: float
    utilization: float
    mean_service_us: float
    mean_batch_delay_us: float
    mean_wait_us: float
    mean_latency_us: float
    p50_us: float
    p95_us: float
    p99_us: float
    sustainable_qps: float
    num_servers: int = 1
    trigger_counts: dict = field(default_factory=dict)
    extras: dict = field(default_factory=dict)

    @property
    def stable(self):
        return self.utilization < 1.0

    def as_dict(self):
        return {
            "system": self.system,
            "num_queries": self.num_queries,
            "num_batches": self.num_batches,
            "offered_qps": self.offered_qps,
            "utilization": self.utilization,
            "mean_service_us": self.mean_service_us,
            "mean_batch_delay_us": self.mean_batch_delay_us,
            "mean_wait_us": self.mean_wait_us,
            "mean_latency_us": self.mean_latency_us,
            "p50_us": self.p50_us,
            "p95_us": self.p95_us,
            "p99_us": self.p99_us,
            "sustainable_qps": self.sustainable_qps,
            "num_servers": self.num_servers,
            "stable": self.stable,
            "trigger_counts": dict(self.trigger_counts),
            "extras": dict(self.extras),
        }


def summarize_serving(system_name, batches, service_times_us,
                      trigger_counts=None, extras=None, num_servers=1,
                      slo_info=None, capture=None):
    """Turn per-batch service times into a :class:`ServingReport`.

    ``batches`` are the dispatched :class:`~repro.serving.batcher.QueryBatch`
    objects; ``service_times_us`` the simulated execution time of each.  A
    per-query latency percentile combines the exact batching-delay-plus-
    service distribution with the M/G/c waiting-time quantile at the same
    percentile (:func:`wait_quantile_us`), so the tail reflects queueing
    variance, not just the mean wait.  ``num_servers`` is the number of
    concurrent dispatch frontends draining the batch queue.

    When ``slo_info`` is given -- or any query carries a deadline --
    ``extras["slo"]`` gains the deadline accounting of
    :func:`repro.serving.slo.summarize_slo`, using the analytic per-query
    latency approximation (batching delay + service + mean wait) in place
    of measured completions; quote attainment from the event engine where
    the tail matters.

    ``capture`` is an optional :class:`~repro.obs.capture.RunCapture`
    the observability layer passes through ``simulate(trace=/metrics=)``.
    The analytic model has no per-batch queue timeline, so the capture's
    start times are the formation times plus the mean wait -- a
    model-consistent *approximate* timeline (marked as such), whose
    per-query span sums still reconcile with the reported latencies.
    """
    if num_servers < 1:
        raise ValueError("num_servers must be >= 1")
    services = np.asarray(service_times_us, dtype=np.float64)
    if len(batches) != services.size:
        raise ValueError("need one service time per batch")
    if not len(batches):
        raise ValueError("need at least one batch")
    is_columns = getattr(batches, "is_columns", False)
    if is_columns:
        # Array fast path: batch order equals query order inside the
        # columns, so np.repeat reproduces the flattened per-query loops
        # below bitwise (the same float64 operations in the same
        # association order as the scalar path).
        sizes = batches.sizes
        arrivals = batches.columns.arrival_us
        num_queries = batches.num_queries
        formed = batches.formed_us
        delays = np.repeat(formed, sizes) - arrivals
        span_us = arrivals.max() - arrivals.min()
        offered_qps = ((num_queries - 1) / span_us * 1e6
                       if num_queries > 1 and span_us > 0.0 else 0.0)
        if len(batches) > 1:
            batch_span_us = formed.max() - formed.min()
            batch_rate_per_us = ((len(batches) - 1) / batch_span_us
                                 if batch_span_us > 0.0 else 0.0)
        else:
            batch_rate_per_us = 0.0
        base_samples = delays + np.repeat(services, sizes)
    else:
        queries, delays, offered_qps, batch_rate_per_us = \
            traffic_stats(batches)
        num_queries = len(queries)
        base_samples = []
        for batch, service in zip(batches, services):
            for query in batch.queries:
                base_samples.append(batch.batching_delay_us(query)
                                    + float(service))
    rho = mgc_utilization(batch_rate_per_us, services, num_servers)
    mean_wait = mgc_mean_wait_us(batch_rate_per_us, services, num_servers)
    percentiles = {
        "p%g" % p: percentile(base_samples, p)
        + wait_quantile_us(batch_rate_per_us, services, p,
                           num_servers=num_servers)
        for p in (50.0, 95.0, 99.0)
    }
    if is_columns:
        samples = base_samples + mean_wait
    else:
        samples = [base + mean_wait for base in base_samples]
    mean_service = float(services.mean())
    sustainable_qps = saturation_qps(num_queries, len(batches),
                                     mean_service, num_servers)
    if capture is not None:
        formed_times = formed if is_columns \
            else np.asarray([batch.formed_us for batch in batches],
                            dtype=np.float64)
        approx_starts = formed_times + mean_wait
        capture.record(
            engine="analytic", batches=batches, ready_us=formed_times,
            service_us=services, start_us=approx_starts,
            complete_us=approx_starts + services, latency_us=samples,
            num_servers=num_servers, approximate=True)
    # Lazy import: repro.serving.slo imports this module.
    from repro.serving.slo import (
        maybe_summarize_slo,
        maybe_summarize_slo_arrays,
    )

    extras = dict(extras or {})
    if is_columns:
        columns = batches.columns
        slo_record = maybe_summarize_slo_arrays(
            arrivals, columns.deadline_us - arrivals, samples, slo_info)
    else:
        slo_record = maybe_summarize_slo(queries, samples, slo_info)
    if slo_record is not None:
        extras.setdefault("slo", slo_record)
    return ServingReport(
        system=system_name,
        num_queries=num_queries,
        num_batches=len(batches),
        offered_qps=float(offered_qps),
        utilization=rho,
        mean_service_us=mean_service,
        mean_batch_delay_us=float(np.mean(delays)),
        mean_wait_us=mean_wait,
        mean_latency_us=float(np.mean(samples)),
        p50_us=percentiles["p50"],
        p95_us=percentiles["p95"],
        p99_us=percentiles["p99"],
        sustainable_qps=sustainable_qps,
        num_servers=num_servers,
        trigger_counts=dict(trigger_counts or {}),
        extras=dict(extras or {}),
    )
