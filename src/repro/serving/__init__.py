"""Request-level traffic serving on top of the unified system interface.

Models what sits between user traffic and the memory systems the paper
studies: arrival processes (Poisson / bursty two-state MMPP / trace
replay), per-query SLO deadlines (:mod:`repro.serving.slo`) with
pluggable admission control in front of the batcher
(:mod:`repro.serving.admission`: token-bucket, queue-depth,
deadline-aware shedding), a size- and deadline-triggered batching
frontend, deterministic table sharding across serving nodes (single
placement or replication-aware with load-aware placement and per-node
capacity budgets), and a pluggable serving *engine* that turns per-batch
simulated cycles into p50/p95/p99 latency, sustainable QPS and -- when
deadlines are assigned -- goodput/attainment/shed accounting: the
closed-form M/G/c model (``engine="analytic"``, default) or a
discrete-event simulation of the multi-frontend dispatch queue
(``engine="event"``, FIFO; ``engine="event-edf"``,
earliest-deadline-first)::

    from repro.serving import (PoissonArrivalProcess, ShardedServingCluster,
                               queries_from_traces)
    from repro.traces import make_production_table_traces

    traces = make_production_table_traces(num_rows=20_000, num_tables=4)
    queries = queries_from_traces(
        traces, 64, PoissonArrivalProcess(rate_qps=2_000, seed=0))
    report = ShardedServingCluster(num_nodes=2,
                                   node_system="recnmp-opt-4ch").simulate(queries)
    print(report.p99_us, report.sustainable_qps)
"""

from repro.serving.arrival import (
    MMPPArrivalProcess,
    PoissonArrivalProcess,
    ServingQuery,
    TraceReplayArrivalProcess,
    queries_from_traces,
)
from repro.serving.batcher import BatchingFrontend, QueryBatch
from repro.serving.query_columns import (
    BatchColumns,
    ColumnBatch,
    ColumnQueryView,
    QueryColumns,
    QueryStream,
    form_batch_columns,
    query_columns_from_traces,
)
from repro.serving.slo import (
    SLO_POLICIES,
    FixedSLOPolicy,
    PerTableSLOPolicy,
    ServicePercentileSLOPolicy,
    SLOPolicy,
    available_slo_policies,
    resolve_slo_policy,
    summarize_slo,
)
from repro.serving.admission import (
    ADMISSION_CONTROLLERS,
    AdmissionController,
    DeadlineAwareAdmission,
    NoAdmission,
    QueueDepthAdmission,
    TokenBucketAdmission,
    apply_admission,
    available_admission_controllers,
    resolve_admission,
)
from repro.serving.sharding import (
    PLACEMENT_POLICIES,
    ReplicatedTableSharder,
    TableSharder,
    calibrate_request_overhead_from_queries,
    calibrate_request_overhead_lookups,
    compute_table_loads,
    load_imbalance,
    place_tables,
    table_loads_from_queries,
)
from repro.serving.queueing import (
    ServingReport,
    erlang_c,
    latency_percentiles,
    mg1_mean_wait_us,
    mg1_utilization,
    mgc_mean_wait_us,
    mgc_utilization,
    percentile,
    summarize_serving,
    wait_quantile_us,
)
from repro.serving.engine import (
    AnalyticEngine,
    ServingEngine,
    available_engines,
    resolve_engine,
)
from repro.serving.events import (
    EventEngine,
    simulate_batch_queue,
    simulate_fifo_queue,
)
from repro.serving.cluster import ShardedServingCluster, qps_sweep

__all__ = [
    "MMPPArrivalProcess",
    "PoissonArrivalProcess",
    "ServingQuery",
    "TraceReplayArrivalProcess",
    "queries_from_traces",
    "BatchingFrontend",
    "QueryBatch",
    "BatchColumns",
    "ColumnBatch",
    "ColumnQueryView",
    "QueryColumns",
    "QueryStream",
    "form_batch_columns",
    "query_columns_from_traces",
    "SLO_POLICIES",
    "SLOPolicy",
    "FixedSLOPolicy",
    "PerTableSLOPolicy",
    "ServicePercentileSLOPolicy",
    "available_slo_policies",
    "resolve_slo_policy",
    "summarize_slo",
    "ADMISSION_CONTROLLERS",
    "AdmissionController",
    "NoAdmission",
    "TokenBucketAdmission",
    "QueueDepthAdmission",
    "DeadlineAwareAdmission",
    "apply_admission",
    "available_admission_controllers",
    "resolve_admission",
    "PLACEMENT_POLICIES",
    "ReplicatedTableSharder",
    "TableSharder",
    "calibrate_request_overhead_from_queries",
    "calibrate_request_overhead_lookups",
    "compute_table_loads",
    "load_imbalance",
    "place_tables",
    "table_loads_from_queries",
    "ServingReport",
    "erlang_c",
    "latency_percentiles",
    "mg1_mean_wait_us",
    "mg1_utilization",
    "mgc_mean_wait_us",
    "mgc_utilization",
    "percentile",
    "summarize_serving",
    "wait_quantile_us",
    "AnalyticEngine",
    "EventEngine",
    "ServingEngine",
    "available_engines",
    "resolve_engine",
    "simulate_batch_queue",
    "simulate_fifo_queue",
    "ShardedServingCluster",
    "qps_sweep",
]
