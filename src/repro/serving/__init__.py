"""Request-level traffic serving on top of the unified system interface.

Models what sits between user traffic and the memory systems the paper
studies: arrival processes (Poisson / trace replay), a size- and
deadline-triggered batching frontend, deterministic table sharding across
serving nodes (single placement or replication-aware with load-aware
placement), and a pluggable serving *engine* that turns per-batch
simulated cycles into p50/p95/p99 latency and sustainable QPS -- the
closed-form M/G/c model (``engine="analytic"``, default) or a
discrete-event simulation of the multi-frontend dispatch queue
(``engine="event"``)::

    from repro.serving import (PoissonArrivalProcess, ShardedServingCluster,
                               queries_from_traces)
    from repro.traces import make_production_table_traces

    traces = make_production_table_traces(num_rows=20_000, num_tables=4)
    queries = queries_from_traces(
        traces, 64, PoissonArrivalProcess(rate_qps=2_000, seed=0))
    report = ShardedServingCluster(num_nodes=2,
                                   node_system="recnmp-opt-4ch").simulate(queries)
    print(report.p99_us, report.sustainable_qps)
"""

from repro.serving.arrival import (
    PoissonArrivalProcess,
    ServingQuery,
    TraceReplayArrivalProcess,
    queries_from_traces,
)
from repro.serving.batcher import BatchingFrontend, QueryBatch
from repro.serving.sharding import (
    PLACEMENT_POLICIES,
    ReplicatedTableSharder,
    TableSharder,
    compute_table_loads,
    load_imbalance,
    place_tables,
    table_loads_from_queries,
)
from repro.serving.queueing import (
    ServingReport,
    erlang_c,
    latency_percentiles,
    mg1_mean_wait_us,
    mg1_utilization,
    mgc_mean_wait_us,
    mgc_utilization,
    percentile,
    summarize_serving,
    wait_quantile_us,
)
from repro.serving.engine import (
    AnalyticEngine,
    ServingEngine,
    available_engines,
    resolve_engine,
)
from repro.serving.events import EventEngine, simulate_fifo_queue
from repro.serving.cluster import ShardedServingCluster, qps_sweep

__all__ = [
    "PoissonArrivalProcess",
    "ServingQuery",
    "TraceReplayArrivalProcess",
    "queries_from_traces",
    "BatchingFrontend",
    "QueryBatch",
    "PLACEMENT_POLICIES",
    "ReplicatedTableSharder",
    "TableSharder",
    "compute_table_loads",
    "load_imbalance",
    "place_tables",
    "table_loads_from_queries",
    "ServingReport",
    "erlang_c",
    "latency_percentiles",
    "mg1_mean_wait_us",
    "mg1_utilization",
    "mgc_mean_wait_us",
    "mgc_utilization",
    "percentile",
    "summarize_serving",
    "wait_quantile_us",
    "AnalyticEngine",
    "EventEngine",
    "ServingEngine",
    "available_engines",
    "resolve_engine",
    "simulate_fifo_queue",
    "ShardedServingCluster",
    "qps_sweep",
]
