"""Admission control: shed load before the batcher at saturation.

An overloaded FIFO serving node is worse than useless: the queue grows
without bound, *every* query blows through its deadline, and goodput
collapses to whatever finished before the backlog formed.  Admission
control trades a little throughput for bounded queues by rejecting
queries at arrival -- before they enter the batching frontend -- so the
admitted stream stays serveable.

Controllers are causal and deterministic: decisions depend only on the
query stream up to the arrival (never on future service times), driven by
a *fluid backlog model* maintained by :func:`apply_admission` -- admitted
queries deposit an estimated per-query service cost, ``num_servers``
frontends drain it in parallel, and the predicted wait at an arrival is
the remaining work divided by the drain rate.  The estimate comes from
the cluster's own service model
(:meth:`ShardedServingCluster.estimate_query_service_us`), so the
controller's view of capacity tracks the simulated hardware.

Registry (``ADMISSION_CONTROLLERS`` / :func:`resolve_admission`):

* ``none`` -- admit everything (the open-loop baseline).
* ``token-bucket`` -- classic rate limiter: tokens refill at a target
  rate (default: the cluster's estimated capacity) up to a burst bound.
* ``queue-depth`` -- shed when the predicted queue depth (in queries)
  exceeds a threshold.
* ``deadline`` -- deadline-aware shedding: drop a query when its
  predicted wait plus the expected batch service time already exceeds
  its slack, so doomed queries never consume capacity.
"""

import abc


class AdmissionController(abc.ABC):
    """Strategy interface: admit or shed one arriving query.

    Subclasses read the shared capacity estimates installed by
    :meth:`configure` (called once per run by :func:`apply_admission`)
    and keep any per-run state reset by :meth:`reset`.
    """

    #: Registry name of the controller (also recorded in report extras).
    name = "admission"

    def configure(self, capacity_qps, est_query_us, est_batch_us,
                  num_servers):
        """Install the run's capacity estimates (once, before reset)."""
        self._capacity_qps = float(capacity_qps)
        self._est_query_us = float(est_query_us)
        self._est_batch_us = float(est_batch_us)
        self._num_servers = int(num_servers)

    def reset(self):
        """Forget per-run state (token levels, counters); default none."""

    @abc.abstractmethod
    def admit(self, query, now_us, predicted_wait_us):
        """True to admit ``query`` arriving at ``now_us``.

        ``predicted_wait_us`` is the fluid-model dispatch wait the query
        would see if admitted (0 when the virtual queue is empty).
        """

    def describe(self):
        """Human-readable one-line description of the controller."""
        return self.name


class NoAdmission(AdmissionController):
    """Admit everything -- the open-loop baseline every sweep compares
    against (and the default: no query stream is ever filtered unless a
    controller is asked for)."""

    name = "none"

    def admit(self, query, now_us, predicted_wait_us):
        return True


class TokenBucketAdmission(AdmissionController):
    """Rate-limit admissions with a token bucket.

    ``rate_qps`` tokens accrue per second (capped at ``burst``); each
    admission spends one.  ``rate_qps=None`` (the default) uses the
    cluster's estimated sustainable query rate, so the bucket passes
    everything below capacity and clips sustained overload to it --
    bursts shorter than ``burst`` queries still pass untouched.
    """

    name = "token-bucket"

    def __init__(self, rate_qps=None, burst=32):
        if rate_qps is not None and rate_qps <= 0:
            raise ValueError("rate_qps must be positive")
        if burst < 1:
            raise ValueError("burst must be >= 1")
        self.rate_qps = None if rate_qps is None else float(rate_qps)
        self.burst = float(burst)

    def configure(self, capacity_qps, est_query_us, est_batch_us,
                  num_servers):
        super().configure(capacity_qps, est_query_us, est_batch_us,
                          num_servers)
        self._rate_qps = self.rate_qps if self.rate_qps is not None \
            else capacity_qps
        if self._rate_qps <= 0:
            raise ValueError("token refill rate must be positive; pass "
                             "rate_qps explicitly")

    def reset(self):
        self._tokens = self.burst
        self._last_us = None

    def admit(self, query, now_us, predicted_wait_us):
        if self._last_us is not None and now_us > self._last_us:
            self._tokens = min(
                self.burst,
                self._tokens + (now_us - self._last_us) * self._rate_qps
                / 1e6)
        self._last_us = now_us
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return True
        return False

    def describe(self):
        rate = "auto" if self.rate_qps is None else "%.0f QPS" \
            % self.rate_qps
        return "token-bucket (rate %s, burst %g)" % (rate, self.burst)


class QueueDepthAdmission(AdmissionController):
    """Shed when the predicted queue depth exceeds ``max_depth`` queries.

    Depth is the fluid backlog divided by the per-query cost estimate --
    the number of admitted-but-unserved queries ahead of the arrival.
    Bounds the worst-case dispatch wait at roughly ``max_depth *
    est_query_us / num_servers`` regardless of the offered load.
    """

    name = "queue-depth"

    def __init__(self, max_depth=64):
        if max_depth < 1:
            raise ValueError("max_depth must be >= 1")
        self.max_depth = int(max_depth)

    def admit(self, query, now_us, predicted_wait_us):
        depth = predicted_wait_us * self._num_servers / self._est_query_us
        return depth < self.max_depth

    def describe(self):
        return "queue-depth (max %d queries)" % self.max_depth


class DeadlineAwareAdmission(AdmissionController):
    """Shed queries that cannot meet their deadline anyway.

    A query is dropped when its predicted completion -- dispatch wait
    plus ``margin`` expected batch service times -- already exceeds its
    slack (``deadline - arrival``).  Queries without a deadline are
    always admitted (there is nothing to protect).  Unlike the blind
    limiters this frees exactly the capacity that would have been wasted
    on doomed queries, which is why it wins on goodput at overload.

    The default ``margin`` of 1.5 reserves half a batch service of
    headroom beyond the query's own batch: the fluid backlog model
    ignores batch-fill delay and batch quantisation, so admitting right
    up to the predicted deadline leaves the marginal admits missing by
    a hair (measured on the fig16 overload sweep: attainment collapses
    from ~99.6% to ~46% at 2x offered load with ``margin=1.0``).
    """

    name = "deadline"

    def __init__(self, margin=1.5):
        if margin <= 0:
            raise ValueError("margin must be positive")
        self.margin = float(margin)

    def admit(self, query, now_us, predicted_wait_us):
        slack = query.slack_us
        if slack is None:
            return True
        predicted_latency = predicted_wait_us \
            + self.margin * self._est_batch_us
        return predicted_latency <= slack

    def describe(self):
        return "deadline-aware (margin %.1fx batch service)" % self.margin


#: Controller registry: name -> zero-argument factory.
ADMISSION_CONTROLLERS = {
    "none": NoAdmission,
    "token-bucket": TokenBucketAdmission,
    "queue-depth": QueueDepthAdmission,
    "deadline": DeadlineAwareAdmission,
}


def available_admission_controllers():
    """Sorted names of the registered admission controllers."""
    return sorted(ADMISSION_CONTROLLERS)


def resolve_admission(admission):
    """Normalise an ``admission=`` argument.

    ``None`` means *no admission stage at all* (the cluster skips the
    filter entirely -- byte-identical to the pre-SLO behaviour), which is
    distinct from ``"none"``: an explicit controller that admits
    everything but still reports shed accounting.  Also accepts a
    registered name, a controller class, or a ready instance.
    """
    if admission is None:
        return None
    if isinstance(admission, AdmissionController):
        return admission
    if isinstance(admission, type) \
            and issubclass(admission, AdmissionController):
        return admission()
    try:
        factory = ADMISSION_CONTROLLERS[admission]
    except (KeyError, TypeError):
        raise ValueError(
            "unknown admission controller %r; available: %s"
            % (admission, ", ".join(available_admission_controllers())))
    return factory()


def admission_kernel_spec(controller, capacity_qps):
    """Kernel parameters for a built-in controller, None for customs.

    Returns ``(mode, param0, param1, initial_tokens)`` consumable by
    :func:`repro.serving.event_kernels.admission_mask`, or ``None`` when
    ``controller`` is not an *exact* instance of one of the four
    built-in classes -- subclasses may override ``admit``/``reset``
    arbitrarily, so they stay on the per-query object path.
    ``capacity_qps`` resolves the token bucket's default refill rate,
    mirroring :meth:`TokenBucketAdmission.configure`.
    """
    from repro.serving import event_kernels

    kind = type(controller)
    if kind is NoAdmission:
        return (event_kernels.ADMISSION_MODE_NONE, 0.0, 0.0, 0.0)
    if kind is TokenBucketAdmission:
        rate_qps = controller.rate_qps if controller.rate_qps is not None \
            else float(capacity_qps)
        if rate_qps <= 0:
            raise ValueError("token refill rate must be positive; pass "
                             "rate_qps explicitly")
        return (event_kernels.ADMISSION_MODE_TOKEN_BUCKET, rate_qps,
                controller.burst, controller.burst)
    if kind is QueueDepthAdmission:
        return (event_kernels.ADMISSION_MODE_QUEUE_DEPTH,
                float(controller.max_depth), 0.0, 0.0)
    if kind is DeadlineAwareAdmission:
        return (event_kernels.ADMISSION_MODE_DEADLINE, controller.margin,
                0.0, 0.0)
    return None


def apply_admission(queries, controller, num_servers, est_query_us,
                    est_batch_us=None):
    """Filter a query stream through an admission controller.

    Processes queries in arrival order (ties broken by query id),
    maintaining the fluid backlog model: admitted queries add
    ``est_query_us`` of work, ``num_servers`` frontends drain it in
    parallel, and each decision sees the predicted wait at its arrival.
    Returns ``(admitted, shed)`` -- two lists partitioning the input, in
    arrival order.
    """
    if num_servers < 1:
        raise ValueError("num_servers must be >= 1")
    if est_query_us <= 0:
        raise ValueError("est_query_us must be positive")
    if est_batch_us is None:
        est_batch_us = est_query_us
    if est_batch_us <= 0:
        raise ValueError("est_batch_us must be positive")
    ordered = sorted(queries, key=lambda q: (q.arrival_us, q.query_id))
    capacity_qps = num_servers / est_query_us * 1e6
    controller.configure(capacity_qps, est_query_us, est_batch_us,
                         num_servers)
    controller.reset()
    admitted, shed = [], []
    backlog_us = 0.0                    # outstanding work across servers
    last_us = ordered[0].arrival_us if ordered else 0.0
    for query in ordered:
        backlog_us = max(
            0.0, backlog_us - (query.arrival_us - last_us) * num_servers)
        last_us = query.arrival_us
        wait_us = backlog_us / num_servers
        if controller.admit(query, query.arrival_us, wait_us):
            admitted.append(query)
            backlog_us += est_query_us
        else:
            shed.append(query)
    return admitted, shed
