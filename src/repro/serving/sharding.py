"""Table sharding: place embedding tables on serving nodes.

Embedding models are far larger than one node's memory, so tables are
sharded across N nodes and a query fans out to every node that holds one of
its tables.  Placement must be *deterministic* (every frontend replica must
agree where a table lives) -- both policies here are pure functions of the
table id and node count.
"""


class TableSharder:
    """Deterministic table -> node placement.

    Parameters
    ----------
    num_nodes:
        Serving nodes in the cluster.
    policy:
        ``"round-robin"`` -- table ``t`` lives on node ``t % num_nodes``
        (perfectly balanced for dense table id spaces);
        ``"hash"`` -- a Knuth multiplicative hash of the table id, balanced
        in expectation even for sparse or clustered id spaces.
    """

    POLICIES = ("round-robin", "hash")

    def __init__(self, num_nodes, policy="round-robin"):
        if num_nodes <= 0:
            raise ValueError("num_nodes must be positive")
        if policy not in self.POLICIES:
            raise ValueError("policy must be one of %s" % (self.POLICIES,))
        self.num_nodes = int(num_nodes)
        self.policy = policy

    # ------------------------------------------------------------------ #
    def node_of_table(self, table_id):
        """Node index a table is placed on (deterministic)."""
        table_id = int(table_id)
        if table_id < 0:
            raise ValueError("table_id must be non-negative")
        if self.policy == "round-robin":
            return table_id % self.num_nodes
        # Knuth multiplicative hashing: spread clustered ids uniformly
        # without any per-process randomisation (unlike Python's hash()).
        mixed = (table_id * 2654435761) & 0xFFFFFFFF
        return (mixed >> 8) % self.num_nodes

    def placement(self, table_ids):
        """``{table_id: node}`` for a collection of tables."""
        return {int(t): self.node_of_table(t) for t in table_ids}

    def partition_requests(self, requests):
        """Split SLS requests into per-node lists by table placement."""
        partitions = [[] for _ in range(self.num_nodes)]
        for request in requests:
            partitions[self.node_of_table(request.table_id)].append(request)
        return partitions

    def shard_load(self, requests):
        """Per-node lookup counts for a request list (balance diagnostics)."""
        load = [0] * self.num_nodes
        for request in requests:
            load[self.node_of_table(request.table_id)] += \
                request.total_lookups
        return load
