"""Table sharding: place embedding tables on serving nodes.

Embedding models are far larger than one node's memory, so tables are
sharded across N nodes and a query fans out to every node that holds one of
its tables.  Placement must be *deterministic* (every frontend replica must
agree where a table lives).

Two sharders implement the same interface
(``assign_requests`` / ``partition_requests`` / ``shard_load``):

* :class:`TableSharder` -- the single-placement sharder: every table lives
  on exactly one node, chosen as a pure function of the table id
  (``"round-robin"`` / ``"hash"``).  Stateless and content-addressed, so
  the cluster can memoise batch service times by content alone.
* :class:`ReplicatedTableSharder` -- replication-aware sharding fed by
  trace statistics.  A *placement policy* (``"round-robin"`` / ``"hash"``
  / ``"load-aware"``) first bin-packs tables onto nodes by expected lookup
  load; tables whose load share exceeds ``hot_fraction`` are then
  replicated onto several nodes (factor proportional to their share,
  capped by ``max_replicas``), and per-request routing picks the
  least-loaded replica by a seeded running counter -- deterministic, so
  every frontend that sees the same request stream routes it identically.

On skewed production traces a handful of hot tables dominate per-node
load; with single placement the slowest shard sets every batch's service
time.  Replication divides the hot tables' load across nodes, and
load-aware placement keeps the cold remainder bin-packed -- which is what
:mod:`benchmarks.bench_sharding` measures.
"""

import math

import numpy as np


def _knuth_hash(value):
    """Knuth multiplicative hash: spread clustered ids uniformly without
    any per-process randomisation (unlike Python's ``hash()``)."""
    return ((int(value) * 2654435761) & 0xFFFFFFFF) >> 8


# --------------------------------------------------------------------- #
# Trace statistics feeding load-aware placement and replication.
# --------------------------------------------------------------------- #
def compute_table_loads(traces):
    """``{table_id: lookup count}`` from per-table embedding traces.

    The trace length is the expected per-table lookup volume -- the
    statistic load-aware placement bin-packs on and replication factors
    derive from.
    """
    return {int(trace.table_id): float(len(trace)) for trace in traces}


def table_loads_from_queries(queries, request_overhead_lookups=0.0):
    """``{table_id: load}`` measured from a serving-query sample.

    More faithful than trace lengths when queries carry differently sized
    requests per table (the skewed regimes replication exists for).
    ``request_overhead_lookups`` charges each request a fixed cost in
    lookup-equivalents on top of its lookups: embedding nodes pay a
    per-request dispatch overhead (instruction issue, packet headers)
    that dominates small requests, so balancing raw lookups alone
    over-packs nodes with many small-table requests.
    """
    if request_overhead_lookups < 0:
        raise ValueError("request_overhead_lookups must be non-negative")
    loads = {}
    for query in queries:
        for request in query.requests:
            table = int(request.table_id)
            loads[table] = loads.get(table, 0.0) \
                + float(request.total_lookups) + request_overhead_lookups
    return loads


def load_imbalance(shard_loads):
    """Max/mean per-node load ratio (1.0 = perfectly balanced)."""
    loads = [float(load) for load in shard_loads]
    if not loads:
        raise ValueError("need at least one shard load")
    mean = sum(loads) / len(loads)
    return max(loads) / mean if mean > 0.0 else 1.0


def calibrate_request_overhead_lookups(node, request, splits=4):
    """Measure a node's per-request dispatch cost in lookup-equivalents.

    The placement/routing cost model charges every SLS request a fixed
    overhead (``request_overhead_lookups``) on top of its lookups --
    instruction issue, packet headers, partially filled NMP packets.
    Rather than hand-setting that constant, measure it from the system
    itself: execute the same lookups once as a single merged request and
    once split into ``splits`` requests, attribute the extra time of the
    split run to the ``splits - 1`` additional dispatches, and express it
    in units of the node's own per-lookup service time.

    ``node`` is any :class:`~repro.systems.base.EmbeddingSystem`;
    ``request`` a representative :class:`SLSRequest` with at least
    ``splits`` poolings.  ``splits`` sets the granularity being priced
    and should mirror the serving stream (one split per real request, as
    :func:`calibrate_request_overhead_from_queries` arranges): a split
    far coarser than real requests can alias with the node's internal
    packing (e.g. RecNMP's poolings-per-packet) and under-measure.
    Returns a non-negative float (0.0 for purely analytical systems
    whose cost is exactly linear in lookups).  Pass the result -- or a
    hand-set override -- as ``request_overhead_lookups`` to
    :class:`ReplicatedTableSharder` / :func:`table_loads_from_queries`.
    """
    if splits < 2:
        raise ValueError("splits must be >= 2")
    num_poolings = len(request.lengths)
    if num_poolings < splits:
        raise ValueError(
            "calibration request needs at least %d poolings, got %d"
            % (splits, num_poolings))
    bounds = np.concatenate(([0], np.cumsum(request.lengths)))
    groups = np.array_split(np.arange(num_poolings), splits)
    split_requests = [
        type(request)(table_id=request.table_id,
                      indices=request.indices[bounds[g[0]]:bounds[g[-1] + 1]],
                      lengths=request.lengths[g[0]:g[-1] + 1])
        for g in groups]
    merged_us = node.service_time_us([request])
    split_us = node.service_time_us(split_requests)
    if merged_us <= 0.0:
        raise ValueError("merged calibration request took no time; the "
                         "node's service model is degenerate")
    per_lookup_us = merged_us / float(request.total_lookups)
    overhead_us = (split_us - merged_us) / (splits - 1)
    return max(0.0, overhead_us / per_lookup_us)


def calibrate_request_overhead_from_queries(node, queries):
    """Calibrate the per-request overhead from a serving-query sample.

    Concatenates the sample's requests per table, calibrates on the
    widest result (most poolings -- the best signal-to-noise for the
    split measurement), and splits it back at the sample's *typical
    request width* -- so the split run reconstructs the dispatch
    granularity the node actually serves, which is exactly the
    per-request cost the sharder's load model prices.  Returns 0.0 when
    the sample has too few poolings to measure anything
    (single-pooling streams), the neutral price.
    """
    candidates = [request for query in queries
                  for request in query.requests]
    if not candidates:
        raise ValueError("need at least one request to calibrate from")
    by_table = {}
    for request in candidates:
        by_table.setdefault(int(request.table_id), []).append(request)
    merged = []
    for table, requests in sorted(by_table.items()):
        merged.append(type(requests[0])(
            table_id=table,
            indices=np.concatenate([r.indices for r in requests]),
            lengths=np.concatenate([r.lengths for r in requests])))
    widest = max(merged, key=lambda r: len(r.lengths))
    total_poolings = len(widest.lengths)
    typical_poolings = max(
        1, int(np.median([len(r.lengths) for r in candidates])))
    splits = min(total_poolings,
                 max(2, round(total_poolings / typical_poolings)))
    if total_poolings < 2:
        return 0.0
    return calibrate_request_overhead_lookups(node, widest, splits=splits)


# --------------------------------------------------------------------- #
# Placement policies: {table_id: load} -> {table_id: node}.
# --------------------------------------------------------------------- #
def _place_round_robin(table_loads, num_nodes):
    """Table ``t`` on node ``t % num_nodes``, ignoring load."""
    return {table: table % num_nodes for table in table_loads}


def _place_hash(table_loads, num_nodes):
    """Knuth multiplicative hash of the table id, modulo nodes."""
    return {table: _knuth_hash(table) % num_nodes for table in table_loads}


def _place_load_aware(table_loads, num_nodes):
    """Greedy LPT bin-packing of tables by load onto nodes."""
    # Heaviest table first onto the least-loaded node.  Ties break on
    # (load, node, table) so the packing is a pure function of the load
    # map -- every frontend computes the same one.
    node_load = [0.0] * num_nodes
    placement = {}
    for table in sorted(table_loads,
                        key=lambda t: (-table_loads[t], t)):
        node = min(range(num_nodes), key=lambda n: (node_load[n], n))
        placement[table] = node
        node_load[node] += table_loads[table]
    return placement


#: Placement-policy registry: name -> ({table: load}, num_nodes) -> {table:
#: node}.  ``"load-aware"`` is the only one that reads the loads; the other
#: two exist so replication composes with the legacy placements.
PLACEMENT_POLICIES = {
    "round-robin": _place_round_robin,
    "hash": _place_hash,
    "load-aware": _place_load_aware,
}


def place_tables(table_loads, num_nodes, policy="load-aware"):
    """Deterministic primary placement of tables onto nodes.

    ``table_loads`` maps table id to expected lookup load (from
    :func:`compute_table_loads` or :func:`table_loads_from_queries`).
    """
    if num_nodes <= 0:
        raise ValueError("num_nodes must be positive")
    try:
        place = PLACEMENT_POLICIES[policy]
    except (KeyError, TypeError):
        raise ValueError("unknown placement policy %r; available: %s"
                         % (policy, ", ".join(sorted(PLACEMENT_POLICIES))))
    return place({int(t): float(load) for t, load in table_loads.items()},
                 int(num_nodes))


def partition_by_assignment(requests, assignment, num_nodes):
    """Split requests into per-node lists given one node per request."""
    partitions = [[] for _ in range(num_nodes)]
    for request, node in zip(requests, assignment):
        partitions[node].append(request)
    return partitions


# --------------------------------------------------------------------- #
class TableSharder:
    """Deterministic single-placement table -> node sharding.

    Parameters
    ----------
    num_nodes:
        Serving nodes in the cluster.
    policy:
        ``"round-robin"`` -- table ``t`` lives on node ``t % num_nodes``
        (perfectly balanced for dense table id spaces);
        ``"hash"`` -- a Knuth multiplicative hash of the table id, balanced
        in expectation even for sparse or clustered id spaces.
    """

    POLICIES = ("round-robin", "hash")

    #: Stateless: assignments are a pure function of request content, so
    #: the cluster may memoise service times by batch content alone.
    stateful = False

    def __init__(self, num_nodes, policy="round-robin"):
        if num_nodes <= 0:
            raise ValueError("num_nodes must be positive")
        if policy not in self.POLICIES:
            raise ValueError("policy must be one of %s" % (self.POLICIES,))
        self.num_nodes = int(num_nodes)
        self.policy = policy

    # ------------------------------------------------------------------ #
    def node_of_table(self, table_id):
        """Node index a table is placed on (deterministic)."""
        table_id = int(table_id)
        if table_id < 0:
            raise ValueError("table_id must be non-negative")
        if self.policy == "round-robin":
            return table_id % self.num_nodes
        return _knuth_hash(table_id) % self.num_nodes

    def placement(self, table_ids):
        """``{table_id: node}`` for a collection of tables."""
        return {int(t): self.node_of_table(t) for t in table_ids}

    def assign_requests(self, requests, commit=True):
        """One node index per request (``commit`` is a no-op here)."""
        return [self.node_of_table(request.table_id)
                for request in requests]

    def partition_requests(self, requests):
        """Split SLS requests into per-node lists by table placement."""
        return partition_by_assignment(
            requests, self.assign_requests(requests), self.num_nodes)

    def shard_load(self, requests):
        """Per-node lookup counts for a request list (balance diagnostics)."""
        load = [0] * self.num_nodes
        for request in requests:
            load[self.node_of_table(request.table_id)] += \
                request.total_lookups
        return load

    def describe(self):
        """Human-readable one-line description of the sharder."""
        return "%s over %d nodes" % (self.policy, self.num_nodes)


class ReplicatedTableSharder:
    """Replication-aware sharding with load-aware placement.

    Every table gets a replication factor derived from its share of the
    expected lookup load: tables at or below ``hot_fraction`` of the total
    keep a single replica, a table carrying ``k`` times the hot threshold
    gets ``ceil(k)`` replicas (capped by ``max_replicas`` and the node
    count).  Replicas are placed by the selected policy -- ``"load-aware"``
    bin-packs per-replica loads greedily (heaviest first, least-loaded
    nodes), ``"round-robin"`` / ``"hash"`` place the primary like
    :class:`TableSharder` and the extra replicas on the following nodes.

    Per-request routing picks the least-loaded replica by a running
    lookup counter, with a seeded rotation breaking ties -- a pure
    function of ``(seed, placement, request stream)``, so every frontend
    that replays the same stream routes it identically, with no
    coordination.  Routing is *stateful*: the cluster includes the
    assignment in its service-time cache key (see
    :meth:`ShardedServingCluster.service_time_us`).

    Parameters
    ----------
    num_nodes:
        Serving nodes in the cluster.
    table_loads:
        ``{table_id: expected lookups}`` from trace statistics
        (:func:`compute_table_loads` / :func:`table_loads_from_queries`).
    policy:
        Placement policy (:data:`PLACEMENT_POLICIES`).
    max_replicas:
        Upper bound on replicas per table (1 disables replication and
        leaves pure placement).
    hot_fraction:
        Load share above which a table counts as hot and is replicated.
    seed:
        Tie-breaking seed shared by every frontend.
    request_overhead_lookups:
        Fixed per-request routing cost in lookup-equivalents, matching
        the same parameter of :func:`table_loads_from_queries` -- keeps
        the running replica-selection counters in the same cost unit the
        placement was computed in.  Hand-set, or measured from the node
        itself via :func:`calibrate_request_overhead_lookups`.
    table_bytes:
        ``{table_id: bytes}`` memory footprint of every table in
        ``table_loads`` (each replica holds a full copy).  Required when
        ``node_capacity_bytes`` is set.
    node_capacity_bytes:
        Per-node memory budget for placed replicas -- a scalar applied
        to every node or one value per node.  Placement treats the
        budget as a *hard* constraint with load balance as the
        objective: replicas only land on nodes with room, replication
        factors shrink to the feasible node count, and a budget that
        cannot hold even one copy of every table raises a
        ``ValueError`` naming the overflowing tables.
    """

    POLICIES = tuple(sorted(PLACEMENT_POLICIES))

    stateful = True

    def __init__(self, num_nodes, table_loads, policy="load-aware",
                 max_replicas=2, hot_fraction=0.1, seed=0,
                 request_overhead_lookups=0.0, table_bytes=None,
                 node_capacity_bytes=None):
        if num_nodes <= 0:
            raise ValueError("num_nodes must be positive")
        if policy not in PLACEMENT_POLICIES:
            raise ValueError("unknown placement policy %r; available: %s"
                             % (policy,
                                ", ".join(sorted(PLACEMENT_POLICIES))))
        if max_replicas < 1:
            raise ValueError("max_replicas must be >= 1")
        if not 0.0 < hot_fraction <= 1.0:
            raise ValueError("hot_fraction must be in (0, 1]")
        if not table_loads:
            raise ValueError("need at least one table load")
        if request_overhead_lookups < 0:
            raise ValueError("request_overhead_lookups must be "
                             "non-negative")
        self.num_nodes = int(num_nodes)
        self.policy = policy
        self.max_replicas = int(max_replicas)
        self.hot_fraction = float(hot_fraction)
        self.seed = int(seed)
        self.request_overhead_lookups = float(request_overhead_lookups)
        self.table_loads = {int(t): float(load)
                            for t, load in table_loads.items()}
        if any(load < 0 for load in self.table_loads.values()):
            raise ValueError("table loads must be non-negative")
        self.table_bytes, self.node_capacity_bytes = \
            self._validate_capacity(table_bytes, node_capacity_bytes)
        self.node_bytes_used = [0.0] * self.num_nodes
        self.replicas = self._replicate_and_place()
        # Tables the load map never saw fall back to stateless hashing
        # (a single replica on a stable node).
        self._fallback = TableSharder(self.num_nodes, policy="hash")
        self.reset_routing()

    @classmethod
    def from_traces(cls, num_nodes, traces, **kwargs):
        """Build from per-table embedding traces (loads = trace lengths)."""
        return cls(num_nodes, compute_table_loads(traces), **kwargs)

    @classmethod
    def from_queries(cls, num_nodes, queries, request_overhead_lookups=0.0,
                     **kwargs):
        """Build from a serving-query sample (loads = measured cost).

        ``request_overhead_lookups`` feeds both the measured table loads
        and the sharder's routing counters, so placement and routing
        agree on what one request costs.
        """
        return cls(num_nodes,
                   table_loads_from_queries(queries,
                                            request_overhead_lookups),
                   request_overhead_lookups=request_overhead_lookups,
                   **kwargs)

    # ------------------------------------------------------------------ #
    def _validate_capacity(self, table_bytes, node_capacity_bytes):
        """Normalise the optional per-node byte budget and table sizes."""
        if node_capacity_bytes is None:
            if table_bytes is None:
                return None, None
            normalised = {int(t): float(b) for t, b in table_bytes.items()}
            if any(b < 0 for b in normalised.values()):
                raise ValueError("table byte sizes must be non-negative")
            return normalised, None
        if table_bytes is None:
            raise ValueError("node_capacity_bytes needs table_bytes "
                             "({table_id: bytes}) to pack against")
        normalised = {int(t): float(b) for t, b in table_bytes.items()}
        if any(b < 0 for b in normalised.values()):
            raise ValueError("table byte sizes must be non-negative")
        missing = sorted(t for t in self.table_loads if t not in normalised)
        if missing:
            raise ValueError(
                "table_bytes is missing sizes for tables %s; every table "
                "in the load map needs a byte footprint when a capacity "
                "budget is set" % ", ".join(str(t) for t in missing))
        if np.ndim(node_capacity_bytes) == 0:
            budgets = [float(node_capacity_bytes)] * self.num_nodes
        else:
            budgets = [float(b) for b in node_capacity_bytes]
            if len(budgets) != self.num_nodes:
                raise ValueError("need one capacity budget per node "
                                 "(%d nodes, %d budgets)"
                                 % (self.num_nodes, len(budgets)))
        if any(b <= 0 for b in budgets):
            raise ValueError("node capacity budgets must be positive")
        return normalised, budgets

    def _capacity_error(self, overflow, bytes_free):
        names = ", ".join(
            "%d (%.0f bytes)" % (table, self.table_bytes[table])
            for table in overflow)
        raise ValueError(
            "node capacity budget infeasible: no node has room for "
            "table%s %s; per-node free bytes after packing the rest: %s"
            % ("s" if len(overflow) > 1 else "", names,
               ["%.0f" % b for b in bytes_free]))

    # ------------------------------------------------------------------ #
    def replication_factor(self, table_id):
        """Replicas assigned to a table (1 for cold or unknown tables)."""
        nodes = self.replicas.get(int(table_id))
        return len(nodes) if nodes is not None else 1

    def _factor_for(self, load, total):
        if total <= 0.0 or load <= 0.0:
            return 1
        share = load / total
        if share <= self.hot_fraction:
            return 1
        return min(self.max_replicas, self.num_nodes,
                   int(math.ceil(share / self.hot_fraction)))

    def _replicate_and_place(self):
        total = sum(self.table_loads.values())
        factors = {table: self._factor_for(load, total)
                   for table, load in self.table_loads.items()}
        if self.node_capacity_bytes is None:
            return self._place_unconstrained(factors)
        return self._place_with_budget(factors)

    def _place_unconstrained(self, factors):
        replicas = {}
        if self.policy == "load-aware":
            # Bin-pack per-replica loads: heaviest share first, each
            # table's replicas on its r least-loaded distinct nodes.
            node_load = [0.0] * self.num_nodes
            order = sorted(
                self.table_loads,
                key=lambda t: (-self.table_loads[t] / factors[t], t))
            for table in order:
                factor = factors[table]
                share = self.table_loads[table] / factor
                nodes = sorted(range(self.num_nodes),
                               key=lambda n: (node_load[n], n))[:factor]
                for node in nodes:
                    node_load[node] += share
                replicas[table] = tuple(sorted(nodes))
        else:
            primary = place_tables(self.table_loads, self.num_nodes,
                                   self.policy)
            for table, node in primary.items():
                replicas[table] = tuple(sorted(
                    (node + offset) % self.num_nodes
                    for offset in range(factors[table])))
        return replicas

    def _place_with_budget(self, factors):
        """Capacity-constrained placement: bytes hard, load the objective.

        Two phases so replication never starves mandatory placement:
        first every table gets exactly one copy (heaviest table first,
        packed LPT-style onto the least-loaded node with byte headroom
        -- an infeasible phase raises, naming every unplaced table);
        then extra replicas of hot tables consume whatever capacity is
        left, skipped silently where no node has room.  Node load is
        charged at the table's per-replica share throughout, so phase
        one already reserves balance headroom for the replicas phase two
        intends to add.
        """
        bytes_free = list(self.node_capacity_bytes)
        node_load = [0.0] * self.num_nodes
        placed = {table: [] for table in self.table_loads}
        primary = None
        if self.policy != "load-aware":
            primary = place_tables(self.table_loads, self.num_nodes,
                                   self.policy)

        def candidates_for(table):
            need = self.table_bytes[table]
            if primary is None:
                nodes = [n for n in range(self.num_nodes)
                         if bytes_free[n] >= need
                         and n not in placed[table]]
                # Least-loaded node first: load balance is the objective.
                return sorted(nodes, key=lambda n: (node_load[n], n))
            # Fixed-primary policies walk the ring from the policy's
            # node, shifting past full nodes (a capacity-induced,
            # deterministic displacement).
            anchor = placed[table][0] if placed[table] \
                else primary[table]
            ring = [(anchor + offset) % self.num_nodes
                    for offset in range(self.num_nodes)]
            return [n for n in ring if bytes_free[n] >= need
                    and n not in placed[table]]

        def commit(table, node):
            placed[table].append(node)
            bytes_free[node] -= self.table_bytes[table]
            self.node_bytes_used[node] += self.table_bytes[table]
            node_load[node] += self.table_loads[table] / factors[table]

        # Phase one: a mandatory single copy of every table.
        overflow = []
        for table in sorted(self.table_loads,
                            key=lambda t: (-self.table_bytes[t],
                                           -self.table_loads[t], t)):
            nodes = candidates_for(table)
            if not nodes:
                overflow.append(table)
                continue
            commit(table, nodes[0])
        if overflow:
            self._capacity_error(sorted(overflow), bytes_free)
        # Phase two: optional extra replicas with the leftover capacity.
        order = sorted((t for t in self.table_loads if factors[t] > 1),
                       key=lambda t: (-self.table_loads[t] / factors[t],
                                      t))
        for table in order:
            for _ in range(factors[table] - 1):
                nodes = candidates_for(table)
                if not nodes:
                    break
                commit(table, nodes[0])
        return {table: tuple(sorted(nodes))
                for table, nodes in placed.items()}

    def placement(self, table_ids):
        """``{table_id: primary node}`` (first replica) for compatibility."""
        return {int(t): self.replica_nodes(t)[0] for t in table_ids}

    def replica_nodes(self, table_id):
        """All nodes holding a table, sorted (one for unknown tables)."""
        table_id = int(table_id)
        if table_id < 0:
            raise ValueError("table_id must be non-negative")
        nodes = self.replicas.get(table_id)
        if nodes is None:
            return (self._fallback.node_of_table(table_id),)
        return nodes

    # ------------------------------------------------------------------ #
    # Routing: deterministic least-loaded-of-k by a running counter.
    # ------------------------------------------------------------------ #
    def reset_routing(self):
        """Forget routed load (a fresh frontend's view of the cluster)."""
        self._routed_load = [0.0] * self.num_nodes
        self._route_counts = {}

    def routing_state(self):
        """Snapshot of the per-node routed-lookup counters."""
        return tuple(self._routed_load)

    def _pick_replica(self, table_id, routed_load, route_counts):
        nodes = self.replica_nodes(table_id)
        if len(nodes) == 1:
            return nodes[0]
        count = route_counts.get(table_id, 0)
        # Seeded rotation so ties do not all collapse onto the lowest
        # node index; pure function of (seed, table, per-table count),
        # hence identical on every frontend replaying the same stream.
        rotation = _knuth_hash(self.seed * 1000003 + table_id * 8191
                               + count)
        return min(nodes, key=lambda n: (routed_load[n],
                                         (n + rotation) % self.num_nodes,
                                         n))

    def assign_requests(self, requests, commit=True):
        """One node per request, least-loaded replica first.

        With ``commit=True`` (the default) the routing counters advance;
        ``commit=False`` answers "where would these go from the current
        state" without perturbing it (used for load diagnostics).
        """
        if commit:
            routed_load, route_counts = self._routed_load, \
                self._route_counts
        else:
            routed_load = list(self._routed_load)
            route_counts = dict(self._route_counts)
        assignment = []
        for request in requests:
            table = int(request.table_id)
            node = self._pick_replica(table, routed_load, route_counts)
            routed_load[node] += float(request.total_lookups) \
                + self.request_overhead_lookups
            route_counts[table] = route_counts.get(table, 0) + 1
            assignment.append(node)
        return assignment

    def partition_requests(self, requests):
        """Split SLS requests into per-node lists (advances routing)."""
        return partition_by_assignment(
            requests, self.assign_requests(requests), self.num_nodes)

    def shard_load(self, requests):
        """Per-node lookup counts a request list *would* route to.

        Diagnostic: routes from the current counters without committing,
        so inspecting balance never changes subsequent routing.
        """
        load = [0.0] * self.num_nodes
        for request, node in zip(requests,
                                 self.assign_requests(requests,
                                                      commit=False)):
            load[node] += request.total_lookups
        return load

    def node_bytes(self):
        """Per-node placed replica bytes (all zeros without table sizes)."""
        return list(self.node_bytes_used)

    def describe(self):
        """Human-readable one-line description of the sharder."""
        replicated = sum(1 for nodes in self.replicas.values()
                         if len(nodes) > 1)
        budget = ""
        if self.node_capacity_bytes is not None:
            budget = ", %.0f-byte node budget" \
                % max(self.node_capacity_bytes)
        return ("%s over %d nodes, %d/%d tables replicated (<=%d replicas%s)"
                % (self.policy, self.num_nodes, replicated,
                   len(self.replicas), self.max_replicas, budget))
