"""Table sharding: place embedding tables on serving nodes.

Embedding models are far larger than one node's memory, so tables are
sharded across N nodes and a query fans out to every node that holds one of
its tables.  Placement must be *deterministic* (every frontend replica must
agree where a table lives).

Two sharders implement the same interface
(``assign_requests`` / ``partition_requests`` / ``shard_load``):

* :class:`TableSharder` -- the single-placement sharder: every table lives
  on exactly one node, chosen as a pure function of the table id
  (``"round-robin"`` / ``"hash"``).  Stateless and content-addressed, so
  the cluster can memoise batch service times by content alone.
* :class:`ReplicatedTableSharder` -- replication-aware sharding fed by
  trace statistics.  A *placement policy* (``"round-robin"`` / ``"hash"``
  / ``"load-aware"``) first bin-packs tables onto nodes by expected lookup
  load; tables whose load share exceeds ``hot_fraction`` are then
  replicated onto several nodes (factor proportional to their share,
  capped by ``max_replicas``), and per-request routing picks the
  least-loaded replica by a seeded running counter -- deterministic, so
  every frontend that sees the same request stream routes it identically.

On skewed production traces a handful of hot tables dominate per-node
load; with single placement the slowest shard sets every batch's service
time.  Replication divides the hot tables' load across nodes, and
load-aware placement keeps the cold remainder bin-packed -- which is what
:mod:`benchmarks.bench_sharding` measures.
"""

import math


def _knuth_hash(value):
    """Knuth multiplicative hash: spread clustered ids uniformly without
    any per-process randomisation (unlike Python's ``hash()``)."""
    return ((int(value) * 2654435761) & 0xFFFFFFFF) >> 8


# --------------------------------------------------------------------- #
# Trace statistics feeding load-aware placement and replication.
# --------------------------------------------------------------------- #
def compute_table_loads(traces):
    """``{table_id: lookup count}`` from per-table embedding traces.

    The trace length is the expected per-table lookup volume -- the
    statistic load-aware placement bin-packs on and replication factors
    derive from.
    """
    return {int(trace.table_id): float(len(trace)) for trace in traces}


def table_loads_from_queries(queries, request_overhead_lookups=0.0):
    """``{table_id: load}`` measured from a serving-query sample.

    More faithful than trace lengths when queries carry differently sized
    requests per table (the skewed regimes replication exists for).
    ``request_overhead_lookups`` charges each request a fixed cost in
    lookup-equivalents on top of its lookups: embedding nodes pay a
    per-request dispatch overhead (instruction issue, packet headers)
    that dominates small requests, so balancing raw lookups alone
    over-packs nodes with many small-table requests.
    """
    if request_overhead_lookups < 0:
        raise ValueError("request_overhead_lookups must be non-negative")
    loads = {}
    for query in queries:
        for request in query.requests:
            table = int(request.table_id)
            loads[table] = loads.get(table, 0.0) \
                + float(request.total_lookups) + request_overhead_lookups
    return loads


def load_imbalance(shard_loads):
    """Max/mean per-node load ratio (1.0 = perfectly balanced)."""
    loads = [float(load) for load in shard_loads]
    if not loads:
        raise ValueError("need at least one shard load")
    mean = sum(loads) / len(loads)
    return max(loads) / mean if mean > 0.0 else 1.0


# --------------------------------------------------------------------- #
# Placement policies: {table_id: load} -> {table_id: node}.
# --------------------------------------------------------------------- #
def _place_round_robin(table_loads, num_nodes):
    return {table: table % num_nodes for table in table_loads}


def _place_hash(table_loads, num_nodes):
    return {table: _knuth_hash(table) % num_nodes for table in table_loads}


def _place_load_aware(table_loads, num_nodes):
    # Greedy LPT bin-packing: heaviest table first onto the least-loaded
    # node.  Ties break on (load, node, table) so the packing is a pure
    # function of the load map -- every frontend computes the same one.
    node_load = [0.0] * num_nodes
    placement = {}
    for table in sorted(table_loads,
                        key=lambda t: (-table_loads[t], t)):
        node = min(range(num_nodes), key=lambda n: (node_load[n], n))
        placement[table] = node
        node_load[node] += table_loads[table]
    return placement


#: Placement-policy registry: name -> ({table: load}, num_nodes) -> {table:
#: node}.  ``"load-aware"`` is the only one that reads the loads; the other
#: two exist so replication composes with the legacy placements.
PLACEMENT_POLICIES = {
    "round-robin": _place_round_robin,
    "hash": _place_hash,
    "load-aware": _place_load_aware,
}


def place_tables(table_loads, num_nodes, policy="load-aware"):
    """Deterministic primary placement of tables onto nodes.

    ``table_loads`` maps table id to expected lookup load (from
    :func:`compute_table_loads` or :func:`table_loads_from_queries`).
    """
    if num_nodes <= 0:
        raise ValueError("num_nodes must be positive")
    try:
        place = PLACEMENT_POLICIES[policy]
    except (KeyError, TypeError):
        raise ValueError("unknown placement policy %r; available: %s"
                         % (policy, ", ".join(sorted(PLACEMENT_POLICIES))))
    return place({int(t): float(load) for t, load in table_loads.items()},
                 int(num_nodes))


def partition_by_assignment(requests, assignment, num_nodes):
    """Split requests into per-node lists given one node per request."""
    partitions = [[] for _ in range(num_nodes)]
    for request, node in zip(requests, assignment):
        partitions[node].append(request)
    return partitions


# --------------------------------------------------------------------- #
class TableSharder:
    """Deterministic single-placement table -> node sharding.

    Parameters
    ----------
    num_nodes:
        Serving nodes in the cluster.
    policy:
        ``"round-robin"`` -- table ``t`` lives on node ``t % num_nodes``
        (perfectly balanced for dense table id spaces);
        ``"hash"`` -- a Knuth multiplicative hash of the table id, balanced
        in expectation even for sparse or clustered id spaces.
    """

    POLICIES = ("round-robin", "hash")

    #: Stateless: assignments are a pure function of request content, so
    #: the cluster may memoise service times by batch content alone.
    stateful = False

    def __init__(self, num_nodes, policy="round-robin"):
        if num_nodes <= 0:
            raise ValueError("num_nodes must be positive")
        if policy not in self.POLICIES:
            raise ValueError("policy must be one of %s" % (self.POLICIES,))
        self.num_nodes = int(num_nodes)
        self.policy = policy

    # ------------------------------------------------------------------ #
    def node_of_table(self, table_id):
        """Node index a table is placed on (deterministic)."""
        table_id = int(table_id)
        if table_id < 0:
            raise ValueError("table_id must be non-negative")
        if self.policy == "round-robin":
            return table_id % self.num_nodes
        return _knuth_hash(table_id) % self.num_nodes

    def placement(self, table_ids):
        """``{table_id: node}`` for a collection of tables."""
        return {int(t): self.node_of_table(t) for t in table_ids}

    def assign_requests(self, requests, commit=True):
        """One node index per request (``commit`` is a no-op here)."""
        return [self.node_of_table(request.table_id)
                for request in requests]

    def partition_requests(self, requests):
        """Split SLS requests into per-node lists by table placement."""
        return partition_by_assignment(
            requests, self.assign_requests(requests), self.num_nodes)

    def shard_load(self, requests):
        """Per-node lookup counts for a request list (balance diagnostics)."""
        load = [0] * self.num_nodes
        for request in requests:
            load[self.node_of_table(request.table_id)] += \
                request.total_lookups
        return load

    def describe(self):
        """Human-readable one-line description of the sharder."""
        return "%s over %d nodes" % (self.policy, self.num_nodes)


class ReplicatedTableSharder:
    """Replication-aware sharding with load-aware placement.

    Every table gets a replication factor derived from its share of the
    expected lookup load: tables at or below ``hot_fraction`` of the total
    keep a single replica, a table carrying ``k`` times the hot threshold
    gets ``ceil(k)`` replicas (capped by ``max_replicas`` and the node
    count).  Replicas are placed by the selected policy -- ``"load-aware"``
    bin-packs per-replica loads greedily (heaviest first, least-loaded
    nodes), ``"round-robin"`` / ``"hash"`` place the primary like
    :class:`TableSharder` and the extra replicas on the following nodes.

    Per-request routing picks the least-loaded replica by a running
    lookup counter, with a seeded rotation breaking ties -- a pure
    function of ``(seed, placement, request stream)``, so every frontend
    that replays the same stream routes it identically, with no
    coordination.  Routing is *stateful*: the cluster includes the
    assignment in its service-time cache key (see
    :meth:`ShardedServingCluster.service_time_us`).

    Parameters
    ----------
    num_nodes:
        Serving nodes in the cluster.
    table_loads:
        ``{table_id: expected lookups}`` from trace statistics
        (:func:`compute_table_loads` / :func:`table_loads_from_queries`).
    policy:
        Placement policy (:data:`PLACEMENT_POLICIES`).
    max_replicas:
        Upper bound on replicas per table (1 disables replication and
        leaves pure placement).
    hot_fraction:
        Load share above which a table counts as hot and is replicated.
    seed:
        Tie-breaking seed shared by every frontend.
    request_overhead_lookups:
        Fixed per-request routing cost in lookup-equivalents, matching
        the same parameter of :func:`table_loads_from_queries` -- keeps
        the running replica-selection counters in the same cost unit the
        placement was computed in.
    """

    POLICIES = tuple(sorted(PLACEMENT_POLICIES))

    stateful = True

    def __init__(self, num_nodes, table_loads, policy="load-aware",
                 max_replicas=2, hot_fraction=0.1, seed=0,
                 request_overhead_lookups=0.0):
        if num_nodes <= 0:
            raise ValueError("num_nodes must be positive")
        if policy not in PLACEMENT_POLICIES:
            raise ValueError("unknown placement policy %r; available: %s"
                             % (policy,
                                ", ".join(sorted(PLACEMENT_POLICIES))))
        if max_replicas < 1:
            raise ValueError("max_replicas must be >= 1")
        if not 0.0 < hot_fraction <= 1.0:
            raise ValueError("hot_fraction must be in (0, 1]")
        if not table_loads:
            raise ValueError("need at least one table load")
        if request_overhead_lookups < 0:
            raise ValueError("request_overhead_lookups must be "
                             "non-negative")
        self.num_nodes = int(num_nodes)
        self.policy = policy
        self.max_replicas = int(max_replicas)
        self.hot_fraction = float(hot_fraction)
        self.seed = int(seed)
        self.request_overhead_lookups = float(request_overhead_lookups)
        self.table_loads = {int(t): float(load)
                            for t, load in table_loads.items()}
        if any(load < 0 for load in self.table_loads.values()):
            raise ValueError("table loads must be non-negative")
        self.replicas = self._replicate_and_place()
        # Tables the load map never saw fall back to stateless hashing
        # (a single replica on a stable node).
        self._fallback = TableSharder(self.num_nodes, policy="hash")
        self.reset_routing()

    @classmethod
    def from_traces(cls, num_nodes, traces, **kwargs):
        """Build from per-table embedding traces (loads = trace lengths)."""
        return cls(num_nodes, compute_table_loads(traces), **kwargs)

    @classmethod
    def from_queries(cls, num_nodes, queries, request_overhead_lookups=0.0,
                     **kwargs):
        """Build from a serving-query sample (loads = measured cost).

        ``request_overhead_lookups`` feeds both the measured table loads
        and the sharder's routing counters, so placement and routing
        agree on what one request costs.
        """
        return cls(num_nodes,
                   table_loads_from_queries(queries,
                                            request_overhead_lookups),
                   request_overhead_lookups=request_overhead_lookups,
                   **kwargs)

    # ------------------------------------------------------------------ #
    def replication_factor(self, table_id):
        """Replicas assigned to a table (1 for cold or unknown tables)."""
        nodes = self.replicas.get(int(table_id))
        return len(nodes) if nodes is not None else 1

    def _factor_for(self, load, total):
        if total <= 0.0 or load <= 0.0:
            return 1
        share = load / total
        if share <= self.hot_fraction:
            return 1
        return min(self.max_replicas, self.num_nodes,
                   int(math.ceil(share / self.hot_fraction)))

    def _replicate_and_place(self):
        total = sum(self.table_loads.values())
        factors = {table: self._factor_for(load, total)
                   for table, load in self.table_loads.items()}
        replicas = {}
        if self.policy == "load-aware":
            # Bin-pack per-replica loads: heaviest share first, each
            # table's replicas on its r least-loaded distinct nodes.
            node_load = [0.0] * self.num_nodes
            order = sorted(
                self.table_loads,
                key=lambda t: (-self.table_loads[t] / factors[t], t))
            for table in order:
                factor = factors[table]
                share = self.table_loads[table] / factor
                nodes = sorted(range(self.num_nodes),
                               key=lambda n: (node_load[n], n))[:factor]
                for node in nodes:
                    node_load[node] += share
                replicas[table] = tuple(sorted(nodes))
        else:
            primary = place_tables(self.table_loads, self.num_nodes,
                                   self.policy)
            for table, node in primary.items():
                replicas[table] = tuple(sorted(
                    (node + offset) % self.num_nodes
                    for offset in range(factors[table])))
        return replicas

    def placement(self, table_ids):
        """``{table_id: primary node}`` (first replica) for compatibility."""
        return {int(t): self.replica_nodes(t)[0] for t in table_ids}

    def replica_nodes(self, table_id):
        """All nodes holding a table, sorted (one for unknown tables)."""
        table_id = int(table_id)
        if table_id < 0:
            raise ValueError("table_id must be non-negative")
        nodes = self.replicas.get(table_id)
        if nodes is None:
            return (self._fallback.node_of_table(table_id),)
        return nodes

    # ------------------------------------------------------------------ #
    # Routing: deterministic least-loaded-of-k by a running counter.
    # ------------------------------------------------------------------ #
    def reset_routing(self):
        """Forget routed load (a fresh frontend's view of the cluster)."""
        self._routed_load = [0.0] * self.num_nodes
        self._route_counts = {}

    def routing_state(self):
        """Snapshot of the per-node routed-lookup counters."""
        return tuple(self._routed_load)

    def _pick_replica(self, table_id, routed_load, route_counts):
        nodes = self.replica_nodes(table_id)
        if len(nodes) == 1:
            return nodes[0]
        count = route_counts.get(table_id, 0)
        # Seeded rotation so ties do not all collapse onto the lowest
        # node index; pure function of (seed, table, per-table count),
        # hence identical on every frontend replaying the same stream.
        rotation = _knuth_hash(self.seed * 1000003 + table_id * 8191
                               + count)
        return min(nodes, key=lambda n: (routed_load[n],
                                         (n + rotation) % self.num_nodes,
                                         n))

    def assign_requests(self, requests, commit=True):
        """One node per request, least-loaded replica first.

        With ``commit=True`` (the default) the routing counters advance;
        ``commit=False`` answers "where would these go from the current
        state" without perturbing it (used for load diagnostics).
        """
        if commit:
            routed_load, route_counts = self._routed_load, \
                self._route_counts
        else:
            routed_load = list(self._routed_load)
            route_counts = dict(self._route_counts)
        assignment = []
        for request in requests:
            table = int(request.table_id)
            node = self._pick_replica(table, routed_load, route_counts)
            routed_load[node] += float(request.total_lookups) \
                + self.request_overhead_lookups
            route_counts[table] = route_counts.get(table, 0) + 1
            assignment.append(node)
        return assignment

    def partition_requests(self, requests):
        """Split SLS requests into per-node lists (advances routing)."""
        return partition_by_assignment(
            requests, self.assign_requests(requests), self.num_nodes)

    def shard_load(self, requests):
        """Per-node lookup counts a request list *would* route to.

        Diagnostic: routes from the current counters without committing,
        so inspecting balance never changes subsequent routing.
        """
        load = [0.0] * self.num_nodes
        for request, node in zip(requests,
                                 self.assign_requests(requests,
                                                      commit=False)):
            load[node] += request.total_lookups
        return load

    def describe(self):
        """Human-readable one-line description of the sharder."""
        replicated = sum(1 for nodes in self.replicas.values()
                         if len(nodes) > 1)
        return ("%s over %d nodes, %d/%d tables replicated (<=%d replicas)"
                % (self.policy, self.num_nodes, replicated,
                   len(self.replicas), self.max_replicas))
