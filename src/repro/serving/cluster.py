"""Sharded serving cluster: traffic in, latency percentiles out.

Ties the serving pieces together: an arrival process produces queries, the
batching frontend groups them, the table sharder fans each batch out to N
embedding-system nodes (built by name through :mod:`repro.systems`), the
slowest shard sets the batch service time, and a pluggable
:class:`~repro.serving.engine.ServingEngine` converts the per-batch
service times into p50/p95/p99 latency and a sustainable-QPS figure --
either the closed-form M/G/c model (``engine="analytic"``, the default)
or a discrete-event simulation of the dispatch queue
(``engine="event"``, or ``"event-edf"`` for earliest-deadline-first
dispatch).  Per-batch service times come from a
:class:`~repro.perf.service_model.ServiceTimeModel`: exact cycle
simulation per batch composition, or interpolation from a calibrated
grid for long event-driven runs.

The SLO layer threads through the same entry point: ``simulate(...,
slo_policy=..., admission=...)`` assigns per-query deadlines
(:mod:`repro.serving.slo`) and places an admission controller in front
of the batcher (:mod:`repro.serving.admission`), reporting goodput, SLO
attainment and shed rate in ``extras["slo"]``.
"""

import numpy as np

from repro.obs.metrics import MetricsRegistry
from repro.obs.metrics import observe_finite as _observe_finite
from repro.perf.service_store import (
    ServiceTimeStore,
    resolve_service_store,
    stable_fingerprint,
)
from repro.serving.batcher import BatchingFrontend, QueryBatch
from repro.serving.engine import resolve_engine
from repro.serving.sharding import TableSharder, partition_by_assignment
from repro.systems.registry import build_system
from repro.utils.lru import LRUCache

#: Default bound on the per-cluster batch service-time cache.  Long trace
#: replays stream millions of distinct batch compositions through a
#: cluster; an unbounded cache would retain every one of them.
DEFAULT_SERVICE_CACHE_ENTRIES = 4096

#: Default queries per chunk when ``simulate`` drains a
#: :class:`~repro.serving.query_columns.QueryStream` without an explicit
#: ``stream_chunk``: large enough to amortise the per-chunk passes, small
#: enough that a 10M-query run never materialises the stream.
DEFAULT_STREAM_CHUNK = 65536


class ShardedServingCluster:
    """N embedding-system nodes serving batched, sharded traffic.

    Parameters
    ----------
    num_nodes:
        Serving nodes; embedding tables are sharded across them.
    node_system:
        Registry name of the per-node embedding system (e.g.
        ``"recnmp-opt-4ch"`` for the paper's four-channel server).
    sharder:
        A :class:`TableSharder` or
        :class:`~repro.serving.sharding.ReplicatedTableSharder`; defaults
        to round-robin over the nodes.
    shard_policy:
        Convenience alternative to ``sharder``: build a default
        :class:`TableSharder` with this policy (``"round-robin"`` /
        ``"hash"``).  ``"load-aware"`` placement and replication need
        trace statistics, so they must come in as a ready
        ``ReplicatedTableSharder`` via ``sharder=``.
    num_frontends:
        Concurrent dispatch servers draining the batch queue.  Every
        engine models the queue as ``num_frontends`` identical servers
        (Erlang-C analytically, actual concurrent service in the event
        engine).
    service_cache_entries:
        LRU bound on the memoised per-batch service times.
    backend, jobs:
        *Node-level* execution backend (``"serial"`` / ``"thread"`` /
        ``"process"`` / ``"shared-memory"`` or a ready
        :class:`~repro.core.backend.ParallelBackend`) and its worker
        bound: the per-node shard simulations of one batch fan out
        through it, so ``jobs`` governs the total worker slots of the
        cluster.  The process-family backends rebuild each node from
        its registry spec in their workers (cached per worker), which
        keeps every node's channels serial unless ``channel_backend``
        says otherwise.  Results are bit-identical across backends; the
        per-batch memoisation stays in this (parent) process.
    channel_backend, channel_jobs:
        Within-node channel backend, forwarded to ``build_system`` as
        ``backend=``/``max_workers=`` -- the pre-node-parallelism knob.
        Nesting process pools inside process-backend workers is
        possible but rarely useful; pick one level.
    service_store:
        Optional persistent tier beneath the in-memory service-time
        cache (:mod:`repro.perf.service_store`): ``None`` (the default)
        keeps everything in memory, a path or ``"default"`` opens a
        sqlite store so batch service times survive process restarts,
        keyed by the cluster's configuration fingerprint, the active
        kernel flavor and the batch content.  A ready
        :class:`~repro.perf.service_store.ServiceTimeStore` is shared
        (and left open on ``close``); stores this cluster opened itself
        are closed with it.
    node_overrides:
        Keyword overrides forwarded to ``build_system`` for every node.
        ``compare_baseline`` defaults to False here: serving only needs the
        system's own latency, not its host-DDR4 normalisation.
    """

    def __init__(self, num_nodes=2, node_system="recnmp-opt-4ch",
                 sharder=None, shard_policy=None, num_frontends=1,
                 service_cache_entries=DEFAULT_SERVICE_CACHE_ENTRIES,
                 backend=None, jobs=None, channel_backend=None,
                 channel_jobs=None, service_store=None, **node_overrides):
        from repro.core.backend import resolve_backend

        if num_nodes <= 0:
            raise ValueError("num_nodes must be positive")
        if num_frontends <= 0:
            raise ValueError("num_frontends must be positive")
        if channel_backend is not None:
            node_overrides.setdefault("backend", channel_backend)
        if channel_jobs is not None:
            node_overrides.setdefault("max_workers", channel_jobs)
        if sharder is not None and shard_policy is not None:
            raise ValueError("pass either sharder or shard_policy, "
                             "not both")
        if sharder is None:
            policy = shard_policy or "round-robin"
            if policy not in TableSharder.POLICIES:
                from repro.serving.sharding import PLACEMENT_POLICIES

                if policy not in PLACEMENT_POLICIES:
                    raise ValueError(
                        "unknown shard policy %r; available: %s"
                        % (policy,
                           ", ".join(sorted(PLACEMENT_POLICIES))))
                raise ValueError(
                    "shard policy %r needs table-load statistics; build a "
                    "ReplicatedTableSharder (e.g. from_traces/from_queries)"
                    " and pass it via sharder=" % (policy,))
            sharder = TableSharder(num_nodes, policy=policy)
        node_overrides.setdefault("compare_baseline", False)
        self.num_nodes = int(num_nodes)
        self.node_system = node_system
        #: The per-node ``build_system`` overrides; the process-family
        #: node-level backends ship ``(node_system, node_overrides)`` to
        #: their workers to rebuild the nodes there.
        self.node_overrides = dict(node_overrides)
        self.num_frontends = int(num_frontends)
        self.sharder = sharder
        if self.sharder.num_nodes != self.num_nodes:
            raise ValueError("sharder is sized for %d nodes, cluster has %d"
                             % (self.sharder.num_nodes, self.num_nodes))
        self.backend = resolve_backend(backend, max_workers=jobs)
        self.nodes = [build_system(node_system, **node_overrides)
                      for _ in range(self.num_nodes)]
        self._service_cache = LRUCache(max_entries=service_cache_entries)
        # A ready store is shared infrastructure; one resolved from a
        # path/"default" belongs to this cluster and is closed with it.
        self._owns_store = not isinstance(service_store, ServiceTimeStore)
        self.service_store = resolve_service_store(service_store)
        self._config_fp = None
        #: The cluster's metrics registry (:mod:`repro.obs.metrics`).
        #: The simulation counters live here -- ``service_stats`` /
        #: ``export_service_state`` / ``reset`` are compatibility views
        #: over it -- and the cache/store tiers publish through
        #: snapshot-time collectors, so the hot path never copies a
        #: stat dict.
        self.metrics = MetricsRegistry()
        self._exact_sim_counter = self.metrics.counter(
            "serving.exact_simulations",
            help="batch compositions actually cycle-simulated")
        self._dedup_counter = self.metrics.counter(
            "serving.dedup_hits",
            help="duplicate in-flight batches collapsed by batched "
                 "resolution")
        self.metrics.register_collector("service_cache",
                                        self._service_cache.stats)
        if self.service_store is not None:
            self.metrics.register_collector("service_store",
                                            self.service_store.stats)

    # ------------------------------------------------------------------ #
    def _batch_key(self, batch, requests):
        """Content key of a batch, advancing stateful routing.

        Returns ``(key, assignment)``: the service-cache key and, for
        stateful sharders, the (committed) per-request node assignment
        the key embeds.  Stateless sharders return ``assignment=None``
        -- their assignment is a pure function of content, so a cache
        hit needs no assignment pass at all.
        """
        fingerprints = getattr(batch, "query_fingerprints", None)
        if fingerprints is not None:
            # Batch-level digests: QueryBatch walks its queries once,
            # ColumnBatch answers from the provider's residue memo.
            key = tuple(fingerprints())
        else:
            key = tuple(query.fingerprint() for query in batch.queries)
        if self.sharder.stateful:
            # Routing state must advance for every batch, cached or not,
            # and the assignment is part of the key.
            assignment = self.sharder.assign_requests(requests)
            return (key, tuple(assignment)), assignment
        return key, None

    def _batch_jobs(self, base_slot, batch, requests, assignment):
        """Per-node ``(slot, node, shard)`` jobs of one batch."""
        if assignment is None:
            assignment = self.sharder.assign_requests(requests)
        partitions = partition_by_assignment(requests, assignment,
                                             self.num_nodes)
        jobs = [(base_slot + index, node, shard)
                for index, (node, shard)
                in enumerate(zip(self.nodes, partitions)) if shard]
        if not jobs:
            raise ValueError("batch dispatched no requests to any node")
        return jobs

    def config_fingerprint(self):
        """Stable digest of everything that shapes a batch service time.

        The persistent service store's namespace key: node system, node
        count, build overrides and the sharder's placement all change
        what a batch costs, so they are all in the digest.  Stateful
        sharders additionally embed the per-request assignment in each
        batch key, so two runs only share stored entries when placement
        *and* routing agree.
        """
        if self._config_fp is None:
            sharder = self.sharder
            sharder_parts = [type(sharder).__name__, sharder.num_nodes,
                             sharder.policy]
            replicas = getattr(sharder, "replicas", None)
            if replicas is not None:
                sharder_parts += [sorted(replicas.items()),
                                  getattr(sharder, "seed", None),
                                  getattr(sharder,
                                          "request_overhead_lookups", None)]
            self._config_fp = stable_fingerprint(
                ("service-config", self.node_system, self.num_nodes,
                 self.node_overrides, tuple(sharder_parts)))
        return self._config_fp

    def service_time_us(self, batch):
        """Simulated execution time of one batch on the sharded cluster.

        The single-batch entry point of :meth:`service_times_us`; see
        there for the caching and dispatch semantics.
        """
        return self.service_times_us([batch])[0]

    def service_times_us(self, batches):
        """Service times of a batch list, deduplicated and backend-fanned.

        Each batch's SLS requests are partitioned by table placement;
        every node executes its shard and the batch completes when the
        slowest shard does.  Results are memoised by batch *content*
        (the queries' lookup fingerprints, not their ids or arrival
        times) in a bounded LRU, with the optional persistent store as a
        second tier beneath it, so runs that re-batch the same queries
        only simulate new compositions while different workloads never
        collide.  With a *stateful* sharder (replication routes by
        running load counters) the same content can land on different
        nodes over time, so the cache key also carries the per-request
        node assignment -- routing state always advances, cached or not.

        The whole list is fingerprinted up front: repeated compositions
        collapse onto one pending simulation, cache/store hits are
        answered in place, and only the *unique misses* fan out through
        the node-level backend as one flat job list -- so a parallel
        backend overlaps the shards of different batches instead of
        blocking on each batch in turn.  Keys are computed in list
        order, simulations are deterministic, and the per-batch result
        is the max over its own shards, so the returned vector is
        bit-identical to resolving the batches one at a time.
        """
        batches = list(batches)
        keyed = []
        for batch in batches:
            requests = batch.requests()
            key, assignment = self._batch_key(batch, requests)
            keyed.append((batch, requests, key, assignment))
        results = [None] * len(batches)
        pending = {}                    # key -> [batch indices]
        dedup_hits = 0
        for index, (batch, requests, key, assignment) in enumerate(keyed):
            if key in pending:
                # Duplicate of an in-flight miss: one simulation serves
                # every occurrence (a hit on the one-at-a-time path).
                pending[key].append(index)
                dedup_hits += 1
                continue
            cached = self._service_cache.get(key)
            if cached is not None:
                results[index] = cached
                continue
            if self.service_store is not None:
                stored = self.service_store.get(self.config_fingerprint(),
                                                key)
                if stored is not None:
                    self._service_cache.put(key, stored)
                    results[index] = stored
                    continue
            pending[key] = [index]
        # One flat job list over every unique miss: the busy nodes' shard
        # simulations of *all* pending batches fan out through the
        # cluster's node-level backend together.
        flat_jobs, spans = [], []
        for key, indices in pending.items():
            batch, requests, _, assignment = keyed[indices[0]]
            jobs = self._batch_jobs(len(flat_jobs), batch, requests,
                                    assignment)
            spans.append((key, len(flat_jobs), len(jobs)))
            flat_jobs.extend(jobs)
        if flat_jobs:
            times = self.backend.run_service_jobs(self, flat_jobs)
            self._exact_sim_counter.inc(len(spans))
            stored_pairs = []
            for key, start, count in spans:
                # The batch completes with its slowest shard.
                latency_us = max(times[start:start + count])
                if latency_us <= 0.0:
                    raise ValueError(
                        "batch dispatched no requests to any node")
                self._service_cache.put(key, latency_us)
                stored_pairs.append((key, latency_us))
                for index in pending[key]:
                    results[index] = latency_us
            if self.service_store is not None:
                self.service_store.put_many(self.config_fingerprint(),
                                            stored_pairs)
        if dedup_hits:
            # Count collapsed duplicates as cache hits: that is what the
            # one-at-a-time path would have recorded for them.
            self._service_cache.merge_entries([], hits=dedup_hits)
            self._dedup_counter.inc(dedup_hits)
        return results

    def service_cache_stats(self):
        """Hit/miss/occupancy snapshot of the service-time cache."""
        return self._service_cache.stats()

    def service_stats(self):
        """Cache, store and simulation accounting for this cluster.

        ``cache`` is the in-memory LRU snapshot, ``exact_simulations``
        the number of batch compositions actually simulated,
        ``dedup_hits`` the duplicates collapsed by batched resolution,
        and ``store`` (present when a persistent store is attached) the
        disk tier's hit/miss/put counters.
        """
        stats = {"cache": self._service_cache.stats(),
                 "exact_simulations": self._exact_sim_counter.value,
                 "dedup_hits": self._dedup_counter.value}
        if self.service_store is not None:
            stats["store"] = self.service_store.stats()
        return stats

    def export_service_state(self):
        """Snapshot of cache entries and counters for a sweep merge.

        A sweep worker (thread clone or process rebuild) runs its points
        on its own cluster object; the parent folds the worker's
        service-time entries and counter deltas back with
        :meth:`merge_service_state`, exactly like the baseline-cache
        merge of the process backends.
        """
        cache = self._service_cache.stats()
        state = {"entries": self._service_cache.export_entries(),
                 "hits": cache["hits"],
                 "misses": cache["misses"],
                 "exact_simulations": self._exact_sim_counter.value,
                 "dedup_hits": self._dedup_counter.value}
        if self.service_store is not None:
            store = self.service_store.stats()
            state["store_hits"] = store["hits"]
            state["store_misses"] = store["misses"]
            state["store_puts"] = store["puts"]
        return state

    def merge_service_state(self, state):
        """Fold a worker's :meth:`export_service_state` into this cluster."""
        self._service_cache.merge_entries(state["entries"],
                                          hits=state["hits"],
                                          misses=state["misses"])
        self._exact_sim_counter.inc(state["exact_simulations"])
        self._dedup_counter.inc(state["dedup_hits"])
        if self.service_store is not None:
            self.service_store.merge_counters(
                hits=state.get("store_hits", 0),
                misses=state.get("store_misses", 0),
                puts=state.get("store_puts", 0))

    def sweep_spec(self):
        """Picklable recipe for an equivalent cluster in a sweep worker.

        Captures the node build, frontends, cache bound, sharder and the
        store *path* (workers open their own connection); the worker's
        node-level backend stays serial -- one process per sweep point
        is the parallelism level, nesting pools under it buys nothing.
        """
        return {
            "num_nodes": self.num_nodes,
            "node_system": self.node_system,
            "node_overrides": dict(self.node_overrides),
            "num_frontends": self.num_frontends,
            "service_cache_entries": self._service_cache.max_entries,
            "sharder": self.sharder,
            "service_store": None if self.service_store is None
            else str(self.service_store.path),
        }

    def reset(self):
        """Reset every node, the memoised service times and the routing.

        Every metric in the cluster's registry resets with it -- the
        simulation counters (``exact_simulations``, ``dedup_hits``) and
        any per-run histograms/gauges published under ``metrics=True``
        zero together, while the cache/store *collectors* keep
        reporting whatever their components say (the cache was just
        cleared; the persistent store is deliberately left alone --
        surviving resets and process restarts is its purpose; use
        ``service_store.invalidate()`` to drop stored entries).
        """
        for node in self.nodes:
            node.reset()
        if self.sharder.stateful:
            self.sharder.reset_routing()
        self._service_cache.clear()
        self.metrics.reset()

    def close(self):
        """Release the node-level backend and every node's own workers."""
        self.backend.shutdown()
        for node in self.nodes:
            close = getattr(node, "close", None)
            if close is not None:
                close()
        if self.service_store is not None and self._owns_store:
            self.service_store.close()

    def __enter__(self):
        """Clusters are context managers: exit releases pooled workers."""
        return self

    def __exit__(self, exc_type, exc_value, traceback):
        self.close()
        return False

    # ------------------------------------------------------------------ #
    def estimate_query_service_us(self, queries, frontend=None,
                                  service_model=None):
        """Estimated marginal per-query service cost in a full batch.

        Simulates one probe batch of the first ``frontend.max_queries``
        queries (arrival order) through ``service_model`` and divides by
        its size -- the per-query cost at the batch sizes the frontend
        actually dispatches, which is the unit the admission layer's
        fluid backlog model deposits per admitted query.  Memoised like
        any other batch, so the probe is free when the same composition
        recurs in the run.  Stateful sharders route the probe from
        *fresh* routing state, so the estimate is a pure function of the
        queries -- independent of whatever ran on the cluster before.
        """
        from repro.perf.service_model import resolve_service_model

        if not len(queries):
            raise ValueError("need at least one query to estimate from")
        if self.sharder.stateful:
            self.sharder.reset_routing()
        frontend = frontend or BatchingFrontend()
        model = resolve_service_model(service_model)
        if hasattr(queries, "sorted_by_arrival"):
            # Array-path probe over QueryColumns: same first
            # max_queries rows, same content fingerprints, so it shares
            # the service-cache entry with the object-path probe.
            from repro.serving.query_columns import ColumnBatch

            columns = queries.sorted_by_arrival()
            count = min(len(columns), frontend.max_queries)
            open_us = float(columns.arrival_us[0])
            batch = ColumnBatch(columns, 0, count, open_us, open_us,
                                "size")
            return model.service_time_us(self, batch) / count
        probe = sorted(queries,
                       key=lambda q: (q.arrival_us, q.query_id))
        probe = probe[:frontend.max_queries]
        open_us = probe[0].arrival_us
        batch = QueryBatch(queries=probe, open_us=open_us,
                           formed_us=open_us)
        return model.service_time_us(self, batch) / len(probe)

    def simulate(self, queries, frontend=None, engine=None,
                 service_model=None, slo_policy=None, admission=None,
                 stream_chunk=None, trace=None, metrics=None):
        """Serve a query stream; returns a
        :class:`~repro.serving.queueing.ServingReport`.

        ``engine`` selects the queueing model (``"analytic"`` /
        ``"event"`` / ``"event-edf"`` / a :class:`ServingEngine`
        instance; default analytic).  ``service_model`` selects how
        per-batch service times are obtained (``"exact"`` / a
        :class:`~repro.perf.service_model.ServiceTimeModel` instance;
        default exact).  ``slo_policy`` assigns per-query deadlines
        before anything else runs (``None`` / a number of microseconds /
        an :class:`~repro.serving.slo.SLOPolicy`), and ``admission``
        places an admission controller in front of the batcher (``None``
        for no admission stage, a registered name such as
        ``"token-bucket"`` or ``"deadline"``, or an
        :class:`~repro.serving.admission.AdmissionController`); shed
        queries never enter a batch, and the report's percentiles are
        conditioned on the admitted stream with the shed/goodput
        accounting in ``extras["slo"]``.  Deadline assignment *mutates*
        the query objects and persists across calls (deadlines set by
        hand are honoured the same way): a later ``simulate`` without
        ``slo_policy`` still reports SLO accounting against the
        existing deadlines -- clear ``query.deadline_us`` for a
        deadline-free rerun.  Every run starts from fresh
        routing state (stateful sharders reset their replica counters),
        so a report is a pure function of the query stream -- repeated
        ``simulate`` calls and reordered ``qps_sweep`` points agree.

        ``queries`` may also be a
        :class:`~repro.serving.query_columns.QueryColumns` (the
        struct-of-arrays query path) or a
        :class:`~repro.serving.query_columns.QueryStream`; both run the
        array pipeline and produce a byte-identical report.
        ``stream_chunk`` (valid for any query source) processes the run
        in chunks of that many queries with carried batcher, sharder and
        admission state -- O(chunk) memory for streams of any length,
        byte-identical to the one-shot run.  A ``QueryStream`` without
        an explicit ``stream_chunk`` uses ``DEFAULT_STREAM_CHUNK``.

        ``trace`` / ``metrics`` switch on the observability layer
        (:mod:`repro.obs`): pass a fresh
        :class:`~repro.obs.tracing.Tracer` as ``trace=`` to get the
        run's reconstructed per-query lifecycle spans and sim-time
        series (exportable as Perfetto-loadable Chrome trace JSON), and
        ``metrics=True`` (the cluster's own :attr:`metrics` registry)
        or a ready :class:`~repro.obs.metrics.MetricsRegistry` to
        publish per-run latency histograms, counters and gauges.  Both
        default off and are *guaranteed non-perturbing*: the engines
        deposit arrays they already computed after the queue maths, so
        the returned report is byte-identical with tracing on or off
        (the report object itself never carries the tracer).
        """
        from repro.perf.service_model import resolve_service_model
        from repro.serving.admission import (
            apply_admission,
            resolve_admission,
        )
        from repro.serving.query_columns import QueryColumns, QueryStream
        from repro.serving.slo import resolve_slo_policy

        frontend = frontend or BatchingFrontend()
        engine = resolve_engine(engine)
        model = resolve_service_model(service_model)
        policy = resolve_slo_policy(slo_policy)
        controller = resolve_admission(admission)
        tracer, registry, capture = \
            self._resolve_observability(trace, metrics)
        if stream_chunk is not None:
            stream_chunk = int(stream_chunk)
            if stream_chunk < frontend.max_queries:
                raise ValueError(
                    "stream_chunk must be >= the frontend's max_queries "
                    "(%d)" % frontend.max_queries)
        if isinstance(queries, (QueryColumns, QueryStream)) \
                or stream_chunk is not None:
            if isinstance(queries, QueryStream) and stream_chunk is None:
                stream_chunk = DEFAULT_STREAM_CHUNK
            return self._simulate_columns(queries, frontend, engine,
                                          model, policy, controller,
                                          stream_chunk, tracer, registry,
                                          capture)
        queries = list(queries)
        if policy is not None:
            policy.assign_deadlines(queries)
        slo_info = None
        admitted, shed = queries, []
        if controller is not None:
            # The probe simulation may advance stateful routing; the
            # reset below restores the pure-function-of-stream contract.
            est_query_us = self.estimate_query_service_us(
                queries, frontend=frontend, service_model=model)
            admitted, shed = apply_admission(
                queries, controller, num_servers=self.num_frontends,
                est_query_us=est_query_us,
                est_batch_us=est_query_us * frontend.max_queries)
            if not admitted:
                raise ValueError(
                    "admission controller %r shed every query; offered "
                    "load is far beyond capacity or the controller is "
                    "misconfigured" % controller.describe())
        if policy is not None or controller is not None:
            arrivals = [query.arrival_us for query in queries]
            slo_info = {
                "num_offered": len(queries),
                "num_shed": len(shed),
                "offered_span_us": max(arrivals) - min(arrivals),
                "admission": controller.name if controller is not None
                else "none",
                "slo_policy": policy.describe() if policy is not None
                else None,
            }
        if self.sharder.stateful:
            self.sharder.reset_routing()
        batches = frontend.form_batches(admitted)
        services = model.service_times_us(self, batches)
        report = engine.summarize(
            self.describe(), batches, services,
            num_servers=self.num_frontends,
            trigger_counts=frontend.trigger_counts(batches),
            extras={"num_nodes": self.num_nodes,
                    "node_system": self.node_system,
                    "shard_policy": self.sharder.policy,
                    "sharder": self.sharder.describe(),
                    "service_model": model.name},
            slo_info=slo_info, capture=capture)
        if capture is not None:
            shed_ids = np.asarray([query.query_id for query in shed],
                                  dtype=np.int64)
            shed_arrivals = np.asarray(
                [query.arrival_us for query in shed], dtype=np.float64)
            self._finish_observability(tracer, registry, capture,
                                       batches, report, engine,
                                       shed_ids, shed_arrivals)
        return report

    # ------------------------------------------------------------------ #
    # Observability plumbing (repro.obs)                                 #
    # ------------------------------------------------------------------ #
    def _resolve_observability(self, trace, metrics):
        """Normalise ``trace=``/``metrics=`` into (tracer, registry,
        capture); all three are ``None`` when observability is off, so
        the simulation paths pay one ``is not None`` check."""
        from repro.obs.capture import RunCapture
        from repro.obs.tracing import Tracer

        tracer = trace
        if tracer is not None and not isinstance(tracer, Tracer):
            raise ValueError(
                "trace= takes a repro.obs.Tracer instance (it holds the "
                "reconstructed timeline after the run); got %r" % (trace,))
        if metrics is None or metrics is False:
            registry = None
        elif metrics is True:
            registry = self.metrics
        elif isinstance(metrics, MetricsRegistry):
            registry = metrics
        else:
            raise ValueError(
                "metrics= takes True (publish into the cluster's own "
                "registry) or a ready MetricsRegistry; got %r"
                % (metrics,))
        capture = RunCapture() \
            if tracer is not None or registry is not None else None
        return tracer, registry, capture

    def _replay_batch_nodes(self, batches):
        """Post-hoc routing replay: the node fan-out of every batch.

        Every ``simulate`` starts from fresh routing state, so replaying
        the dispatched batches in order from another fresh reset
        reproduces the run's per-request node assignments exactly --
        stateful sharders advance the same load counters through the
        same committed sequence, stateless ones are pure functions of
        content.  This runs strictly *after* the report exists, so it
        cannot perturb the simulation; the next run's own reset
        restores fresh state regardless of what the replay advanced.
        """
        if self.sharder.stateful:
            self.sharder.reset_routing()
        batch_nodes = []
        for batch in batches:
            assignment = self.sharder.assign_requests(batch.requests())
            batch_nodes.append(np.unique(np.asarray(assignment)))
        return batch_nodes

    def _finish_observability(self, tracer, registry, capture, batches,
                              report, engine, shed_ids, shed_arrivals):
        """Feed the tracer and publish per-run metrics after a run."""
        if tracer is not None:
            tracer.record_run(capture, run_info={
                "cluster": self.describe(),
                "engine": engine.name,
                "num_nodes": self.num_nodes,
                "node_system": self.node_system,
                "shard_policy": self.sharder.policy,
                "num_frontends": self.num_frontends,
            })
            if shed_ids.size:
                tracer.record_shed(shed_ids, shed_arrivals)
            tracer.record_assignments(self._replay_batch_nodes(batches),
                                      self.num_nodes)
        if registry is not None:
            registry.counter(
                "serving.runs_total",
                help="simulate() calls published into this registry").inc()
            registry.counter(
                "serving.queries_total",
                help="admitted queries across published runs").inc(
                capture.num_queries)
            registry.counter(
                "serving.batches_total",
                help="dispatched batches across published runs").inc(
                capture.num_batches)
            registry.counter(
                "serving.queries_shed_total",
                help="queries turned away by admission control").inc(
                int(shed_ids.size))
            _observe_finite(
                registry.histogram(
                    "serving.query_latency_us",
                    help="per-query latency (arrival to completion)"),
                capture.query_latency_us)
            _observe_finite(
                registry.histogram(
                    "serving.batching_delay_us",
                    help="per-query wait in the forming batch"),
                capture.per_query(capture.batch_ready_us)
                - capture.query_arrival_us)
            _observe_finite(
                registry.histogram(
                    "serving.batch_queue_wait_us",
                    help="per-batch wait in the dispatch queue"),
                capture.batch_start_us - capture.batch_ready_us)
            _observe_finite(
                registry.histogram(
                    "serving.batch_service_us",
                    help="per-batch execution time on the cluster"),
                capture.batch_service_us)
            registry.gauge(
                "serving.last_offered_qps",
                help="offered query rate of the last published run").set(
                report.offered_qps)
            registry.gauge(
                "serving.last_utilization",
                help="offered-load utilisation of the last run").set(
                report.utilization)
            registry.gauge(
                "serving.last_sustainable_qps",
                help="saturation throughput of the last run").set(
                report.sustainable_qps)
            if capture.max_queue_depth is not None:
                registry.gauge(
                    "serving.last_max_queue_depth",
                    help="deepest dispatch queue of the last run").set(
                    capture.max_queue_depth)
            if capture.measured_utilization is not None:
                registry.gauge(
                    "serving.last_measured_utilization",
                    help="measured busy fraction of the last run").set(
                    capture.measured_utilization)

    def _simulate_columns(self, queries, frontend, engine, model, policy,
                          controller, stream_chunk, tracer=None,
                          registry=None, capture=None):
        """Array-path run: columns in, one :class:`ServingReport` out.

        Chunks flow through deadline assignment, admission, batching and
        service-time resolution with carried state between chunks (the
        admission fluid model, the batcher's open batch, the sharder's
        routing counters), then a single ``engine.summarize`` sees the
        whole run -- so the report is byte-identical whatever the chunk
        size, including the one-shot ``stream_chunk=None``.
        """
        from repro.serving import event_kernels
        from repro.serving.admission import admission_kernel_spec
        from repro.serving.query_columns import BatchColumns, QueryColumns

        est_query_us = est_batch_us = None
        kernel_spec = None
        admission_state = None
        backlog_us = 0.0                # custom-controller fluid model
        last_us = None
        num_offered = 0
        num_admitted = 0
        first_arrival = None
        last_arrival = None
        carry = None
        batch_parts = []
        services = []
        shed_id_parts = []
        shed_arrival_parts = []
        routing_reset = False
        for chunk, is_final in _column_chunks(queries, stream_chunk):
            num_offered += len(chunk)
            if first_arrival is None:
                first_arrival = float(chunk.arrival_us[0])
            last_arrival = float(chunk.arrival_us[-1])
            if policy is not None:
                policy.assign_deadlines_columns(chunk)
            if controller is not None and est_query_us is None:
                # Probe on the first chunk: chunking is monotone in
                # arrival order, so it holds the globally earliest
                # queries -- all the whole-stream estimate ever reads.
                est_query_us = self.estimate_query_service_us(
                    chunk, frontend=frontend, service_model=model)
                est_batch_us = est_query_us * frontend.max_queries
                capacity_qps = self.num_frontends / est_query_us * 1e6
                controller.configure(capacity_qps, est_query_us,
                                     est_batch_us, self.num_frontends)
                controller.reset()
                kernel_spec = admission_kernel_spec(controller,
                                                    capacity_qps)
                if kernel_spec is not None \
                        and event_kernels.active_flavor() != "disabled":
                    admission_state = event_kernels.new_admission_state(
                        first_arrival, kernel_spec[3])
                else:
                    # Custom controller (or kernels disabled): per-query
                    # object loop, same fluid model, carried by hand.
                    kernel_spec = None
                    last_us = first_arrival
            if not routing_reset:
                # After the probe (which advances stateful routing),
                # before the first real batch: the same reset point as
                # the object path.
                if self.sharder.stateful:
                    self.sharder.reset_routing()
                routing_reset = True
            if controller is None:
                admitted = chunk
                num_admitted += len(chunk)
            else:
                if kernel_spec is not None:
                    mode, param0, param1, _ = kernel_spec
                    slacks = chunk.deadline_us - chunk.arrival_us
                    mask = event_kernels.admission_mask(
                        chunk.arrival_us, slacks, admission_state,
                        self.num_frontends, est_query_us, est_batch_us,
                        mode, param0, param1)
                else:
                    mask = np.empty(len(chunk), dtype=bool)
                    for position in range(len(chunk)):
                        view = chunk.view(position)
                        now_us = view.arrival_us
                        backlog_us = max(
                            0.0, backlog_us - (now_us - last_us)
                            * self.num_frontends)
                        last_us = now_us
                        wait_us = backlog_us / self.num_frontends
                        admit = controller.admit(view, now_us, wait_us)
                        mask[position] = admit
                        if admit:
                            backlog_us += est_query_us
                admitted = chunk if mask.all() \
                    else chunk.take(np.flatnonzero(mask))
                num_admitted += len(admitted)
                if capture is not None and len(admitted) != len(chunk):
                    dropped = np.flatnonzero(~mask)
                    shed_id_parts.append(chunk.query_id[dropped].copy())
                    shed_arrival_parts.append(
                        chunk.arrival_us[dropped].copy())
            piece = admitted
            if carry is not None:
                piece = QueryColumns.concat([carry, piece]) \
                    if len(piece) else carry
                carry = None
            if not len(piece):
                continue
            formed, carry = frontend.form_batch_columns(piece,
                                                        final=is_final)
            if len(formed):
                batch_parts.append(formed)
                services.extend(model.service_times_us(self, formed))
        if controller is not None and num_offered and not num_admitted:
            raise ValueError(
                "admission controller %r shed every query; offered "
                "load is far beyond capacity or the controller is "
                "misconfigured" % controller.describe())
        slo_info = None
        if policy is not None or controller is not None:
            slo_info = {
                "num_offered": num_offered,
                "num_shed": num_offered - num_admitted,
                "offered_span_us": (last_arrival - first_arrival)
                if num_offered else 0.0,
                "admission": controller.name if controller is not None
                else "none",
                "slo_policy": policy.describe() if policy is not None
                else None,
            }
        if not batch_parts:
            raise ValueError("need at least one batch")
        batches = BatchColumns.concat(batch_parts)
        report = engine.summarize(
            self.describe(), batches, services,
            num_servers=self.num_frontends,
            trigger_counts=frontend.trigger_counts(batches),
            extras={"num_nodes": self.num_nodes,
                    "node_system": self.node_system,
                    "shard_policy": self.sharder.policy,
                    "sharder": self.sharder.describe(),
                    "service_model": model.name},
            slo_info=slo_info, capture=capture)
        if capture is not None:
            shed_ids = np.concatenate(shed_id_parts) if shed_id_parts \
                else np.empty(0, dtype=np.int64)
            shed_arrivals = np.concatenate(shed_arrival_parts) \
                if shed_arrival_parts else np.empty(0, dtype=np.float64)
            self._finish_observability(tracer, registry, capture,
                                       batches, report, engine,
                                       shed_ids, shed_arrivals)
        return report

    def describe(self):
        return "%dx %s" % (self.num_nodes, self.node_system)


def _column_chunks(queries, stream_chunk):
    """Yield ``(chunk, is_final)`` pairs in global (arrival, id) order.

    ``queries`` is a :class:`QueryStream` (drained ``stream_chunk`` at a
    time; must be bounded), a :class:`QueryColumns`, or any iterable of
    :class:`ServingQuery` objects (both materialised forms are sorted
    once and sliced).  Streamed chunks are required to arrive in
    non-decreasing arrival order -- every built-in arrival process
    generates monotone times -- because carried batching state is only
    meaningful over a globally sorted stream.
    """
    from repro.serving.query_columns import QueryColumns, QueryStream

    if isinstance(queries, QueryStream):
        if queries.num_queries is None:
            raise ValueError("chunked simulation needs a bounded stream; "
                             "construct the QueryStream with num_queries")
        last_arrival = -np.inf
        while True:
            chunk = queries.take(stream_chunk)
            if not len(chunk):
                break
            arrivals = chunk.arrival_us
            if arrivals[0] < last_arrival \
                    or np.any(np.diff(arrivals) < 0.0):
                raise ValueError(
                    "streamed arrivals must be non-decreasing")
            last_arrival = float(arrivals[-1])
            is_final = queries.remaining == 0
            yield chunk, is_final
            if is_final:
                break
        return
    columns = queries if isinstance(queries, QueryColumns) \
        else QueryColumns.from_queries(list(queries))
    columns = columns.sorted_by_arrival()
    size = len(columns)
    if stream_chunk is None:
        if size:
            yield columns, True
        return
    for start in range(0, size, stream_chunk):
        stop = min(start + stream_chunk, size)
        yield columns.slice(start, stop), stop == size


def build_sweep_cluster(spec):
    """Rebuild an equivalent cluster from a sweep spec.

    The sharder is deep-copied so the rebuilt cluster owns its routing
    state (thread-backend clones would otherwise share counters with the
    parent); everything else in the spec is plain configuration.  The
    clone's node-level backend is serial and its store -- when the spec
    names one -- is a fresh connection to the shared database file.
    """
    import copy

    spec = dict(spec)
    return ShardedServingCluster(
        num_nodes=spec["num_nodes"],
        node_system=spec["node_system"],
        sharder=copy.deepcopy(spec["sharder"]),
        num_frontends=spec["num_frontends"],
        service_cache_entries=spec["service_cache_entries"],
        service_store=spec["service_store"],
        **spec["node_overrides"])


def qps_sweep(cluster, make_queries, qps_points, frontend=None, engine=None,
              service_model=None, slo_policy=None, admission=None,
              backend=None, jobs=None, profiler=None):
    """Latency/throughput curve over offered load.

    ``make_queries(qps)`` must return the query stream offered at that rate
    (typically the same queries with arrival times rescaled).  ``engine``,
    ``service_model``, ``slo_policy`` and ``admission`` are forwarded to
    every :meth:`ShardedServingCluster.simulate` call; all are resolved
    *once* -- stateful engines see the whole sweep, a string-specified
    service model is not re-instantiated at every QPS point, and
    admission controllers reset their per-run state at each point.
    Returns the list of :class:`ServingReport`, one per point, in order.

    ``backend``/``jobs`` select the *sweep-level* execution backend
    (default serial): sweep points are independent given fresh routing
    state -- ``simulate`` already resets it per run -- so ``"thread"``
    runs each point on a per-point cluster clone and ``"process"`` /
    ``"shared-memory"`` rebuild the cluster in worker processes, one
    point per worker.  Query streams are materialised in the parent
    (``make_queries`` itself never crosses a process boundary), every
    worker's service-time cache/store deltas are merged back into
    ``cluster``, and the reports are bit-identical to the serial loop.
    A backend passed by name is shut down when the sweep returns; a
    ready instance is left running for the caller to reuse.

    ``profiler`` is an optional host-side
    :class:`~repro.obs.profiling.StageProfiler`: the sweep times its
    query generation (``sweep.generate``) and the simulation of all
    points (``sweep.simulate``) as wall-clock stages.  Purely
    reporting-side -- the profiler never feeds a simulated quantity, so
    the reports are identical with or without it.
    """
    from contextlib import nullcontext

    from repro.core.backend import ParallelBackend, resolve_backend
    from repro.perf.service_model import resolve_service_model
    from repro.serving.admission import resolve_admission
    from repro.serving.slo import resolve_slo_policy

    def _stage(name):
        return nullcontext() if profiler is None else profiler.stage(name)

    engine = resolve_engine(engine)
    service_model = resolve_service_model(service_model)
    slo_policy = resolve_slo_policy(slo_policy)
    admission = resolve_admission(admission)
    owns_backend = not isinstance(backend, ParallelBackend)
    sweep_backend = resolve_backend(backend, max_workers=jobs)
    with _stage("sweep.generate"):
        point_queries = [list(make_queries(qps)) for qps in qps_points]
    try:
        with _stage("sweep.simulate"):
            return sweep_backend.run_sweep_points(
                cluster, point_queries, frontend=frontend, engine=engine,
                service_model=service_model, slo_policy=slo_policy,
                admission=admission)
    finally:
        if owns_backend:
            sweep_backend.shutdown()
