"""Sharded serving cluster: traffic in, latency percentiles out.

Ties the serving pieces together: an arrival process produces queries, the
batching frontend groups them, the table sharder fans each batch out to N
embedding-system nodes (built by name through :mod:`repro.systems`), the
slowest shard sets the batch service time, and a pluggable
:class:`~repro.serving.engine.ServingEngine` converts the per-batch
service times into p50/p95/p99 latency and a sustainable-QPS figure --
either the closed-form M/G/c model (``engine="analytic"``, the default)
or a discrete-event simulation of the dispatch queue
(``engine="event"``).  Per-batch service times come from a
:class:`~repro.perf.service_model.ServiceTimeModel`: exact cycle
simulation per batch composition, or interpolation from a calibrated
grid for long event-driven runs.
"""

from repro.serving.batcher import BatchingFrontend
from repro.serving.engine import resolve_engine
from repro.serving.sharding import TableSharder
from repro.systems.registry import build_system
from repro.utils.lru import LRUCache

#: Default bound on the per-cluster batch service-time cache.  Long trace
#: replays stream millions of distinct batch compositions through a
#: cluster; an unbounded cache would retain every one of them.
DEFAULT_SERVICE_CACHE_ENTRIES = 4096


class ShardedServingCluster:
    """N embedding-system nodes serving batched, sharded traffic.

    Parameters
    ----------
    num_nodes:
        Serving nodes; embedding tables are sharded across them.
    node_system:
        Registry name of the per-node embedding system (e.g.
        ``"recnmp-opt-4ch"`` for the paper's four-channel server).
    sharder:
        A :class:`TableSharder`; defaults to round-robin over the nodes.
    num_frontends:
        Concurrent dispatch servers draining the batch queue.  Every
        engine models the queue as ``num_frontends`` identical servers
        (Erlang-C analytically, actual concurrent service in the event
        engine).
    service_cache_entries:
        LRU bound on the memoised per-batch service times.
    node_overrides:
        Keyword overrides forwarded to ``build_system`` for every node.
        ``compare_baseline`` defaults to False here: serving only needs the
        system's own latency, not its host-DDR4 normalisation.
    """

    def __init__(self, num_nodes=2, node_system="recnmp-opt-4ch",
                 sharder=None, num_frontends=1,
                 service_cache_entries=DEFAULT_SERVICE_CACHE_ENTRIES,
                 **node_overrides):
        if num_nodes <= 0:
            raise ValueError("num_nodes must be positive")
        if num_frontends <= 0:
            raise ValueError("num_frontends must be positive")
        node_overrides.setdefault("compare_baseline", False)
        self.num_nodes = int(num_nodes)
        self.node_system = node_system
        self.num_frontends = int(num_frontends)
        self.sharder = sharder or TableSharder(num_nodes)
        if self.sharder.num_nodes != self.num_nodes:
            raise ValueError("sharder is sized for %d nodes, cluster has %d"
                             % (self.sharder.num_nodes, self.num_nodes))
        self.nodes = [build_system(node_system, **node_overrides)
                      for _ in range(self.num_nodes)]
        self._service_cache = LRUCache(max_entries=service_cache_entries)

    # ------------------------------------------------------------------ #
    def service_time_us(self, batch):
        """Simulated execution time of one batch on the sharded cluster.

        The batch's SLS requests are partitioned by table placement; every
        node executes its shard and the batch completes when the slowest
        shard does.  Results are memoised by batch *content* (the queries'
        lookup fingerprints, not their ids or arrival times) in a bounded
        LRU, so QPS sweeps that re-batch the same queries only simulate
        new compositions while different workloads never collide.
        """
        key = tuple(query.fingerprint() for query in batch.queries)
        cached = self._service_cache.get(key)
        if cached is not None:
            return cached
        partitions = self.sharder.partition_requests(batch.requests())
        latency_us = 0.0
        for node, shard in zip(self.nodes, partitions):
            if not shard:
                continue
            latency_us = max(latency_us, node.service_time_us(shard))
        if latency_us <= 0.0:
            raise ValueError("batch dispatched no requests to any node")
        self._service_cache.put(key, latency_us)
        return latency_us

    def service_cache_stats(self):
        """Hit/miss/occupancy snapshot of the service-time cache."""
        return self._service_cache.stats()

    def reset(self):
        """Reset every node and drop the memoised batch service times."""
        for node in self.nodes:
            node.reset()
        self._service_cache.clear()

    # ------------------------------------------------------------------ #
    def simulate(self, queries, frontend=None, engine=None,
                 service_model=None):
        """Serve a query stream; returns a
        :class:`~repro.serving.queueing.ServingReport`.

        ``engine`` selects the queueing model (``"analytic"`` /
        ``"event"`` / a :class:`ServingEngine` instance; default
        analytic).  ``service_model`` selects how per-batch service times
        are obtained (``"exact"`` / a
        :class:`~repro.perf.service_model.ServiceTimeModel` instance;
        default exact).
        """
        from repro.perf.service_model import resolve_service_model

        frontend = frontend or BatchingFrontend()
        engine = resolve_engine(engine)
        model = resolve_service_model(service_model)
        batches = frontend.form_batches(queries)
        services = model.service_times_us(self, batches)
        return engine.summarize(
            self.describe(), batches, services,
            num_servers=self.num_frontends,
            trigger_counts=frontend.trigger_counts(batches),
            extras={"num_nodes": self.num_nodes,
                    "node_system": self.node_system,
                    "shard_policy": self.sharder.policy,
                    "service_model": model.name})

    def describe(self):
        return "%dx %s" % (self.num_nodes, self.node_system)


def qps_sweep(cluster, make_queries, qps_points, frontend=None, engine=None,
              service_model=None):
    """Latency/throughput curve over offered load.

    ``make_queries(qps)`` must return the query stream offered at that rate
    (typically the same queries with arrival times rescaled).  ``engine``
    and ``service_model`` are forwarded to every
    :meth:`ShardedServingCluster.simulate` call (the engine is resolved
    once so stateful engines see the whole sweep).  Returns the list of
    :class:`ServingReport`, one per point, in order.
    """
    engine = resolve_engine(engine)
    reports = []
    for qps in qps_points:
        reports.append(cluster.simulate(make_queries(qps),
                                        frontend=frontend, engine=engine,
                                        service_model=service_model))
    return reports
