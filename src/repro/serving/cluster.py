"""Sharded serving cluster: traffic in, latency percentiles out.

Ties the serving pieces together: an arrival process produces queries, the
batching frontend groups them, the table sharder fans each batch out to N
embedding-system nodes (built by name through
:mod:`repro.systems`), the slowest shard sets the batch service time, and
the closed-form queueing step converts the per-batch service times into
p50/p95/p99 latency and a sustainable-QPS figure.
"""

from repro.serving.batcher import BatchingFrontend
from repro.serving.queueing import summarize_serving
from repro.serving.sharding import TableSharder
from repro.systems.registry import build_system


class ShardedServingCluster:
    """N embedding-system nodes serving batched, sharded traffic.

    Parameters
    ----------
    num_nodes:
        Serving nodes; embedding tables are sharded across them.
    node_system:
        Registry name of the per-node embedding system (e.g.
        ``"recnmp-opt-4ch"`` for the paper's four-channel server).
    sharder:
        A :class:`TableSharder`; defaults to round-robin over the nodes.
    node_overrides:
        Keyword overrides forwarded to ``build_system`` for every node.
        ``compare_baseline`` defaults to False here: serving only needs the
        system's own latency, not its host-DDR4 normalisation.
    """

    def __init__(self, num_nodes=2, node_system="recnmp-opt-4ch",
                 sharder=None, **node_overrides):
        if num_nodes <= 0:
            raise ValueError("num_nodes must be positive")
        node_overrides.setdefault("compare_baseline", False)
        self.num_nodes = int(num_nodes)
        self.node_system = node_system
        self.sharder = sharder or TableSharder(num_nodes)
        if self.sharder.num_nodes != self.num_nodes:
            raise ValueError("sharder is sized for %d nodes, cluster has %d"
                             % (self.sharder.num_nodes, self.num_nodes))
        self.nodes = [build_system(node_system, **node_overrides)
                      for _ in range(self.num_nodes)]
        self._service_cache = {}

    # ------------------------------------------------------------------ #
    def service_time_us(self, batch):
        """Simulated execution time of one batch on the sharded cluster.

        The batch's SLS requests are partitioned by table placement; every
        node executes its shard and the batch completes when the slowest
        shard does.  Results are memoised by batch *content* (the queries'
        lookup fingerprints, not their ids or arrival times), so QPS sweeps
        that re-batch the same queries only simulate new compositions while
        different workloads never collide.
        """
        key = tuple(query.fingerprint() for query in batch.queries)
        if key in self._service_cache:
            return self._service_cache[key]
        partitions = self.sharder.partition_requests(batch.requests())
        latency_ns = 0.0
        for node, shard in zip(self.nodes, partitions):
            if not shard:
                continue
            result = node.run(shard)
            latency_ns = max(latency_ns, result.latency_ns)
        if latency_ns <= 0.0:
            raise ValueError("batch dispatched no requests to any node")
        service_us = latency_ns / 1e3
        self._service_cache[key] = service_us
        return service_us

    def reset(self):
        """Reset every node and drop the memoised batch service times."""
        for node in self.nodes:
            node.reset()
        self._service_cache.clear()

    # ------------------------------------------------------------------ #
    def simulate(self, queries, frontend=None):
        """Serve a query stream; returns a
        :class:`~repro.serving.queueing.ServingReport`."""
        frontend = frontend or BatchingFrontend()
        batches = frontend.form_batches(queries)
        services = [self.service_time_us(batch) for batch in batches]
        return summarize_serving(
            self.describe(), batches, services,
            trigger_counts=frontend.trigger_counts(batches),
            extras={"num_nodes": self.num_nodes,
                    "node_system": self.node_system,
                    "shard_policy": self.sharder.policy})

    def describe(self):
        return "%dx %s" % (self.num_nodes, self.node_system)


def qps_sweep(cluster, make_queries, qps_points, frontend=None):
    """Latency/throughput curve over offered load.

    ``make_queries(qps)`` must return the query stream offered at that rate
    (typically the same queries with arrival times rescaled).  Returns the
    list of :class:`ServingReport`, one per point, in order.
    """
    reports = []
    for qps in qps_points:
        reports.append(cluster.simulate(make_queries(qps),
                                        frontend=frontend))
    return reports
