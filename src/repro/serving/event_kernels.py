"""Compiled kernels for the serving layer's per-event hot loops.

Three loops dominate long event-engine runs once service times come from
the interpolating model: the multi-server FIFO dispatch queue, the EDF
dispatch queue (both ``heapq`` loops in
:func:`repro.serving.events.simulate_batch_queue`), and the admission
layer's fluid-backlog filter (:func:`repro.serving.admission.apply_admission`).
This module holds each loop in two interchangeable, bit-identical
implementations, following the kernel-twin pattern of
:mod:`repro.core.kernels`:

* ``_*_flat`` -- the canonical struct-of-arrays kernel, written in the
  numba-compilable subset of Python over preallocated ``float64`` /
  ``int64`` arrays.  When :mod:`numba` is importable it is
  ``@njit``-compiled and selected as the ``"numba"`` flavor; the
  un-jitted source remains importable everywhere (the ``"flat-python"``
  flavor), so the jitted semantics are pinned by tests on hosts without
  numba.
* ``_*_python`` -- the CPython twin operating on plain lists.  Selected
  as the ``"python"`` flavor.

The twins are *textually identical* function bodies -- every statement
is valid and efficient over both numpy arrays and lists -- which is what
lets the ``kernel-twin-sync`` lint rule
(:mod:`repro.analysis.kernel_twin`) compare them whole-body and fail the
build on any one-sided edit.

Flavor selection, ``force_flavor`` and ``REPRO_DISABLE_KERNELS`` are all
shared with :mod:`repro.core.kernels` -- one switch governs every
compiled kernel in the tree.  The ``"disabled"`` flavor is handled by
the callers (:mod:`repro.serving.events` keeps its original ``heapq``
loops as the readable specification; the admission layer keeps its
per-query controller loop), so disabling kernels restores the legacy
paths byte for byte.

Bit-identity argument
---------------------
The FIFO free-server heap holds plain ``float64`` next-free times; the
simulated starts/completes depend only on the *minimum value* of that
multiset at each step, never on heap layout, so a replace-root binary
heap reproduces ``heapq``'s pop/push sequence exactly -- including ties,
which are ties between equal floats.  The EDF pending heap orders
``(priority, ready, index)`` lexicographically; the index is unique, so
the order is total and the popped element is layout-independent there
too.  The admission kernel performs the same float arithmetic in the
same order as the controller loop.  Randomized equivalence tests
(``tests/test_event_kernels.py``) pin all three against the legacy
loops.
"""

import numpy as np

from repro.core.kernels import (  # noqa: F401  (re-exported flavor API)
    active_flavor,
    force_flavor,
    maybe_jit,
)

__all__ = [
    "active_flavor",
    "force_flavor",
    "fifo_queue_times",
    "edf_queue_times",
    "admission_mask",
    "describe",
]


# --------------------------------------------------------------------- #
# FIFO dispatch queue                                                   #
# --------------------------------------------------------------------- #
def _fifo_events_flat(order, ready, services, free_heap, starts, completes,
                      num_servers):
    first = ready[order[0]]
    for slot in range(num_servers):
        free_heap[slot] = first
    for position in range(len(order)):
        index = order[position]
        now = free_heap[0]
        start = ready[index]
        if start < now:
            start = now
        complete = start + services[index]
        starts[index] = start
        completes[index] = complete
        hole = 0
        child = 1
        while child < num_servers:
            right = child + 1
            if right < num_servers and free_heap[right] < free_heap[child]:
                child = right
            if free_heap[child] < complete:
                free_heap[hole] = free_heap[child]
                hole = child
                child = 2 * hole + 1
            else:
                break
        free_heap[hole] = complete


def _fifo_events_python(order, ready, services, free_heap, starts,
                        completes, num_servers):
    first = ready[order[0]]
    for slot in range(num_servers):
        free_heap[slot] = first
    for position in range(len(order)):
        index = order[position]
        now = free_heap[0]
        start = ready[index]
        if start < now:
            start = now
        complete = start + services[index]
        starts[index] = start
        completes[index] = complete
        hole = 0
        child = 1
        while child < num_servers:
            right = child + 1
            if right < num_servers and free_heap[right] < free_heap[child]:
                child = right
            if free_heap[child] < complete:
                free_heap[hole] = free_heap[child]
                hole = child
                child = 2 * hole + 1
            else:
                break
        free_heap[hole] = complete


# --------------------------------------------------------------------- #
# EDF dispatch queue                                                    #
# --------------------------------------------------------------------- #
def _edf_events_flat(order, ready, services, priority, free_heap,
                     pending_priority, pending_ready, pending_index,
                     starts, completes, num_servers):
    num_batches = len(order)
    first = ready[order[0]]
    for slot in range(num_servers):
        free_heap[slot] = first
    pending_size = 0
    next_arrival = 0
    for _ in range(num_batches):
        now = free_heap[0]
        if pending_size == 0:
            arrival = ready[order[next_arrival]]
            if arrival > now:
                now = arrival
        while next_arrival < num_batches:
            index = order[next_arrival]
            if ready[index] > now:
                break
            child = pending_size
            pending_priority[child] = priority[index]
            pending_ready[child] = ready[index]
            pending_index[child] = index
            pending_size += 1
            while child > 0:
                parent = (child - 1) // 2
                less = False
                if pending_priority[child] < pending_priority[parent]:
                    less = True
                elif pending_priority[child] == pending_priority[parent]:
                    if pending_ready[child] < pending_ready[parent]:
                        less = True
                    elif pending_ready[child] == pending_ready[parent] \
                            and pending_index[child] \
                            < pending_index[parent]:
                        less = True
                if not less:
                    break
                swap_priority = pending_priority[parent]
                swap_ready = pending_ready[parent]
                swap_index = pending_index[parent]
                pending_priority[parent] = pending_priority[child]
                pending_ready[parent] = pending_ready[child]
                pending_index[parent] = pending_index[child]
                pending_priority[child] = swap_priority
                pending_ready[child] = swap_ready
                pending_index[child] = swap_index
                child = parent
            next_arrival += 1
        batch_ready = pending_ready[0]
        index = pending_index[0]
        pending_size -= 1
        pending_priority[0] = pending_priority[pending_size]
        pending_ready[0] = pending_ready[pending_size]
        pending_index[0] = pending_index[pending_size]
        hole = 0
        while True:
            child = 2 * hole + 1
            if child >= pending_size:
                break
            right = child + 1
            if right < pending_size:
                less = False
                if pending_priority[right] < pending_priority[child]:
                    less = True
                elif pending_priority[right] == pending_priority[child]:
                    if pending_ready[right] < pending_ready[child]:
                        less = True
                    elif pending_ready[right] == pending_ready[child] \
                            and pending_index[right] \
                            < pending_index[child]:
                        less = True
                if less:
                    child = right
            less = False
            if pending_priority[child] < pending_priority[hole]:
                less = True
            elif pending_priority[child] == pending_priority[hole]:
                if pending_ready[child] < pending_ready[hole]:
                    less = True
                elif pending_ready[child] == pending_ready[hole] \
                        and pending_index[child] < pending_index[hole]:
                    less = True
            if not less:
                break
            swap_priority = pending_priority[hole]
            swap_ready = pending_ready[hole]
            swap_index = pending_index[hole]
            pending_priority[hole] = pending_priority[child]
            pending_ready[hole] = pending_ready[child]
            pending_index[hole] = pending_index[child]
            pending_priority[child] = swap_priority
            pending_ready[child] = swap_ready
            pending_index[child] = swap_index
            hole = child
        start = batch_ready
        if start < now:
            start = now
        complete = start + services[index]
        starts[index] = start
        completes[index] = complete
        hole = 0
        child = 1
        while child < num_servers:
            right = child + 1
            if right < num_servers and free_heap[right] < free_heap[child]:
                child = right
            if free_heap[child] < complete:
                free_heap[hole] = free_heap[child]
                hole = child
                child = 2 * hole + 1
            else:
                break
        free_heap[hole] = complete


def _edf_events_python(order, ready, services, priority, free_heap,
                       pending_priority, pending_ready, pending_index,
                       starts, completes, num_servers):
    num_batches = len(order)
    first = ready[order[0]]
    for slot in range(num_servers):
        free_heap[slot] = first
    pending_size = 0
    next_arrival = 0
    for _ in range(num_batches):
        now = free_heap[0]
        if pending_size == 0:
            arrival = ready[order[next_arrival]]
            if arrival > now:
                now = arrival
        while next_arrival < num_batches:
            index = order[next_arrival]
            if ready[index] > now:
                break
            child = pending_size
            pending_priority[child] = priority[index]
            pending_ready[child] = ready[index]
            pending_index[child] = index
            pending_size += 1
            while child > 0:
                parent = (child - 1) // 2
                less = False
                if pending_priority[child] < pending_priority[parent]:
                    less = True
                elif pending_priority[child] == pending_priority[parent]:
                    if pending_ready[child] < pending_ready[parent]:
                        less = True
                    elif pending_ready[child] == pending_ready[parent] \
                            and pending_index[child] \
                            < pending_index[parent]:
                        less = True
                if not less:
                    break
                swap_priority = pending_priority[parent]
                swap_ready = pending_ready[parent]
                swap_index = pending_index[parent]
                pending_priority[parent] = pending_priority[child]
                pending_ready[parent] = pending_ready[child]
                pending_index[parent] = pending_index[child]
                pending_priority[child] = swap_priority
                pending_ready[child] = swap_ready
                pending_index[child] = swap_index
                child = parent
            next_arrival += 1
        batch_ready = pending_ready[0]
        index = pending_index[0]
        pending_size -= 1
        pending_priority[0] = pending_priority[pending_size]
        pending_ready[0] = pending_ready[pending_size]
        pending_index[0] = pending_index[pending_size]
        hole = 0
        while True:
            child = 2 * hole + 1
            if child >= pending_size:
                break
            right = child + 1
            if right < pending_size:
                less = False
                if pending_priority[right] < pending_priority[child]:
                    less = True
                elif pending_priority[right] == pending_priority[child]:
                    if pending_ready[right] < pending_ready[child]:
                        less = True
                    elif pending_ready[right] == pending_ready[child] \
                            and pending_index[right] \
                            < pending_index[child]:
                        less = True
                if less:
                    child = right
            less = False
            if pending_priority[child] < pending_priority[hole]:
                less = True
            elif pending_priority[child] == pending_priority[hole]:
                if pending_ready[child] < pending_ready[hole]:
                    less = True
                elif pending_ready[child] == pending_ready[hole] \
                        and pending_index[child] < pending_index[hole]:
                    less = True
            if not less:
                break
            swap_priority = pending_priority[hole]
            swap_ready = pending_ready[hole]
            swap_index = pending_index[hole]
            pending_priority[hole] = pending_priority[child]
            pending_ready[hole] = pending_ready[child]
            pending_index[hole] = pending_index[child]
            pending_priority[child] = swap_priority
            pending_ready[child] = swap_ready
            pending_index[child] = swap_index
            hole = child
        start = batch_ready
        if start < now:
            start = now
        complete = start + services[index]
        starts[index] = start
        completes[index] = complete
        hole = 0
        child = 1
        while child < num_servers:
            right = child + 1
            if right < num_servers and free_heap[right] < free_heap[child]:
                child = right
            if free_heap[child] < complete:
                free_heap[hole] = free_heap[child]
                hole = child
                child = 2 * hole + 1
            else:
                break
        free_heap[hole] = complete


# --------------------------------------------------------------------- #
# Admission fluid-backlog filter                                        #
# --------------------------------------------------------------------- #
#: Kernel mode codes of the built-in admission controllers.
ADMISSION_MODE_NONE = 0
ADMISSION_MODE_TOKEN_BUCKET = 1
ADMISSION_MODE_QUEUE_DEPTH = 2
ADMISSION_MODE_DEADLINE = 3

#: Slots of the carried admission state vector: the fluid backlog, the
#: last-processed arrival, and the token bucket's level / last-refill
#: time (NaN until the bucket sees its first arrival).
ADM_BACKLOG_US, ADM_LAST_US, ADM_TOKENS, ADM_TOKEN_LAST_US = range(4)
ADM_STATE_SIZE = 4


def _admission_events_flat(arrivals, slacks, admitted, state, num_servers,
                           est_query_us, est_batch_us, mode, param0,
                           param1):
    backlog_us = state[0]
    last_us = state[1]
    tokens = state[2]
    token_last_us = state[3]
    for position in range(len(arrivals)):
        now_us = arrivals[position]
        backlog_us = backlog_us - (now_us - last_us) * num_servers
        if backlog_us < 0.0:
            backlog_us = 0.0
        last_us = now_us
        wait_us = backlog_us / num_servers
        admit = True
        if mode == 1:
            if token_last_us == token_last_us and now_us > token_last_us:
                refill = tokens + (now_us - token_last_us) * param0 / 1e6
                if refill < param1:
                    tokens = refill
                else:
                    tokens = param1
            token_last_us = now_us
            if tokens >= 1.0:
                tokens = tokens - 1.0
            else:
                admit = False
        elif mode == 2:
            depth = wait_us * num_servers / est_query_us
            if depth >= param0:
                admit = False
        elif mode == 3:
            slack_us = slacks[position]
            if slack_us == slack_us:
                predicted_us = wait_us + param0 * est_batch_us
                if predicted_us > slack_us:
                    admit = False
        if admit:
            admitted[position] = 1
            backlog_us = backlog_us + est_query_us
        else:
            admitted[position] = 0
    state[0] = backlog_us
    state[1] = last_us
    state[2] = tokens
    state[3] = token_last_us


def _admission_events_python(arrivals, slacks, admitted, state, num_servers,
                             est_query_us, est_batch_us, mode, param0,
                             param1):
    backlog_us = state[0]
    last_us = state[1]
    tokens = state[2]
    token_last_us = state[3]
    for position in range(len(arrivals)):
        now_us = arrivals[position]
        backlog_us = backlog_us - (now_us - last_us) * num_servers
        if backlog_us < 0.0:
            backlog_us = 0.0
        last_us = now_us
        wait_us = backlog_us / num_servers
        admit = True
        if mode == 1:
            if token_last_us == token_last_us and now_us > token_last_us:
                refill = tokens + (now_us - token_last_us) * param0 / 1e6
                if refill < param1:
                    tokens = refill
                else:
                    tokens = param1
            token_last_us = now_us
            if tokens >= 1.0:
                tokens = tokens - 1.0
            else:
                admit = False
        elif mode == 2:
            depth = wait_us * num_servers / est_query_us
            if depth >= param0:
                admit = False
        elif mode == 3:
            slack_us = slacks[position]
            if slack_us == slack_us:
                predicted_us = wait_us + param0 * est_batch_us
                if predicted_us > slack_us:
                    admit = False
        if admit:
            admitted[position] = 1
            backlog_us = backlog_us + est_query_us
        else:
            admitted[position] = 0
    state[0] = backlog_us
    state[1] = last_us
    state[2] = tokens
    state[3] = token_last_us


# --------------------------------------------------------------------- #
# Jit application (the core-kernels plumbing)                           #
# --------------------------------------------------------------------- #
#: Un-jitted references: importable on every host, pinned by parity
#: tests so the compiled flavor can never silently diverge.
_fifo_events_flat_py = _fifo_events_flat
_edf_events_flat_py = _edf_events_flat
_admission_events_flat_py = _admission_events_flat

_fifo_events_flat = maybe_jit(_fifo_events_flat)
_edf_events_flat = maybe_jit(_edf_events_flat)
_admission_events_flat = maybe_jit(_admission_events_flat)


def _flat_kernel(jitted, unjitted, flavor):
    if flavor == "numba":
        if jitted is unjitted:
            raise RuntimeError("numba is not importable on this host")
        return jitted
    return unjitted


# --------------------------------------------------------------------- #
# Dispatchers                                                           #
# --------------------------------------------------------------------- #
def fifo_queue_times(ready, services, arrival_order, num_servers,
                     flavor=None):
    """Multi-server FIFO starts/completes via the active kernel flavor.

    ``ready`` / ``services`` are ``float64`` arrays, ``arrival_order``
    the stable arrival permutation.  Returns ``(starts, completes)``
    ``float64`` arrays indexed like the inputs, bit-identical to the
    legacy ``heapq`` loop.  ``flavor`` overrides the ambient selection
    (``"disabled"`` is the caller's branch, not a kernel).
    """
    if flavor is None:
        flavor = active_flavor()
    size = ready.shape[0]
    if flavor == "python":
        starts = [0.0] * size
        completes = [0.0] * size
        _fifo_events_python(arrival_order.tolist(), ready.tolist(),
                            services.tolist(), [0.0] * num_servers,
                            starts, completes, num_servers)
        return (np.asarray(starts, dtype=np.float64),
                np.asarray(completes, dtype=np.float64))
    kernel = _flat_kernel(_fifo_events_flat, _fifo_events_flat_py, flavor)
    starts = np.empty(size, dtype=np.float64)
    completes = np.empty(size, dtype=np.float64)
    kernel(arrival_order, ready, services,
           np.empty(num_servers, dtype=np.float64), starts, completes,
           num_servers)
    return starts, completes


def edf_queue_times(ready, services, priorities, arrival_order, num_servers,
                    flavor=None):
    """Earliest-deadline-first starts/completes via the active flavor.

    Like :func:`fifo_queue_times` with a per-batch ``priorities`` vector
    (smaller serves first; ties fall back to ready time, then batch
    index -- exactly ``heapq``'s tuple order in the legacy loop).
    """
    if flavor is None:
        flavor = active_flavor()
    size = ready.shape[0]
    if flavor == "python":
        starts = [0.0] * size
        completes = [0.0] * size
        _edf_events_python(arrival_order.tolist(), ready.tolist(),
                           services.tolist(), priorities.tolist(),
                           [0.0] * num_servers, [0.0] * size, [0.0] * size,
                           [0] * size, starts, completes, num_servers)
        return (np.asarray(starts, dtype=np.float64),
                np.asarray(completes, dtype=np.float64))
    kernel = _flat_kernel(_edf_events_flat, _edf_events_flat_py, flavor)
    starts = np.empty(size, dtype=np.float64)
    completes = np.empty(size, dtype=np.float64)
    kernel(arrival_order, ready, services, priorities,
           np.empty(num_servers, dtype=np.float64),
           np.empty(size, dtype=np.float64),
           np.empty(size, dtype=np.float64),
           np.empty(size, dtype=np.int64), starts, completes, num_servers)
    return starts, completes


def new_admission_state(first_arrival_us, initial_tokens=0.0):
    """Fresh carried-state vector for :func:`admission_mask`.

    ``first_arrival_us`` seeds the fluid model's last-arrival clock
    (matching :func:`repro.serving.admission.apply_admission`, whose
    first gap is therefore zero); ``initial_tokens`` seeds the token
    bucket (its burst size) for the token-bucket mode.
    """
    state = np.zeros(ADM_STATE_SIZE, dtype=np.float64)
    state[ADM_LAST_US] = first_arrival_us
    state[ADM_TOKENS] = initial_tokens
    state[ADM_TOKEN_LAST_US] = np.nan
    return state


def admission_mask(arrivals, slacks, state, num_servers, est_query_us,
                   est_batch_us, mode, param0=0.0, param1=0.0, flavor=None):
    """Vectorised admission pass over one (chunk of a) query stream.

    ``arrivals`` are the sorted arrival times, ``slacks`` the per-query
    deadline slacks (NaN = no deadline), ``state`` the carried vector
    from :func:`new_admission_state` (mutated in place, so consecutive
    chunks continue the same fluid model).  Returns a boolean admit
    mask, bit-identical to the per-query controller loop.
    """
    if flavor is None:
        flavor = active_flavor()
    size = arrivals.shape[0]
    if flavor == "python":
        admitted = [0] * size
        state_list = state.tolist()
        _admission_events_python(arrivals.tolist(), slacks.tolist(),
                                 admitted, state_list, num_servers,
                                 est_query_us, est_batch_us, mode, param0,
                                 param1)
        state[:] = state_list
        return np.asarray(admitted, dtype=np.uint8) != 0
    kernel = _flat_kernel(_admission_events_flat,
                          _admission_events_flat_py, flavor)
    admitted = np.empty(size, dtype=np.uint8)
    kernel(arrivals, slacks, admitted, state, num_servers, est_query_us,
           est_batch_us, mode, param0, param1)
    return admitted != 0


def describe():
    """One-line event-kernel status for CLI / benchmark reporting."""
    flavor = active_flavor()
    if flavor == "disabled":
        return "event kernels disabled (legacy heapq loops)"
    if flavor == "numba":
        return "numba-jitted event-loop kernels"
    return "pure-python event-loop kernels (numba not installed)"
