"""SLO policies and deadline accounting for the serving layer.

The serving engines historically reported *unconditional* latency
percentiles: every query counted the same whether it finished in time or
not.  Production serving is judged differently -- each query carries a
deadline and the system is scored on *goodput* (deadline-meeting
completions per second) and *SLO attainment* (the fraction of admitted
queries that met their deadline).  This module provides:

* :class:`SLOPolicy` -- assigns a deadline to every query of a stream.
  Three implementations: a fixed per-query budget
  (:class:`FixedSLOPolicy`), a budget scaling with the number of tables a
  query touches (:class:`PerTableSLOPolicy`), and a budget derived from a
  percentile of observed service times
  (:class:`ServicePercentileSLOPolicy`).
* :func:`summarize_slo` -- the shared deadline bookkeeping both serving
  engines attach to their reports (``extras["slo"]``): attainment,
  goodput, shed rate, and the admission counts.

Deadlines are *absolute* times (``arrival_us + slack``), so a query's
latency meets its SLO exactly when ``complete_us <= deadline_us``.
Deadline assignment is passive: it never changes batching, service times
or the reported percentiles -- admission control
(:mod:`repro.serving.admission`) and the EDF service order
(:class:`~repro.serving.events.EventEngine`) are the active consumers.
"""

import abc

import numpy as np

from repro.serving.queueing import percentile


class SLOPolicy(abc.ABC):
    """Strategy interface: assign a completion deadline to each query."""

    #: Registry name of the policy (also recorded in report extras).
    name = "slo-policy"

    @abc.abstractmethod
    def slack_us(self, query):
        """Time budget (us) from the query's arrival to its deadline."""

    def assign_deadlines(self, queries):
        """Set ``deadline_us = arrival_us + slack`` on every query.

        Mutates the queries in place and returns them (assignment is
        idempotent for deterministic policies).
        """
        for query in queries:
            query.deadline_us = query.arrival_us + self.slack_us(query)
        return queries

    def assign_deadlines_columns(self, columns):
        """Array-path deadline assignment over a
        :class:`~repro.serving.query_columns.QueryColumns`.

        The generic implementation evaluates :meth:`slack_us` per row
        view (so custom policies work unchanged); the built-in policies
        override with a vectorised write.  Mutates the deadline column
        in place and returns the columns.
        """
        deadline = columns.deadline_us
        for position in range(len(columns)):
            deadline[position] = columns.arrival_us[position] \
                + self.slack_us(columns.view(position))
        return columns

    def describe(self):
        """Human-readable one-line description of the policy."""
        return self.name


class FixedSLOPolicy(SLOPolicy):
    """Every query gets the same latency budget (the classic p99 SLO)."""

    name = "fixed"

    def __init__(self, slo_us):
        if slo_us <= 0:
            raise ValueError("slo_us must be positive")
        self.slo_us = float(slo_us)

    def slack_us(self, query):
        return self.slo_us

    def assign_deadlines_columns(self, columns):
        columns.deadline_us[:] = columns.arrival_us + self.slo_us
        return columns

    def describe(self):
        return "fixed %.0f us" % self.slo_us


class PerTableSLOPolicy(SLOPolicy):
    """Budget scales with the number of tables a query fans out to.

    Wide queries touch more shards and legitimately take longer, so a
    flat budget either starves them or slackens everyone else:
    ``slack = base_us + per_table_us * num_tables``.
    """

    name = "per-table"

    def __init__(self, base_us, per_table_us):
        if base_us < 0 or per_table_us < 0:
            raise ValueError("budgets must be non-negative")
        if base_us + per_table_us <= 0:
            raise ValueError("the total budget must be positive")
        self.base_us = float(base_us)
        self.per_table_us = float(per_table_us)

    def slack_us(self, query):
        return self.base_us + self.per_table_us * query.num_tables

    def assign_deadlines_columns(self, columns):
        # num_requests holds the per-query table count; int64 -> float64
        # is exact for any realistic fan-out, so the vectorised slack
        # matches the scalar ``base + per_table * num_tables`` bitwise.
        columns.deadline_us[:] = columns.arrival_us + (
            self.base_us
            + self.per_table_us * columns.num_requests.astype(np.float64))
        return columns

    def describe(self):
        return "per-table %.0f + %.0f us/table" % (self.base_us,
                                                   self.per_table_us)


class ServicePercentileSLOPolicy(SLOPolicy):
    """Budget anchored to the service-time distribution itself.

    ``slack = multiplier * percentile(service_times_us, p)`` -- the
    standard way to set an achievable SLO from measurements: e.g. three
    times the p99 batch service time leaves room for batching delay and
    a moderate queue without being trivially loose.
    """

    name = "service-percentile"

    def __init__(self, service_times_us, p=99.0, multiplier=3.0):
        if multiplier <= 0:
            raise ValueError("multiplier must be positive")
        reference = percentile(service_times_us, p)
        if reference <= 0:
            raise ValueError("service-time percentile must be positive")
        self.p = float(p)
        self.multiplier = float(multiplier)
        self._slack_us = self.multiplier * reference

    def slack_us(self, query):
        return self._slack_us

    def assign_deadlines_columns(self, columns):
        columns.deadline_us[:] = columns.arrival_us + self._slack_us
        return columns

    def describe(self):
        return "%.1fx p%g service time (%.0f us)" % (self.multiplier,
                                                     self.p, self._slack_us)


#: Policy registry (introspection/docs; policies need constructor
#: arguments, so resolution only instantiates from numbers -- see
#: :func:`resolve_slo_policy`).
SLO_POLICIES = {
    "fixed": FixedSLOPolicy,
    "per-table": PerTableSLOPolicy,
    "service-percentile": ServicePercentileSLOPolicy,
}


def available_slo_policies():
    """Sorted names of the registered SLO policies."""
    return sorted(SLO_POLICIES)


def resolve_slo_policy(policy):
    """Normalise an ``slo_policy=`` argument.

    Accepts ``None`` (no SLO accounting), a ready :class:`SLOPolicy`
    instance, or a number (a fixed per-query budget in microseconds).
    Names alone are rejected -- every policy needs parameters -- with a
    message listing the available classes.
    """
    if policy is None:
        return None
    if isinstance(policy, SLOPolicy):
        return policy
    if isinstance(policy, (int, float)) and not isinstance(policy, bool):
        return FixedSLOPolicy(policy)
    raise ValueError(
        "slo_policy must be None, a number of microseconds, or an "
        "SLOPolicy instance (available classes: %s)"
        % ", ".join(available_slo_policies()))


def maybe_summarize_slo(queries, latencies_us, slo_info=None):
    """:func:`summarize_slo` when the run carries SLO context, else None.

    The shared trigger both serving engines use: accounting is attached
    when the cluster passed admission context (``slo_info``) *or* any
    query carries a deadline (assigned by a policy or by hand).
    """
    if slo_info is None and not any(
            getattr(query, "deadline_us", None) is not None
            for query in queries):
        return None
    return summarize_slo(queries, latencies_us, slo_info)


def summarize_slo(queries, latencies_us, slo_info=None):
    """Deadline bookkeeping for one serving run (``extras["slo"]``).

    ``queries`` are the *admitted* queries in the engine's sample order
    and ``latencies_us`` their per-query latencies (measured by the event
    engine, approximated by the analytic engine).  ``slo_info`` carries
    the admission context from the cluster: ``num_offered`` / ``num_shed``
    / ``offered_span_us`` / ``admission`` / ``slo_policy``.

    Returns a JSON-serialisable dict: counts, ``shed_rate``,
    ``attainment`` (fraction of deadline-carrying admitted queries that
    met their deadline; ``None`` when no query carries one), and
    ``goodput_qps`` -- deadline-meeting completions per second of offered
    traffic (all admitted completions count when no deadlines are
    assigned, making goodput degrade gracefully to net throughput).
    Goodput uses the same interval form ``(N - 1) / span`` as every
    other rate in :func:`~repro.serving.queueing.traffic_stats`, so it
    stays comparable to ``offered_qps`` (never exceeding it) and a
    degenerate single completion reports 0 rather than exploding.
    """
    if len(queries) != len(latencies_us):
        raise ValueError("need one latency per admitted query")
    info = dict(slo_info or {})
    num_admitted = len(queries)
    num_shed = int(info.get("num_shed", 0))
    num_offered = int(info.get("num_offered", num_admitted + num_shed))
    if num_offered < num_admitted + num_shed:
        raise ValueError("offered count below admitted + shed")
    span_us = info.get("offered_span_us")
    if span_us is None:
        arrivals = [query.arrival_us for query in queries]
        span_us = max(arrivals) - min(arrivals) if arrivals else 0.0

    with_deadline = 0
    met = 0
    for query, latency in zip(queries, latencies_us):
        slack = getattr(query, "slack_us", None)
        if slack is None:
            continue
        with_deadline += 1
        if latency <= slack:
            met += 1
    attainment = met / with_deadline if with_deadline else None
    # Queries without a deadline always count as useful work, so goodput
    # degrades gracefully to net (post-shedding) throughput without SLOs.
    good = met + (num_admitted - with_deadline)
    goodput_qps = ((good - 1) / span_us * 1e6
                   if good > 1 and span_us > 0.0 else 0.0)
    return {
        "slo_policy": info.get("slo_policy"),
        "admission": info.get("admission", "none"),
        "num_offered": num_offered,
        "num_admitted": num_admitted,
        "num_shed": num_shed,
        "shed_rate": num_shed / num_offered if num_offered else 0.0,
        "num_with_deadline": with_deadline,
        "deadlines_met": met,
        "attainment": attainment,
        "goodput_qps": goodput_qps,
        "offered_span_us": float(span_us),
    }


def maybe_summarize_slo_arrays(arrival_us, slack_us, latencies_us,
                               slo_info=None):
    """Array-path :func:`maybe_summarize_slo` (the columns engines).

    ``slack_us`` is the per-admitted-query slack vector with NaN for
    deadline-free queries (the array analogue of ``slack_us is None``);
    the trigger and every reported number match the object path
    bitwise.
    """
    has_deadline = ~np.isnan(slack_us)
    if slo_info is None and not has_deadline.any():
        return None
    return summarize_slo_arrays(arrival_us, slack_us, latencies_us,
                                slo_info, has_deadline)


def summarize_slo_arrays(arrival_us, slack_us, latencies_us, slo_info=None,
                         has_deadline=None):
    """Vectorised :func:`summarize_slo` over per-query arrays.

    Same accounting, same dict -- counts via masked comparisons instead
    of a per-query loop.  The comparisons (``latency <= slack``) and the
    derived ratios are the identical float64 operations the scalar loop
    performs, so the record is byte-identical.
    """
    latencies = np.asarray(latencies_us, dtype=np.float64)
    slack = np.asarray(slack_us, dtype=np.float64)
    if slack.shape[0] != latencies.shape[0]:
        raise ValueError("need one latency per admitted query")
    if has_deadline is None:
        has_deadline = ~np.isnan(slack)
    info = dict(slo_info or {})
    num_admitted = latencies.shape[0]
    num_shed = int(info.get("num_shed", 0))
    num_offered = int(info.get("num_offered", num_admitted + num_shed))
    if num_offered < num_admitted + num_shed:
        raise ValueError("offered count below admitted + shed")
    span_us = info.get("offered_span_us")
    if span_us is None:
        span_us = float(arrival_us.max() - arrival_us.min()) \
            if num_admitted else 0.0

    with_deadline = int(np.count_nonzero(has_deadline))
    met = int(np.count_nonzero(
        latencies[has_deadline] <= slack[has_deadline]))
    attainment = met / with_deadline if with_deadline else None
    good = met + (num_admitted - with_deadline)
    goodput_qps = ((good - 1) / span_us * 1e6
                   if good > 1 and span_us > 0.0 else 0.0)
    return {
        "slo_policy": info.get("slo_policy"),
        "admission": info.get("admission", "none"),
        "num_offered": num_offered,
        "num_admitted": num_admitted,
        "num_shed": num_shed,
        "shed_rate": num_shed / num_offered if num_offered else 0.0,
        "num_with_deadline": with_deadline,
        "deadlines_met": met,
        "attainment": attainment,
        "goodput_qps": goodput_qps,
        "offered_span_us": float(span_us),
    }
