"""Event-driven dispatch-queue simulation (the non-closed-form engine).

The analytic engine's exponential-tail quantiles are a heavy-traffic
*approximation*; the paper's headline serving claims are tail-latency
claims precisely where that approximation is least validated (high
utilisation, near saturation).  :class:`EventEngine` removes the
approximation: it replays the dispatched batches through a discrete-event
simulation of a single batch queue drained by ``num_frontends``
concurrent servers and reports *measured* per-query p50/p95/p99.

Two service orders are supported.  **FIFO** (the default) is O(B log c)
in the number of batches B: each batch is an arrival event at its
formation time, a min-heap holds the next-free time of every server, and
FIFO order makes the earliest-free server the only candidate.  **EDF**
(earliest deadline first, ``order="edf"``) additionally keeps a priority
heap of ready batches keyed by their tightest query deadline
(:attr:`~repro.serving.batcher.QueryBatch.earliest_deadline_us`), so a
freed server always takes the most urgent waiting batch --
non-preemptive, O(B log B).  Service times come from whatever
:class:`~repro.perf.service_model.ServiceTimeModel` produced them, so a
million-query event run costs a million heap operations -- not a million
cycle simulations.

When queries carry deadlines (assigned by an
:class:`~repro.serving.slo.SLOPolicy`) or the run went through admission
control, the engine attaches the measured SLO accounting -- goodput,
attainment, shed rate -- to ``extras["slo"]``
(:func:`repro.serving.slo.summarize_slo`).  The reported percentiles are
always conditioned on *admitted* queries; shed queries never enter a
batch.
"""

import heapq

import numpy as np

from repro.serving import event_kernels
from repro.serving.engine import ENGINES, ServingEngine
from repro.serving.queueing import (
    ServingReport,
    mgc_utilization,
    percentile,
    saturation_qps,
    traffic_stats,
)

#: Service orders the event simulation understands.
QUEUE_ORDERS = ("fifo", "edf")


def simulate_batch_queue(ready_times_us, service_times_us, num_servers=1,
                         order="fifo", priorities=None):
    """Discrete-event simulation of a multi-server batch queue.

    ``ready_times_us[i]`` is when batch ``i`` enters the dispatch queue
    (its formation time); ``num_servers`` servers drain the queue in
    ``order``: ``"fifo"`` serves in ready order, ``"edf"`` serves the
    waiting batch with the smallest ``priorities[i]`` (e.g. its earliest
    deadline; ties fall back to ready order).  Returns ``(start_us,
    complete_us, max_queue_depth)`` where the arrays are indexed like the
    inputs.
    """
    ready = np.asarray(ready_times_us, dtype=np.float64)
    services = np.asarray(service_times_us, dtype=np.float64)
    if ready.size != services.size:
        raise ValueError("need one service time per batch")
    if ready.size == 0:
        raise ValueError("need at least one batch")
    if num_servers < 1:
        raise ValueError("num_servers must be >= 1")
    if order not in QUEUE_ORDERS:
        raise ValueError("order must be one of %s" % (QUEUE_ORDERS,))
    arrival_order = np.argsort(ready, kind="stable")
    starts = np.empty_like(ready)
    completes = np.empty_like(ready)
    if order == "fifo" and num_servers == 1:
        # Single-server FIFO is a pure running recurrence -- start[i] =
        # max(ready[i], complete[i-1]) -- with the closed form
        # complete[i] = max_{j<=i}(ready[j] - C[j-1]) + C[i] over the
        # service prefix sums C, so the whole queue is three vector ops
        # instead of a heap loop.  The prefix-sum reassociation can
        # differ from the sequential recurrence in the last floating-
        # point ulp; it is exact on integer-valued times below 2**53.
        sorted_ready = ready[arrival_order]
        sorted_services = services[arrival_order]
        csum = np.cumsum(sorted_services)
        exclusive = np.concatenate(([0.0], csum[:-1]))
        sorted_completes = np.maximum.accumulate(sorted_ready - exclusive) \
            + csum
        sorted_starts = np.maximum(sorted_ready,
                                   sorted_completes - sorted_services)
        starts[arrival_order] = sorted_starts
        completes[arrival_order] = sorted_completes
    elif order == "fifo":
        if event_kernels.active_flavor() != "disabled":
            starts, completes = event_kernels.fifo_queue_times(
                ready, services, arrival_order, num_servers)
        else:
            # Legacy heapq loop: the readable specification the compiled
            # kernels are pinned against (and the "disabled" flavor).
            free_at = [float(ready[arrival_order[0]])] * num_servers
            heapq.heapify(free_at)
            for index in arrival_order:
                start = max(float(ready[index]), heapq.heappop(free_at))
                complete = start + float(services[index])
                starts[index] = start
                completes[index] = complete
                heapq.heappush(free_at, complete)
    else:
        if priorities is None:
            raise ValueError("EDF order needs one priority per batch")
        priority = np.asarray(priorities, dtype=np.float64)
        if priority.size != ready.size:
            raise ValueError("need one priority per batch")
        if event_kernels.active_flavor() != "disabled":
            starts, completes = event_kernels.edf_queue_times(
                ready, services, priority, arrival_order, num_servers)
        else:
            free_at = [float(ready[arrival_order[0]])] * num_servers
            heapq.heapify(free_at)
            pending = []                   # (priority, ready, index)
            next_arrival = 0
            for _ in range(ready.size):
                now = heapq.heappop(free_at)
                if not pending:
                    # The earliest-free server idles until the next
                    # arrival.
                    now = max(now, float(ready[arrival_order[
                        next_arrival]]))
                while next_arrival < ready.size and \
                        float(ready[arrival_order[next_arrival]]) <= now:
                    index = int(arrival_order[next_arrival])
                    heapq.heappush(pending, (float(priority[index]),
                                             float(ready[index]), index))
                    next_arrival += 1
                _, batch_ready, index = heapq.heappop(pending)
                start = max(batch_ready, now)
                complete = start + float(services[index])
                starts[index] = start
                completes[index] = complete
                heapq.heappush(free_at, complete)
    # Waiting-queue depth: a batch occupies the queue from ready to start,
    # and the depth only peaks just after an arrival -- so instead of
    # replaying a sorted 2B-event list, evaluate the depth at each sorted
    # arrival time directly from the already-computed start times:
    # arrivals so far minus starts at or before that instant (counting
    # ``start <= t`` reproduces the old tie rule that departures precede
    # arrivals, so a batch that starts immediately never counts).
    sorted_ready_times = ready[arrival_order]
    departed = np.searchsorted(np.sort(starts), sorted_ready_times,
                               side="right")
    depth_after_arrival = np.arange(1, ready.size + 1) - departed
    max_depth = max(0, int(depth_after_arrival.max()))
    return starts, completes, max_depth


def simulate_fifo_queue(ready_times_us, service_times_us, num_servers=1):
    """FIFO specialisation of :func:`simulate_batch_queue` (legacy API)."""
    return simulate_batch_queue(ready_times_us, service_times_us,
                                num_servers, order="fifo")


class EventEngine(ServingEngine):
    """Measured-percentile serving engine.

    Drop-in alternative to the analytic engine: same inputs, same
    :class:`ServingReport` shape, but ``p50/p95/p99`` and the mean wait
    are measured from the simulated queue rather than approximated from
    the service moments.  ``order`` selects the dispatch-queue service
    order: ``"fifo"`` (the default) or ``"edf"`` (earliest deadline
    first over the batches' tightest query deadlines -- registered as
    the ``"event-edf"`` engine).  ``utilization`` keeps the analytic
    offered-load definition (``lambda * E[S] / c``) so engine-vs-engine
    comparisons line up; the measured busy fraction is reported in
    ``extras["measured_utilization"]``.
    """

    name = "event"

    def __init__(self, order="fifo"):
        if order not in QUEUE_ORDERS:
            raise ValueError("order must be one of %s" % (QUEUE_ORDERS,))
        self.order = order
        if order != "fifo":
            self.name = "event-%s" % order

    def summarize(self, system_name, batches, service_times_us,
                  num_servers=1, trigger_counts=None, extras=None,
                  slo_info=None, capture=None):
        services = np.asarray(service_times_us, dtype=np.float64)
        if len(batches) != services.size:
            raise ValueError("need one service time per batch")
        if not len(batches):
            raise ValueError("need at least one batch")
        is_columns = getattr(batches, "is_columns", False)
        if is_columns:
            ready = batches.formed_us
        else:
            ready = np.asarray([batch.formed_us for batch in batches],
                               dtype=np.float64)
        priorities = None
        if self.order == "edf":
            # Deadline-free batches sort after every constrained one
            # (+inf priority); ready-time tie-breaks keep FIFO among them.
            if is_columns:
                earliest = batches.earliest_deadline_us()
                priorities = np.where(np.isnan(earliest), np.inf, earliest)
            else:
                priorities = [
                    float("inf") if deadline is None else deadline
                    for deadline in (batch.earliest_deadline_us
                                     for batch in batches)]
        starts, completes, max_depth = simulate_batch_queue(
            ready, services, num_servers, order=self.order,
            priorities=priorities)
        waits = starts - ready

        if is_columns:
            # The per-query loops below as array ops: batch order equals
            # query order within the columns, so np.repeat reproduces
            # the flattened zip exactly (and bitwise: the same float64
            # subtractions in the same order).
            sizes = batches.sizes
            arrivals = batches.columns.arrival_us
            latencies = np.repeat(completes, sizes) - arrivals
            delays = np.repeat(ready, sizes) - arrivals
            num_queries = batches.num_queries
            span_us = arrivals.max() - arrivals.min()
            offered_qps = ((num_queries - 1) / span_us * 1e6
                           if num_queries > 1 and span_us > 0.0 else 0.0)
            if len(batches) > 1:
                batch_span_us = ready.max() - ready.min()
                batch_rate_per_us = ((len(batches) - 1) / batch_span_us
                                     if batch_span_us > 0.0 else 0.0)
            else:
                batch_rate_per_us = 0.0
        else:
            latencies = []
            for batch, complete in zip(batches, completes):
                for query in batch.queries:
                    latencies.append(float(complete) - query.arrival_us)
            queries, delays, offered_qps, batch_rate_per_us = \
                traffic_stats(batches)
            num_queries = len(queries)

        rho = mgc_utilization(batch_rate_per_us, services, num_servers)
        busy_span_us = max(float(completes.max() - ready.min()), 1e-9)
        measured_utilization = float(services.sum()) \
            / (num_servers * busy_span_us)

        mean_service = float(services.mean())
        sustainable_qps = saturation_qps(num_queries, len(batches),
                                         mean_service, num_servers)

        if capture is not None:
            # Observability deposit: arrays the queue maths already
            # produced, recorded after the fact -- the report below is
            # byte-identical with or without a capture.
            capture.record(
                engine=self.name, batches=batches, ready_us=ready,
                service_us=services, start_us=starts,
                complete_us=completes, latency_us=latencies,
                num_servers=num_servers, max_queue_depth=int(max_depth),
                measured_utilization=measured_utilization)

        run_extras = self._tag_extras(extras)
        run_extras.setdefault("num_frontends", num_servers)
        run_extras.setdefault("queue_order", self.order)
        run_extras.setdefault("measured_utilization", measured_utilization)
        run_extras.setdefault("max_queue_depth", int(max_depth))
        run_extras.setdefault("p99_wait_us", percentile(waits, 99.0))
        if is_columns:
            self._attach_slo_columns(run_extras, batches, latencies,
                                     slo_info)
        else:
            self._attach_slo(run_extras, queries, latencies, slo_info)
        return ServingReport(
            system=system_name,
            num_queries=num_queries,
            num_batches=len(batches),
            offered_qps=float(offered_qps),
            utilization=rho,
            mean_service_us=mean_service,
            mean_batch_delay_us=float(np.mean(delays)),
            mean_wait_us=float(waits.mean()),
            mean_latency_us=float(np.mean(latencies)),
            p50_us=percentile(latencies, 50.0),
            p95_us=percentile(latencies, 95.0),
            p99_us=percentile(latencies, 99.0),
            sustainable_qps=sustainable_qps,
            num_servers=num_servers,
            trigger_counts=dict(trigger_counts or {}),
            extras=run_extras,
        )


ENGINES["event"] = EventEngine
ENGINES["event-edf"] = lambda: EventEngine(order="edf")
