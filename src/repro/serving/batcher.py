"""Batching frontend: group arriving queries into execution batches.

Production embedding servers batch queries to amortise dispatch overheads
and fill the memory system, but cap the wait so tail latency stays bounded.
The frontend here implements the standard two-trigger policy:

* **size** -- the open batch reaches ``max_queries`` and dispatches
  immediately, and
* **deadline** -- ``max_delay_us`` elapses after the batch opened and the
  batch dispatches with whatever it holds.

Batch formation is a pure function of the query arrival times, so it is
deterministic and separately testable from the execution layers.
"""

from dataclasses import dataclass, field


@dataclass
class QueryBatch:
    """A dispatched batch of serving queries.

    The lookup/pooling aggregates are computed once on first access and
    cached (one walk over the request lists instead of one per
    property read -- the interpolating service model reads several per
    batch).  The cache keys on the query list's length, so the batcher
    appending queries during formation invalidates nothing; replacing
    or mutating queries *in place* after an aggregate was read is not
    supported.
    """

    queries: list = field(default_factory=list)
    open_us: float = 0.0
    formed_us: float = 0.0
    trigger: str = "size"
    _aggregates: tuple = field(default=None, init=False, repr=False,
                               compare=False)

    def _aggregate(self, index):
        cached = self._aggregates
        if cached is None or cached[0] != len(self.queries):
            lookups = 0
            poolings = 0
            num_requests = 0
            for query in self.queries:
                lookups += query.total_lookups
                num_requests += len(query.requests)
                for request in query.requests:
                    poolings += len(request.lengths)
            cached = (len(self.queries), lookups, poolings, num_requests)
            self._aggregates = cached
        return cached[index]

    @property
    def size(self):
        return len(self.queries)

    @property
    def total_lookups(self):
        return self._aggregate(1)

    @property
    def total_poolings(self):
        """Pooling operations across the batch (the SLS batch dimension).

        The axis service time scales along: a batch of ``n`` queries each
        carrying ``b`` poolings per table behaves like one ``n * b``-pooling
        request per table, which is how the interpolating service-time
        model (:mod:`repro.perf.service_model`) keys its calibration grid.
        """
        return self._aggregate(2)

    @property
    def num_pooling_ops(self):
        """Alias of :attr:`total_poolings` (the SLS batch dimension)."""
        return self._aggregate(2)

    @property
    def num_requests(self):
        """SLS requests across the batch (queries x tables touched)."""
        return self._aggregate(3)

    @property
    def mean_pooling_factor(self):
        """Average lookups per pooling operation across the batch."""
        poolings = self.total_poolings
        return self.total_lookups / poolings if poolings else 0.0

    def query_fingerprints(self):
        """Per-query content digests (the service-cache key body)."""
        return [query.fingerprint() for query in self.queries]

    @property
    def earliest_deadline_us(self):
        """Tightest absolute deadline across the batch's queries.

        The priority key for earliest-deadline-first dispatch
        (:class:`~repro.serving.events.EventEngine` with
        ``order="edf"``); ``None`` when no query carries a deadline, so
        deadline-free batches sort after every constrained one.
        """
        deadlines = [query.deadline_us for query in self.queries
                     if query.deadline_us is not None]
        return min(deadlines) if deadlines else None

    def requests(self):
        """All SLS requests of the batch, in query order."""
        return [request for query in self.queries
                for request in query.requests]

    def batching_delay_us(self, query):
        """How long ``query`` waited in the frontend before dispatch."""
        return self.formed_us - query.arrival_us


class BatchingFrontend:
    """Size- and deadline-triggered query batcher.

    Parameters
    ----------
    max_queries:
        Dispatch as soon as the open batch holds this many queries.
    max_delay_us:
        Dispatch at the latest this long after the batch's first query
        arrived (the deadline trigger).
    """

    def __init__(self, max_queries=8, max_delay_us=500.0):
        if max_queries <= 0:
            raise ValueError("max_queries must be positive")
        if max_delay_us < 0:
            raise ValueError("max_delay_us must be non-negative")
        self.max_queries = int(max_queries)
        self.max_delay_us = float(max_delay_us)

    def form_batches(self, queries):
        """Group a query stream into dispatched :class:`QueryBatch` objects.

        Queries are processed in arrival order (ties broken by query id).
        The final partial batch dispatches at its deadline.
        """
        ordered = sorted(queries, key=lambda q: (q.arrival_us, q.query_id))
        batches = []
        open_batch = None
        for query in ordered:
            # >=: a batch expires *at* open + max_delay, so a query
            # arriving exactly then must open the next batch -- it cannot
            # join a batch that dispatched the instant it arrived.
            if open_batch is not None and \
                    query.arrival_us >= open_batch.open_us \
                    + self.max_delay_us:
                open_batch.formed_us = open_batch.open_us + self.max_delay_us
                open_batch.trigger = "deadline"
                batches.append(open_batch)
                open_batch = None
            if open_batch is None:
                open_batch = QueryBatch(open_us=query.arrival_us)
            open_batch.queries.append(query)
            if len(open_batch.queries) >= self.max_queries:
                open_batch.formed_us = query.arrival_us
                open_batch.trigger = "size"
                batches.append(open_batch)
                open_batch = None
        if open_batch is not None:
            open_batch.formed_us = open_batch.open_us + self.max_delay_us
            open_batch.trigger = "deadline"
            batches.append(open_batch)
        return batches

    def form_batch_columns(self, columns, final=True):
        """Array-path batch formation over sorted query columns.

        Delegates to :func:`repro.serving.query_columns
        .form_batch_columns` with this frontend's triggers; see there
        for the carry contract of ``final=False``.
        """
        from repro.serving.query_columns import form_batch_columns

        return form_batch_columns(columns, self.max_queries,
                                  self.max_delay_us, final=final)

    def trigger_counts(self, batches):
        """``{"size": n, "deadline": m}`` over a batch list."""
        array_counts = getattr(batches, "trigger_counts", None)
        if array_counts is not None:
            return array_counts()
        counts = {"size": 0, "deadline": 0}
        for batch in batches:
            counts[batch.trigger] = counts.get(batch.trigger, 0) + 1
        return counts
