"""The pluggable serving-engine interface.

A *serving engine* turns dispatched batches and their simulated service
times into a :class:`~repro.serving.queueing.ServingReport` -- the step
that models what the dispatch queue does to per-query latency.  Two
interchangeable implementations exist:

* :class:`AnalyticEngine` -- the closed-form M/G/c model from
  :mod:`repro.serving.queueing` (Erlang-C waiting probability,
  Lee-Longton mean wait, exponential-tail quantiles).  One pass over the
  service times; exact only in its assumptions.
* :class:`~repro.serving.events.EventEngine` -- a discrete-event
  simulation of the FIFO dispatch queue across ``num_frontends``
  concurrent servers that *measures* per-query latency percentiles
  instead of approximating them.  The reference at high utilisation,
  where the exponential-tail approximation is unvalidated.

Engines are resolved by name (``"analytic"`` / ``"event"`` /
``"event-edf"``, the event simulation serving earliest-deadline-first
instead of FIFO) or passed as instances;
:meth:`ShardedServingCluster.simulate` and ``qps_sweep`` accept either
through their ``engine=`` parameter, with the analytic engine as the
backward-compatible default.

Engines consume the *whole* per-run service-time vector in one
``summarize`` call -- they never resolve service times themselves.  The
cluster produces that vector through
:meth:`ServiceTimeModel.service_times_us`, whose exact mode
batch-deduplicates and fans the unique misses out through the cluster's
node-level backend, so the engine layer stays oblivious to caching,
persistence and parallel resolution.  ``summarize`` must also stay a
pure function of its arguments (every built-in engine is): parallel
``qps_sweep`` backends run points on cluster clones and worker-process
rebuilds, where cross-point engine state would silently diverge from
the serial loop.
"""

import abc

from repro.serving.queueing import summarize_serving


class ServingEngine(abc.ABC):
    """Strategy interface: batches + service times -> ServingReport."""

    #: Registry name of the engine (also recorded in report extras).
    name = "engine"

    @abc.abstractmethod
    def summarize(self, system_name, batches, service_times_us,
                  num_servers=1, trigger_counts=None, extras=None,
                  slo_info=None, capture=None):
        """Produce a :class:`ServingReport` for one serving run.

        ``batches`` are the dispatched
        :class:`~repro.serving.batcher.QueryBatch` objects in dispatch
        order, ``service_times_us`` the per-batch execution times on the
        cluster, and ``num_servers`` the number of concurrent dispatch
        frontends draining the batch queue.  ``slo_info`` is the
        admission context from the cluster (offered/shed counts, policy
        names); when present -- or when any query carries a deadline --
        the engine attaches deadline accounting to ``extras["slo"]``
        (:func:`repro.serving.slo.summarize_slo`).

        ``capture``, when given, is a
        :class:`~repro.obs.capture.RunCapture` the engine must fill
        (one :meth:`~repro.obs.capture.RunCapture.record` call) with
        the per-batch ready/start/complete/service arrays and per-query
        latencies it already computed -- strictly *after* the queue
        maths, so the report is byte-identical with or without a
        capture.  The default ``None`` skips all of it.
        """

    def describe(self):
        """Human-readable one-line description of the engine."""
        return self.name

    def _tag_extras(self, extras):
        """Engine-stamped copy of the caller's extras dict."""
        tagged = dict(extras or {})
        tagged.setdefault("engine", self.name)
        return tagged

    def _attach_slo(self, extras, queries, latencies_us, slo_info):
        """Attach ``extras["slo"]`` when the run carries SLO context."""
        from repro.serving.slo import maybe_summarize_slo

        record = maybe_summarize_slo(queries, latencies_us, slo_info)
        if record is not None:
            extras.setdefault("slo", record)

    def _attach_slo_columns(self, extras, batch_columns, latencies_us,
                            slo_info):
        """Array-path :meth:`_attach_slo` over batched query columns."""
        from repro.serving.slo import maybe_summarize_slo_arrays

        columns = batch_columns.columns
        slack = columns.deadline_us - columns.arrival_us
        record = maybe_summarize_slo_arrays(columns.arrival_us, slack,
                                            latencies_us, slo_info)
        if record is not None:
            extras.setdefault("slo", record)


class AnalyticEngine(ServingEngine):
    """Closed-form M/G/c engine (the PR-1 model, now multi-server aware).

    Wraps :func:`repro.serving.queueing.summarize_serving`: waiting times
    from the first two moments of the service distribution, quantiles from
    the Erlang-C exponential-tail approximation.  Cheap (one vectorised
    pass) but approximate -- validate against the event engine near
    saturation (``benchmarks/bench_queue_validation.py`` does exactly
    that).
    """

    name = "analytic"

    def summarize(self, system_name, batches, service_times_us,
                  num_servers=1, trigger_counts=None, extras=None,
                  slo_info=None, capture=None):
        return summarize_serving(
            system_name, batches, service_times_us,
            trigger_counts=trigger_counts,
            extras=self._tag_extras(extras),
            num_servers=num_servers, slo_info=slo_info,
            capture=capture)


#: Engine registry: name -> zero-argument factory.
ENGINES = {"analytic": AnalyticEngine}


def available_engines():
    """Sorted names of the registered serving engines."""
    return sorted(ENGINES)


def resolve_engine(engine):
    """Normalise an ``engine=`` argument into a :class:`ServingEngine`.

    Accepts ``None`` (the default analytic engine), a registered engine
    name, an engine class, or a ready instance.
    """
    # Imported for the side effect of registering "event" (kept out of
    # module scope to avoid a cycle: events.py imports this interface).
    from repro.serving import events  # noqa: F401

    if engine is None:
        return AnalyticEngine()
    if isinstance(engine, ServingEngine):
        return engine
    if isinstance(engine, type) and issubclass(engine, ServingEngine):
        return engine()
    try:
        factory = ENGINES[engine]
    except (KeyError, TypeError):
        raise ValueError("unknown serving engine %r; available: %s"
                         % (engine, ", ".join(available_engines())))
    return factory()
