"""Request arrival processes and serving-query generation.

A serving node receives a stream of inference *queries*; each query gathers
embeddings from several tables (one SLS request per table).  This module
models when queries arrive -- a Poisson process at a target QPS, or a replay
of recorded inter-arrival gaps -- and materialises the queries themselves
from the per-table lookup traces in :mod:`repro.traces`.
"""

import hashlib
from dataclasses import dataclass, field

import numpy as np

from repro.traces.synthetic import batched_requests_from_trace


@dataclass
class ServingQuery:
    """One user-facing inference query.

    Attributes
    ----------
    query_id:
        Monotonic identifier (also the tie-breaker for deterministic order).
    arrival_us:
        Arrival time at the serving frontend, in microseconds.
    requests:
        The query's SLS requests (one per embedding table it touches).
    deadline_us:
        Optional *absolute* completion deadline (same clock as
        ``arrival_us``).  ``None`` means the query carries no SLO;
        deadlines are typically assigned by an
        :class:`~repro.serving.slo.SLOPolicy` rather than set by hand.
    """

    query_id: int
    arrival_us: float
    requests: list = field(default_factory=list)
    deadline_us: float = None

    @property
    def total_lookups(self):
        return sum(request.total_lookups for request in self.requests)

    @property
    def num_tables(self):
        return len(self.requests)

    @property
    def slack_us(self):
        """Time budget from arrival to deadline (None without a deadline)."""
        if self.deadline_us is None:
            return None
        return self.deadline_us - self.arrival_us

    def fingerprint(self):
        """Content digest of the query's lookups (arrival-independent).

        Two queries with the same tables and indices share a fingerprint
        even when they are distinct objects with different arrival times --
        the key the serving cluster memoises batch service times under.
        """
        if not hasattr(self, "_fingerprint"):
            digest = hashlib.sha1()
            for request in self.requests:
                digest.update(str(request.table_id).encode())
                digest.update(np.ascontiguousarray(request.indices).tobytes())
                digest.update(np.ascontiguousarray(request.lengths).tobytes())
            self._fingerprint = digest.hexdigest()
        return self._fingerprint


class PoissonArrivalProcess:
    """Memoryless arrivals at a target rate (the classic traffic model)."""

    def __init__(self, rate_qps, seed=None):
        if rate_qps <= 0:
            raise ValueError("rate_qps must be positive")
        self.rate_qps = float(rate_qps)
        self.seed = seed

    def arrival_times_us(self, num_queries):
        """Cumulative arrival times (us) of ``num_queries`` queries."""
        if num_queries < 0:
            raise ValueError("num_queries must be non-negative")
        rng = np.random.default_rng(self.seed)
        mean_gap_us = 1e6 / self.rate_qps
        gaps = rng.exponential(mean_gap_us, size=num_queries)
        return np.cumsum(gaps)


class TraceReplayArrivalProcess:
    """Replay recorded inter-arrival gaps (cycled when the trace is short).

    ``rate_scale`` compresses (>1) or stretches (<1) the recorded gaps,
    which is how a QPS sweep replays the same production burstiness at
    different offered loads.
    """

    def __init__(self, inter_arrival_us, rate_scale=1.0):
        gaps = np.asarray(inter_arrival_us, dtype=np.float64)
        if gaps.size == 0:
            raise ValueError("need at least one inter-arrival gap")
        if (gaps < 0).any():
            raise ValueError("inter-arrival gaps must be non-negative")
        if rate_scale <= 0:
            raise ValueError("rate_scale must be positive")
        self.gaps_us = gaps / rate_scale

    @classmethod
    def from_mmpp(cls, rate_qps, num_queries, seed=None, burstiness=4.0,
                  high_fraction=0.25):
        """Replay one recorded bursty (MMPP) gap sample at ``rate_qps``.

        Records ``num_queries`` inter-arrival gaps from a reference
        :class:`MMPPArrivalProcess` once and rate-scales them to the
        offered load -- so a QPS sweep replays the *same* burst shape at
        every point, unlike a re-drawn MMPP.  The shared recipe behind
        ``--arrival trace`` and the overload benchmark's trace-replay
        arm.  The first gap equals the first recorded arrival time, so
        the replay starts from the recorded stream's initial lull.
        """
        reference_qps = 1_000.0
        recorded = MMPPArrivalProcess.from_mean(
            reference_qps, burstiness=burstiness,
            high_fraction=high_fraction,
            seed=seed).arrival_times_us(num_queries)
        gaps = np.diff(recorded, prepend=0.0)
        return cls(gaps, rate_scale=rate_qps / reference_qps)

    @property
    def mean_rate_qps(self):
        mean_gap = float(self.gaps_us.mean())
        return 1e6 / mean_gap if mean_gap > 0 else float("inf")

    def arrival_times_us(self, num_queries):
        """Cumulative arrival times (us) of ``num_queries`` queries."""
        if num_queries < 0:
            raise ValueError("num_queries must be non-negative")
        repeats = -(-num_queries // self.gaps_us.size) if num_queries else 0
        gaps = np.tile(self.gaps_us, max(repeats, 1))[:num_queries]
        return np.cumsum(gaps)


class MMPPArrivalProcess:
    """Two-state Markov-modulated Poisson process (bursty arrivals).

    The process alternates between a *low* and a *high* state; sojourn
    times in each state are exponential (``mean_low_us`` /
    ``mean_high_us``) and arrivals within a state are Poisson at that
    state's rate.  The result is overdispersed traffic -- bursts at
    ``rate_high_qps`` separated by lulls at ``rate_low_qps`` -- which is
    the regime where FIFO queues build deep backlogs that unconditional
    Poisson sweeps never exercise.  Deterministic for a fixed seed.
    """

    def __init__(self, rate_high_qps, rate_low_qps, mean_high_us,
                 mean_low_us, seed=None):
        if rate_high_qps <= 0 or rate_low_qps <= 0:
            raise ValueError("state rates must be positive")
        if rate_high_qps < rate_low_qps:
            raise ValueError("rate_high_qps must be >= rate_low_qps")
        if mean_high_us <= 0 or mean_low_us <= 0:
            raise ValueError("mean state sojourns must be positive")
        self.rate_high_qps = float(rate_high_qps)
        self.rate_low_qps = float(rate_low_qps)
        self.mean_high_us = float(mean_high_us)
        self.mean_low_us = float(mean_low_us)
        self.seed = seed

    @classmethod
    def from_mean(cls, mean_rate_qps, burstiness=4.0, high_fraction=0.25,
                  cycle_arrivals=64, seed=None):
        """Construct from a target mean rate and a burstiness shape.

        ``burstiness`` is the high/low rate ratio, ``high_fraction`` the
        fraction of time spent in the high state, and ``cycle_arrivals``
        the expected arrivals per low+high cycle (sets the sojourn time
        scale relative to the mean inter-arrival gap).  The time-averaged
        rate equals ``mean_rate_qps`` exactly, so sweeps can scale the
        offered load without changing the burst shape.
        """
        if mean_rate_qps <= 0:
            raise ValueError("mean_rate_qps must be positive")
        if burstiness < 1.0:
            raise ValueError("burstiness must be >= 1")
        if not 0.0 < high_fraction < 1.0:
            raise ValueError("high_fraction must be in (0, 1)")
        if cycle_arrivals <= 0:
            raise ValueError("cycle_arrivals must be positive")
        rate_low = mean_rate_qps / (high_fraction * burstiness
                                    + (1.0 - high_fraction))
        rate_high = burstiness * rate_low
        cycle_us = cycle_arrivals * 1e6 / mean_rate_qps
        return cls(rate_high_qps=rate_high, rate_low_qps=rate_low,
                   mean_high_us=high_fraction * cycle_us,
                   mean_low_us=(1.0 - high_fraction) * cycle_us,
                   seed=seed)

    @property
    def mean_rate_qps(self):
        """Time-averaged arrival rate of the modulated process."""
        high_weight = self.mean_high_us
        low_weight = self.mean_low_us
        return (self.rate_high_qps * high_weight
                + self.rate_low_qps * low_weight) \
            / (high_weight + low_weight)

    def arrival_times_us(self, num_queries):
        """Cumulative arrival times (us) of ``num_queries`` queries."""
        if num_queries < 0:
            raise ValueError("num_queries must be non-negative")
        rng = np.random.default_rng(self.seed)
        times = []
        now_us = 0.0
        high = False                    # start in the (longer) low state
        while len(times) < num_queries:
            rate_qps = self.rate_high_qps if high else self.rate_low_qps
            mean_sojourn = self.mean_high_us if high else self.mean_low_us
            sojourn_us = rng.exponential(mean_sojourn)
            # Poisson arrivals inside the sojourn: draw exponential gaps
            # until the state expires (the leftover gap is memoryless, so
            # restarting in the next state is exact).
            mean_gap_us = 1e6 / rate_qps
            t = now_us
            while len(times) < num_queries:
                t += rng.exponential(mean_gap_us)
                if t > now_us + sojourn_us:
                    break
                times.append(t)
            now_us += sojourn_us
            high = not high
        return np.asarray(times[:num_queries], dtype=np.float64)


def _per_table(value, num_tables, name):
    """Broadcast a scalar (or validate a sequence of) per-table values."""
    if np.ndim(value) == 0:
        return [int(value)] * num_tables
    values = [int(v) for v in value]
    if len(values) != num_tables:
        raise ValueError("need one %s per trace (%d traces, %d values)"
                         % (name, num_tables, len(values)))
    return values


def queries_from_traces(traces, num_queries, arrivals, batch_size=4,
                        pooling_factor=20, start_id=0):
    """Materialise serving queries from per-table embedding traces.

    Each query carries one SLS request per trace (``batch_size`` poolings of
    ``pooling_factor`` lookups), sliced from that table's trace in order and
    cycled when the trace runs out -- so the query stream preserves each
    table's locality structure.  ``batch_size`` and ``pooling_factor``
    accept a per-trace sequence as well as a scalar: differently sized
    requests per table produce the skewed table loads that
    replication-aware sharding targets.  ``arrivals`` is an arrival
    process or a precomputed array of arrival times in microseconds.
    """
    if num_queries <= 0:
        raise ValueError("num_queries must be positive")
    if hasattr(arrivals, "arrival_times_us"):
        arrival_times = arrivals.arrival_times_us(num_queries)
    else:
        arrival_times = np.asarray(arrivals, dtype=np.float64)
        if arrival_times.size != num_queries:
            raise ValueError("need one arrival time per query")
    batch_sizes = _per_table(batch_size, len(traces), "batch size")
    pooling_factors = _per_table(pooling_factor, len(traces),
                                 "pooling factor")
    per_table_requests = []
    for trace, table_batch, table_pooling in zip(traces, batch_sizes,
                                                 pooling_factors):
        requests = batched_requests_from_trace(trace, table_batch,
                                               table_pooling)
        if not requests:
            raise ValueError("trace %r too short for one %dx%d request"
                             % (trace.name, table_batch, table_pooling))
        per_table_requests.append(requests)
    queries = []
    for i in range(num_queries):
        requests = [candidates[i % len(candidates)]
                    for candidates in per_table_requests]
        queries.append(ServingQuery(query_id=start_id + i,
                                    arrival_us=float(arrival_times[i]),
                                    requests=requests))
    return queries
