"""Request arrival processes and serving-query generation.

A serving node receives a stream of inference *queries*; each query gathers
embeddings from several tables (one SLS request per table).  This module
models when queries arrive -- a Poisson process at a target QPS, or a replay
of recorded inter-arrival gaps -- and materialises the queries themselves
from the per-table lookup traces in :mod:`repro.traces`.
"""

import hashlib
from dataclasses import dataclass, field

import numpy as np

from repro.traces.synthetic import batched_requests_from_trace


@dataclass
class ServingQuery:
    """One user-facing inference query.

    Attributes
    ----------
    query_id:
        Monotonic identifier (also the tie-breaker for deterministic order).
    arrival_us:
        Arrival time at the serving frontend, in microseconds.
    requests:
        The query's SLS requests (one per embedding table it touches).
    deadline_us:
        Optional *absolute* completion deadline (same clock as
        ``arrival_us``).  ``None`` means the query carries no SLO;
        deadlines are typically assigned by an
        :class:`~repro.serving.slo.SLOPolicy` rather than set by hand.
    """

    query_id: int
    arrival_us: float
    requests: list = field(default_factory=list)
    deadline_us: float = None

    @property
    def total_lookups(self):
        return sum(request.total_lookups for request in self.requests)

    @property
    def num_tables(self):
        return len(self.requests)

    @property
    def slack_us(self):
        """Time budget from arrival to deadline (None without a deadline)."""
        if self.deadline_us is None:
            return None
        return self.deadline_us - self.arrival_us

    def fingerprint(self):
        """Content digest of the query's lookups (arrival-independent).

        Two queries with the same tables and indices share a fingerprint
        even when they are distinct objects with different arrival times --
        the key the serving cluster memoises batch service times under.
        """
        if not hasattr(self, "_fingerprint"):
            digest = hashlib.sha1()
            for request in self.requests:
                digest.update(str(request.table_id).encode())
                digest.update(np.ascontiguousarray(request.indices).tobytes())
                digest.update(np.ascontiguousarray(request.lengths).tobytes())
            self._fingerprint = digest.hexdigest()
        return self._fingerprint


class _ExponentialDraws:
    """Order-preserving standard-exponential draw buffer.

    Blocked ``standard_exponential`` refills consume the generator's
    underlying bit stream exactly like repeated scalar draws (and
    ``exponential(scale)`` equals ``scale * standard_exponential()``
    draw for draw), so consumers that mix one-at-a-time draws with
    vectorised runs reproduce a scalar drawing loop bit for bit.
    """

    def __init__(self, rng, block=8192):
        self._rng = rng
        self._block = int(block)
        self._draws = np.empty(0, dtype=np.float64)
        self._position = 0

    def _refill(self):
        self._draws = self._rng.standard_exponential(self._block)
        self._position = 0

    def next_scaled(self, scale):
        """One draw, scaled (an ``exponential(scale)`` variate)."""
        if self._position >= self._draws.size:
            self._refill()
        value = self._draws[self._position] * scale
        self._position += 1
        return float(value)

    def buffered_scaled(self, scale):
        """The un-consumed buffered draws, scaled, without consuming.

        Refills first when the buffer is empty, so the returned run is
        never zero-length; callers account for what they actually used
        via :meth:`consume`.
        """
        if self._position >= self._draws.size:
            self._refill()
        return self._draws[self._position:] * scale

    def consume(self, count):
        """Mark ``count`` draws from the last buffered run as used."""
        self._position += count


class _CumulativeGapStream:
    """Resumable arrival stream over per-chunk gap vectors.

    Subclasses supply the next ``count`` inter-arrival gaps; this base
    turns them into absolute times with a carried last-arrival clock.
    The carry is summed *inside* the ``cumsum`` (as a leading element),
    so the sequential association matches one global ``cumsum`` over the
    whole gap stream -- ``take(a)`` then ``take(b)`` is bit-identical to
    one ``take(a + b)``.
    """

    def __init__(self):
        self._now_us = 0.0

    def _next_gaps(self, count):
        raise NotImplementedError

    def take(self, count):
        """The next ``count`` arrival times (us), continuing the stream."""
        if count < 0:
            raise ValueError("count must be non-negative")
        gaps = self._next_gaps(count)
        times = np.cumsum(np.concatenate(([self._now_us], gaps)))[1:]
        if count:
            self._now_us = float(times[-1])
        return times


class _PoissonArrivalStream(_CumulativeGapStream):
    """Resumable draw-order-preserving Poisson arrival stream."""

    def __init__(self, process):
        super().__init__()
        self._rng = np.random.default_rng(process.seed)
        self._mean_gap_us = 1e6 / process.rate_qps

    def _next_gaps(self, count):
        return self._rng.exponential(self._mean_gap_us, size=count)


class _TraceReplayArrivalStream(_CumulativeGapStream):
    """Resumable cycled-gap replay stream."""

    def __init__(self, process):
        super().__init__()
        self._gaps_us = process.gaps_us
        self._offset = 0

    def _next_gaps(self, count):
        size = self._gaps_us.size
        positions = (self._offset + np.arange(count, dtype=np.int64)) \
            % size
        self._offset = int((self._offset + count) % size)
        return self._gaps_us[positions]


class _MMPPArrivalStream:
    """Resumable two-state MMPP arrival stream, vectorised per state.

    Replaces the per-draw scalar loop of
    :meth:`MMPPArrivalProcess.arrival_times_us` with runs over a shared
    draw buffer: one draw per state sojourn, one per candidate gap --
    including the discarded overflow gap that ends a state -- consumed
    in exactly the order the scalar loop drew them, so the generated
    times are bit-identical.  When a ``take`` quota fills mid-state the
    overflow draw is *not* consumed (the scalar loop stops before
    drawing it); the next ``take`` resumes inside the same sojourn.
    """

    def __init__(self, process, block=8192):
        self._process = process
        self._draws = _ExponentialDraws(
            np.random.default_rng(process.seed), block)
        self._now_us = 0.0
        self._high = False              # start in the (longer) low state
        self._limit_us = None           # end of the in-progress sojourn
        self._t_us = 0.0                # last candidate time in the state

    def take(self, count):
        """The next ``count`` arrival times (us), continuing the stream."""
        if count < 0:
            raise ValueError("count must be non-negative")
        process = self._process
        out = np.empty(count, dtype=np.float64)
        filled = 0
        while filled < count:
            if self._limit_us is None:
                mean_sojourn = process.mean_high_us if self._high \
                    else process.mean_low_us
                sojourn_us = self._draws.next_scaled(mean_sojourn)
                self._limit_us = self._now_us + sojourn_us
                self._t_us = self._now_us
            rate_qps = process.rate_high_qps if self._high \
                else process.rate_low_qps
            gaps = self._draws.buffered_scaled(1e6 / rate_qps)
            times = np.cumsum(np.concatenate(([self._t_us], gaps)))[1:]
            # Arrivals stay in the state while t <= limit (a query landing
            # exactly at the boundary still belongs to the sojourn).
            over_at = int(np.searchsorted(times, self._limit_us,
                                          side="right"))
            emit = min(over_at, count - filled)
            if emit:
                out[filled:filled + emit] = times[:emit]
                filled += emit
                self._t_us = float(times[emit - 1])
                self._draws.consume(emit)
            if over_at < times.shape[0] and filled < count:
                # The state expired inside the buffered run and the quota
                # still has room: the overflow draw is consumed (and
                # discarded -- the leftover gap is memoryless) and the
                # process flips states.
                self._draws.consume(1)
                self._now_us = self._limit_us
                self._limit_us = None
                self._high = not self._high
        return out


class PoissonArrivalProcess:
    """Memoryless arrivals at a target rate (the classic traffic model)."""

    def __init__(self, rate_qps, seed=None):
        if rate_qps <= 0:
            raise ValueError("rate_qps must be positive")
        self.rate_qps = float(rate_qps)
        self.seed = seed

    def arrival_times_us(self, num_queries):
        """Cumulative arrival times (us) of ``num_queries`` queries."""
        if num_queries < 0:
            raise ValueError("num_queries must be non-negative")
        rng = np.random.default_rng(self.seed)
        mean_gap_us = 1e6 / self.rate_qps
        gaps = rng.exponential(mean_gap_us, size=num_queries)
        return np.cumsum(gaps)

    def stream(self):
        """Resumable arrival stream: ``take(a)`` then ``take(b)`` equals
        ``arrival_times_us(a + b)`` bit for bit."""
        return _PoissonArrivalStream(self)


class TraceReplayArrivalProcess:
    """Replay recorded inter-arrival gaps (cycled when the trace is short).

    ``rate_scale`` compresses (>1) or stretches (<1) the recorded gaps,
    which is how a QPS sweep replays the same production burstiness at
    different offered loads.
    """

    def __init__(self, inter_arrival_us, rate_scale=1.0):
        gaps = np.asarray(inter_arrival_us, dtype=np.float64)
        if gaps.size == 0:
            raise ValueError("need at least one inter-arrival gap")
        if (gaps < 0).any():
            raise ValueError("inter-arrival gaps must be non-negative")
        if rate_scale <= 0:
            raise ValueError("rate_scale must be positive")
        self.gaps_us = gaps / rate_scale

    @classmethod
    def from_mmpp(cls, rate_qps, num_queries, seed=None, burstiness=4.0,
                  high_fraction=0.25):
        """Replay one recorded bursty (MMPP) gap sample at ``rate_qps``.

        Records ``num_queries`` inter-arrival gaps from a reference
        :class:`MMPPArrivalProcess` once and rate-scales them to the
        offered load -- so a QPS sweep replays the *same* burst shape at
        every point, unlike a re-drawn MMPP.  The shared recipe behind
        ``--arrival trace`` and the overload benchmark's trace-replay
        arm.  The first gap equals the first recorded arrival time, so
        the replay starts from the recorded stream's initial lull.
        """
        reference_qps = 1_000.0
        recorded = MMPPArrivalProcess.from_mean(
            reference_qps, burstiness=burstiness,
            high_fraction=high_fraction,
            seed=seed).arrival_times_us(num_queries)
        gaps = np.diff(recorded, prepend=0.0)
        return cls(gaps, rate_scale=rate_qps / reference_qps)

    @property
    def mean_rate_qps(self):
        mean_gap = float(self.gaps_us.mean())
        return 1e6 / mean_gap if mean_gap > 0 else float("inf")

    def arrival_times_us(self, num_queries):
        """Cumulative arrival times (us) of ``num_queries`` queries."""
        if num_queries < 0:
            raise ValueError("num_queries must be non-negative")
        return self.stream().take(num_queries)

    def stream(self):
        """Resumable arrival stream continuing the gap cycle across takes."""
        return _TraceReplayArrivalStream(self)


class MMPPArrivalProcess:
    """Two-state Markov-modulated Poisson process (bursty arrivals).

    The process alternates between a *low* and a *high* state; sojourn
    times in each state are exponential (``mean_low_us`` /
    ``mean_high_us``) and arrivals within a state are Poisson at that
    state's rate.  The result is overdispersed traffic -- bursts at
    ``rate_high_qps`` separated by lulls at ``rate_low_qps`` -- which is
    the regime where FIFO queues build deep backlogs that unconditional
    Poisson sweeps never exercise.  Deterministic for a fixed seed.
    """

    def __init__(self, rate_high_qps, rate_low_qps, mean_high_us,
                 mean_low_us, seed=None):
        if rate_high_qps <= 0 or rate_low_qps <= 0:
            raise ValueError("state rates must be positive")
        if rate_high_qps < rate_low_qps:
            raise ValueError("rate_high_qps must be >= rate_low_qps")
        if mean_high_us <= 0 or mean_low_us <= 0:
            raise ValueError("mean state sojourns must be positive")
        self.rate_high_qps = float(rate_high_qps)
        self.rate_low_qps = float(rate_low_qps)
        self.mean_high_us = float(mean_high_us)
        self.mean_low_us = float(mean_low_us)
        self.seed = seed

    @classmethod
    def from_mean(cls, mean_rate_qps, burstiness=4.0, high_fraction=0.25,
                  cycle_arrivals=64, seed=None):
        """Construct from a target mean rate and a burstiness shape.

        ``burstiness`` is the high/low rate ratio, ``high_fraction`` the
        fraction of time spent in the high state, and ``cycle_arrivals``
        the expected arrivals per low+high cycle (sets the sojourn time
        scale relative to the mean inter-arrival gap).  The time-averaged
        rate equals ``mean_rate_qps`` exactly, so sweeps can scale the
        offered load without changing the burst shape.
        """
        if mean_rate_qps <= 0:
            raise ValueError("mean_rate_qps must be positive")
        if burstiness < 1.0:
            raise ValueError("burstiness must be >= 1")
        if not 0.0 < high_fraction < 1.0:
            raise ValueError("high_fraction must be in (0, 1)")
        if cycle_arrivals <= 0:
            raise ValueError("cycle_arrivals must be positive")
        rate_low = mean_rate_qps / (high_fraction * burstiness
                                    + (1.0 - high_fraction))
        rate_high = burstiness * rate_low
        cycle_us = cycle_arrivals * 1e6 / mean_rate_qps
        return cls(rate_high_qps=rate_high, rate_low_qps=rate_low,
                   mean_high_us=high_fraction * cycle_us,
                   mean_low_us=(1.0 - high_fraction) * cycle_us,
                   seed=seed)

    @property
    def mean_rate_qps(self):
        """Time-averaged arrival rate of the modulated process."""
        high_weight = self.mean_high_us
        low_weight = self.mean_low_us
        return (self.rate_high_qps * high_weight
                + self.rate_low_qps * low_weight) \
            / (high_weight + low_weight)

    def arrival_times_us(self, num_queries):
        """Cumulative arrival times (us) of ``num_queries`` queries.

        Vectorised per state sojourn over a shared draw buffer
        (:class:`_MMPPArrivalStream`); bit-identical to the original
        per-draw scalar loop, which ``tests/test_arrival_streams.py``
        keeps as the pinned specification.
        """
        if num_queries < 0:
            raise ValueError("num_queries must be non-negative")
        return self.stream().take(num_queries)

    def stream(self):
        """Resumable arrival stream: ``take(a)`` then ``take(b)`` equals
        ``arrival_times_us(a + b)`` bit for bit."""
        return _MMPPArrivalStream(self)


def _per_table(value, num_tables, name):
    """Broadcast a scalar (or validate a sequence of) per-table values."""
    if np.ndim(value) == 0:
        return [int(value)] * num_tables
    values = [int(v) for v in value]
    if len(values) != num_tables:
        raise ValueError("need one %s per trace (%d traces, %d values)"
                         % (name, num_tables, len(values)))
    return values


def queries_from_traces(traces, num_queries, arrivals, batch_size=4,
                        pooling_factor=20, start_id=0):
    """Materialise serving queries from per-table embedding traces.

    Each query carries one SLS request per trace (``batch_size`` poolings of
    ``pooling_factor`` lookups), sliced from that table's trace in order and
    cycled when the trace runs out -- so the query stream preserves each
    table's locality structure.  ``batch_size`` and ``pooling_factor``
    accept a per-trace sequence as well as a scalar: differently sized
    requests per table produce the skewed table loads that
    replication-aware sharding targets.  ``arrivals`` is an arrival
    process or a precomputed array of arrival times in microseconds.
    """
    if num_queries <= 0:
        raise ValueError("num_queries must be positive")
    if hasattr(arrivals, "arrival_times_us"):
        arrival_times = arrivals.arrival_times_us(num_queries)
    else:
        arrival_times = np.asarray(arrivals, dtype=np.float64)
        if arrival_times.size != num_queries:
            raise ValueError("need one arrival time per query")
    batch_sizes = _per_table(batch_size, len(traces), "batch size")
    pooling_factors = _per_table(pooling_factor, len(traces),
                                 "pooling factor")
    per_table_requests = []
    for trace, table_batch, table_pooling in zip(traces, batch_sizes,
                                                 pooling_factors):
        requests = batched_requests_from_trace(trace, table_batch,
                                               table_pooling)
        if not requests:
            raise ValueError("trace %r too short for one %dx%d request"
                             % (trace.name, table_batch, table_pooling))
        per_table_requests.append(requests)
    queries = []
    for i in range(num_queries):
        requests = [candidates[i % len(candidates)]
                    for candidates in per_table_requests]
        queries.append(ServingQuery(query_id=start_id + i,
                                    arrival_us=float(arrival_times[i]),
                                    requests=requests))
    return queries
