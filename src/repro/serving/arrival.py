"""Request arrival processes and serving-query generation.

A serving node receives a stream of inference *queries*; each query gathers
embeddings from several tables (one SLS request per table).  This module
models when queries arrive -- a Poisson process at a target QPS, or a replay
of recorded inter-arrival gaps -- and materialises the queries themselves
from the per-table lookup traces in :mod:`repro.traces`.
"""

import hashlib
from dataclasses import dataclass, field

import numpy as np

from repro.traces.synthetic import batched_requests_from_trace


@dataclass
class ServingQuery:
    """One user-facing inference query.

    Attributes
    ----------
    query_id:
        Monotonic identifier (also the tie-breaker for deterministic order).
    arrival_us:
        Arrival time at the serving frontend, in microseconds.
    requests:
        The query's SLS requests (one per embedding table it touches).
    """

    query_id: int
    arrival_us: float
    requests: list = field(default_factory=list)

    @property
    def total_lookups(self):
        return sum(request.total_lookups for request in self.requests)

    @property
    def num_tables(self):
        return len(self.requests)

    def fingerprint(self):
        """Content digest of the query's lookups (arrival-independent).

        Two queries with the same tables and indices share a fingerprint
        even when they are distinct objects with different arrival times --
        the key the serving cluster memoises batch service times under.
        """
        if not hasattr(self, "_fingerprint"):
            digest = hashlib.sha1()
            for request in self.requests:
                digest.update(str(request.table_id).encode())
                digest.update(np.ascontiguousarray(request.indices).tobytes())
                digest.update(np.ascontiguousarray(request.lengths).tobytes())
            self._fingerprint = digest.hexdigest()
        return self._fingerprint


class PoissonArrivalProcess:
    """Memoryless arrivals at a target rate (the classic traffic model)."""

    def __init__(self, rate_qps, seed=None):
        if rate_qps <= 0:
            raise ValueError("rate_qps must be positive")
        self.rate_qps = float(rate_qps)
        self.seed = seed

    def arrival_times_us(self, num_queries):
        """Cumulative arrival times (us) of ``num_queries`` queries."""
        if num_queries < 0:
            raise ValueError("num_queries must be non-negative")
        rng = np.random.default_rng(self.seed)
        mean_gap_us = 1e6 / self.rate_qps
        gaps = rng.exponential(mean_gap_us, size=num_queries)
        return np.cumsum(gaps)


class TraceReplayArrivalProcess:
    """Replay recorded inter-arrival gaps (cycled when the trace is short).

    ``rate_scale`` compresses (>1) or stretches (<1) the recorded gaps,
    which is how a QPS sweep replays the same production burstiness at
    different offered loads.
    """

    def __init__(self, inter_arrival_us, rate_scale=1.0):
        gaps = np.asarray(inter_arrival_us, dtype=np.float64)
        if gaps.size == 0:
            raise ValueError("need at least one inter-arrival gap")
        if (gaps < 0).any():
            raise ValueError("inter-arrival gaps must be non-negative")
        if rate_scale <= 0:
            raise ValueError("rate_scale must be positive")
        self.gaps_us = gaps / rate_scale

    @property
    def mean_rate_qps(self):
        mean_gap = float(self.gaps_us.mean())
        return 1e6 / mean_gap if mean_gap > 0 else float("inf")

    def arrival_times_us(self, num_queries):
        """Cumulative arrival times (us) of ``num_queries`` queries."""
        if num_queries < 0:
            raise ValueError("num_queries must be non-negative")
        repeats = -(-num_queries // self.gaps_us.size) if num_queries else 0
        gaps = np.tile(self.gaps_us, max(repeats, 1))[:num_queries]
        return np.cumsum(gaps)


def _per_table(value, num_tables, name):
    """Broadcast a scalar (or validate a sequence of) per-table values."""
    if np.ndim(value) == 0:
        return [int(value)] * num_tables
    values = [int(v) for v in value]
    if len(values) != num_tables:
        raise ValueError("need one %s per trace (%d traces, %d values)"
                         % (name, num_tables, len(values)))
    return values


def queries_from_traces(traces, num_queries, arrivals, batch_size=4,
                        pooling_factor=20, start_id=0):
    """Materialise serving queries from per-table embedding traces.

    Each query carries one SLS request per trace (``batch_size`` poolings of
    ``pooling_factor`` lookups), sliced from that table's trace in order and
    cycled when the trace runs out -- so the query stream preserves each
    table's locality structure.  ``batch_size`` and ``pooling_factor``
    accept a per-trace sequence as well as a scalar: differently sized
    requests per table produce the skewed table loads that
    replication-aware sharding targets.  ``arrivals`` is an arrival
    process or a precomputed array of arrival times in microseconds.
    """
    if num_queries <= 0:
        raise ValueError("num_queries must be positive")
    if hasattr(arrivals, "arrival_times_us"):
        arrival_times = arrivals.arrival_times_us(num_queries)
    else:
        arrival_times = np.asarray(arrivals, dtype=np.float64)
        if arrival_times.size != num_queries:
            raise ValueError("need one arrival time per query")
    batch_sizes = _per_table(batch_size, len(traces), "batch size")
    pooling_factors = _per_table(pooling_factor, len(traces),
                                 "pooling factor")
    per_table_requests = []
    for trace, table_batch, table_pooling in zip(traces, batch_sizes,
                                                 pooling_factors):
        requests = batched_requests_from_trace(trace, table_batch,
                                               table_pooling)
        if not requests:
            raise ValueError("trace %r too short for one %dx%d request"
                             % (trace.name, table_batch, table_pooling))
        per_table_requests.append(requests)
    queries = []
    for i in range(num_queries):
        requests = [candidates[i % len(candidates)]
                    for candidates in per_table_requests]
        queries.append(ServingQuery(query_id=start_id + i,
                                    arrival_us=float(arrival_times[i]),
                                    requests=requests))
    return queries
