"""Random index distributions used to synthesise embedding lookup traces.

The paper evaluates RecNMP both on fully random traces (worst-case locality)
and on production traces that exhibit *modest temporal reuse* (Fig. 7).  The
production traces themselves are proprietary, so this module provides the
building blocks for synthetic equivalents:

* :class:`UniformGenerator` -- uniformly random indices (the "random" trace).
* :class:`ZipfGenerator` -- power-law popularity, the classic skewed-access
  model for recommendation item popularity.
* :class:`HotSetGenerator` -- an explicit hot-set mixture (a small fraction of
  rows absorbs a configurable fraction of accesses) which gives direct control
  over the temporal hit-rate a cache of a given size will observe.
"""

import numpy as np


class UniformGenerator:
    """Generate uniformly random row indices in ``[0, num_rows)``."""

    def __init__(self, num_rows, seed=None):
        if num_rows <= 0:
            raise ValueError("num_rows must be positive, got %r" % (num_rows,))
        self.num_rows = int(num_rows)
        self._rng = np.random.default_rng(seed)

    def sample(self, count):
        """Return ``count`` random indices as an int64 numpy array."""
        if count < 0:
            raise ValueError("count must be non-negative")
        return self._rng.integers(0, self.num_rows, size=count, dtype=np.int64)


class ZipfGenerator:
    """Generate Zipf-distributed row indices.

    Row ``k`` (0-based rank) is drawn with probability proportional to
    ``1 / (k + 1) ** alpha``.  A random permutation optionally maps popularity
    rank to actual row id so that hot rows are spread over the table rather
    than clustered at the front (matching how hashing places hot entities in
    real embedding tables).
    """

    def __init__(self, num_rows, alpha=1.05, seed=None, permute=True):
        if num_rows <= 0:
            raise ValueError("num_rows must be positive, got %r" % (num_rows,))
        if alpha <= 0:
            raise ValueError("alpha must be positive, got %r" % (alpha,))
        self.num_rows = int(num_rows)
        self.alpha = float(alpha)
        self._rng = np.random.default_rng(seed)
        ranks = np.arange(1, self.num_rows + 1, dtype=np.float64)
        weights = ranks ** (-self.alpha)
        self._cdf = np.cumsum(weights)
        self._cdf /= self._cdf[-1]
        if permute:
            self._permutation = self._rng.permutation(self.num_rows)
        else:
            self._permutation = None

    def sample(self, count):
        """Return ``count`` Zipf-distributed indices as an int64 array."""
        if count < 0:
            raise ValueError("count must be non-negative")
        u = self._rng.random(count)
        ranks = np.searchsorted(self._cdf, u, side="left")
        ranks = np.clip(ranks, 0, self.num_rows - 1)
        if self._permutation is not None:
            return self._permutation[ranks].astype(np.int64)
        return ranks.astype(np.int64)


class HotSetGenerator:
    """Hot-set mixture: a ``hot_fraction`` of rows receives ``hot_probability``
    of the accesses, the rest are uniform over the cold rows.

    This gives direct, analytic control of the temporal locality a cache will
    observe: with a hot set that fits in the cache, the steady-state hit rate
    approaches ``hot_probability``.
    """

    def __init__(self, num_rows, hot_fraction=0.001, hot_probability=0.5,
                 seed=None):
        if num_rows <= 0:
            raise ValueError("num_rows must be positive, got %r" % (num_rows,))
        if not 0.0 < hot_fraction <= 1.0:
            raise ValueError("hot_fraction must be in (0, 1]")
        if not 0.0 <= hot_probability <= 1.0:
            raise ValueError("hot_probability must be in [0, 1]")
        self.num_rows = int(num_rows)
        self.hot_fraction = float(hot_fraction)
        self.hot_probability = float(hot_probability)
        self._rng = np.random.default_rng(seed)
        hot_count = max(1, int(round(self.num_rows * self.hot_fraction)))
        self._hot_rows = self._rng.choice(self.num_rows, size=hot_count,
                                          replace=False).astype(np.int64)
        self.hot_count = hot_count

    def sample(self, count):
        """Return ``count`` indices drawn from the hot/cold mixture."""
        if count < 0:
            raise ValueError("count must be non-negative")
        is_hot = self._rng.random(count) < self.hot_probability
        hot_picks = self._rng.integers(0, self.hot_count, size=count)
        cold_picks = self._rng.integers(0, self.num_rows, size=count,
                                        dtype=np.int64)
        result = np.where(is_hot, self._hot_rows[hot_picks], cold_picks)
        return result.astype(np.int64)


def make_index_generator(kind, num_rows, seed=None, **kwargs):
    """Factory for index generators.

    Parameters
    ----------
    kind:
        One of ``"uniform"``, ``"zipf"``, ``"hotset"``.
    num_rows:
        Number of rows in the embedding table.
    seed:
        Optional RNG seed.
    kwargs:
        Extra generator-specific parameters (``alpha``, ``hot_fraction``,
        ``hot_probability``).
    """
    kind = kind.lower()
    if kind == "uniform":
        return UniformGenerator(num_rows, seed=seed)
    if kind == "zipf":
        return ZipfGenerator(num_rows, seed=seed, **kwargs)
    if kind == "hotset":
        return HotSetGenerator(num_rows, seed=seed, **kwargs)
    raise ValueError("unknown index generator kind: %r" % (kind,))
