"""A small thread-safe LRU mapping with hit/miss accounting.

Factored out of the memoisation pattern in
:mod:`repro.perf.baseline_cache`: an :class:`collections.OrderedDict`
bounded to ``max_entries``, least-recently-used eviction, and hit/miss
counters for diagnostics.  Used to bound the serving cluster's per-batch
service-time cache and the interpolating service model's calibration
grids, both of which would otherwise grow without limit on long trace
replays.
"""

import threading
from collections import OrderedDict

_MISSING = object()


class LRUCache:
    """Bounded mapping with least-recently-used eviction.

    Parameters
    ----------
    max_entries:
        Capacity bound; inserting beyond it evicts the least recently
        used entry.  Must be positive.
    """

    def __init__(self, max_entries=1024):
        if max_entries <= 0:
            raise ValueError("max_entries must be positive")
        self.max_entries = int(max_entries)
        self._entries = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0

    def __len__(self):
        with self._lock:
            return len(self._entries)

    def __contains__(self, key):
        with self._lock:
            return key in self._entries

    def get(self, key, default=None):
        """Look up ``key``, refreshing its recency on a hit."""
        with self._lock:
            value = self._entries.get(key, _MISSING)
            if value is _MISSING:
                self._misses += 1
                return default
            self._hits += 1
            self._entries.move_to_end(key)
            return value

    def put(self, key, value):
        """Insert or refresh ``key``, evicting LRU entries over capacity."""
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)

    def clear(self):
        """Drop every entry and zero the hit/miss counters."""
        with self._lock:
            self._entries.clear()
            self._hits = 0
            self._misses = 0

    def stats(self):
        """``{"entries", "max_entries", "hits", "misses"}`` snapshot."""
        with self._lock:
            return {"entries": len(self._entries),
                    "max_entries": self.max_entries,
                    "hits": self._hits,
                    "misses": self._misses}
