"""A small thread-safe LRU mapping with hit/miss accounting.

Factored out of the memoisation pattern in
:mod:`repro.perf.baseline_cache`: an :class:`collections.OrderedDict`
bounded to ``max_entries``, least-recently-used eviction, and hit/miss
counters for diagnostics.  Used to bound the serving cluster's per-batch
service-time cache and the interpolating service model's calibration
grids, both of which would otherwise grow without limit on long trace
replays.
"""

import threading
from collections import OrderedDict

_MISSING = object()


class LRUCache:
    """Bounded mapping with least-recently-used eviction.

    Parameters
    ----------
    max_entries:
        Capacity bound; inserting beyond it evicts the least recently
        used entry.  Must be positive.
    """

    def __init__(self, max_entries=1024):
        if max_entries <= 0:
            raise ValueError("max_entries must be positive")
        self.max_entries = int(max_entries)
        self._entries = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0

    def __len__(self):
        with self._lock:
            return len(self._entries)

    def __contains__(self, key):
        with self._lock:
            return key in self._entries

    def get(self, key, default=None):
        """Look up ``key``, refreshing its recency on a hit."""
        with self._lock:
            value = self._entries.get(key, _MISSING)
            if value is _MISSING:
                self._misses += 1
                return default
            self._hits += 1
            self._entries.move_to_end(key)
            return value

    def put(self, key, value):
        """Insert or refresh ``key``, evicting LRU entries over capacity."""
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)

    def clear(self):
        """Drop every entry and zero the hit/miss counters."""
        with self._lock:
            self._entries.clear()
            self._hits = 0
            self._misses = 0

    def export_entries(self):
        """Snapshot the cache as ``(key, value)`` pairs, LRU first.

        The worker-to-parent merge primitive of the parallel serving
        paths (mirroring
        :func:`repro.perf.baseline_cache.export_baseline_entries`): a
        worker exports the entries its simulations produced so the
        parent can fold them back with :meth:`merge_entries`.
        """
        with self._lock:
            return list(self._entries.items())

    def merge_entries(self, pairs, hits=0, misses=0):
        """Merge ``(key, value)`` pairs from a worker-side cache.

        Existing entries win (the first simulation of a composition is
        authoritative; a re-merged identical value is a no-op either
        way), merged entries count as freshly used, and the capacity
        bound is enforced after the merge.  ``hits``/``misses`` fold the
        worker's counter deltas into this cache's statistics.
        """
        with self._lock:
            for key, value in pairs:
                if key not in self._entries:
                    self._entries[key] = value
                self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
            self._hits += int(hits)
            self._misses += int(misses)

    def stats(self):
        """``{"entries", "max_entries", "hits", "misses"}`` snapshot."""
        with self._lock:
            return {"entries": len(self._entries),
                    "max_entries": self.max_entries,
                    "hits": self._hits,
                    "misses": self._misses}

    def __getstate__(self):
        """Pickle support: the lock is recreated on unpickle.

        Lets objects holding an LRU (service-time models, cluster
        sweep specs) cross a process boundary; the entries travel with
        the cache, the lock does not.
        """
        with self._lock:
            return {"max_entries": self.max_entries,
                    "entries": list(self._entries.items()),
                    "hits": self._hits,
                    "misses": self._misses}

    def __setstate__(self, state):
        self.max_entries = state["max_entries"]
        self._entries = OrderedDict(state["entries"])
        self._lock = threading.Lock()
        self._hits = state["hits"]
        self._misses = state["misses"]
