"""Unit constants and conversion helpers used across the simulator."""

KILO = 1_000
MEGA = 1_000_000
GIGA = 1_000_000_000

KB = 1024
MB = 1024 * 1024
GB = 1024 * 1024 * 1024


def ns_to_cycles(time_ns, clock_mhz):
    """Convert a duration in nanoseconds to (integer, rounded-up) clock cycles.

    Parameters
    ----------
    time_ns:
        Duration in nanoseconds.
    clock_mhz:
        Clock frequency in MHz.
    """
    if time_ns < 0:
        raise ValueError("time_ns must be non-negative, got %r" % (time_ns,))
    if clock_mhz <= 0:
        raise ValueError("clock_mhz must be positive, got %r" % (clock_mhz,))
    cycles = time_ns * clock_mhz / 1_000.0
    return int(-(-cycles // 1))  # ceil for integer cycle counts


def cycles_to_ns(cycles, clock_mhz):
    """Convert clock cycles back to nanoseconds (float)."""
    if clock_mhz <= 0:
        raise ValueError("clock_mhz must be positive, got %r" % (clock_mhz,))
    return cycles * 1_000.0 / clock_mhz


def bytes_to_mb(n_bytes):
    """Convert a byte count to mebibytes (float)."""
    return n_bytes / float(MB)
