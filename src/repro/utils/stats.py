"""Small statistics helpers shared by the performance models and benches."""

import math


class RunningStats:
    """Online mean / variance / min / max accumulator (Welford's algorithm)."""

    def __init__(self):
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self._min = math.inf
        self._max = -math.inf

    def add(self, value):
        """Add one observation."""
        value = float(value)
        self.count += 1
        delta = value - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (value - self._mean)
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value

    def extend(self, values):
        """Add an iterable of observations."""
        for value in values:
            self.add(value)

    @property
    def mean(self):
        return self._mean if self.count else 0.0

    @property
    def variance(self):
        if self.count < 2:
            return 0.0
        return self._m2 / (self.count - 1)

    @property
    def stddev(self):
        return math.sqrt(self.variance)

    @property
    def minimum(self):
        return self._min if self.count else 0.0

    @property
    def maximum(self):
        return self._max if self.count else 0.0

    def as_dict(self):
        """Return the summary statistics as a plain dictionary."""
        return {
            "count": self.count,
            "mean": self.mean,
            "stddev": self.stddev,
            "min": self.minimum,
            "max": self.maximum,
        }


def percentile(values, q):
    """Return the ``q``-th percentile (0-100) of ``values`` by linear
    interpolation.  Implemented locally so the helper has no numpy dependency
    for callers handing in plain lists."""
    if not 0 <= q <= 100:
        raise ValueError("q must be in [0, 100], got %r" % (q,))
    data = sorted(float(v) for v in values)
    if not data:
        raise ValueError("cannot take percentile of empty sequence")
    if len(data) == 1:
        return data[0]
    rank = (q / 100.0) * (len(data) - 1)
    low = int(math.floor(rank))
    high = int(math.ceil(rank))
    if low == high:
        return data[low]
    frac = rank - low
    return data[low] * (1.0 - frac) + data[high] * frac


def geometric_mean(values):
    """Geometric mean of a sequence of positive values."""
    data = [float(v) for v in values]
    if not data:
        raise ValueError("cannot take geometric mean of empty sequence")
    if any(v <= 0 for v in data):
        raise ValueError("geometric mean requires positive values")
    return math.exp(sum(math.log(v) for v in data) / len(data))


def weighted_harmonic_speedup(fractions, speedups):
    """Amdahl-style composition of per-component speedups.

    ``fractions`` are the baseline time fractions of each component (must sum
    to ~1) and ``speedups`` the per-component speedups.  Returns the overall
    speedup ``1 / sum(f_i / s_i)``.
    """
    if len(fractions) != len(speedups):
        raise ValueError("fractions and speedups must have the same length")
    total_fraction = sum(fractions)
    if not math.isclose(total_fraction, 1.0, rel_tol=1e-6, abs_tol=1e-6):
        raise ValueError(
            "fractions must sum to 1.0, got %.6f" % (total_fraction,))
    denominator = 0.0
    for fraction, speedup in zip(fractions, speedups):
        if fraction < 0:
            raise ValueError("fractions must be non-negative")
        if speedup <= 0:
            raise ValueError("speedups must be positive")
        denominator += fraction / speedup
    if denominator == 0.0:
        raise ValueError("at least one fraction must be positive")
    return 1.0 / denominator
