"""Shared utilities: random distributions, statistics, and unit helpers."""

from repro.utils.lru import LRUCache
from repro.utils.distributions import (
    ZipfGenerator,
    HotSetGenerator,
    UniformGenerator,
    make_index_generator,
)
from repro.utils.stats import (
    RunningStats,
    percentile,
    geometric_mean,
    weighted_harmonic_speedup,
)
from repro.utils.units import (
    KB,
    MB,
    GB,
    GIGA,
    MEGA,
    KILO,
    ns_to_cycles,
    cycles_to_ns,
    bytes_to_mb,
)

__all__ = [
    "LRUCache",
    "ZipfGenerator",
    "HotSetGenerator",
    "UniformGenerator",
    "make_index_generator",
    "RunningStats",
    "percentile",
    "geometric_mean",
    "weighted_harmonic_speedup",
    "KB",
    "MB",
    "GB",
    "GIGA",
    "MEGA",
    "KILO",
    "ns_to_cycles",
    "cycles_to_ns",
    "bytes_to_mb",
]
