"""DRAM access energy model.

The constants reproduce the latency/energy parameters in Table I of the
paper: an activate costs 2.1 nJ, reads/writes cost 14 pJ/bit at the device
and 22 pJ/bit of off-chip I/O when the data crosses the DIMM interface to
the host.
"""

from dataclasses import dataclass


@dataclass(frozen=True)
class DramEnergyParameters:
    """Per-operation DRAM energy constants (Table I)."""

    activate_nj: float = 2.1
    read_write_pj_per_bit: float = 14.0
    offchip_io_pj_per_bit: float = 22.0
    # Static/background power per rank in milliwatts, used to attribute
    # leakage savings to shorter execution time.
    background_mw_per_rank: float = 150.0

    def __post_init__(self):
        for name in ("activate_nj", "read_write_pj_per_bit",
                     "offchip_io_pj_per_bit", "background_mw_per_rank"):
            if getattr(self, name) < 0:
                raise ValueError("%s must be non-negative" % name)


@dataclass
class DramEnergyBreakdown:
    """Energy breakdown of one simulated interval, in nanojoules."""

    activate_nj: float = 0.0
    read_write_nj: float = 0.0
    offchip_io_nj: float = 0.0
    background_nj: float = 0.0

    @property
    def total_nj(self):
        return (self.activate_nj + self.read_write_nj + self.offchip_io_nj
                + self.background_nj)

    def as_dict(self):
        return {
            "activate_nj": self.activate_nj,
            "read_write_nj": self.read_write_nj,
            "offchip_io_nj": self.offchip_io_nj,
            "background_nj": self.background_nj,
            "total_nj": self.total_nj,
        }


class DramEnergyModel:
    """Compute DRAM energy from access counts and elapsed time."""

    def __init__(self, parameters=None):
        self.parameters = parameters or DramEnergyParameters()

    def energy(self, activations, bytes_read, bytes_to_host, elapsed_ns,
               active_ranks=1):
        """Return a :class:`DramEnergyBreakdown`.

        Parameters
        ----------
        activations:
            Number of row activations (each costs ``activate_nj``).
        bytes_read:
            Bytes read out of the DRAM devices (device-level read energy).
        bytes_to_host:
            Bytes that additionally cross the off-chip DIMM interface to the
            host.  For the baseline this equals ``bytes_read``; for RecNMP
            only the pooled outputs cross the interface.
        elapsed_ns:
            Wall-clock duration of the interval (for background energy).
        active_ranks:
            Number of powered ranks contributing background energy.
        """
        if min(activations, bytes_read, bytes_to_host, elapsed_ns,
               active_ranks) < 0:
            raise ValueError("energy inputs must be non-negative")
        p = self.parameters
        breakdown = DramEnergyBreakdown()
        breakdown.activate_nj = activations * p.activate_nj
        breakdown.read_write_nj = (bytes_read * 8 *
                                   p.read_write_pj_per_bit) / 1_000.0
        breakdown.offchip_io_nj = (bytes_to_host * 8 *
                                   p.offchip_io_pj_per_bit) / 1_000.0
        breakdown.background_nj = (p.background_mw_per_rank * active_ranks *
                                   elapsed_ns) / 1_000_000.0
        return breakdown

    def energy_from_stats(self, stats, timing, bytes_read, bytes_to_host,
                          active_ranks=1):
        """Compute energy from :class:`ControllerStats` and timing."""
        elapsed_ns = stats.cycles_elapsed * timing.cycle_time_ns
        return self.energy(activations=stats.row_misses + stats.row_conflicts,
                           bytes_read=bytes_read,
                           bytes_to_host=bytes_to_host,
                           elapsed_ns=elapsed_ns,
                           active_ranks=active_ranks)
