"""Physical-address to DRAM-coordinate mapping.

Three mappings are provided:

* :class:`SkylakeAddressMapping` -- an Intel Skylake-style mapping (the
  baseline used in Table I): the cacheline-aligned address bits are spread
  over channel, column, bank group, bank, rank and row with XOR hashing of
  the bank bits to reduce conflicts.
* :class:`PageColoringMapping` -- the page-colouring data layout the paper
  uses to balance NMP load: every OS page (and therefore every embedding
  table that is allocated with a fixed colour) maps to a single rank.
* :class:`InterleavedVectorMapping` -- the TensorDIMM-style layout where
  consecutive 64 B blocks of one embedding vector are interleaved across
  DIMMs; used by the baseline comparison in Fig. 16.
"""

from dataclasses import dataclass


@dataclass(frozen=True)
class DramAddress:
    """A fully decoded DRAM coordinate."""

    channel: int
    dimm: int
    rank: int
    bank_group: int
    bank: int
    row: int
    column: int

    def rank_global(self, ranks_per_dimm):
        """Channel-wide rank index (dimm * ranks_per_dimm + rank)."""
        return self.dimm * ranks_per_dimm + self.rank


@dataclass(frozen=True)
class MemoryGeometry:
    """Geometry of the memory system being addressed.

    The default corresponds to the paper's baseline: 4 channels x 1 DIMM x
    2 ranks of 8 Gb x8 devices (64 GB total), 4 bank groups x 4 banks,
    8 KB row buffer (128 columns of 64 B).
    """

    num_channels: int = 4
    dimms_per_channel: int = 1
    ranks_per_dimm: int = 2
    bank_groups: int = 4
    banks_per_group: int = 4
    rows_per_bank: int = 65536
    columns_per_row: int = 128          # 64-byte columns -> 8 KB row
    column_size_bytes: int = 64
    page_size_bytes: int = 4096

    def __post_init__(self):
        for name in ("num_channels", "dimms_per_channel", "ranks_per_dimm",
                     "bank_groups", "banks_per_group", "rows_per_bank",
                     "columns_per_row", "column_size_bytes",
                     "page_size_bytes"):
            if getattr(self, name) <= 0:
                raise ValueError("%s must be positive" % name)

    @property
    def row_size_bytes(self):
        return self.columns_per_row * self.column_size_bytes

    @property
    def ranks_per_channel(self):
        return self.dimms_per_channel * self.ranks_per_dimm

    @property
    def total_ranks(self):
        return self.num_channels * self.ranks_per_channel

    @property
    def bytes_per_rank(self):
        return (self.bank_groups * self.banks_per_group * self.rows_per_bank
                * self.row_size_bytes)

    @property
    def total_bytes(self):
        return self.bytes_per_rank * self.total_ranks


class _BaseMapping:
    """Common helpers for the concrete address mappings."""

    def __init__(self, geometry=None):
        self.geometry = geometry or MemoryGeometry()

    def map(self, physical_address):
        """Return the :class:`DramAddress` for a physical byte address."""
        raise NotImplementedError

    def _split(self, value, modulus):
        """Return (value // modulus is next, value % modulus is field)."""
        return value // modulus, value % modulus


class SkylakeAddressMapping(_BaseMapping):
    """Skylake-style open-page-friendly mapping with bank XOR hashing.

    Bit allocation (on the 64-byte block address, low to high):
    channel -> column -> bank group -> bank -> rank -> dimm -> row.
    Keeping the column bits low in the block address preserves row-buffer
    locality for sequential streams, while XOR-ing row bits into the bank
    bits decorrelates conflicts for strided access.
    """

    def map(self, physical_address):
        if physical_address < 0:
            raise ValueError("physical_address must be non-negative")
        g = self.geometry
        block = physical_address // g.column_size_bytes
        rest, channel = self._split(block, g.num_channels)
        rest, column = self._split(rest, g.columns_per_row)
        rest, bank_group = self._split(rest, g.bank_groups)
        rest, bank = self._split(rest, g.banks_per_group)
        rest, rank = self._split(rest, g.ranks_per_dimm)
        rest, dimm = self._split(rest, g.dimms_per_channel)
        row = rest % g.rows_per_bank
        # XOR hash: fold the low row bits into the bank/bank-group selection
        # to spread row-conflicts (mirrors the behaviour of the Skylake
        # hashing studied by Pessl et al.).
        bank_group = (bank_group ^ (row & (g.bank_groups - 1))) % g.bank_groups
        bank = (bank ^ ((row >> 2) & (g.banks_per_group - 1))) \
            % g.banks_per_group
        return DramAddress(channel=channel, dimm=dimm, rank=rank,
                           bank_group=bank_group, bank=bank, row=row,
                           column=column)


class PageColoringMapping(_BaseMapping):
    """Page-colouring mapping: each page is pinned to one rank.

    ``color_of_page`` decides the (channel-local) rank a page maps to.  By
    default the colour is derived from the page frame number, but callers
    (the RecNMP load-balancing study) can pass an explicit ``page_colors``
    dictionary mapping page frame number -> rank index, which is how an
    embedding table gets allocated entirely on one rank.
    """

    def __init__(self, geometry=None, page_colors=None):
        super().__init__(geometry)
        self.page_colors = dict(page_colors) if page_colors else {}

    def color_of_page(self, page_frame_number):
        """Rank colour of a page frame (explicit assignment or round-robin)."""
        if page_frame_number in self.page_colors:
            return self.page_colors[page_frame_number]
        return page_frame_number % self.geometry.ranks_per_channel

    def assign_color(self, page_frame_number, rank_index):
        """Pin a page frame to a specific channel-local rank."""
        if not 0 <= rank_index < self.geometry.ranks_per_channel:
            raise ValueError("rank_index out of range: %d" % rank_index)
        self.page_colors[page_frame_number] = rank_index

    def map(self, physical_address):
        if physical_address < 0:
            raise ValueError("physical_address must be non-negative")
        g = self.geometry
        page_frame = physical_address // g.page_size_bytes
        rank_color = self.color_of_page(page_frame)
        dimm, rank = divmod(rank_color, g.ranks_per_dimm)
        block = physical_address // g.column_size_bytes
        rest, channel = self._split(block, g.num_channels)
        rest, column = self._split(rest, g.columns_per_row)
        rest, bank_group = self._split(rest, g.bank_groups)
        rest, bank = self._split(rest, g.banks_per_group)
        row = rest % g.rows_per_bank
        return DramAddress(channel=channel, dimm=dimm, rank=rank,
                           bank_group=bank_group, bank=bank, row=row,
                           column=column)


class InterleavedVectorMapping(_BaseMapping):
    """TensorDIMM-style mapping: consecutive 64 B blocks go to distinct DIMMs.

    This gives DIMM-level parallelism only for vectors spanning multiple
    64 B blocks; small (64 B) vectors land on a single DIMM, which is exactly
    the limitation RecNMP's rank-level design addresses.
    """

    def map(self, physical_address):
        if physical_address < 0:
            raise ValueError("physical_address must be non-negative")
        g = self.geometry
        block = physical_address // g.column_size_bytes
        rest, dimm = self._split(block, g.dimms_per_channel)
        rest, channel = self._split(rest, g.num_channels)
        rest, column = self._split(rest, g.columns_per_row)
        rest, bank_group = self._split(rest, g.bank_groups)
        rest, bank = self._split(rest, g.banks_per_group)
        rest, rank = self._split(rest, g.ranks_per_dimm)
        row = rest % g.rows_per_bank
        return DramAddress(channel=channel, dimm=dimm, rank=rank,
                           bank_group=bank_group, bank=bank, row=row,
                           column=column)


class SimplePageMapper:
    """Simplified OS page mapping: logical pages map to random free frames.

    The paper's methodology ("simplified OS page mapping module") assumes the
    OS picks a random free physical page for each logical page of an
    embedding table.  This class reproduces that behaviour deterministically
    given a seed so traces are repeatable.
    """

    def __init__(self, geometry=None, seed=0):
        import random

        self.geometry = geometry or MemoryGeometry()
        self._rng = random.Random(seed)
        self._page_table = {}
        self._allocated_frames = set()
        total_frames = self.geometry.total_bytes // \
            self.geometry.page_size_bytes
        self.total_frames = int(total_frames)

    def translate(self, virtual_address):
        """Translate a virtual byte address to a physical byte address."""
        if virtual_address < 0:
            raise ValueError("virtual_address must be non-negative")
        page_size = self.geometry.page_size_bytes
        vpn, offset = divmod(virtual_address, page_size)
        if vpn not in self._page_table:
            self._page_table[vpn] = self._allocate_frame()
        return self._page_table[vpn] * page_size + offset

    def _allocate_frame(self):
        """Pick an unused physical frame uniformly at random."""
        if len(self._allocated_frames) >= self.total_frames:
            raise MemoryError("physical memory exhausted in page mapper")
        while True:
            frame = self._rng.randrange(self.total_frames)
            if frame not in self._allocated_frames:
                self._allocated_frames.add(frame)
                return frame

    @property
    def mapped_pages(self):
        """Number of virtual pages mapped so far."""
        return len(self._page_table)
