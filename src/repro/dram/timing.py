"""DDR4 timing parameters.

All values are expressed in DRAM clock cycles of the memory clock (for
DDR4-2400 the memory clock is 1200 MHz; data is transferred on both edges so
the data rate is 2400 MT/s).  The default values reproduce Table I of the
RecNMP paper, which in turn follows a Micron 8 Gb DDR4 datasheet.
"""

from dataclasses import dataclass, field


@dataclass(frozen=True)
class DDR4Timing:
    """Timing constraints of a DDR4 device, in memory-clock cycles.

    Attributes
    ----------
    clock_mhz:
        Memory clock frequency in MHz (data rate is ``2 * clock_mhz`` MT/s).
    tRC:
        ACT-to-ACT delay to the same bank (row cycle time).
    tRCD:
        ACT-to-RD/WR delay (row to column delay).
    tCL:
        RD command to first data (CAS latency).
    tRP:
        PRE-to-ACT delay (row precharge time).
    tBL:
        Data burst length in memory-clock cycles (burst of 8 transfers = 4
        cycles at double data rate).
    tCCD_S / tCCD_L:
        Column-to-column delay, short (different bank group) and long (same
        bank group).
    tRRD_S / tRRD_L:
        ACT-to-ACT delay across banks, short / long (bank-group dependent).
    tFAW:
        Four-activate window: at most four ACTs to one rank per tFAW.
    tRAS:
        ACT-to-PRE minimum (derived as tRC - tRP when not given).
    tRTP:
        Read-to-precharge delay.
    tWR:
        Write recovery time.
    tCWL:
        Write CAS latency.
    tREFI / tRFC:
        Refresh interval and refresh cycle time (modelled but disabled by
        default in short simulations).
    """

    clock_mhz: float = 1200.0
    tRC: int = 55
    tRCD: int = 16
    tCL: int = 16
    tRP: int = 16
    tBL: int = 4
    tCCD_S: int = 4
    tCCD_L: int = 6
    tRRD_S: int = 4
    tRRD_L: int = 6
    tFAW: int = 26
    tRAS: int = 39
    tRTP: int = 9
    tWR: int = 18
    tCWL: int = 12
    tREFI: int = 9360
    tRFC: int = 420

    def __post_init__(self):
        for name in ("clock_mhz", "tRC", "tRCD", "tCL", "tRP", "tBL",
                     "tCCD_S", "tCCD_L", "tRRD_S", "tRRD_L", "tFAW",
                     "tRAS", "tRTP", "tWR", "tCWL", "tREFI", "tRFC"):
            value = getattr(self, name)
            if value <= 0:
                raise ValueError("%s must be positive, got %r" % (name, value))
        if self.tRAS + self.tRP > self.tRC + 1:
            raise ValueError(
                "inconsistent timing: tRAS + tRP must not exceed tRC "
                "(tRAS=%d, tRP=%d, tRC=%d)" % (self.tRAS, self.tRP, self.tRC))

    @property
    def data_rate_mts(self):
        """Data rate in mega-transfers per second."""
        return 2.0 * self.clock_mhz

    @property
    def cycle_time_ns(self):
        """Duration of one memory-clock cycle in nanoseconds."""
        return 1_000.0 / self.clock_mhz

    def kernel_params(self):
        """Flat parameter tuple in the ``TP_*`` order expected by
        :mod:`repro.core.kernels`: ``(tRP, tRCD, tCL, tBL, tCCD_S,
        tCCD_L, tRRD_S, tRRD_L, tFAW, tRAS, tRC, tRTP)``."""
        return (self.tRP, self.tRCD, self.tCL, self.tBL, self.tCCD_S,
                self.tCCD_L, self.tRRD_S, self.tRRD_L, self.tFAW,
                self.tRAS, self.tRC, self.tRTP)

    def read_latency_cycles(self):
        """Idle-bank read latency (ACT + CAS + burst) in cycles."""
        return self.tRCD + self.tCL + self.tBL

    def row_miss_penalty_cycles(self):
        """Extra cycles for a row-buffer miss (precharge + activate)."""
        return self.tRP + self.tRCD


#: The DDR4-2400 configuration used throughout the paper (Table I).
DDR4_2400 = DDR4Timing()


@dataclass(frozen=True)
class ChannelSpec:
    """Per-channel peak bandwidth helper for DDR4 configurations."""

    timing: DDR4Timing = field(default_factory=lambda: DDR4_2400)
    bus_width_bits: int = 64

    @property
    def peak_bandwidth_gbps(self):
        """Theoretical peak bandwidth of one channel in GB/s."""
        return (self.timing.data_rate_mts * 1e6 *
                self.bus_width_bits / 8) / 1e9
