"""Host-side FR-FCFS memory controller.

The controller owns one channel.  Requests arrive as
:class:`~repro.dram.commands.MemoryRequest` objects; each 64-byte burst is
scheduled with the First-Ready, First-Come-First-Served policy: among queued
requests whose next DDR command is ready to issue, row-buffer hits win, ties
broken by age.  An open-page policy keeps rows open after a read.
"""

from dataclasses import dataclass, field

from repro.dram.address_mapping import SkylakeAddressMapping
from repro.dram.channel import Channel
from repro.dram.commands import CommandType, RequestType
from repro.dram.timing import DDR4_2400


@dataclass
class ControllerStats:
    """Aggregated controller statistics."""

    requests_completed: int = 0
    total_latency_cycles: int = 0
    row_hits: int = 0
    row_misses: int = 0
    row_conflicts: int = 0
    commands_issued: int = 0
    cycles_elapsed: int = 0
    latencies: list = field(default_factory=list)

    @property
    def average_latency_cycles(self):
        if not self.requests_completed:
            return 0.0
        return self.total_latency_cycles / self.requests_completed

    @property
    def row_hit_rate(self):
        total = self.row_hits + self.row_misses + self.row_conflicts
        if not total:
            return 0.0
        return self.row_hits / total


class _PendingRequest:
    """Book-keeping wrapper around a queued memory request."""

    __slots__ = ("request", "address", "arrival_cycle", "outcome_recorded")

    def __init__(self, request, address, arrival_cycle):
        self.request = request
        self.address = address
        self.arrival_cycle = arrival_cycle
        self.outcome_recorded = False


class MemoryController:
    """FR-FCFS controller for a single DRAM channel.

    Parameters
    ----------
    timing:
        DDR4 timing parameters.
    num_dimms, ranks_per_dimm:
        Channel population.
    address_mapping:
        An address-mapping object with a ``map(physical_address)`` method.
        Defaults to the Skylake-style mapping.
    queue_depth:
        Read-queue capacity (Table I: 32 entries).
    """

    def __init__(self, timing=None, num_dimms=1, ranks_per_dimm=2,
                 address_mapping=None, queue_depth=32, channel_index=0):
        self.timing = timing or DDR4_2400
        self.channel = Channel(self.timing, num_dimms=num_dimms,
                               ranks_per_dimm=ranks_per_dimm,
                               channel_index=channel_index)
        self.address_mapping = address_mapping or SkylakeAddressMapping()
        self.queue_depth = int(queue_depth)
        if self.queue_depth <= 0:
            raise ValueError("queue_depth must be positive")
        self.cycle = 0
        self._queue = []
        self._waiting = []          # requests not yet admitted to the queue
        self.stats = ControllerStats()

    # ------------------------------------------------------------------ #
    # Request admission                                                  #
    # ------------------------------------------------------------------ #
    def enqueue(self, request):
        """Submit a memory request; it is admitted when queue space allows."""
        if request.request_type is not RequestType.READ:
            raise NotImplementedError(
                "the RecNMP study only exercises read traffic")
        request.arrival_cycle = self.cycle
        self._waiting.append(request)
        self._admit_waiting()

    def _admit_waiting(self):
        while self._waiting and len(self._queue) < self.queue_depth:
            request = self._waiting.pop(0)
            address = self.address_mapping.map(request.physical_address)
            self._queue.append(
                _PendingRequest(request, address, self.cycle))

    @property
    def pending_requests(self):
        """Number of requests still queued or waiting for admission."""
        return len(self._queue) + len(self._waiting)

    # ------------------------------------------------------------------ #
    # Scheduling                                                         #
    # ------------------------------------------------------------------ #
    def _rank_of(self, address):
        return self.channel.global_rank_index(address.dimm, address.rank)

    def _next_command(self, pending):
        """Return the next DDR command needed by a pending request."""
        address = pending.address
        rank_index = self._rank_of(address)
        bank = self.channel.rank(rank_index).bank(address.bank_group,
                                                  address.bank)
        commands = bank.required_commands(address.row)
        return commands[0]

    def _is_row_hit(self, pending):
        address = pending.address
        rank_index = self._rank_of(address)
        bank = self.channel.rank(rank_index).bank(address.bank_group,
                                                  address.bank)
        return bank.is_row_hit(address.row)

    def _can_issue_next(self, pending):
        command = self._next_command(pending)
        address = pending.address
        rank_index = self._rank_of(address)
        return self.channel.can_issue(command, rank_index,
                                      address.bank_group, address.bank,
                                      self.cycle)

    def _select_request(self):
        """FR-FCFS selection: ready row hits first, then oldest ready."""
        best = None
        best_is_hit = False
        for pending in self._queue:
            if not self._can_issue_next(pending):
                continue
            is_hit = self._is_row_hit(pending)
            if best is None or (is_hit and not best_is_hit):
                best = pending
                best_is_hit = is_hit
                if best_is_hit:
                    # Queue order is arrival order, so the first ready hit is
                    # already the oldest ready hit.
                    break
        return best

    # ------------------------------------------------------------------ #
    # Simulation loop                                                    #
    # ------------------------------------------------------------------ #
    def tick(self):
        """Advance one memory-clock cycle, issuing at most one command."""
        self._admit_waiting()
        if not self.channel.ca_bus_free(self.cycle):
            self.cycle += 1
            return
        pending = self._select_request()
        if pending is not None:
            self._issue_for(pending)
        self.cycle += 1

    def _issue_for(self, pending):
        address = pending.address
        rank_index = self._rank_of(address)
        bank = self.channel.rank(rank_index).bank(address.bank_group,
                                                  address.bank)
        if not pending.outcome_recorded:
            # Record hit/miss/conflict once, at the first command issued on
            # behalf of this request.
            if bank.is_row_hit(address.row):
                self.stats.row_hits += 1
            elif bank.is_row_closed():
                self.stats.row_misses += 1
            else:
                self.stats.row_conflicts += 1
            pending.outcome_recorded = True
        command = self._next_command(pending)
        data_done = self.channel.issue(command, rank_index,
                                       address.bank_group, address.bank,
                                       address.row, self.cycle)
        self.stats.commands_issued += 1
        if command is CommandType.RD:
            self._complete(pending, data_done)

    def _complete(self, pending, completion_cycle):
        pending.request.completion_cycle = completion_cycle
        latency = completion_cycle - pending.request.arrival_cycle
        self.stats.requests_completed += 1
        self.stats.total_latency_cycles += latency
        self.stats.latencies.append(latency)
        self._queue.remove(pending)

    def run_until_drained(self, max_cycles=10_000_000):
        """Tick until all queued requests complete (or ``max_cycles``)."""
        start_cycle = self.cycle
        while self.pending_requests:
            if self.cycle - start_cycle > max_cycles:
                raise RuntimeError(
                    "controller did not drain within %d cycles" % max_cycles)
            self.tick()
        self.stats.cycles_elapsed = self.cycle
        return self.stats

    # ------------------------------------------------------------------ #
    def process_trace(self, physical_addresses, batch_size=None):
        """Convenience helper: enqueue a read for every address and drain.

        ``batch_size`` optionally throttles admission so that at most that
        many requests are outstanding at once (mimicking a core's MSHR
        limit); ``None`` enqueues everything up front.
        """
        from repro.dram.commands import MemoryRequest

        addresses = list(physical_addresses)
        if batch_size is None:
            for address in addresses:
                self.enqueue(MemoryRequest(physical_address=int(address)))
            return self.run_until_drained()
        index = 0
        while index < len(addresses) or self.pending_requests:
            while (index < len(addresses)
                   and self.pending_requests < batch_size):
                self.enqueue(
                    MemoryRequest(physical_address=int(addresses[index])))
                index += 1
            self.tick()
        self.stats.cycles_elapsed = self.cycle
        return self.stats
