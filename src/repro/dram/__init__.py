"""Cycle-level DDR4 memory-system simulator.

This subpackage is the Ramulator-equivalent substrate the RecNMP evaluation
is built on.  It models:

* DDR4-2400 device timing (Table I of the paper),
* bank / bank-group / rank / channel state machines,
* a host-side FR-FCFS memory controller with an open-page policy,
* Intel Skylake-style physical-to-DRAM address mapping plus the page-colouring
  variant used for the load-balancing study,
* DRAM access energy.
"""

from repro.dram.timing import DDR4Timing, DDR4_2400
from repro.dram.commands import (
    CommandType,
    DramCommand,
    MemoryRequest,
    RequestType,
)
from repro.dram.bank import Bank
from repro.dram.rank import Rank
from repro.dram.channel import Channel
from repro.dram.address_mapping import (
    DramAddress,
    MemoryGeometry,
    SkylakeAddressMapping,
    PageColoringMapping,
    InterleavedVectorMapping,
)
from repro.dram.controller import MemoryController, ControllerStats
from repro.dram.system import DramSystem, DramSystemConfig
from repro.dram.energy import DramEnergyModel, DramEnergyParameters

__all__ = [
    "DDR4Timing",
    "DDR4_2400",
    "CommandType",
    "DramCommand",
    "MemoryRequest",
    "RequestType",
    "Bank",
    "Rank",
    "Channel",
    "DramAddress",
    "MemoryGeometry",
    "SkylakeAddressMapping",
    "PageColoringMapping",
    "InterleavedVectorMapping",
    "MemoryController",
    "ControllerStats",
    "DramSystem",
    "DramSystemConfig",
    "DramEnergyModel",
    "DramEnergyParameters",
]
