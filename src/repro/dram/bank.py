"""DRAM bank state machine.

Each bank tracks its open row and the earliest cycle at which the next ACT,
RD/WR or PRE command may legally be issued, based on the DDR4 timing
constraints of :class:`~repro.dram.timing.DDR4Timing`.
"""

from repro.dram.commands import CommandType
from repro.dram.timing import DDR4Timing


class Bank:
    """One DRAM bank: an open-row register plus per-command ready times."""

    def __init__(self, timing, bank_group, bank_index):
        if not isinstance(timing, DDR4Timing):
            raise TypeError("timing must be a DDR4Timing instance")
        self.timing = timing
        self.bank_group = bank_group
        self.bank_index = bank_index
        self.open_row = None
        # Earliest cycle at which each command type can be issued to this bank.
        self.next_act = 0
        self.next_read = 0
        self.next_pre = 0
        # Statistics.
        self.row_hits = 0
        self.row_misses = 0
        self.row_conflicts = 0
        self.activations = 0
        self.reads = 0
        self.precharges = 0

    # ------------------------------------------------------------------ #
    # Queries                                                            #
    # ------------------------------------------------------------------ #
    def is_row_hit(self, row):
        """True if ``row`` is currently open in the row buffer."""
        return self.open_row == row

    def is_row_closed(self):
        """True if no row is open (bank precharged)."""
        return self.open_row is None

    def required_commands(self, row):
        """Return the DDR command sequence needed to read ``row``.

        * row hit -> ``[RD]``
        * closed bank -> ``[ACT, RD]``
        * row conflict -> ``[PRE, ACT, RD]``
        """
        if self.is_row_hit(row):
            return [CommandType.RD]
        if self.is_row_closed():
            return [CommandType.ACT, CommandType.RD]
        return [CommandType.PRE, CommandType.ACT, CommandType.RD]

    def earliest_issue_cycle(self, command_type, current_cycle):
        """Earliest cycle >= ``current_cycle`` the command may issue."""
        if command_type is CommandType.ACT:
            ready = self.next_act
        elif command_type in (CommandType.RD, CommandType.WR):
            ready = self.next_read
        elif command_type is CommandType.PRE:
            ready = self.next_pre
        else:
            raise ValueError("unsupported command %r" % (command_type,))
        return max(ready, current_cycle)

    def can_issue(self, command_type, current_cycle):
        """True if the bank-local timing allows issuing the command now."""
        return self.earliest_issue_cycle(command_type, current_cycle) <= \
            current_cycle

    # ------------------------------------------------------------------ #
    # State updates                                                      #
    # ------------------------------------------------------------------ #
    def issue_activate(self, row, cycle):
        """Issue ACT: open ``row`` and update timing state."""
        if not self.can_issue(CommandType.ACT, cycle):
            raise RuntimeError(
                "ACT issued at cycle %d before bank ready (ready at %d)"
                % (cycle, self.next_act))
        if self.open_row is not None:
            raise RuntimeError("ACT issued while row %d open" % self.open_row)
        timing = self.timing
        self.open_row = row
        self.activations += 1
        self.next_read = max(self.next_read, cycle + timing.tRCD)
        self.next_pre = max(self.next_pre, cycle + timing.tRAS)
        self.next_act = max(self.next_act, cycle + timing.tRC)

    def issue_read(self, row, cycle):
        """Issue RD to the open row; returns the cycle data finishes."""
        if self.open_row != row:
            raise RuntimeError(
                "RD to row %r but open row is %r" % (row, self.open_row))
        if not self.can_issue(CommandType.RD, cycle):
            raise RuntimeError(
                "RD issued at cycle %d before bank ready (ready at %d)"
                % (cycle, self.next_read))
        timing = self.timing
        self.reads += 1
        data_done = cycle + timing.tCL + timing.tBL
        # A subsequent read to the same bank must respect tCCD_L; the rank
        # enforces the cross-bank constraint, here we keep the local one.
        self.next_read = max(self.next_read, cycle + timing.tCCD_L)
        self.next_pre = max(self.next_pre, cycle + timing.tRTP)
        return data_done

    def issue_precharge(self, cycle):
        """Issue PRE: close the open row and update timing state."""
        if not self.can_issue(CommandType.PRE, cycle):
            raise RuntimeError(
                "PRE issued at cycle %d before bank ready (ready at %d)"
                % (cycle, self.next_pre))
        timing = self.timing
        self.open_row = None
        self.precharges += 1
        self.next_act = max(self.next_act, cycle + timing.tRP)

    # ------------------------------------------------------------------ #
    # Kernel state sync (see repro.core.kernels)                         #
    # ------------------------------------------------------------------ #
    def kernel_state(self):
        """Timing-relevant state as a flat int tuple (-1 = row closed).

        Order matches the per-bank arrays of :mod:`repro.core.kernels`:
        ``(open_row, next_act, next_read, next_pre, activations, reads,
        precharges)``.  Also used by parity tests to compare full bank
        state between the legacy path and a kernel run.
        """
        return (-1 if self.open_row is None else self.open_row,
                self.next_act, self.next_read, self.next_pre,
                self.activations, self.reads, self.precharges)

    def set_kernel_state(self, open_row, next_act, next_read, next_pre,
                         activations, reads, precharges):
        """Write back state mutated by a kernel call."""
        self.open_row = None if open_row < 0 else int(open_row)
        self.next_act = int(next_act)
        self.next_read = int(next_read)
        self.next_pre = int(next_pre)
        self.activations = int(activations)
        self.reads = int(reads)
        self.precharges = int(precharges)

    def record_access_outcome(self, row):
        """Update hit/miss/conflict statistics for an access to ``row``."""
        if self.is_row_hit(row):
            self.row_hits += 1
        elif self.is_row_closed():
            self.row_misses += 1
        else:
            self.row_conflicts += 1

    def stats(self):
        """Return the per-bank counters as a dictionary."""
        return {
            "row_hits": self.row_hits,
            "row_misses": self.row_misses,
            "row_conflicts": self.row_conflicts,
            "activations": self.activations,
            "reads": self.reads,
            "precharges": self.precharges,
        }
