"""DRAM channel: DIMMs and ranks sharing one command/address and data bus."""

from repro.dram.commands import CommandType
from repro.dram.rank import Rank
from repro.dram.timing import DDR4Timing


class Channel:
    """One memory channel with ``num_dimms * ranks_per_dimm`` ranks.

    The channel enforces the shared-bus constraints:

    * one command per cycle on the C/A bus,
    * one data burst at a time on the 64-bit data bus (across all ranks),
      plus a one-cycle rank-to-rank switch penalty.
    """

    def __init__(self, timing, num_dimms=1, ranks_per_dimm=2,
                 num_bank_groups=4, banks_per_group=4, channel_index=0):
        if not isinstance(timing, DDR4Timing):
            raise TypeError("timing must be a DDR4Timing instance")
        if num_dimms <= 0 or ranks_per_dimm <= 0:
            raise ValueError("num_dimms and ranks_per_dimm must be positive")
        self.timing = timing
        self.channel_index = channel_index
        self.num_dimms = num_dimms
        self.ranks_per_dimm = ranks_per_dimm
        self.num_ranks = num_dimms * ranks_per_dimm
        self.ranks = [
            Rank(timing, num_bank_groups=num_bank_groups,
                 banks_per_group=banks_per_group, rank_index=r)
            for r in range(self.num_ranks)
        ]
        self.rank_to_rank_penalty = 1
        # Shared-bus state.
        self.next_ca_free = 0
        self.next_data_free = 0
        self._last_data_rank = None
        self.commands_issued = 0

    # ------------------------------------------------------------------ #
    def rank(self, rank_index):
        """Return the rank object for a channel-wide rank index."""
        if not 0 <= rank_index < self.num_ranks:
            raise IndexError("rank index out of range: %d" % rank_index)
        return self.ranks[rank_index]

    def global_rank_index(self, dimm, rank_in_dimm):
        """Map (dimm, rank-in-dimm) to a channel-wide rank index."""
        if not 0 <= dimm < self.num_dimms:
            raise IndexError("dimm out of range: %d" % dimm)
        if not 0 <= rank_in_dimm < self.ranks_per_dimm:
            raise IndexError("rank out of range: %d" % rank_in_dimm)
        return dimm * self.ranks_per_dimm + rank_in_dimm

    # ------------------------------------------------------------------ #
    def ca_bus_free(self, cycle):
        """True if the command/address bus is free at ``cycle``."""
        return cycle >= self.next_ca_free

    def earliest_issue_cycle(self, command_type, rank_index, bank_group,
                             bank_index, current_cycle):
        """Earliest legal issue cycle including the shared C/A and data bus."""
        rank = self.rank(rank_index)
        ready = rank.earliest_issue_cycle(
            command_type, bank_group, bank_index, current_cycle)
        ready = max(ready, self.next_ca_free)
        if command_type in (CommandType.RD, CommandType.WR):
            # The data burst (starting tCL after the column command) must not
            # overlap another rank's burst on the shared data bus.
            burst_start_floor = self.next_data_free
            if (self._last_data_rank is not None
                    and self._last_data_rank != rank_index):
                burst_start_floor += self.rank_to_rank_penalty
            ready = max(ready, burst_start_floor - self.timing.tCL)
        return max(ready, current_cycle)

    def can_issue(self, command_type, rank_index, bank_group, bank_index,
                  current_cycle):
        """True if the command may issue at ``current_cycle``."""
        return self.earliest_issue_cycle(
            command_type, rank_index, bank_group, bank_index,
            current_cycle) <= current_cycle

    def issue(self, command_type, rank_index, bank_group, bank_index, row,
              cycle):
        """Issue a command on this channel.

        Returns the data-completion cycle for RD commands, else ``None``.
        """
        if not self.can_issue(command_type, rank_index, bank_group,
                              bank_index, cycle):
            raise RuntimeError(
                "%s not ready on channel %d rank %d at cycle %d"
                % (command_type.value, self.channel_index, rank_index, cycle))
        rank = self.rank(rank_index)
        data_done = rank.issue(command_type, bank_group, bank_index, row,
                               cycle)
        self.next_ca_free = cycle + 1
        self.commands_issued += 1
        if data_done is not None:
            self.next_data_free = max(self.next_data_free, data_done)
            self._last_data_rank = rank_index
        return data_done

    # ------------------------------------------------------------------ #
    def stats(self):
        """Aggregate statistics across all ranks of the channel."""
        totals = {"row_hits": 0, "row_misses": 0, "row_conflicts": 0,
                  "activations": 0, "reads": 0, "precharges": 0}
        for rank in self.ranks:
            for key, value in rank.stats().items():
                totals[key] += value
        totals["commands_issued"] = self.commands_issued
        return totals
