"""DRAM rank: a collection of banks sharing rank-level timing constraints.

The rank enforces the constraints that span banks:

* tRRD_S / tRRD_L -- minimum spacing between ACTs to different banks,
* tFAW -- at most four ACTs within any tFAW window,
* tCCD_S / tCCD_L -- column command spacing,
* a single shared data bus (one burst at a time per rank towards the channel).
"""

from collections import deque

from repro.dram.bank import Bank
from repro.dram.commands import CommandType
from repro.dram.timing import DDR4Timing


class Rank:
    """One rank of a DIMM: ``num_bank_groups * banks_per_group`` banks."""

    def __init__(self, timing, num_bank_groups=4, banks_per_group=4,
                 rank_index=0):
        if not isinstance(timing, DDR4Timing):
            raise TypeError("timing must be a DDR4Timing instance")
        if num_bank_groups <= 0 or banks_per_group <= 0:
            raise ValueError("bank counts must be positive")
        self.timing = timing
        self.rank_index = rank_index
        self.num_bank_groups = num_bank_groups
        self.banks_per_group = banks_per_group
        self.banks = [
            Bank(timing, bank_group=g, bank_index=b)
            for g in range(num_bank_groups)
            for b in range(banks_per_group)
        ]
        # Rank-level timing state.
        self._act_history = deque()      # cycles of recent ACTs (for tFAW)
        self._last_act_cycle = None
        self._last_act_bank_group = None
        self._last_col_cycle = None
        self._last_col_bank_group = None
        self.next_data_bus_free = 0

    # ------------------------------------------------------------------ #
    def bank(self, bank_group, bank_index):
        """Return the bank object for ``(bank_group, bank_index)``."""
        if not 0 <= bank_group < self.num_bank_groups:
            raise IndexError("bank_group out of range: %d" % bank_group)
        if not 0 <= bank_index < self.banks_per_group:
            raise IndexError("bank_index out of range: %d" % bank_index)
        return self.banks[bank_group * self.banks_per_group + bank_index]

    # ------------------------------------------------------------------ #
    # Rank-level constraints                                             #
    # ------------------------------------------------------------------ #
    def _faw_ready_cycle(self):
        """Earliest cycle a new ACT may issue under the tFAW constraint."""
        if len(self._act_history) < 4:
            return 0
        return self._act_history[-4] + self.timing.tFAW

    def _rrd_ready_cycle(self, bank_group):
        """Earliest cycle a new ACT may issue under tRRD_S/tRRD_L."""
        if self._last_act_cycle is None:
            return 0
        if bank_group == self._last_act_bank_group:
            return self._last_act_cycle + self.timing.tRRD_L
        return self._last_act_cycle + self.timing.tRRD_S

    def _ccd_ready_cycle(self, bank_group):
        """Earliest cycle a new column command may issue under tCCD_S/L."""
        if self._last_col_cycle is None:
            return 0
        if bank_group == self._last_col_bank_group:
            return self._last_col_cycle + self.timing.tCCD_L
        return self._last_col_cycle + self.timing.tCCD_S

    def earliest_issue_cycle(self, command_type, bank_group, bank_index,
                             current_cycle):
        """Earliest legal issue cycle combining bank and rank constraints."""
        bank = self.bank(bank_group, bank_index)
        ready = bank.earliest_issue_cycle(command_type, current_cycle)
        if command_type is CommandType.ACT:
            ready = max(ready, self._faw_ready_cycle(),
                        self._rrd_ready_cycle(bank_group))
        elif command_type in (CommandType.RD, CommandType.WR):
            ready = max(ready, self._ccd_ready_cycle(bank_group),
                        # data bus must be free when the burst starts
                        self.next_data_bus_free - self.timing.tCL)
        return max(ready, current_cycle)

    def can_issue(self, command_type, bank_group, bank_index, current_cycle):
        """True if the command may legally issue at ``current_cycle``."""
        return self.earliest_issue_cycle(
            command_type, bank_group, bank_index, current_cycle) <= \
            current_cycle

    # ------------------------------------------------------------------ #
    # Issue                                                              #
    # ------------------------------------------------------------------ #
    def issue(self, command_type, bank_group, bank_index, row, cycle):
        """Issue a command; returns data-completion cycle for RD else None."""
        if not self.can_issue(command_type, bank_group, bank_index, cycle):
            raise RuntimeError(
                "%s to rank %d bg %d bank %d not ready at cycle %d"
                % (command_type.value, self.rank_index, bank_group,
                   bank_index, cycle))
        bank = self.bank(bank_group, bank_index)
        if command_type is CommandType.ACT:
            bank.issue_activate(row, cycle)
            self._act_history.append(cycle)
            while len(self._act_history) > 4:
                self._act_history.popleft()
            self._last_act_cycle = cycle
            self._last_act_bank_group = bank_group
            return None
        if command_type is CommandType.RD:
            data_done = bank.issue_read(row, cycle)
            self._last_col_cycle = cycle
            self._last_col_bank_group = bank_group
            self.next_data_bus_free = max(self.next_data_bus_free, data_done)
            return data_done
        if command_type is CommandType.PRE:
            bank.issue_precharge(cycle)
            return None
        raise ValueError("unsupported command %r" % (command_type,))

    # ------------------------------------------------------------------ #
    # Kernel state sync (see repro.core.kernels)                         #
    # ------------------------------------------------------------------ #
    def kernel_scalars(self):
        """Rank-level scalars in the flat ``RS_*`` layout of
        :mod:`repro.core.kernels` (sans the trailing ``current_cycle``
        slot, which the rank-NMP wrapper appends).

        Layout: ``[ring0..ring3, act_count, last_act_cycle,
        last_act_bank_group, last_col_cycle, last_col_bank_group,
        next_data_bus_free]`` with ``-1`` encoding ``None``.  The ring
        buffer holds the recent ACT cycles at slot ``act_index % 4``, so
        ``ring[act_count % 4]`` is ``history[-4]`` once four ACTs
        happened -- exactly the tFAW reference cycle.
        """
        history = self._act_history
        rs = [0, 0, 0, 0,
              len(history),
              -1 if self._last_act_cycle is None else self._last_act_cycle,
              -1 if self._last_act_bank_group is None
              else self._last_act_bank_group,
              -1 if self._last_col_cycle is None else self._last_col_cycle,
              -1 if self._last_col_bank_group is None
              else self._last_col_bank_group,
              self.next_data_bus_free]
        for i, cycle in enumerate(history):
            rs[i] = cycle
        return rs

    def set_kernel_scalars(self, rs):
        """Write back scalars mutated by a kernel call (inverse of
        :meth:`kernel_scalars`; tolerates the extra trailing slots of the
        full RS vector)."""
        count = int(rs[4])
        keep = 4 if count > 4 else count
        history = self._act_history
        history.clear()
        for i in range(keep):
            history.append(int(rs[(count - keep + i) % 4]))
        value = int(rs[5])
        self._last_act_cycle = None if value < 0 else value
        value = int(rs[6])
        self._last_act_bank_group = None if value < 0 else value
        value = int(rs[7])
        self._last_col_cycle = None if value < 0 else value
        value = int(rs[8])
        self._last_col_bank_group = None if value < 0 else value
        self.next_data_bus_free = int(rs[9])

    # ------------------------------------------------------------------ #
    def stats(self):
        """Aggregate bank statistics for this rank."""
        totals = {"row_hits": 0, "row_misses": 0, "row_conflicts": 0,
                  "activations": 0, "reads": 0, "precharges": 0}
        for bank in self.banks:
            for key, value in bank.stats().items():
                totals[key] += value
        return totals
