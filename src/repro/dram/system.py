"""Whole-memory-system wrapper: multiple channels plus energy accounting.

The :class:`DramSystem` is the baseline memory substrate the host CPU model
and the RecNMP processing units sit on.  It distributes a physical address
trace over its channels, runs each channel's FR-FCFS controller, and reports
latency, bandwidth and energy.
"""

from dataclasses import dataclass, field

from repro.dram.address_mapping import MemoryGeometry, SkylakeAddressMapping
from repro.dram.controller import MemoryController
from repro.dram.energy import DramEnergyModel
from repro.dram.timing import DDR4_2400, DDR4Timing


@dataclass
class DramSystemConfig:
    """Configuration of the simulated memory system.

    The default matches Table I: DDR4-2400, 4 channels x 1 DIMM x 2 ranks,
    FR-FCFS with a 32-entry read queue and an open-page policy.
    """

    timing: DDR4Timing = field(default_factory=lambda: DDR4_2400)
    num_channels: int = 4
    dimms_per_channel: int = 1
    ranks_per_dimm: int = 2
    queue_depth: int = 32

    def __post_init__(self):
        if self.num_channels <= 0:
            raise ValueError("num_channels must be positive")
        if self.dimms_per_channel <= 0:
            raise ValueError("dimms_per_channel must be positive")
        if self.ranks_per_dimm <= 0:
            raise ValueError("ranks_per_dimm must be positive")

    @property
    def ranks_per_channel(self):
        return self.dimms_per_channel * self.ranks_per_dimm

    @property
    def total_ranks(self):
        return self.num_channels * self.ranks_per_channel

    def geometry(self):
        """Build the matching :class:`MemoryGeometry`."""
        return MemoryGeometry(
            num_channels=self.num_channels,
            dimms_per_channel=self.dimms_per_channel,
            ranks_per_dimm=self.ranks_per_dimm,
        )

    @property
    def peak_bandwidth_gbps(self):
        """Theoretical peak bandwidth across all channels in GB/s."""
        per_channel = self.timing.data_rate_mts * 1e6 * 8  # 64-bit bus
        return self.num_channels * per_channel / 1e9


@dataclass
class DramSystemResult:
    """Result of running a trace through the memory system."""

    cycles: int
    average_latency_cycles: float
    average_latency_ns: float
    requests: int
    row_hit_rate: float
    achieved_bandwidth_gbps: float
    energy_nj: float
    energy_breakdown: dict
    per_channel_stats: list

    def as_dict(self):
        return {
            "cycles": self.cycles,
            "average_latency_cycles": self.average_latency_cycles,
            "average_latency_ns": self.average_latency_ns,
            "requests": self.requests,
            "row_hit_rate": self.row_hit_rate,
            "achieved_bandwidth_gbps": self.achieved_bandwidth_gbps,
            "energy_nj": self.energy_nj,
            "energy_breakdown": self.energy_breakdown,
        }


class DramSystem:
    """A multi-channel DDR4 memory system with per-channel FR-FCFS control."""

    def __init__(self, config=None, address_mapping_factory=None,
                 energy_model=None):
        self.config = config or DramSystemConfig()
        geometry = self.config.geometry()
        if address_mapping_factory is None:
            address_mapping_factory = \
                lambda: SkylakeAddressMapping(geometry)  # noqa: E731
        self._mapping_factory = address_mapping_factory
        self.geometry = geometry
        self.energy_model = energy_model or DramEnergyModel()
        self.controllers = [
            MemoryController(
                timing=self.config.timing,
                num_dimms=self.config.dimms_per_channel,
                ranks_per_dimm=self.config.ranks_per_dimm,
                address_mapping=address_mapping_factory(),
                queue_depth=self.config.queue_depth,
                channel_index=channel,
            )
            for channel in range(self.config.num_channels)
        ]

    # ------------------------------------------------------------------ #
    def channel_of(self, physical_address):
        """Channel index a physical address maps to."""
        mapping = self.controllers[0].address_mapping
        return mapping.map(physical_address).channel

    def run_trace(self, physical_addresses, request_bytes=64,
                  outstanding_per_channel=None):
        """Run a read trace through the system and return aggregate results.

        Parameters
        ----------
        physical_addresses:
            Iterable of physical byte addresses (one request each).
        request_bytes:
            Size of each request in bytes.  Requests larger than one 64 B
            burst are expanded into consecutive 64 B reads (the DRAM devices
            transfer 64 B per burst), so a 256 B embedding vector costs four
            bursts on the channel exactly as it does on real hardware.
        outstanding_per_channel:
            Optional cap on in-flight requests per channel.
        """
        if request_bytes <= 0 or request_bytes % 64:
            raise ValueError("request_bytes must be a positive multiple of 64")
        bursts_per_request = request_bytes // 64
        addresses = []
        for address in physical_addresses:
            base = int(address)
            for burst in range(bursts_per_request):
                addresses.append(base + 64 * burst)
        per_channel = [[] for _ in range(self.config.num_channels)]
        for address in addresses:
            per_channel[self.channel_of(address)].append(address)

        per_channel_stats = []
        max_cycles = 0
        total_latency = 0.0
        total_requests = 0
        row_hits = 0
        row_outcomes = 0
        activations = 0
        for controller, channel_trace in zip(self.controllers, per_channel):
            if not channel_trace:
                continue
            stats = controller.process_trace(
                channel_trace, batch_size=outstanding_per_channel)
            per_channel_stats.append(stats)
            max_cycles = max(max_cycles, stats.cycles_elapsed)
            total_latency += stats.total_latency_cycles
            total_requests += stats.requests_completed
            row_hits += stats.row_hits
            row_outcomes += (stats.row_hits + stats.row_misses
                             + stats.row_conflicts)
            activations += stats.row_misses + stats.row_conflicts

        timing = self.config.timing
        average_latency_cycles = (total_latency / total_requests
                                  if total_requests else 0.0)
        elapsed_ns = max_cycles * timing.cycle_time_ns
        bytes_moved = total_requests * 64   # each completed request is a burst
        bandwidth_gbps = (bytes_moved / elapsed_ns) if elapsed_ns else 0.0
        breakdown = self.energy_model.energy(
            activations=activations,
            bytes_read=bytes_moved,
            bytes_to_host=bytes_moved,
            elapsed_ns=elapsed_ns,
            active_ranks=self.config.total_ranks,
        )
        return DramSystemResult(
            cycles=max_cycles,
            average_latency_cycles=average_latency_cycles,
            average_latency_ns=average_latency_cycles * timing.cycle_time_ns,
            requests=total_requests,
            row_hit_rate=(row_hits / row_outcomes) if row_outcomes else 0.0,
            achieved_bandwidth_gbps=bandwidth_gbps,
            energy_nj=breakdown.total_nj,
            energy_breakdown=breakdown.as_dict(),
            per_channel_stats=per_channel_stats,
        )
