"""DRAM command and memory-request definitions."""

import enum
import itertools
from dataclasses import dataclass, field


class CommandType(enum.Enum):
    """Low-level DDR commands issued on the C/A bus."""

    ACT = "ACT"
    PRE = "PRE"
    RD = "RD"
    WR = "WR"
    REF = "REF"


class RequestType(enum.Enum):
    """High-level memory request types from the host or the NMP packets."""

    READ = "READ"
    WRITE = "WRITE"


_request_counter = itertools.count()


@dataclass
class DramCommand:
    """One DDR command bound for a specific bank.

    Attributes
    ----------
    command_type:
        The :class:`CommandType`.
    address:
        The decoded :class:`~repro.dram.address_mapping.DramAddress`.
    issue_cycle:
        Cycle at which the controller placed the command on the C/A bus.
    """

    command_type: CommandType
    address: object
    issue_cycle: int = 0


@dataclass
class MemoryRequest:
    """A host-visible memory request (a cacheline-sized read or write).

    Attributes
    ----------
    physical_address:
        Byte address in the physical address space.
    request_type:
        READ or WRITE.
    size_bytes:
        Access size; DRAM services it in 64-byte bursts.
    arrival_cycle:
        Cycle the request entered the controller queue.
    completion_cycle:
        Cycle the last data beat returned (filled in by the controller).
    metadata:
        Free-form dictionary for annotations (table id, pooling id, ...).
    """

    physical_address: int
    request_type: RequestType = RequestType.READ
    size_bytes: int = 64
    arrival_cycle: int = 0
    completion_cycle: int = -1
    request_id: int = field(default_factory=lambda: next(_request_counter))
    metadata: dict = field(default_factory=dict)

    def __post_init__(self):
        if self.physical_address < 0:
            raise ValueError("physical_address must be non-negative")
        if self.size_bytes <= 0:
            raise ValueError("size_bytes must be positive")

    @property
    def latency_cycles(self):
        """Queueing + service latency in cycles (valid after completion)."""
        if self.completion_cycle < 0:
            raise ValueError("request %d has not completed" % self.request_id)
        return self.completion_cycle - self.arrival_cycle

    def num_bursts(self):
        """Number of 64-byte DRAM bursts needed to service this request."""
        return max(1, -(-self.size_bytes // 64))
